#!/usr/bin/env python3
"""Explore the maximum-load vs message-cost trade-off of (k, d)-choice.

Section 1.1 of the paper shows that by tuning k and d one can hit two sweet
spots that no previously known *non-adaptive* scheme reaches:

* constant maximum load with 2n messages (d = 2k, k = polylog n), and
* o(ln ln n) maximum load with (1 + o(1)) n messages (d − k = Θ(ln n),
  k ≥ ln² n).

This example sweeps a family of (k, d) pairs, measures (max load,
messages per ball) for each, and prints the Pareto frontier next to the
classic baselines and the adaptive comparators.

Run with:  python examples/tradeoff_explorer.py
"""

from __future__ import annotations

import math

from repro.core.process import run_kd_choice
from repro.analysis import predicted_max_load
from repro.experiments import run_tradeoff, tradeoff_table
from repro.simulation import ResultTable, SeedTree


def sweep_kd_family(n: int, seed: int) -> ResultTable:
    """Sweep d/k ratios for a fixed k = ln^2 n."""
    k = max(2, round(math.log(n) ** 2))
    tree = SeedTree(seed)
    table = ResultTable(
        columns=["k", "d", "d/k", "max_load", "messages_per_ball", "predicted"],
        title=f"\n(k, d)-choice family with k = ln^2 n = {k}, n = {n}",
    )
    for ratio in (1.05, 1.1, 1.25, 1.5, 2.0, 3.0, 4.0):
        d = max(k + 1, int(round(ratio * k)))
        result = run_kd_choice(n, k=k, d=d, seed=tree.integer_seed())
        table.add(
            {
                "k": k,
                "d": d,
                "d/k": round(d / k, 2),
                "max_load": result.max_load,
                "messages_per_ball": round(result.messages_per_ball, 3),
                "predicted": round(predicted_max_load(k, d, n), 2),
            }
        )
    return table


def main() -> None:
    n = 3 * 2 ** 13
    seed = 5

    print("Scheme comparison (baselines, adaptive comparators, (k,d)-choice):")
    points = run_tradeoff(n=n, trials=3, seed=seed)
    print(tradeoff_table(points).to_text())

    print(sweep_kd_family(n, seed).to_text())

    frontier = sorted(
        ((p.mean_messages_per_ball, p.mean_max_load, p.scheme) for p in points)
    )
    print("\nPareto view (messages per ball -> best max load achieved at that cost):")
    best = math.inf
    for cost, load, scheme in frontier:
        if load < best:
            best = load
            print(f"  {cost:6.2f} probes/ball  ->  max load {load:.1f}   ({scheme})")

    print(
        "\nTakeaway: increasing d/k buys balance with messages; d = 2k already\n"
        "reaches a constant maximum load, and even d = k + ln n (barely more\n"
        "than one probe per ball) beats the classic single-choice process."
    )


if __name__ == "__main__":
    main()
