#!/usr/bin/env python3
"""Distributed storage: replica placement, lookups, failures and repair.

The paper's Section 1.3 storage application: a new file is replicated into k
copies (or split into k chunks), and (k, d)-choice stores them on the k least
loaded of d = k + 1 randomly probed servers.  Compared to placing each
replica with independent two-choice, this halves both the placement probes
and the lookup fan-out while keeping the load balance comparable.

The example also exercises the fault-tolerance path: it fails a fraction of
the servers, measures file availability under replication vs chunking, and
re-replicates the lost copies using the same placement policy.

Run with:  python examples/distributed_storage.py
"""

from __future__ import annotations

from repro.simulation import ResultTable, file_population
from repro.storage import (
    KDChoicePlacement,
    PerReplicaDChoicePlacement,
    RandomPlacement,
    StorageSystem,
    availability,
    fail_random_servers,
    re_replicate,
)


def build_systems(n_servers: int, n_files: int, replicas: int, seed: int):
    """Store the same file population under three placement policies."""
    policies = [
        RandomPlacement(),
        PerReplicaDChoicePlacement(d=2),
        KDChoicePlacement(extra_probes=1),
    ]
    systems = []
    for index, policy in enumerate(policies):
        population = file_population(n_files, replicas=replicas, seed=seed)
        system = StorageSystem(n_servers, policy, mode="replication", seed=seed + index)
        system.store_population(population)
        systems.append(system)
    return systems


def main() -> None:
    n_servers, n_files, replicas, seed = 512, 4096, 3, 11

    systems = build_systems(n_servers, n_files, replicas, seed)

    table = ResultTable(
        columns=[
            "policy", "max_load", "gap", "messages_per_file", "mean_lookup_cost",
        ],
        title=f"{n_files} files x {replicas} replicas on {n_servers} servers",
    )
    for system in systems:
        report = system.report()
        table.add(
            {
                "policy": report.policy,
                "max_load": report.max_load,
                "gap": round(report.gap, 2),
                "messages_per_file": report.messages_per_file,
                "mean_lookup_cost": report.mean_lookup_cost,
            }
        )
    print(table.to_text())

    # Failure injection on the (k, d)-choice system.
    kd_system = systems[-1]
    failed = fail_random_servers(kd_system, count=n_servers // 10, seed=seed)
    before = availability(kd_system)
    repaired = re_replicate(kd_system)
    after = availability(kd_system)

    print(
        f"\nFailure drill on the (k,d)-choice system: failed {len(failed)} servers "
        f"({len(failed) / n_servers:.0%} of the cluster)."
    )
    print(
        f"  availability before repair: {before.availability:.4f} "
        f"({before.lost_replicas} replicas lost)"
    )
    print(f"  replicas re-created by re_replicate(): {repaired}")
    print(f"  availability after repair:  {after.availability:.4f}")
    print(
        "\nTakeaway: (k, k+1)-choice placement keeps the maximum server load close\n"
        "to per-replica two-choice while issuing roughly half the probes per file,\n"
        "and a lookup only needs to contact k+1 candidate servers instead of 2k."
    )


if __name__ == "__main__":
    main()
