#!/usr/bin/env python3
"""Parallel job scheduling in a cluster with (k, d)-choice batch sampling.

The paper's Section 1.3 argues that the standard per-task power-of-d-choices
degrades as a job's parallelism grows: the job finishes when its *slowest*
task finishes, and with many tasks it becomes likely that at least one task's
d probes all land on busy workers.  Sharing a single wave of d = 2k probes
across the whole job — the (k, d)-choice strategy, Sparrow's "batch
sampling" — removes that failure mode at the same per-task message cost.

This example simulates a 256-worker cluster under Poisson job arrivals at
70 % utilization, sweeps the per-job parallelism, and compares four
schedulers: random placement, per-task two-choice, batch (k, d)-choice and
late binding.

Run with:  python examples/cluster_scheduling.py
"""

from __future__ import annotations

from repro.cluster import (
    BatchSamplingScheduler,
    LateBindingScheduler,
    PerTaskDChoiceScheduler,
    RandomScheduler,
    simulate_cluster,
)
from repro.simulation import ResultTable, SeedTree, poisson_job_trace


def main() -> None:
    n_workers = 256
    n_jobs = 300
    utilization = 0.7
    tree = SeedTree(42)

    table = ResultTable(
        columns=[
            "tasks/job", "scheduler", "mean_response", "p95_response",
            "p99_response", "messages_per_task",
        ],
        title=f"{n_workers}-worker cluster, Poisson arrivals at {utilization:.0%} load",
    )

    for tasks_per_job in (4, 16, 64):
        arrival_rate = utilization * n_workers / tasks_per_job
        trace_seed = tree.integer_seed()
        for scheduler in (
            RandomScheduler(),
            PerTaskDChoiceScheduler(d=2),
            BatchSamplingScheduler(probe_ratio=2.0),
            LateBindingScheduler(probe_ratio=2.0),
        ):
            trace = poisson_job_trace(
                n_jobs=n_jobs,
                arrival_rate=arrival_rate,
                tasks_per_job=tasks_per_job,
                seed=trace_seed,  # identical workload for every scheduler
            )
            report = simulate_cluster(
                n_workers, scheduler, trace, seed=tree.integer_seed()
            )
            table.add(
                {
                    "tasks/job": tasks_per_job,
                    "scheduler": report.scheduler,
                    "mean_response": round(report.mean_response, 2),
                    "p95_response": round(report.p95_response, 2),
                    "p99_response": round(report.p99_response, 2),
                    "messages_per_task": round(report.messages_per_task, 2),
                }
            )

    print(table.to_text())
    print(
        "\nReading the table: as tasks/job grows, per-task two-choice tail\n"
        "latencies inflate while batch (k,d)-choice sampling stays flat at the\n"
        "same 2 probes per task; late binding (the Sparrow refinement) improves\n"
        "it further at the cost of extra cancellation messages."
    )


if __name__ == "__main__":
    main()
