#!/usr/bin/env python3
"""Quickstart: run the (k, d)-choice process and compare it to the classics.

This example places n balls into n bins with several allocation strategies,
prints the maximum load and message cost of each, and shows how the measured
values line up with the paper's Theorem 1 prediction.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.api import SchemeSpec, simulate
from repro.analysis import classify_regime, predicted_max_load
from repro.core.metrics import summarize
from repro.simulation import ResultTable


def main() -> None:
    n = 3 * 2 ** 14  # 49 152 balls and bins
    seed = 7

    specs = [
        SchemeSpec(scheme="single_choice", params={"n_bins": n}, seed=seed),
        SchemeSpec(scheme="d_choice", params={"n_bins": n, "d": 2}, seed=seed),
        SchemeSpec(
            scheme="one_plus_beta", params={"n_bins": n, "beta": 0.5}, seed=seed
        ),
        SchemeSpec(scheme="kd_choice", params={"n_bins": n, "k": 2, "d": 3}, seed=seed),
        SchemeSpec(scheme="kd_choice", params={"n_bins": n, "k": 8, "d": 9}, seed=seed),
        SchemeSpec(
            scheme="kd_choice", params={"n_bins": n, "k": 16, "d": 32}, seed=seed
        ),
        SchemeSpec(
            scheme="kd_choice", params={"n_bins": n, "k": 64, "d": 65}, seed=seed
        ),
    ]
    runs = [simulate(spec) for spec in specs]

    table = ResultTable(
        columns=["scheme", "k", "d", "max_load", "messages_per_ball", "predicted"],
        title=f"Balls-into-bins with n = {n} (seed {seed})",
    )
    for result in runs:
        prediction = (
            round(predicted_max_load(result.k, result.d, n), 2)
            if result.k <= result.d
            else ""
        )
        record = dict(summarize(result))
        record["predicted"] = prediction
        table.add(record)
    print(table.to_text())

    print()
    for k, d in [(2, 3), (16, 32), (64, 65)]:
        regime = classify_regime(k, d, n)
        print(
            f"(k={k}, d={d}): d_k = {regime.dk:.1f}  ->  regime '{regime.name}', "
            f"predicted leading term {predicted_max_load(k, d, n):.2f}"
        )

    print(
        "\nTakeaway: with d about twice k the maximum load stays a small constant\n"
        "at only d/k probes per ball, while k close to d drifts towards the\n"
        "single-choice behaviour — exactly the trade-off Theorem 1 quantifies."
    )


if __name__ == "__main__":
    main()
