#!/usr/bin/env python3
"""Reproduce a scaled-down version of the paper's Table 1.

The paper's Table 1 reports the maximum bin load of (k, d)-choice for
n = 3·2^16 over a grid of k and d values (10 runs per cell).  This example
regenerates a representative sub-grid at n = 3·2^12 — small enough to run in
well under a minute — and prints it side by side with the paper's reported
values so the qualitative agreement is visible.

Run with:  python examples/table1_small.py  [--full]

Passing ``--full`` runs the complete grid at the paper's n (takes several
minutes).
"""

from __future__ import annotations

import argparse

from repro.experiments import PAPER_TABLE1, TABLE1_N, run_table1
from repro.simulation import ResultTable


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true", help="run the full paper-scale grid (slow)"
    )
    parser.add_argument("--trials", type=int, default=3, help="runs per cell")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    if args.full:
        n, k_values, d_values, trials = TABLE1_N, None, None, max(args.trials, 10)
    else:
        n = 3 * 2 ** 12
        k_values = (1, 2, 4, 8, 16, 64)
        d_values = (1, 2, 3, 5, 9, 17, 65)
        trials = args.trials

    print(f"Running (k, d)-choice grid at n = {n}, {trials} trials per cell ...\n")
    result = run_table1(
        n=n, trials=trials, seed=args.seed, k_values=k_values, d_values=d_values
    )
    print(result.to_text())

    comparison = ResultTable(
        columns=["k", "d", "measured", "paper (n = 3*2^16)"],
        title="\nMeasured vs paper-reported maximum loads",
    )
    for (k, d), cell in sorted(result.cells.items()):
        paper = PAPER_TABLE1.get((k, d))
        comparison.add(
            {
                "k": k,
                "d": d,
                "measured": cell.text,
                "paper (n = 3*2^16)": ", ".join(map(str, paper)) if paper else "n/a",
            }
        )
    print(comparison.to_text())

    print(
        "\nNote: at a smaller n the absolute loads can only be lower than the\n"
        "paper's, but the structure is the same — single choice is worst, any\n"
        "d >= 2k cell sits at 2, and the near-diagonal cells (k = d - 1) are\n"
        "the worst in each row."
    )


if __name__ == "__main__":
    main()
