#!/usr/bin/env python3
"""Tour of the extension models: weighted balls, stale probes, churn.

The paper analyses the one-shot, unit-weight, fresh-information process.
Real deployments differ in three ways, each covered by an extension module:

* **Weighted balls** (`repro.core.weighted`) — files and tasks are not all
  the same size; how does the weighted load gap behave under exponential and
  heavy-tailed (Pareto) weights?
* **Stale information** (`repro.core.stale`) — in a parallel system many
  rounds may probe the same outdated load snapshot; how fast does the
  guarantee degrade with the staleness epoch?
* **Churn** (`repro.core.dynamic`) — balls depart as well as arrive; what is
  the steady-state gap under balanced insert/delete traffic?

Run with:  python examples/extensions_tour.py
"""

from __future__ import annotations

from repro.core.dynamic import run_churn_kd_choice
from repro.core.stale import run_stale_kd_choice
from repro.core.weighted import run_weighted_kd_choice
from repro.simulation import ResultTable, horizontal_bar_chart, sparkline


def weighted_section(n: int) -> None:
    print("1. Weighted balls — weighted-load gap by weight distribution")
    table = ResultTable(columns=["weights", "(k,d)", "weighted_gap", "max_ball_count"])
    for weights in ("constant", "exponential", "pareto"):
        for k, d in ((1, 2), (8, 16)):
            result = run_weighted_kd_choice(n, k=k, d=d, weights=weights, seed=3)
            table.add(
                {
                    "weights": weights,
                    "(k,d)": f"({k},{d})",
                    "weighted_gap": round(result.extra["weighted_gap"], 2),
                    "max_ball_count": result.max_load,
                }
            )
    print(table.to_text())
    print()


def staleness_section(n: int) -> None:
    print("2. Stale probes — max load vs staleness epoch (k=4, d=8)")
    values = {}
    for stale_rounds in (1, 4, 16, 64, 256):
        result = run_stale_kd_choice(n, k=4, d=8, stale_rounds=stale_rounds, seed=5)
        values[f"epoch={stale_rounds:>3} rounds"] = float(result.max_load)
    print(horizontal_bar_chart(values, width=30, value_format="{:.0f}"))
    print()


def churn_section(n: int) -> None:
    print("3. Churn — gap over time under balanced insert/delete")
    for k, d in ((1, 1), (1, 2), (4, 8)):
        result = run_churn_kd_choice(n_bins=n // 8, k=k, d=d, rounds=1024, seed=7)
        gaps = [snapshot.gap for snapshot in result.snapshots]
        print(
            f"  ({k},{d})-choice   gap trace {sparkline(gaps)}   "
            f"steady-state gap = {result.steady_state_gap():.2f}"
        )
    print()


def main() -> None:
    n = 3 * 2 ** 11
    weighted_section(n)
    staleness_section(n)
    churn_section(n)
    print(
        "Takeaway: the (k,d)-choice advantage survives weights and churn, and\n"
        "degrades gracefully with stale information — the fresher the probes,\n"
        "the closer the system stays to the paper's bounds."
    )


if __name__ == "__main__":
    main()
