"""Parameter sweeps over (k, d, n, m) grids.

A sweep is a declarative description of a family of configurations; running
it produces one :class:`~repro.simulation.runner.ExperimentOutcome` per
configuration plus a flat :class:`~repro.simulation.results.ResultTable`.
Table 1, the regime scaling experiment and the heavy-load experiment are all
expressed as sweeps.

Since the :mod:`repro.api` redesign, a sweep's preferred form is
*spec-driven*: name a registered scheme and the grid, and every point is
materialized as a :class:`~repro.api.SchemeSpec` executed through
:func:`repro.api.simulate`::

    sweep = ParameterSweep(grid={"n_bins": [1024], "k": [2, 4], "d": [8]},
                           scheme="kd_choice")
    table = sweep.run_table(trials=5, seed=0)

Spec-driven sweeps execute through :func:`repro.api.simulate_trials`, so
they inherit the execution layer for free: ``run(..., n_jobs=4)`` fans every
point's trials out over a process pool and ``run(..., cache=...)`` skips
trials already present in an on-disk :class:`~repro.api.cache.ResultStore`.
Seeds are pre-derived from one shared tree, so neither knob changes results.

The historical ``factory`` callable is still accepted for ad-hoc processes
that are not registered as schemes; factory sweeps always run serially and
uncached (an arbitrary closure can be neither pickled nor content-addressed).
(The :mod:`repro.api` import happens lazily inside the run methods:
``repro.api`` itself builds on this package, and deferring the import keeps
the layers acyclic.)
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from os import PathLike
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence

from .rng import SeedTree

from ..core.types import AllocationResult
from .results import ResultTable
from .runner import ExperimentOutcome, ExperimentRunner, MetricFunction

__all__ = ["SweepPoint", "ParameterSweep", "KDGridSweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One configuration in a sweep: arbitrary keyword parameters."""

    params: Mapping[str, object]

    @property
    def label(self) -> str:
        return ", ".join(f"{key}={value}" for key, value in sorted(self.params.items()))


@dataclass
class ParameterSweep:
    """A sweep over the Cartesian product of parameter values.

    Parameters
    ----------
    grid:
        Mapping from parameter name to the list of values to sweep.
    scheme:
        Name of a registered :mod:`repro.api` scheme; each grid point becomes
        a :class:`~repro.api.SchemeSpec` with the point's parameters.  Either
        ``scheme`` or ``factory`` must be given.
    factory:
        Legacy alternative: a callable ``(params, seed) -> AllocationResult``
        building one run by hand.
    filter_fn:
        Optional predicate on the parameter dict; points that fail are
        skipped (used e.g. to enforce ``k <= d`` in grid sweeps).
    param_map:
        Optional translation from grid-point parameters to scheme-runner
        parameters (e.g. ``{"n": ..., "m": ...}`` grids mapping onto
        ``n_bins``/``n_balls``).  Spec-driven sweeps only.
    policy, engine:
        Forwarded to every generated spec (spec-driven sweeps only).
    """

    grid: Mapping[str, Sequence[object]]
    factory: Optional[Callable[[Mapping[str, object], int], AllocationResult]] = None
    filter_fn: Optional[Callable[[Mapping[str, object]], bool]] = None
    scheme: Optional[str] = None
    param_map: Optional[Callable[[Mapping[str, object]], Mapping[str, object]]] = None
    policy: Optional[str] = None
    engine: str = "auto"

    def __post_init__(self) -> None:
        if (self.factory is None) == (self.scheme is None):
            raise ValueError("provide exactly one of 'scheme' or 'factory'")

    def points(self) -> Iterator[SweepPoint]:
        """Iterate over the (filtered) grid points."""
        names = list(self.grid.keys())
        for values in itertools.product(*(self.grid[name] for name in names)):
            params = dict(zip(names, values))
            if self.filter_fn is not None and not self.filter_fn(params):
                continue
            yield SweepPoint(params=params)

    def spec_for(self, point: SweepPoint):
        """The :class:`~repro.api.SchemeSpec` a grid point materializes to."""
        from ..api import SchemeSpec  # deferred: repro.api builds on this package

        if self.scheme is None:
            raise ValueError("spec_for() requires a scheme-driven sweep")
        params = (
            dict(self.param_map(point.params))
            if self.param_map is not None
            else dict(point.params)
        )
        return SchemeSpec(
            scheme=self.scheme,
            params=params,
            policy=self.policy,
            engine=self.engine,
            label=point.label,
        )

    def _result_factory(self, point: SweepPoint):
        if self.factory is not None:
            return lambda s, p=point.params: self.factory(p, s)
        from ..api import simulate  # deferred import, see module docstring

        spec = self.spec_for(point)
        return lambda s, spec=spec: simulate(spec.with_seed(s))

    def run(
        self,
        trials: int = 10,
        seed: "int | None" = 0,
        metrics: Optional[Mapping[str, MetricFunction]] = None,
        n_jobs: Optional[int] = None,
        cache: "object | str | PathLike[str] | None" = None,
    ) -> List[tuple[SweepPoint, ExperimentOutcome]]:
        """Run every grid point ``trials`` times.

        ``n_jobs`` and ``cache`` forward to
        :func:`repro.api.simulate_trials` for spec-driven sweeps (results are
        identical for every setting); legacy factory sweeps ignore both and
        run serially.
        """
        if self.scheme is not None:
            # Deferred import, see module docstring.
            from ..api import simulate_trials
            from ..api.cache import as_result_store

            cache = as_result_store(cache)
            # One shared tree, points in order, ``trials`` seeds per point:
            # the exact derivation sequence ExperimentRunner produced, so
            # historical results are preserved seed for seed.
            tree = SeedTree(seed)
            return [
                (
                    point,
                    simulate_trials(
                        self.spec_for(point),
                        trials=trials,
                        seed_tree=tree,
                        metrics=metrics,
                        n_jobs=n_jobs,
                        cache=cache,
                    ),
                )
                for point in self.points()
            ]
        runner = ExperimentRunner(trials=trials, seed=seed, metrics=metrics)
        outcomes: List[tuple[SweepPoint, ExperimentOutcome]] = []
        for point in self.points():
            outcomes.append(
                (point, runner.run(self._result_factory(point), label=point.label))
            )
        return outcomes

    def run_table(
        self,
        trials: int = 10,
        seed: "int | None" = 0,
        metrics: Optional[Mapping[str, MetricFunction]] = None,
        title: str = "",
        n_jobs: Optional[int] = None,
        cache: "object | str | PathLike[str] | None" = None,
    ) -> ResultTable:
        """Run the sweep and flatten everything into a :class:`ResultTable`."""
        outcomes = self.run(
            trials=trials, seed=seed, metrics=metrics, n_jobs=n_jobs, cache=cache
        )
        columns: List[str] = []
        rows: List[Dict[str, object]] = []
        for point, outcome in outcomes:
            record: Dict[str, object] = dict(point.params)
            record.update(
                {k: v for k, v in outcome.record().items() if k not in ("label",)}
            )
            rows.append(record)
            for key in record:
                if key not in columns:
                    columns.append(key)
        table = ResultTable(columns=columns, title=title)
        table.extend(rows)
        return table


def _kd_param_map(params: Mapping[str, object]) -> Mapping[str, object]:
    """Translate the grid vocabulary (n, m, k, d) to kd_choice parameters."""
    return {
        "n_bins": int(params["n"]),
        "k": int(params["k"]),
        "d": int(params["d"]),
        "n_balls": int(params.get("m", params["n"])),
    }


@dataclass
class KDGridSweep:
    """A sweep over (k, d) pairs at fixed ``n`` (and optionally ``m``).

    Invalid combinations (``k > d``) are skipped, mirroring the dashes in
    Table 1.  Each valid cell executes as a ``kd_choice``
    :class:`~repro.api.SchemeSpec`; ``engine`` selects the scalar reference
    or the vectorized fast path ("auto" picks the fast one where exact).
    """

    n: int
    k_values: Sequence[int]
    d_values: Sequence[int]
    m: Optional[int] = None
    policy: str = "strict"
    engine: str = "auto"
    extra_filter: Optional[Callable[[int, int], bool]] = None
    _sweep: ParameterSweep = field(init=False, repr=False)

    def __post_init__(self) -> None:
        def allowed(params: Mapping[str, object]) -> bool:
            k, d = int(params["k"]), int(params["d"])
            if k > d:
                return False
            if self.extra_filter is not None and not self.extra_filter(k, d):
                return False
            return True

        self._sweep = ParameterSweep(
            grid={
                "n": [self.n],
                "m": [self.m if self.m is not None else self.n],
                "k": list(self.k_values),
                "d": list(self.d_values),
                "policy": [self.policy],
            },
            scheme="kd_choice",
            param_map=_kd_param_map,
            policy=self.policy,
            engine=self.engine,
            filter_fn=allowed,
        )

    def points(self) -> Iterator[SweepPoint]:
        return self._sweep.points()

    def specs(self):
        """The :class:`~repro.api.SchemeSpec` for every valid grid cell."""
        return [self._sweep.spec_for(point) for point in self.points()]

    def run(
        self, trials: int = 10, seed: "int | None" = 0, metrics=None,
        n_jobs: Optional[int] = None, cache=None,
    ):
        return self._sweep.run(
            trials=trials, seed=seed, metrics=metrics, n_jobs=n_jobs, cache=cache
        )

    def run_table(
        self, trials: int = 10, seed: "int | None" = 0, metrics=None, title="",
        n_jobs: Optional[int] = None, cache=None,
    ):
        return self._sweep.run_table(
            trials=trials, seed=seed, metrics=metrics, title=title,
            n_jobs=n_jobs, cache=cache,
        )
