"""Parameter sweeps over (k, d, n, m) grids.

A sweep is a declarative description of a family of configurations; running
it produces one :class:`~repro.simulation.runner.ExperimentOutcome` per
configuration plus a flat :class:`~repro.simulation.results.ResultTable`.
Table 1, the regime scaling experiment and the heavy-load experiment are all
expressed as sweeps.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence

from ..core.process import run_kd_choice
from ..core.types import AllocationResult
from .results import ResultTable
from .runner import ExperimentOutcome, ExperimentRunner, MetricFunction

__all__ = ["SweepPoint", "ParameterSweep", "KDGridSweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One configuration in a sweep: arbitrary keyword parameters."""

    params: Mapping[str, object]

    @property
    def label(self) -> str:
        return ", ".join(f"{key}={value}" for key, value in sorted(self.params.items()))


@dataclass
class ParameterSweep:
    """A generic sweep over the Cartesian product of parameter values.

    Parameters
    ----------
    grid:
        Mapping from parameter name to the list of values to sweep.
    factory:
        Callable ``(params, seed) -> AllocationResult`` building one run.
    filter_fn:
        Optional predicate on the parameter dict; points that fail are
        skipped (used e.g. to enforce ``k <= d`` in grid sweeps).
    """

    grid: Mapping[str, Sequence[object]]
    factory: Callable[[Mapping[str, object], int], AllocationResult]
    filter_fn: Optional[Callable[[Mapping[str, object]], bool]] = None

    def points(self) -> Iterator[SweepPoint]:
        """Iterate over the (filtered) grid points."""
        names = list(self.grid.keys())
        for values in itertools.product(*(self.grid[name] for name in names)):
            params = dict(zip(names, values))
            if self.filter_fn is not None and not self.filter_fn(params):
                continue
            yield SweepPoint(params=params)

    def run(
        self,
        trials: int = 10,
        seed: "int | None" = 0,
        metrics: Optional[Mapping[str, MetricFunction]] = None,
    ) -> List[tuple[SweepPoint, ExperimentOutcome]]:
        """Run every grid point ``trials`` times."""
        runner = ExperimentRunner(trials=trials, seed=seed, metrics=metrics)
        outcomes: List[tuple[SweepPoint, ExperimentOutcome]] = []
        for point in self.points():
            factory = lambda s, p=point.params: self.factory(p, s)  # noqa: E731
            outcomes.append((point, runner.run(factory, label=point.label)))
        return outcomes

    def run_table(
        self,
        trials: int = 10,
        seed: "int | None" = 0,
        metrics: Optional[Mapping[str, MetricFunction]] = None,
        title: str = "",
    ) -> ResultTable:
        """Run the sweep and flatten everything into a :class:`ResultTable`."""
        outcomes = self.run(trials=trials, seed=seed, metrics=metrics)
        columns: List[str] = []
        rows: List[Dict[str, object]] = []
        for point, outcome in outcomes:
            record: Dict[str, object] = dict(point.params)
            record.update(
                {k: v for k, v in outcome.record().items() if k not in ("label",)}
            )
            rows.append(record)
            for key in record:
                if key not in columns:
                    columns.append(key)
        table = ResultTable(columns=columns, title=title)
        table.extend(rows)
        return table


def _kd_factory(params: Mapping[str, object], seed: int) -> AllocationResult:
    return run_kd_choice(
        n_bins=int(params["n"]),
        k=int(params["k"]),
        d=int(params["d"]),
        n_balls=int(params.get("m", params["n"])),
        policy=str(params.get("policy", "strict")),
        seed=seed,
    )


@dataclass
class KDGridSweep:
    """A sweep over (k, d) pairs at fixed ``n`` (and optionally ``m``).

    Invalid combinations (``k > d``) are skipped, mirroring the dashes in
    Table 1.
    """

    n: int
    k_values: Sequence[int]
    d_values: Sequence[int]
    m: Optional[int] = None
    policy: str = "strict"
    extra_filter: Optional[Callable[[int, int], bool]] = None
    _sweep: ParameterSweep = field(init=False, repr=False)

    def __post_init__(self) -> None:
        def allowed(params: Mapping[str, object]) -> bool:
            k, d = int(params["k"]), int(params["d"])
            if k > d:
                return False
            if self.extra_filter is not None and not self.extra_filter(k, d):
                return False
            return True

        self._sweep = ParameterSweep(
            grid={
                "n": [self.n],
                "m": [self.m if self.m is not None else self.n],
                "k": list(self.k_values),
                "d": list(self.d_values),
                "policy": [self.policy],
            },
            factory=_kd_factory,
            filter_fn=allowed,
        )

    def points(self) -> Iterator[SweepPoint]:
        return self._sweep.points()

    def run(self, trials: int = 10, seed: "int | None" = 0, metrics=None):
        return self._sweep.run(trials=trials, seed=seed, metrics=metrics)

    def run_table(self, trials: int = 10, seed: "int | None" = 0, metrics=None, title=""):
        return self._sweep.run_table(trials=trials, seed=seed, metrics=metrics, title=title)
