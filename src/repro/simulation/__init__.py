"""Simulation infrastructure: seeding, trial runners, sweeps, workloads."""

from .plotting import horizontal_bar_chart, profile_chart, sparkline
from .results import GridTable, ResultTable
from .rng import SeedTree, derive_seeds, make_generator, spawn_generators
from .runner import ExperimentOutcome, ExperimentRunner, TrialOutcome, run_trials
from .sweep import KDGridSweep, ParameterSweep, SweepPoint
from .workloads import (
    BallBatchStream,
    FileSpec,
    JobSpec,
    JobTrace,
    JobTraceArrays,
    file_population,
    job_trace_arrays,
    poisson_job_trace,
    worker_speeds,
    zipf_weights,
)

__all__ = [
    "SeedTree",
    "make_generator",
    "spawn_generators",
    "derive_seeds",
    "ExperimentRunner",
    "ExperimentOutcome",
    "TrialOutcome",
    "run_trials",
    "ParameterSweep",
    "KDGridSweep",
    "SweepPoint",
    "ResultTable",
    "GridTable",
    "horizontal_bar_chart",
    "sparkline",
    "profile_chart",
    "BallBatchStream",
    "JobSpec",
    "JobTrace",
    "JobTraceArrays",
    "poisson_job_trace",
    "job_trace_arrays",
    "worker_speeds",
    "FileSpec",
    "file_population",
    "zipf_weights",
]
