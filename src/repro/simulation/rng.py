"""Deterministic randomness management.

Every stochastic entry point in the library accepts either an integer seed or
a :class:`numpy.random.Generator`.  Experiments that run many independent
trials need *independent* streams that are still reproducible from a single
root seed; :class:`SeedTree` provides that by spawning
:class:`numpy.random.SeedSequence` children, following NumPy's recommended
practice for parallel and repeated stochastic simulations.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

import numpy as np

__all__ = ["SeedTree", "make_generator", "spawn_generators", "derive_seeds"]


def make_generator(
    seed: "int | np.random.SeedSequence | np.random.Generator | None" = None,
) -> np.random.Generator:
    """Create (or pass through) a :class:`numpy.random.Generator`."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(
    seed: "int | np.random.SeedSequence | None", count: int
) -> List[np.random.Generator]:
    """Spawn ``count`` independent generators from one root seed."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(count)]


def derive_seeds(seed: "int | np.random.SeedSequence | None", count: int) -> List[int]:
    """Derive ``count`` independent 32-bit integer seeds from a root seed.

    Useful when a callable only accepts plain integer seeds (e.g. the
    ``ProcessRunner`` interface of :mod:`repro.analysis.majorization`).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [int(child.generate_state(1, dtype=np.uint32)[0]) for child in root.spawn(count)]


class SeedTree:
    """A reproducible tree of random-number generators.

    A :class:`SeedTree` is created from a single root seed.  Each call to
    :meth:`child` or :meth:`generator` derives a fresh, independent stream;
    the sequence of derivations is deterministic, so re-running an experiment
    with the same root seed reproduces every trial exactly.

    Examples
    --------
    >>> tree = SeedTree(42)
    >>> g1 = tree.generator()
    >>> g2 = tree.generator()
    >>> float(g1.random()) != float(g2.random())
    True
    """

    def __init__(self, seed: "int | np.random.SeedSequence | None" = None) -> None:
        self._root = (
            seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
        )
        self._spawned = 0

    @property
    def root_entropy(self) -> Sequence[int]:
        """The root entropy (useful for logging an experiment's provenance)."""
        entropy = self._root.entropy
        if isinstance(entropy, (list, tuple)):
            return tuple(int(e) for e in entropy)
        return (int(entropy),) if entropy is not None else ()

    @property
    def children_spawned(self) -> int:
        """How many child streams have been derived so far."""
        return self._spawned

    def child(self) -> np.random.SeedSequence:
        """Derive the next child :class:`~numpy.random.SeedSequence`."""
        child = self._root.spawn(1)[0]
        self._spawned += 1
        return child

    def generator(self) -> np.random.Generator:
        """Derive the next child and wrap it in a generator."""
        return np.random.default_rng(self.child())

    def generators(self, count: int) -> List[np.random.Generator]:
        """Derive ``count`` generators at once."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        children = self._root.spawn(count)
        self._spawned += count
        return [np.random.default_rng(child) for child in children]

    def integer_seed(self) -> int:
        """Derive the next child and collapse it to a 32-bit integer seed."""
        return int(self.child().generate_state(1, dtype=np.uint32)[0])

    def integer_seeds(self, count: int) -> List[int]:
        """Derive ``count`` integer seeds.

        ``count`` must be positive: a trial fan-out asking for zero (or a
        negative number of) seeds is a misconfiguration, and silently
        returning ``[]`` would produce an empty experiment outcome instead of
        an error at the source.
        """
        if count < 1:
            raise ValueError(
                f"integer_seeds() requires a positive count, got {count}; "
                f"a trial fan-out with no trials is a misconfiguration"
            )
        return [self.integer_seed() for _ in range(count)]

    def stream(self) -> Iterator[np.random.Generator]:
        """An endless iterator of fresh generators."""
        while True:
            yield self.generator()
