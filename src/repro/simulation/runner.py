"""Experiment runner: repeated trials of an allocation process.

The paper's Table 1 reports the maximum load observed over ten independent
runs per parameter combination.  :class:`ExperimentRunner` generalizes that
pattern: it runs any ``seed -> AllocationResult`` callable a fixed number of
times with independent seeds from a :class:`~repro.simulation.rng.SeedTree`
and aggregates whatever scalar metrics the caller asks for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..core.types import AllocationResult
from ..analysis.statistics import TrialStatistics, observed_value_set, trial_statistics
from .rng import SeedTree

__all__ = ["TrialOutcome", "ExperimentOutcome", "ExperimentRunner", "run_trials"]

ResultFactory = Callable[[int], AllocationResult]
MetricFunction = Callable[[AllocationResult], float]

_DEFAULT_METRICS: Dict[str, MetricFunction] = {
    "max_load": lambda result: float(result.max_load),
    "gap": lambda result: float(result.gap),
    "messages": lambda result: float(result.messages),
}


@dataclass(frozen=True)
class TrialOutcome:
    """A single trial: the seed used and the metrics extracted."""

    seed: int
    metrics: Mapping[str, float]


@dataclass
class ExperimentOutcome:
    """Aggregated outcome of repeated trials of one configuration.

    Attributes
    ----------
    label:
        Human-readable configuration label.
    trials:
        Per-trial outcomes, in execution order.
    """

    label: str
    trials: List[TrialOutcome] = field(default_factory=list)

    def metric_values(self, name: str) -> List[float]:
        """All observed values of one metric."""
        return [trial.metrics[name] for trial in self.trials]

    def statistics(self, name: str) -> TrialStatistics:
        """Summary statistics of one metric."""
        return trial_statistics(self.metric_values(name))

    def observed_set(self, name: str) -> List[int]:
        """Distinct integer outcomes of a metric (Table-1 presentation)."""
        return observed_value_set(self.metric_values(name))

    def record(self) -> Dict[str, object]:
        """Flat record with ``<metric>_mean`` / ``_min`` / ``_max`` columns."""
        record: Dict[str, object] = {"label": self.label, "trials": len(self.trials)}
        if not self.trials:
            return record
        for name in self.trials[0].metrics:
            stats = self.statistics(name)
            record[f"{name}_mean"] = stats.mean
            record[f"{name}_min"] = stats.minimum
            record[f"{name}_max"] = stats.maximum
        return record


class ExperimentRunner:
    """Run a configuration repeatedly with independent, reproducible seeds.

    Parameters
    ----------
    trials:
        Number of independent runs per configuration (the paper uses 10).
    seed:
        Root seed for the experiment; every configuration and trial derives
        its own stream from it.
    metrics:
        Mapping from metric name to a function of the
        :class:`AllocationResult`.  Defaults to max load, gap and messages.
    """

    def __init__(
        self,
        trials: int = 10,
        seed: "int | None" = 0,
        metrics: Optional[Mapping[str, MetricFunction]] = None,
    ) -> None:
        if trials <= 0:
            raise ValueError(f"trials must be positive, got {trials}")
        self.trials = trials
        self.seed_tree = SeedTree(seed)
        self.metrics: Dict[str, MetricFunction] = dict(metrics or _DEFAULT_METRICS)

    def run(self, factory: ResultFactory, label: str = "") -> ExperimentOutcome:
        """Run ``factory`` ``trials`` times and aggregate the metrics."""
        outcome = ExperimentOutcome(label=label)
        for seed in self.seed_tree.integer_seeds(self.trials):
            result = factory(seed)
            metrics = {name: fn(result) for name, fn in self.metrics.items()}
            outcome.trials.append(TrialOutcome(seed=seed, metrics=metrics))
        return outcome

    def run_many(
        self, factories: Mapping[str, ResultFactory]
    ) -> Dict[str, ExperimentOutcome]:
        """Run several labelled configurations."""
        return {label: self.run(factory, label) for label, factory in factories.items()}


def run_trials(
    factory: ResultFactory,
    trials: int = 10,
    seed: "int | None" = 0,
    metric: MetricFunction = lambda result: float(result.max_load),
) -> List[float]:
    """Convenience helper: repeated runs, returning one metric per trial."""
    runner = ExperimentRunner(trials=trials, seed=seed, metrics={"value": metric})
    outcome = runner.run(factory)
    return outcome.metric_values("value")
