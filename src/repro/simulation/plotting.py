"""Dependency-free ASCII plotting for terminal reports.

The paper's figures are simple one-dimensional sketches (sorted load
profiles); rather than pulling in a plotting stack, the experiment recipes
and examples render them as ASCII charts.  Three primitives are provided:

* :func:`horizontal_bar_chart` — labelled horizontal bars (scheme comparisons),
* :func:`sparkline` — a one-line trend (gap over time in the churn model),
* :func:`profile_chart` — a log-rank rendering of a sorted load profile
  (the Figure 1 / Figure 2 shape).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence, Tuple

import numpy as np

__all__ = ["horizontal_bar_chart", "sparkline", "profile_chart"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def horizontal_bar_chart(
    values: Mapping[str, float],
    width: int = 40,
    fill: str = "█",
    value_format: str = "{:.2f}",
) -> str:
    """Render labelled values as horizontal bars scaled to ``width`` columns."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    if not values:
        return ""
    label_width = max(len(str(label)) for label in values)
    maximum = max(values.values())
    scale = width / maximum if maximum > 0 else 0.0
    lines = []
    for label, value in values.items():
        bar = fill * max(int(round(value * scale)), 1 if value > 0 else 0)
        lines.append(
            f"{str(label).ljust(label_width)}  {bar.ljust(width)}  "
            + value_format.format(value)
        )
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """Render a sequence of values as a one-line unicode sparkline."""
    data = list(values)
    if not data:
        return ""
    low, high = min(data), max(data)
    if high == low:
        return _SPARK_LEVELS[0] * len(data)
    span = high - low
    chars = []
    for value in data:
        index = int((value - low) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[index])
    return "".join(chars)


def profile_chart(
    profile_points: Iterable[Tuple[int, int]],
    width: int = 50,
    marker: str = "*",
) -> str:
    """Render (rank, load) points of a sorted load profile.

    Ranks are laid out on a logarithmic horizontal axis (the interesting part
    of the profile is its head); the load value determines the marker's
    column label.
    """
    points = sorted(profile_points)
    if not points:
        return ""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    max_rank = points[-1][0]
    max_load = max(load for _, load in points)
    lines = [f"load (max {max_load}) by rank (log scale, up to {max_rank}):"]
    log_max = np.log10(max(max_rank, 2))
    for rank, load in points:
        column = int(round(np.log10(max(rank, 1)) / log_max * (width - 1))) if log_max else 0
        bar = " " * column + marker
        lines.append(f"rank {rank:>8}  {bar}  load={load}")
    return "\n".join(lines)
