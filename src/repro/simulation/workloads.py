"""Workload generators.

Three kinds of workload are used across the experiments and substrates:

* **Ball batches** for the core allocation processes — including the
  heavily loaded streams of Theorem 2 where the number of balls is a multiple
  of the number of bins.
* **Job traces** for the cluster-scheduling substrate — Poisson arrivals of
  jobs, each consisting of ``k`` parallel tasks with a chosen service-time
  distribution (the Sparrow-style workload the paper's Section 1.3 cites).
* **File populations** for the distributed-storage substrate — files with a
  replication factor or chunk count and optionally skewed (Zipf) sizes and
  access popularity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

import numpy as np

from .rng import make_generator

__all__ = [
    "BallBatchStream",
    "JobSpec",
    "JobTrace",
    "poisson_job_trace",
    "FileSpec",
    "file_population",
    "zipf_weights",
]


@dataclass
class BallBatchStream:
    """A stream of ball batches of size ``k`` totalling ``n_balls`` balls.

    This formalizes the paper's round structure (``n/k`` rounds of ``k``
    balls) as an iterable workload so experiment code can treat lightly and
    heavily loaded runs uniformly.
    """

    n_balls: int
    k: int

    def __post_init__(self) -> None:
        if self.n_balls < 0:
            raise ValueError(f"n_balls must be non-negative, got {self.n_balls}")
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")

    @property
    def rounds(self) -> int:
        """Number of batches (the final one may be smaller than ``k``)."""
        return -(-self.n_balls // self.k)

    def batch_sizes(self) -> Iterator[int]:
        """Yield the size of each batch in order."""
        remaining = self.n_balls
        while remaining > 0:
            batch = min(self.k, remaining)
            yield batch
            remaining -= batch


# ----------------------------------------------------------------------
# Cluster-scheduling workload
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JobSpec:
    """A parallel job: ``len(task_durations)`` tasks arriving together.

    Attributes
    ----------
    job_id:
        Sequential identifier.
    arrival_time:
        Simulation time at which the job (and all of its tasks) arrives.
    task_durations:
        Service time of each task on a worker.
    """

    job_id: int
    arrival_time: float
    task_durations: "tuple[float, ...]"

    @property
    def tasks_per_job(self) -> int:
        return len(self.task_durations)

    @property
    def total_work(self) -> float:
        return float(sum(self.task_durations))


@dataclass
class JobTrace:
    """An ordered collection of jobs plus the parameters that generated it."""

    jobs: List[JobSpec]
    arrival_rate: float
    tasks_per_job: int
    mean_task_duration: float

    def __iter__(self) -> Iterator[JobSpec]:
        return iter(self.jobs)

    def __len__(self) -> int:
        return len(self.jobs)

    @property
    def total_tasks(self) -> int:
        return sum(job.tasks_per_job for job in self.jobs)

    @property
    def makespan_lower_bound(self) -> float:
        """Total work divided by infinite parallelism — a sanity anchor."""
        if not self.jobs:
            return 0.0
        return max(job.arrival_time for job in self.jobs)


def poisson_job_trace(
    n_jobs: int,
    arrival_rate: float,
    tasks_per_job: int,
    mean_task_duration: float = 1.0,
    duration_distribution: str = "exponential",
    seed: "int | None" = None,
    rng: Optional[np.random.Generator] = None,
) -> JobTrace:
    """Generate a Poisson job-arrival trace (Sparrow-style workload).

    Parameters
    ----------
    n_jobs:
        Number of jobs to generate.
    arrival_rate:
        Expected number of job arrivals per unit time (``λ``).
    tasks_per_job:
        Parallelism ``k`` of every job.
    mean_task_duration:
        Mean service time of a task.
    duration_distribution:
        "exponential", "uniform" (0.5–1.5 × mean) or "constant".
    """
    if n_jobs < 0:
        raise ValueError(f"n_jobs must be non-negative, got {n_jobs}")
    if arrival_rate <= 0:
        raise ValueError(f"arrival_rate must be positive, got {arrival_rate}")
    if tasks_per_job <= 0:
        raise ValueError(f"tasks_per_job must be positive, got {tasks_per_job}")
    if mean_task_duration <= 0:
        raise ValueError(
            f"mean_task_duration must be positive, got {mean_task_duration}"
        )
    generator = rng if rng is not None else make_generator(seed)

    inter_arrivals = generator.exponential(1.0 / arrival_rate, size=n_jobs)
    arrival_times = np.cumsum(inter_arrivals)

    if duration_distribution == "exponential":
        durations = generator.exponential(
            mean_task_duration, size=(n_jobs, tasks_per_job)
        )
    elif duration_distribution == "uniform":
        durations = generator.uniform(
            0.5 * mean_task_duration, 1.5 * mean_task_duration, size=(n_jobs, tasks_per_job)
        )
    elif duration_distribution == "constant":
        durations = np.full((n_jobs, tasks_per_job), mean_task_duration)
    else:
        raise ValueError(
            "duration_distribution must be 'exponential', 'uniform' or 'constant', "
            f"got {duration_distribution!r}"
        )

    jobs = [
        JobSpec(
            job_id=i,
            arrival_time=float(arrival_times[i]),
            task_durations=tuple(float(x) for x in durations[i]),
        )
        for i in range(n_jobs)
    ]
    return JobTrace(
        jobs=jobs,
        arrival_rate=arrival_rate,
        tasks_per_job=tasks_per_job,
        mean_task_duration=mean_task_duration,
    )


# ----------------------------------------------------------------------
# Distributed-storage workload
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FileSpec:
    """A file to be stored: ``replicas`` copies (or chunks) of ``size`` units."""

    file_id: int
    replicas: int
    size: float = 1.0
    popularity: float = 1.0


def zipf_weights(count: int, exponent: float = 1.0) -> np.ndarray:
    """Normalized Zipf popularity weights for ``count`` items."""
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if exponent < 0:
        raise ValueError(f"exponent must be non-negative, got {exponent}")
    ranks = np.arange(1, count + 1, dtype=float)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def file_population(
    n_files: int,
    replicas: int,
    size_distribution: str = "constant",
    mean_size: float = 1.0,
    popularity_exponent: float = 0.0,
    seed: "int | None" = None,
    rng: Optional[np.random.Generator] = None,
) -> List[FileSpec]:
    """Generate a population of files for the storage experiments.

    ``size_distribution`` may be "constant", "exponential" or "lognormal".
    ``popularity_exponent`` > 0 gives Zipf-skewed access popularity.
    """
    if n_files < 0:
        raise ValueError(f"n_files must be non-negative, got {n_files}")
    if replicas <= 0:
        raise ValueError(f"replicas must be positive, got {replicas}")
    generator = rng if rng is not None else make_generator(seed)

    if size_distribution == "constant":
        sizes = np.full(n_files, mean_size)
    elif size_distribution == "exponential":
        sizes = generator.exponential(mean_size, size=n_files)
    elif size_distribution == "lognormal":
        sigma = 1.0
        mu = math.log(mean_size) - sigma ** 2 / 2.0
        sizes = generator.lognormal(mu, sigma, size=n_files)
    else:
        raise ValueError(
            "size_distribution must be 'constant', 'exponential' or 'lognormal', "
            f"got {size_distribution!r}"
        )

    if popularity_exponent > 0 and n_files > 0:
        popularity = zipf_weights(n_files, popularity_exponent)
    else:
        popularity = np.full(n_files, 1.0 / max(n_files, 1))

    return [
        FileSpec(
            file_id=i,
            replicas=replicas,
            size=float(sizes[i]),
            popularity=float(popularity[i]),
        )
        for i in range(n_files)
    ]
