"""Workload generators and the substrate scenario library.

Three kinds of workload are used across the experiments and substrates:

* **Ball batches** for the core allocation processes — including the
  heavily loaded streams of Theorem 2 where the number of balls is a multiple
  of the number of bins.
* **Job traces** for the cluster-scheduling substrate — Poisson or bursty
  (MMPP) arrivals of jobs, each consisting of ``k`` parallel tasks with a
  chosen service-time distribution (exponential, uniform, constant,
  heavy-tailed Pareto/lognormal, or a custom sampler) — the Sparrow-style
  workload the paper's Section 1.3 cites, plus the stress scenarios around
  it.
* **File populations** for the distributed-storage substrate — files with a
  replication factor or chunk count and optionally skewed (Zipf) sizes and
  access popularity.

Job traces exist in two physically different but statistically identical
forms: :class:`JobTrace` (a list of :class:`JobSpec` objects, consumed by the
reference simulator) and :class:`JobTraceArrays` (flat NumPy arrays, consumed
by the fast event core).  :func:`job_trace_arrays` draws the *same* random
variates as :func:`poisson_job_trace`, so the two representations of one seed
describe the same workload value for value.

Every service-time and inter-arrival sampler output is validated at this
boundary: a sampler that produces a zero or negative duration would schedule
a task finish at or before its arrival tick, so such draws are rejected here
with a clear error instead of corrupting the event order downstream.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Sequence, Union

import numpy as np

from .rng import make_generator

__all__ = [
    "BallBatchStream",
    "JobSpec",
    "JobTrace",
    "JobTraceArrays",
    "DURATION_DISTRIBUTIONS",
    "ARRIVAL_PROCESSES",
    "poisson_job_trace",
    "job_trace_arrays",
    "sample_arrival_times",
    "worker_speeds",
    "FileSpec",
    "file_population",
    "file_sizes",
    "zipf_weights",
    "workload_events",
]


@dataclass
class BallBatchStream:
    """A stream of ball batches of size ``k`` totalling ``n_balls`` balls.

    This formalizes the paper's round structure (``n/k`` rounds of ``k``
    balls) as an iterable workload so experiment code can treat lightly and
    heavily loaded runs uniformly.
    """

    n_balls: int
    k: int

    def __post_init__(self) -> None:
        if self.n_balls < 0:
            raise ValueError(f"n_balls must be non-negative, got {self.n_balls}")
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")

    @property
    def rounds(self) -> int:
        """Number of batches (the final one may be smaller than ``k``)."""
        return -(-self.n_balls // self.k)

    def batch_sizes(self) -> Iterator[int]:
        """Yield the size of each batch in order."""
        remaining = self.n_balls
        while remaining > 0:
            batch = min(self.k, remaining)
            yield batch
            remaining -= batch


# ----------------------------------------------------------------------
# Cluster-scheduling workload
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JobSpec:
    """A parallel job: ``len(task_durations)`` tasks arriving together.

    Attributes
    ----------
    job_id:
        Sequential identifier.
    arrival_time:
        Simulation time at which the job (and all of its tasks) arrives.
    task_durations:
        Service time of each task on a worker.
    """

    job_id: int
    arrival_time: float
    task_durations: "tuple[float, ...]"

    def __post_init__(self) -> None:
        # A job with no tasks has no completion time (and the fast engine's
        # grouped aggregation relies on non-empty task slices), so reject it
        # at construction rather than corrupting a report downstream.
        if len(self.task_durations) == 0:
            raise ValueError(
                f"job {self.job_id} has no tasks; every job needs at least "
                f"one task duration"
            )
        if self.arrival_time < 0:
            raise ValueError(
                f"job {self.job_id} has a negative arrival time "
                f"({self.arrival_time})"
            )

    @property
    def tasks_per_job(self) -> int:
        return len(self.task_durations)

    @property
    def total_work(self) -> float:
        return float(sum(self.task_durations))


@dataclass
class JobTrace:
    """An ordered collection of jobs plus the parameters that generated it."""

    jobs: List[JobSpec]
    arrival_rate: float
    tasks_per_job: int
    mean_task_duration: float

    def __iter__(self) -> Iterator[JobSpec]:
        return iter(self.jobs)

    def __len__(self) -> int:
        return len(self.jobs)

    @property
    def total_tasks(self) -> int:
        return sum(job.tasks_per_job for job in self.jobs)

    @property
    def makespan_lower_bound(self) -> float:
        """Total work divided by infinite parallelism — a sanity anchor."""
        if not self.jobs:
            return 0.0
        return max(job.arrival_time for job in self.jobs)


@dataclass
class JobTraceArrays:
    """A job trace as flat arrays — the fast event core's native input.

    Same content as a :class:`JobTrace` (``arrival_times[i]`` and
    ``durations[i]`` describe job ``i``) without the per-job
    :class:`JobSpec` objects, so million-task traces stay cheap to build
    and iterate.
    """

    arrival_times: np.ndarray  # (n_jobs,) float64, non-decreasing
    durations: np.ndarray      # (n_jobs, tasks_per_job) float64, > 0
    arrival_rate: float
    mean_task_duration: float

    def __post_init__(self) -> None:
        self.arrival_times = np.ascontiguousarray(self.arrival_times, dtype=float)
        self.durations = np.ascontiguousarray(self.durations, dtype=float)
        if self.durations.ndim != 2 or self.durations.shape[0] != self.arrival_times.shape[0]:
            raise ValueError(
                f"durations must be (n_jobs, tasks_per_job), got shape "
                f"{self.durations.shape} for {self.arrival_times.shape[0]} jobs"
            )
        if self.durations.shape[0] and self.durations.shape[1] == 0:
            raise ValueError("every job needs at least one task duration")
        _validate_durations(self.durations, "durations")

    def __len__(self) -> int:
        return int(self.arrival_times.shape[0])

    @property
    def tasks_per_job(self) -> int:
        return int(self.durations.shape[1])

    @property
    def total_tasks(self) -> int:
        return int(self.durations.size)

    def to_trace(self) -> JobTrace:
        """Materialize the equivalent object trace (reference simulator)."""
        jobs = [
            JobSpec(
                job_id=i,
                arrival_time=float(self.arrival_times[i]),
                task_durations=tuple(float(x) for x in self.durations[i]),
            )
            for i in range(len(self))
        ]
        return JobTrace(
            jobs=jobs,
            arrival_rate=self.arrival_rate,
            tasks_per_job=self.tasks_per_job,
            mean_task_duration=self.mean_task_duration,
        )


#: Service-time distributions understood by the trace generators.  Values are
#: samplers ``(rng, mean, shape_param, size) -> ndarray``.
DURATION_DISTRIBUTIONS = ("exponential", "uniform", "constant", "pareto", "lognormal")

#: Arrival processes understood by the trace generators.
ARRIVAL_PROCESSES = ("poisson", "mmpp")

#: A custom service-time sampler: ``(rng, size) -> array of durations``.
DurationSampler = Callable[[np.random.Generator, "tuple[int, int]"], np.ndarray]


def _validate_durations(durations: np.ndarray, source: str) -> None:
    """Reject non-positive or non-finite service times at the boundary.

    A task whose sampled duration is zero or negative would finish at (or
    before) its own arrival tick — the event queue would either reject the
    event or silently reorder history — so the workload layer refuses to
    emit such a trace.
    """
    if durations.size == 0:
        return
    if not np.all(np.isfinite(durations)):
        raise ValueError(
            f"service-time sampler {source!r} produced non-finite durations; "
            f"every task duration must be a finite positive number"
        )
    smallest = float(durations.min())
    if smallest <= 0.0:
        raise ValueError(
            f"service-time sampler {source!r} produced a non-positive duration "
            f"({smallest!r}); a task cannot finish at or before its arrival "
            f"tick, so samplers must draw strictly positive service times"
        )


def _sample_durations(
    generator: np.random.Generator,
    n_jobs: int,
    tasks_per_job: int,
    mean: float,
    distribution: "str | DurationSampler",
    shape: float,
) -> np.ndarray:
    """Draw the (n_jobs, tasks_per_job) service-time matrix and validate it."""
    size = (n_jobs, tasks_per_job)
    if callable(distribution):
        durations = np.asarray(distribution(generator, size), dtype=float)
        if durations.shape != size:
            raise ValueError(
                f"custom duration sampler returned shape {durations.shape}, "
                f"expected {size}"
            )
        _validate_durations(durations, getattr(distribution, "__name__", "custom"))
        return durations
    if distribution == "exponential":
        durations = generator.exponential(mean, size=size)
    elif distribution == "uniform":
        durations = generator.uniform(0.5 * mean, 1.5 * mean, size=size)
    elif distribution == "constant":
        durations = np.full(size, mean)
    elif distribution == "pareto":
        # Classical Pareto(x_m, a) with x_m chosen so the mean is ``mean``;
        # shape a must exceed 1 for the mean to exist.
        if shape <= 1.0:
            raise ValueError(
                f"pareto service times need shape > 1 (finite mean), got {shape}"
            )
        x_m = mean * (shape - 1.0) / shape
        durations = x_m * (1.0 + generator.pareto(shape, size=size))
    elif distribution == "lognormal":
        # shape is the log-space sigma; mu is set so the mean is ``mean``.
        if shape <= 0.0:
            raise ValueError(
                f"lognormal service times need shape (sigma) > 0, got {shape}"
            )
        mu = math.log(mean) - shape ** 2 / 2.0
        durations = generator.lognormal(mu, shape, size=size)
    else:
        raise ValueError(
            f"duration_distribution must be one of {DURATION_DISTRIBUTIONS} "
            f"or a callable sampler, got {distribution!r}"
        )
    _validate_durations(durations, str(distribution))
    return durations


def _sample_arrivals(
    generator: np.random.Generator,
    n_jobs: int,
    arrival_rate: float,
    process: str,
    burstiness: float,
    switch_prob: float,
) -> np.ndarray:
    """Draw the (sorted) arrival-time vector for ``n_jobs`` jobs."""
    if process == "poisson":
        inter_arrivals = generator.exponential(1.0 / arrival_rate, size=n_jobs)
    elif process == "mmpp":
        # Two-state Markov-modulated Poisson process: a burst state and a
        # quiet state whose rates differ by a factor of ``burstiness**2``;
        # after every arrival the state flips with probability
        # ``switch_prob``.  The symmetric flips spend the same *number of
        # arrivals* in each state, so the long-run mean rate is the harmonic
        # mean of the two state rates; the ``correction`` factor rescales
        # both so that harmonic mean is exactly ``arrival_rate`` —
        # ``E[inter] = (1/(2*c*rate)) * (1/b + b) = 1/rate`` for
        # ``c = (1 + b^2) / (2b)``.
        if burstiness < 1.0:
            raise ValueError(f"burstiness must be >= 1, got {burstiness}")
        if not 0.0 < switch_prob <= 1.0:
            raise ValueError(f"switch_prob must be in (0, 1], got {switch_prob}")
        correction = (1.0 + burstiness ** 2) / (2.0 * burstiness)
        hot_rate = arrival_rate * burstiness * correction
        quiet_rate = arrival_rate / burstiness * correction
        draws = generator.exponential(1.0, size=n_jobs)
        flips = generator.random(size=n_jobs) < switch_prob
        inter_arrivals = np.empty(n_jobs)
        hot = True
        for i in range(n_jobs):
            inter_arrivals[i] = draws[i] / (hot_rate if hot else quiet_rate)
            if flips[i]:
                hot = not hot
    else:
        raise ValueError(
            f"arrival_process must be one of {ARRIVAL_PROCESSES}, got {process!r}"
        )
    return np.cumsum(inter_arrivals)


def sample_arrival_times(
    n_events: int,
    arrival_rate: float = 1.0,
    arrival_process: str = "poisson",
    burstiness: float = 4.0,
    switch_prob: float = 0.1,
    seed: "int | np.random.Generator | None" = None,
) -> np.ndarray:
    """Sorted arrival timestamps for ``n_events`` requests.

    The public workload-to-stream bridge: the same Poisson / bursty-MMPP
    arrival samplers that drive the cluster substrate's job traces, exposed
    so the online trace tooling (:mod:`repro.online.trace`) can stamp
    streaming placement requests with realistic arrival times.
    """
    if n_events < 0:
        raise ValueError(f"n_events must be non-negative, got {n_events}")
    if arrival_rate <= 0:
        raise ValueError(f"arrival_rate must be positive, got {arrival_rate}")
    generator = make_generator(seed)
    return _sample_arrivals(
        generator, n_events, arrival_rate, arrival_process, burstiness,
        switch_prob,
    )


def _validate_trace_request(
    n_jobs: int, arrival_rate: float, tasks_per_job: int, mean_task_duration: float
) -> None:
    if n_jobs < 0:
        raise ValueError(f"n_jobs must be non-negative, got {n_jobs}")
    if arrival_rate <= 0:
        raise ValueError(f"arrival_rate must be positive, got {arrival_rate}")
    if tasks_per_job <= 0:
        raise ValueError(f"tasks_per_job must be positive, got {tasks_per_job}")
    if mean_task_duration <= 0:
        raise ValueError(
            f"mean_task_duration must be positive, got {mean_task_duration}"
        )


def job_trace_arrays(
    n_jobs: int,
    arrival_rate: float,
    tasks_per_job: int,
    mean_task_duration: float = 1.0,
    duration_distribution: "str | DurationSampler" = "exponential",
    duration_shape: float = 2.5,
    arrival_process: str = "poisson",
    burstiness: float = 4.0,
    switch_prob: float = 0.1,
    seed: "int | None" = None,
    rng: Optional[np.random.Generator] = None,
) -> JobTraceArrays:
    """Generate a job trace as flat arrays (batched arrival generation).

    Draws the same random variates as :func:`poisson_job_trace` for the same
    generator state, so the array trace and the object trace of one seed
    describe the identical workload.

    Parameters
    ----------
    n_jobs, arrival_rate, tasks_per_job, mean_task_duration:
        As for :func:`poisson_job_trace`.
    duration_distribution:
        One of :data:`DURATION_DISTRIBUTIONS` — including the heavy-tailed
        "pareto" / "lognormal" scenarios — or a callable
        ``(rng, size) -> array`` custom sampler.  Sampler outputs are
        validated: non-positive durations are rejected with a clear error.
    duration_shape:
        Tail parameter: the Pareto shape ``a`` (> 1) or the lognormal
        log-space sigma (> 0).  Ignored by the light-tailed distributions.
    arrival_process:
        "poisson" (memoryless) or "mmpp" (two-state bursty arrivals).
    burstiness, switch_prob:
        MMPP knobs: rate ratio between the burst and quiet states, and the
        per-arrival state-flip probability.
    """
    _validate_trace_request(n_jobs, arrival_rate, tasks_per_job, mean_task_duration)
    generator = rng if rng is not None else make_generator(seed)
    arrival_times = _sample_arrivals(
        generator, n_jobs, arrival_rate, arrival_process, burstiness, switch_prob
    )
    durations = _sample_durations(
        generator, n_jobs, tasks_per_job, mean_task_duration,
        duration_distribution, duration_shape,
    )
    return JobTraceArrays(
        arrival_times=arrival_times,
        durations=durations,
        arrival_rate=arrival_rate,
        mean_task_duration=mean_task_duration,
    )


def poisson_job_trace(
    n_jobs: int,
    arrival_rate: float,
    tasks_per_job: int,
    mean_task_duration: float = 1.0,
    duration_distribution: "str | DurationSampler" = "exponential",
    duration_shape: float = 2.5,
    arrival_process: str = "poisson",
    burstiness: float = 4.0,
    switch_prob: float = 0.1,
    seed: "int | None" = None,
    rng: Optional[np.random.Generator] = None,
) -> JobTrace:
    """Generate a job-arrival trace as :class:`JobSpec` objects.

    The historical entry point (Sparrow-style Poisson workload), extended
    with the scenario library's heavy-tailed service times and bursty
    arrivals.  See :func:`job_trace_arrays` for the parameters; this
    function draws the same variates and materializes the object form.
    """
    arrays = job_trace_arrays(
        n_jobs=n_jobs,
        arrival_rate=arrival_rate,
        tasks_per_job=tasks_per_job,
        mean_task_duration=mean_task_duration,
        duration_distribution=duration_distribution,
        duration_shape=duration_shape,
        arrival_process=arrival_process,
        burstiness=burstiness,
        switch_prob=switch_prob,
        seed=seed,
        rng=rng,
    )
    return arrays.to_trace()


def worker_speeds(
    n_workers: int,
    spread: float = 0.0,
    seed: "int | None" = None,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Heterogeneous worker speed factors with unit mean.

    ``spread`` is the log-space sigma of a lognormal draw (0 means a
    homogeneous cluster of unit-speed workers).  A task of duration ``x``
    occupies a worker of speed ``s`` for ``x / s`` time units.
    """
    if n_workers <= 0:
        raise ValueError(f"n_workers must be positive, got {n_workers}")
    if spread < 0:
        raise ValueError(f"spread must be non-negative, got {spread}")
    if spread == 0.0:
        return np.ones(n_workers)
    generator = rng if rng is not None else make_generator(seed)
    speeds = generator.lognormal(-spread ** 2 / 2.0, spread, size=n_workers)
    if float(speeds.min()) <= 0.0 or not np.all(np.isfinite(speeds)):
        raise ValueError("worker speed sampler produced a non-positive speed")
    return speeds


# ----------------------------------------------------------------------
# Distributed-storage workload
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FileSpec:
    """A file to be stored: ``replicas`` copies (or chunks) of ``size`` units."""

    file_id: int
    replicas: int
    size: float = 1.0
    popularity: float = 1.0


def zipf_weights(count: int, exponent: float = 1.0) -> np.ndarray:
    """Normalized Zipf popularity weights for ``count`` items."""
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if exponent < 0:
        raise ValueError(f"exponent must be non-negative, got {exponent}")
    ranks = np.arange(1, count + 1, dtype=float)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def file_sizes(
    n_files: int,
    size_distribution: str = "constant",
    mean_size: float = 1.0,
    seed: "int | None" = None,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Draw the file-size vector used by :func:`file_population`.

    Exposed separately so the fast storage core can consume sizes as a flat
    array while drawing the exact variates of the object path.
    """
    if n_files < 0:
        raise ValueError(f"n_files must be non-negative, got {n_files}")
    generator = rng if rng is not None else make_generator(seed)
    if size_distribution == "constant":
        sizes = np.full(n_files, mean_size)
    elif size_distribution == "exponential":
        sizes = generator.exponential(mean_size, size=n_files)
    elif size_distribution == "lognormal":
        sigma = 1.0
        mu = math.log(mean_size) - sigma ** 2 / 2.0
        sizes = generator.lognormal(mu, sigma, size=n_files)
    else:
        raise ValueError(
            "size_distribution must be 'constant', 'exponential' or 'lognormal', "
            f"got {size_distribution!r}"
        )
    return sizes


def file_population(
    n_files: int,
    replicas: int,
    size_distribution: str = "constant",
    mean_size: float = 1.0,
    popularity_exponent: float = 0.0,
    seed: "int | None" = None,
    rng: Optional[np.random.Generator] = None,
) -> List[FileSpec]:
    """Generate a population of files for the storage experiments.

    ``size_distribution`` may be "constant", "exponential" or "lognormal".
    ``popularity_exponent`` > 0 gives Zipf-skewed access popularity.
    """
    if replicas <= 0:
        raise ValueError(f"replicas must be positive, got {replicas}")
    generator = rng if rng is not None else make_generator(seed)
    sizes = file_sizes(
        n_files, size_distribution=size_distribution, mean_size=mean_size,
        rng=generator,
    )

    if popularity_exponent > 0 and n_files > 0:
        popularity = zipf_weights(n_files, popularity_exponent)
    else:
        popularity = np.full(n_files, 1.0 / max(n_files, 1))

    return [
        FileSpec(
            file_id=i,
            replicas=replicas,
            size=float(sizes[i]),
            popularity=float(popularity[i]),
        )
        for i in range(n_files)
    ]


# ----------------------------------------------------------------------
# The workload registry's event streams, re-exported for simulation-side
# callers.  This is the registry function itself (not a wrapper) so the
# parity lint can hold every surface to the same derivation; the lazy
# placement keeps the import acyclic (repro.workloads samples arrival
# times and Zipf weights from this module).
# ----------------------------------------------------------------------
from ..workloads import generate_events as workload_events  # noqa: E402
