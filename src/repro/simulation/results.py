"""Result records and text tables.

Experiments in this library produce *records* (flat dictionaries of scalars)
collected into a :class:`ResultTable`.  The table can render itself as an
aligned text grid — the same presentation as the paper's Table 1 — and as
CSV for downstream processing.  No plotting dependency is required; figures
are reproduced as data series that the benches print.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["ResultTable", "GridTable"]


@dataclass
class ResultTable:
    """An ordered collection of uniform records (rows).

    Parameters
    ----------
    columns:
        Column names, in display order.  Records may carry extra keys; only
        the listed columns are rendered.
    title:
        Optional table title printed above the grid.
    """

    columns: Sequence[str]
    title: str = ""
    rows: List[Dict[str, object]] = field(default_factory=list)

    def add(self, record: Mapping[str, object]) -> None:
        """Append one record (missing columns render as empty cells)."""
        self.rows.append(dict(record))

    def extend(self, records: Iterable[Mapping[str, object]]) -> None:
        """Append many records."""
        for record in records:
            self.add(record)

    def column(self, name: str) -> List[object]:
        """All values of one column, in row order."""
        return [row.get(name) for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    @staticmethod
    def _format_cell(value: object) -> str:
        if value is None:
            return ""
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    def to_text(self) -> str:
        """Render the table as an aligned text grid."""
        header = [str(c) for c in self.columns]
        body = [
            [self._format_cell(row.get(c)) for c in self.columns] for row in self.rows
        ]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Render the table as CSV text."""
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=list(self.columns), extrasaction="ignore")
        writer.writeheader()
        for row in self.rows:
            writer.writerow({c: row.get(c, "") for c in self.columns})
        return buffer.getvalue()

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()


@dataclass
class GridTable:
    """A two-dimensional grid keyed by (row label, column label).

    This mirrors the layout of the paper's Table 1, whose rows are ``k``
    values and columns are ``d`` values, with a dash for invalid cells
    (``k >= d`` combinations other than the diagonal single-choice column).
    """

    row_labels: Sequence[object]
    column_labels: Sequence[object]
    row_header: str = ""
    title: str = ""
    missing: str = "-"
    cells: Dict[tuple, str] = field(default_factory=dict)

    def set(self, row: object, column: object, value: object) -> None:
        """Set the cell at (row, column)."""
        if row not in self.row_labels:
            raise KeyError(f"unknown row label {row!r}")
        if column not in self.column_labels:
            raise KeyError(f"unknown column label {column!r}")
        self.cells[(row, column)] = str(value)

    def get(self, row: object, column: object) -> Optional[str]:
        """Cell content, or ``None`` when unset."""
        return self.cells.get((row, column))

    def to_text(self) -> str:
        """Render the grid as aligned text (Table 1 style)."""
        header = [self.row_header] + [str(c) for c in self.column_labels]
        body: List[List[str]] = []
        for row in self.row_labels:
            cells = [str(row)]
            for column in self.column_labels:
                cells.append(self.cells.get((row, column), self.missing))
            body.append(cells)
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row_cells in body:
            lines.append("  ".join(cell.rjust(w) for cell, w in zip(row_cells, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()
