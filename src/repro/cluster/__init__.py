"""Cluster-scheduling substrate: a Sparrow-style discrete-event simulator.

Built to exercise the paper's Section 1.3 application of (k, d)-choice to
parallel job scheduling: jobs of ``k`` tasks arrive, probes measure worker
queue lengths, and the scheduler under test decides placement.
"""

from .events import Event, EventQueue, JOB_ARRIVAL, TASK_FINISH
from .jobs import JobRecord, TaskRecord
from .metrics import ClusterReport, build_report
from .schedulers import (
    BatchSamplingScheduler,
    LateBindingScheduler,
    PerTaskDChoiceScheduler,
    RandomScheduler,
    Scheduler,
    SchedulingDecision,
)
from .simulator import ClusterSimulator, simulate_cluster
from .workers import Reservation, Worker

__all__ = [
    "Event",
    "EventQueue",
    "JOB_ARRIVAL",
    "TASK_FINISH",
    "JobRecord",
    "TaskRecord",
    "Worker",
    "Reservation",
    "Scheduler",
    "SchedulingDecision",
    "RandomScheduler",
    "PerTaskDChoiceScheduler",
    "BatchSamplingScheduler",
    "LateBindingScheduler",
    "ClusterSimulator",
    "simulate_cluster",
    "ClusterReport",
    "build_report",
]
