"""Cluster-scheduling substrate: a Sparrow-style discrete-event simulator.

Built to exercise the paper's Section 1.3 application of (k, d)-choice to
parallel job scheduling: jobs of ``k`` tasks arrive, probes measure worker
queue lengths, and the scheduler under test decides placement.
"""

from .events import Event, EventHeap, EventQueue, JOB_ARRIVAL, TASK_FINISH
from .jobs import JobRecord, TaskRecord
from .metrics import ClusterReport, build_report, build_report_arrays
from .schedulers import (
    BatchSamplingScheduler,
    LateBindingScheduler,
    PerTaskDChoiceScheduler,
    RandomScheduler,
    Scheduler,
    SchedulingDecision,
)
from .simulator import (
    CLUSTER_ENGINES,
    ClusterSimulator,
    simulate_cluster,
    simulate_cluster_fast,
)
from .workers import Reservation, Worker

__all__ = [
    "Event",
    "EventQueue",
    "EventHeap",
    "JOB_ARRIVAL",
    "TASK_FINISH",
    "JobRecord",
    "TaskRecord",
    "Worker",
    "Reservation",
    "Scheduler",
    "SchedulingDecision",
    "RandomScheduler",
    "PerTaskDChoiceScheduler",
    "BatchSamplingScheduler",
    "LateBindingScheduler",
    "ClusterSimulator",
    "simulate_cluster",
    "simulate_cluster_fast",
    "CLUSTER_ENGINES",
    "ClusterReport",
    "build_report",
    "build_report_arrays",
]
