"""Task schedulers for the cluster substrate.

Four probe-based schedulers are implemented, matching the comparison the
paper's Section 1.3 sketches for parallel job scheduling:

``RandomScheduler``
    Every task goes to a uniformly random worker (the single-choice
    baseline).
``PerTaskDChoiceScheduler``
    Every task independently probes ``d`` random workers and joins the
    shortest queue — the standard power-of-d-choices applied per task.  As
    the paper argues, a job's response time is governed by its slowest task,
    so this degrades as the job's parallelism ``k`` grows.
``BatchSamplingScheduler``
    The (k, d)-choice strategy: the job issues ``d`` probes *once* and its
    ``k`` tasks are assigned to the ``k`` least-loaded probed workers under
    the paper's multiplicity cap (the strict policy).  Matches Sparrow's
    "batch sampling".
``LateBindingScheduler``
    Sparrow's refinement: the ``d`` probes place reservations; a worker that
    reaches a reservation asks the scheduler for a task, so tasks bind to the
    first ``k`` workers to become available.  Included as an extension point
    beyond the paper's model.

Every scheduler returns :class:`SchedulingDecision` objects; the simulator
applies them and charges the reported probe messages.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.policies import StrictPolicy
from .jobs import JobRecord, TaskRecord
from .workers import Reservation, Worker

__all__ = [
    "SchedulingDecision",
    "Scheduler",
    "RandomScheduler",
    "PerTaskDChoiceScheduler",
    "BatchSamplingScheduler",
    "LateBindingScheduler",
]


@dataclass
class SchedulingDecision:
    """What a scheduler decided for one job arrival.

    Attributes
    ----------
    placements:
        Pairs ``(worker_id, entry)`` to enqueue, where ``entry`` is either a
        concrete :class:`TaskRecord` or a :class:`Reservation`.
    messages:
        Probe (and cancellation) messages charged for the decision.
    """

    placements: List[Tuple[int, object]] = field(default_factory=list)
    messages: int = 0


class Scheduler(ABC):
    """Base class for probe-based schedulers."""

    name: str = "scheduler"

    #: Whether :meth:`fast_decide` implements this scheduler for the array
    #: event core (:func:`repro.cluster.simulator.simulate_cluster_fast`).
    #: Schedulers that mutate worker queues beyond task placement (e.g. late
    #: binding's reservations) stay on the reference simulator.
    supports_fast_core: bool = False

    @abstractmethod
    def schedule_job(
        self,
        job: JobRecord,
        workers: Sequence[Worker],
        now: float,
        rng: np.random.Generator,
    ) -> SchedulingDecision:
        """Decide where the tasks of ``job`` go."""

    def fast_decide(
        self,
        loads: np.ndarray,
        k: int,
        rng: np.random.Generator,
    ) -> "Tuple[List[int], int]":
        """Array-core twin of :meth:`schedule_job`: ``(targets, messages)``.

        ``loads`` is the maintained queue-length vector (queued + running
        tasks per worker) — the same signal :meth:`schedule_job` reads via
        ``Worker.queue_length``.  Implementations MUST draw exactly the same
        random variates as :meth:`schedule_job` so the two engines are
        seed-for-seed identical.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support the fast event core"
        )

    def describe(self) -> str:
        """Human-readable description used in reports."""
        return self.name


class RandomScheduler(Scheduler):
    """Each task is sent to one uniformly random worker."""

    name = "random"
    supports_fast_core = True

    def fast_decide(
        self, loads: np.ndarray, k: int, rng: np.random.Generator
    ) -> "Tuple[List[int], int]":
        targets = rng.integers(0, len(loads), size=k)
        return targets.tolist(), k

    def schedule_job(
        self,
        job: JobRecord,
        workers: Sequence[Worker],
        now: float,
        rng: np.random.Generator,
    ) -> SchedulingDecision:
        decision = SchedulingDecision()
        n_workers = len(workers)
        targets = rng.integers(0, n_workers, size=len(job.tasks))
        for task, worker_id in zip(job.tasks, targets.tolist()):
            decision.placements.append((int(worker_id), task))
            decision.messages += 1
        return decision


class PerTaskDChoiceScheduler(Scheduler):
    """Each task independently probes ``d`` workers and joins the shortest queue."""

    def __init__(self, d: int = 2) -> None:
        if d < 1:
            raise ValueError(f"d must be at least 1, got {d}")
        self.d = d
        self.name = f"per-task-{d}-choice"

    supports_fast_core = True

    def fast_decide(
        self, loads: np.ndarray, k: int, rng: np.random.Generator
    ) -> "Tuple[List[int], int]":
        probes = rng.integers(0, len(loads), size=(k, self.d))
        # First occurrence of the row minimum == the scalar scan that only
        # moves on a strictly smaller load.
        best = np.argmin(loads[probes], axis=1)
        targets = probes[np.arange(k), best]
        return targets.tolist(), k * self.d

    def schedule_job(
        self,
        job: JobRecord,
        workers: Sequence[Worker],
        now: float,
        rng: np.random.Generator,
    ) -> SchedulingDecision:
        decision = SchedulingDecision()
        n_workers = len(workers)
        probes = rng.integers(0, n_workers, size=(len(job.tasks), self.d))
        for task, row in zip(job.tasks, probes.tolist()):
            decision.messages += self.d
            best_worker = row[0]
            best_load = workers[best_worker].queue_length
            for worker_id in row[1:]:
                load = workers[worker_id].queue_length
                if load < best_load:
                    best_load = load
                    best_worker = worker_id
            decision.placements.append((int(best_worker), task))
        return decision


class BatchSamplingScheduler(Scheduler):
    """(k, d)-choice batch sampling: one probe wave shared by the whole job.

    Parameters
    ----------
    probe_ratio:
        Number of probes per task; the job issues ``d = ceil(probe_ratio * k)``
        probes (Sparrow uses probe_ratio = 2).
    d:
        Alternatively, a fixed probe count per job (overrides probe_ratio).
    """

    def __init__(self, probe_ratio: float = 2.0, d: Optional[int] = None) -> None:
        if d is None and probe_ratio <= 0:
            raise ValueError(f"probe_ratio must be positive, got {probe_ratio}")
        if d is not None and d < 1:
            raise ValueError(f"d must be at least 1, got {d}")
        self.probe_ratio = probe_ratio
        self.fixed_d = d
        self._policy = StrictPolicy()
        label = f"d={d}" if d is not None else f"ratio={probe_ratio:g}"
        self.name = f"batch-(k,d)-choice[{label}]"

    supports_fast_core = True

    def fast_decide(
        self, loads: np.ndarray, k: int, rng: np.random.Generator
    ) -> "Tuple[List[int], int]":
        n_workers = len(loads)
        d = self.probes_for(k, n_workers)
        samples = [int(s) for s in rng.integers(0, n_workers, size=d)]
        destinations = self._policy.select(loads, samples, k, rng)
        return destinations, d

    def probes_for(self, k: int, n_workers: int) -> int:
        """Number of probes issued for a job with ``k`` tasks."""
        if self.fixed_d is not None:
            d = self.fixed_d
        else:
            d = int(np.ceil(self.probe_ratio * k))
        return max(k, min(d, n_workers))

    def schedule_job(
        self,
        job: JobRecord,
        workers: Sequence[Worker],
        now: float,
        rng: np.random.Generator,
    ) -> SchedulingDecision:
        decision = SchedulingDecision()
        n_workers = len(workers)
        k = len(job.tasks)
        d = self.probes_for(k, n_workers)
        samples = [int(s) for s in rng.integers(0, n_workers, size=d)]
        decision.messages += d

        loads = [worker.queue_length for worker in workers]
        destinations = self._policy.select(loads, samples, k, rng)
        for task, worker_id in zip(job.tasks, destinations):
            decision.placements.append((int(worker_id), task))
        return decision


class LateBindingScheduler(Scheduler):
    """Sparrow-style batch sampling with late binding.

    The job's ``d`` probes enqueue reservations; each reservation, when it
    reaches the head of a worker's queue, claims the next unassigned task of
    the job (or is discarded if none remain, charging one cancellation
    message).
    """

    def __init__(self, probe_ratio: float = 2.0) -> None:
        if probe_ratio <= 0:
            raise ValueError(f"probe_ratio must be positive, got {probe_ratio}")
        self.probe_ratio = probe_ratio
        self.name = f"late-binding[ratio={probe_ratio:g}]"
        self._pending: Dict[int, Deque[TaskRecord]] = {}
        self.cancellation_messages = 0

    def schedule_job(
        self,
        job: JobRecord,
        workers: Sequence[Worker],
        now: float,
        rng: np.random.Generator,
    ) -> SchedulingDecision:
        decision = SchedulingDecision()
        n_workers = len(workers)
        k = len(job.tasks)
        d = max(k, min(int(np.ceil(self.probe_ratio * k)), n_workers))
        samples = rng.integers(0, n_workers, size=d)
        decision.messages += d

        self._pending[job.job_id] = deque(job.tasks)

        def claim(worker_id: int, time: float, job_id: int = job.job_id) -> Optional[TaskRecord]:
            queue = self._pending.get(job_id)
            if queue:
                return queue.popleft()
            # No tasks left: the reservation is cancelled at a one-message cost.
            self.cancellation_messages += 1
            return None

        for worker_id in samples.tolist():
            decision.placements.append(
                (int(worker_id), Reservation(job_id=job.job_id, claim=claim))
            )
        return decision
