"""Cluster simulation reports.

The key metric is the distribution of *job response times* — the time from a
job's arrival until its last task completes — because that is the quantity
the paper argues (k, d)-choice improves over per-task d-choice.

Serialization contract: :meth:`ClusterReport.to_dict` emits every field at
full precision as plain JSON types and :meth:`ClusterReport.from_dict`
reconstructs an equal report, so reports survive pickling (process pools)
and JSON round trips (result caches, logs) without loss.  ``as_dict`` stays
the rounded presentation form for result tables.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Dict, List, Mapping, Sequence

import numpy as np

from .jobs import JobRecord
from .workers import Worker

__all__ = ["ClusterReport", "build_report", "build_report_arrays"]


def _percentile(values: np.ndarray, q: float) -> float:
    return float(np.percentile(values, q)) if values.size else 0.0


@dataclass(frozen=True)
class ClusterReport:
    """Aggregate outcome of a cluster simulation run."""

    scheduler: str
    n_workers: int
    n_jobs: int
    n_tasks: int
    horizon: float
    mean_response: float
    median_response: float
    p95_response: float
    p99_response: float
    max_response: float
    mean_task_wait: float
    messages: int
    messages_per_task: float
    mean_utilization: float
    max_queue_length: int

    def as_dict(self) -> Dict[str, object]:
        """Flat record for result tables."""
        return {
            "scheduler": self.scheduler,
            "workers": self.n_workers,
            "jobs": self.n_jobs,
            "tasks": self.n_tasks,
            "mean_response": round(self.mean_response, 4),
            "median_response": round(self.median_response, 4),
            "p95_response": round(self.p95_response, 4),
            "p99_response": round(self.p99_response, 4),
            "mean_task_wait": round(self.mean_task_wait, 4),
            "messages": self.messages,
            "messages_per_task": round(self.messages_per_task, 4),
            "utilization": round(self.mean_utilization, 4),
        }

    def to_dict(self) -> Dict[str, object]:
        """Full-precision, JSON-safe form; inverse of :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ClusterReport":
        """Rebuild a report from :meth:`to_dict` output."""
        names = {f.name for f in fields(cls)}
        unknown = set(payload) - names
        if unknown:
            raise ValueError(f"unknown ClusterReport fields: {sorted(unknown)}")
        missing = names - set(payload)
        if missing:
            raise ValueError(f"missing ClusterReport fields: {sorted(missing)}")
        return cls(**payload)


def build_report(
    scheduler_name: str,
    jobs: Sequence[JobRecord],
    workers: Sequence[Worker],
    messages: int,
    horizon: float,
) -> ClusterReport:
    """Summarize a finished simulation run."""
    unfinished = [job.job_id for job in jobs if not job.finished]
    if unfinished:
        raise ValueError(
            f"cannot build a report with unfinished jobs: {unfinished[:5]}"
        )
    responses = np.asarray([job.response_time for job in jobs], dtype=float)
    waits: List[float] = [task.wait_time for job in jobs for task in job.tasks]
    n_tasks = sum(len(job.tasks) for job in jobs)
    utilizations = [worker.utilization(horizon) for worker in workers]
    max_queue = max((worker.queue_length for worker in workers), default=0)

    return ClusterReport(
        scheduler=scheduler_name,
        n_workers=len(workers),
        n_jobs=len(jobs),
        n_tasks=n_tasks,
        horizon=horizon,
        mean_response=float(responses.mean()) if responses.size else 0.0,
        median_response=_percentile(responses, 50),
        p95_response=_percentile(responses, 95),
        p99_response=_percentile(responses, 99),
        max_response=float(responses.max()) if responses.size else 0.0,
        mean_task_wait=float(np.mean(waits)) if waits else 0.0,
        messages=messages,
        messages_per_task=messages / n_tasks if n_tasks else 0.0,
        mean_utilization=float(np.mean(utilizations)) if utilizations else 0.0,
        max_queue_length=int(max_queue),
    )


def build_report_arrays(
    scheduler_name: str,
    arrival_times: np.ndarray,
    offsets: np.ndarray,
    starts: np.ndarray,
    finishes: np.ndarray,
    busy_time: np.ndarray,
    messages: int,
    horizon: float,
) -> ClusterReport:
    """Array twin of :func:`build_report`, used by the fast event core.

    ``offsets`` is the CSR job boundary vector (``offsets[j]:offsets[j+1]``
    slices job ``j``'s tasks out of the flat ``starts``/``finishes``
    arrays).  The aggregation mirrors :func:`build_report` operation for
    operation — same dtypes, same summation order — so both engines emit
    bit-identical reports for the same simulated history.
    """
    n_jobs = int(arrival_times.shape[0])
    n_tasks = int(finishes.shape[0])
    if n_tasks:
        job_finish = np.maximum.reduceat(finishes, offsets[:-1])
        # Zero-task jobs are rejected at JobSpec construction and the fast
        # simulator validates its offsets, so reduceat slices are non-empty.
        responses = job_finish - arrival_times
        waits = starts - np.repeat(arrival_times, np.diff(offsets))
    else:
        responses = np.empty(0)
        waits = np.empty(0)
    utilizations = (
        np.minimum(busy_time / horizon, 1.0) if horizon > 0
        else np.zeros_like(busy_time)
    )
    return ClusterReport(
        scheduler=scheduler_name,
        n_workers=int(busy_time.shape[0]),
        n_jobs=n_jobs,
        n_tasks=n_tasks,
        horizon=horizon,
        mean_response=float(responses.mean()) if responses.size else 0.0,
        median_response=_percentile(responses, 50),
        p95_response=_percentile(responses, 95),
        p99_response=_percentile(responses, 99),
        max_response=float(responses.max()) if responses.size else 0.0,
        mean_task_wait=float(np.mean(waits)) if waits.size else 0.0,
        messages=messages,
        messages_per_task=messages / n_tasks if n_tasks else 0.0,
        mean_utilization=float(np.mean(utilizations)) if utilizations.size else 0.0,
        # Every job has completed when a report is built, so no queue entries
        # remain — matching the reference simulator's end-of-run state.
        max_queue_length=0,
    )
