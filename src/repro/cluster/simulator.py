"""Discrete-event cluster simulator.

The simulator drives job arrivals through a :class:`Scheduler` and a set of
single-slot FIFO :class:`~repro.cluster.workers.Worker` machines.  Two event
kinds exist: job arrivals (the scheduler decides task placement based on the
instantaneous queue lengths it probes) and task completions (the worker pulls
the next queue entry).

This is the substrate for the paper's Section 1.3 claim that sharing probe
information across a job's ``k`` tasks — (k, d)-choice — keeps job response
times low as parallelism grows.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..simulation.rng import make_generator
from ..simulation.workloads import JobSpec, JobTrace
from .events import JOB_ARRIVAL, TASK_FINISH, EventQueue
from .jobs import JobRecord, TaskRecord
from .metrics import ClusterReport, build_report
from .schedulers import Scheduler
from .workers import Worker

__all__ = ["ClusterSimulator", "simulate_cluster"]


class ClusterSimulator:
    """Event-driven simulation of a worker cluster under one scheduler.

    Parameters
    ----------
    n_workers:
        Number of worker machines.
    scheduler:
        Placement policy (see :mod:`repro.cluster.schedulers`).
    seed, rng:
        Randomness for the scheduler's probes.
    """

    def __init__(
        self,
        n_workers: int,
        scheduler: Scheduler,
        seed: "int | None" = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        self.n_workers = n_workers
        self.scheduler = scheduler
        self.rng = rng if rng is not None else make_generator(seed)
        self.workers: List[Worker] = [Worker(worker_id=i) for i in range(n_workers)]
        self.jobs: List[JobRecord] = []
        self.messages = 0
        self.now = 0.0

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _handle_arrival(self, queue: EventQueue, job: JobRecord) -> None:
        decision = self.scheduler.schedule_job(job, self.workers, self.now, self.rng)
        self.messages += decision.messages
        for worker_id, entry in decision.placements:
            if not 0 <= worker_id < self.n_workers:
                raise ValueError(
                    f"scheduler placed an entry on unknown worker {worker_id}"
                )
            started = self.workers[worker_id].enqueue(entry, self.now)
            if started is not None:
                queue.push(self.now + started.duration, TASK_FINISH, (worker_id, started))

    def _handle_finish(self, queue: EventQueue, worker_id: int) -> None:
        started = self.workers[worker_id].finish_current(self.now)
        if started is not None:
            queue.push(self.now + started.duration, TASK_FINISH, (worker_id, started))

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, trace: "JobTrace | Sequence[JobSpec]") -> ClusterReport:
        """Simulate the full trace to completion and return the report."""
        specs = list(trace)
        queue = EventQueue()
        self.jobs = []
        for spec in specs:
            record = JobRecord.from_spec(spec)
            self.jobs.append(record)
            queue.push(spec.arrival_time, JOB_ARRIVAL, record)

        while queue:
            event = queue.pop()
            self.now = event.time
            if event.kind == JOB_ARRIVAL:
                self._handle_arrival(queue, event.payload)
            elif event.kind == TASK_FINISH:
                worker_id, _task = event.payload
                self._handle_finish(queue, worker_id)
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown event kind {event.kind!r}")

        # Account for late-binding cancellation messages, if the scheduler
        # tracked any.
        cancellations = getattr(self.scheduler, "cancellation_messages", 0)
        total_messages = self.messages + cancellations

        return build_report(
            scheduler_name=self.scheduler.describe(),
            jobs=self.jobs,
            workers=self.workers,
            messages=total_messages,
            horizon=self.now,
        )


def simulate_cluster(
    n_workers: int,
    scheduler: Scheduler,
    trace: "JobTrace | Sequence[JobSpec]",
    seed: "int | None" = None,
) -> ClusterReport:
    """One-call convenience wrapper around :class:`ClusterSimulator`."""
    simulator = ClusterSimulator(n_workers=n_workers, scheduler=scheduler, seed=seed)
    return simulator.run(trace)
