"""Discrete-event cluster simulator: reference engine and fast event core.

Two engines drive job arrivals through a :class:`Scheduler` over single-slot
FIFO :class:`~repro.cluster.workers.Worker` machines:

* :class:`ClusterSimulator` — the reference engine.  Explicit
  :class:`~repro.cluster.events.EventQueue` of arrival/finish events,
  per-task :class:`~repro.cluster.jobs.TaskRecord` objects, per-worker
  deques.  Clear and general (it is the only engine that supports late
  binding) but allocation-bound at scale.
* :func:`simulate_cluster_fast` — the array event core.  Because early
  binding places a task irrevocably at its arrival instant and workers are
  single-slot FIFO, a task's start and finish times are *determined at
  placement* (``start = max(now, worker_free)``); the only reason finish
  events exist at all is to keep the probe signal — the per-worker
  queued-plus-running count — current.  The fast core therefore keeps one
  maintained load vector (O(1) probes), a flat
  :class:`~repro.cluster.events.EventHeap` of ``(finish_time, seq, worker)``
  tuples, and flat start/finish arrays instead of task objects.  Schedulers
  participate through :meth:`~repro.cluster.schedulers.Scheduler.fast_decide`,
  which draws exactly the random variates of ``schedule_job`` — the two
  engines are **seed-for-seed identical**, report field for report field.

This is the substrate for the paper's Section 1.3 claim that sharing probe
information across a job's ``k`` tasks — (k, d)-choice — keeps job response
times low as parallelism grows; the fast core is what lets that claim be
checked on million-task traces.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from ..simulation.rng import make_generator
from ..simulation.workloads import JobSpec, JobTrace, JobTraceArrays
from .events import JOB_ARRIVAL, TASK_FINISH, EventHeap, EventQueue
from .jobs import JobRecord, TaskRecord
from .metrics import ClusterReport, build_report, build_report_arrays
from .schedulers import Scheduler
from .workers import Worker

__all__ = [
    "ClusterSimulator",
    "simulate_cluster",
    "simulate_cluster_fast",
    "CLUSTER_ENGINES",
]

#: Engines accepted by :func:`simulate_cluster`.  "auto" picks the fast core
#: whenever the scheduler supports it (the engines are seed-for-seed
#: identical, so this is purely a throughput decision).
CLUSTER_ENGINES = ("auto", "fast", "reference")

AnyTrace = Union[JobTrace, JobTraceArrays, Sequence[JobSpec]]


class ClusterSimulator:
    """Event-driven reference simulation of a worker cluster.

    Parameters
    ----------
    n_workers:
        Number of worker machines.
    scheduler:
        Placement policy (see :mod:`repro.cluster.schedulers`).
    seed, rng:
        Randomness for the scheduler's probes.
    speeds:
        Optional per-worker speed factors (worker heterogeneity); a task of
        duration ``x`` occupies worker ``w`` for ``x / speeds[w]``.
    """

    def __init__(
        self,
        n_workers: int,
        scheduler: Scheduler,
        seed: "int | None" = None,
        rng: Optional[np.random.Generator] = None,
        speeds: Optional[Sequence[float]] = None,
    ) -> None:
        if n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        if speeds is not None and len(speeds) != n_workers:
            raise ValueError(
                f"speeds must have one entry per worker, got {len(speeds)} "
                f"for {n_workers} workers"
            )
        self.n_workers = n_workers
        self.scheduler = scheduler
        self.rng = rng if rng is not None else make_generator(seed)
        self.workers: List[Worker] = [
            Worker(worker_id=i, speed=1.0 if speeds is None else float(speeds[i]))
            for i in range(n_workers)
        ]
        self.jobs: List[JobRecord] = []
        self.messages = 0
        self.now = 0.0

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _handle_arrival(self, queue: EventQueue, job: JobRecord) -> None:
        decision = self.scheduler.schedule_job(job, self.workers, self.now, self.rng)
        self.messages += decision.messages
        for worker_id, entry in decision.placements:
            if not 0 <= worker_id < self.n_workers:
                raise ValueError(
                    f"scheduler placed an entry on unknown worker {worker_id}"
                )
            worker = self.workers[worker_id]
            started = worker.enqueue(entry, self.now)
            if started is not None:
                queue.push(
                    self.now + worker.service_time(started.duration),
                    TASK_FINISH,
                    (worker_id, started),
                )

    def _handle_finish(self, queue: EventQueue, worker_id: int) -> None:
        worker = self.workers[worker_id]
        started = worker.finish_current(self.now)
        if started is not None:
            queue.push(
                self.now + worker.service_time(started.duration),
                TASK_FINISH,
                (worker_id, started),
            )

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, trace: AnyTrace) -> ClusterReport:
        """Simulate the full trace to completion and return the report."""
        if isinstance(trace, JobTraceArrays):
            trace = trace.to_trace()
        specs = list(trace)
        queue = EventQueue()
        self.jobs = []
        for spec in specs:
            record = JobRecord.from_spec(spec)
            self.jobs.append(record)
            queue.push(spec.arrival_time, JOB_ARRIVAL, record)

        while queue:
            event = queue.pop()
            self.now = event.time
            if event.kind == JOB_ARRIVAL:
                self._handle_arrival(queue, event.payload)
            elif event.kind == TASK_FINISH:
                worker_id, _task = event.payload
                self._handle_finish(queue, worker_id)
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown event kind {event.kind!r}")

        # Account for late-binding cancellation messages, if the scheduler
        # tracked any.
        cancellations = getattr(self.scheduler, "cancellation_messages", 0)
        total_messages = self.messages + cancellations

        return build_report(
            scheduler_name=self.scheduler.describe(),
            jobs=self.jobs,
            workers=self.workers,
            messages=total_messages,
            horizon=self.now,
        )


def _trace_as_arrays(trace: AnyTrace) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Flatten any trace form to ``(arrival_times, flat_durations, offsets)``."""
    if isinstance(trace, JobTraceArrays):
        n_jobs, tasks_per_job = trace.durations.shape
        offsets = np.arange(n_jobs + 1, dtype=np.int64) * tasks_per_job
        return trace.arrival_times, trace.durations.ravel(), offsets
    specs = list(trace)
    arrival_times = np.asarray([spec.arrival_time for spec in specs], dtype=float)
    counts = np.asarray([len(spec.task_durations) for spec in specs], dtype=np.int64)
    offsets = np.concatenate(([0], np.cumsum(counts)))
    flat = np.asarray(
        [d for spec in specs for d in spec.task_durations], dtype=float
    )
    return arrival_times, flat, offsets


def simulate_cluster_fast(
    n_workers: int,
    scheduler: Scheduler,
    trace: AnyTrace,
    seed: "int | None" = None,
    rng: Optional[np.random.Generator] = None,
    speeds: Optional[Sequence[float]] = None,
    placement_counts: Optional[np.ndarray] = None,
) -> ClusterReport:
    """Run the array event core; seed-for-seed identical to the reference.

    Requires a scheduler with ``supports_fast_core`` (random, per-task
    d-choice, batch sampling); late binding needs the reference engine's
    reservation queues.  ``placement_counts``, when given (an int64 array of
    length ``n_workers``), receives the number of tasks placed on each
    worker — the reference engine's per-worker ``tasks_completed``.
    """
    if n_workers <= 0:
        raise ValueError(f"n_workers must be positive, got {n_workers}")
    if not getattr(scheduler, "supports_fast_core", False):
        raise ValueError(
            f"scheduler {scheduler.describe()!r} does not support the fast "
            f"event core; run it through the reference ClusterSimulator "
            f"(engine='reference')"
        )
    if speeds is not None and len(speeds) != n_workers:
        raise ValueError(
            f"speeds must have one entry per worker, got {len(speeds)} "
            f"for {n_workers} workers"
        )
    generator = rng if rng is not None else make_generator(seed)
    arrival_times, flat_durations, offsets = _trace_as_arrays(trace)
    n_jobs = int(arrival_times.shape[0])
    n_tasks = int(flat_durations.shape[0])
    if np.any(arrival_times < 0):
        raise ValueError("job arrival times must be non-negative")

    # The reference queue pops arrivals by (time, push order); generated
    # traces are already time-sorted, but a hand-built Sequence[JobSpec] may
    # not be — replay the queue's order via a stable sort in that case.
    if n_jobs and np.any(np.diff(arrival_times) < 0):
        job_order = np.argsort(arrival_times, kind="stable").tolist()
    else:
        job_order = range(n_jobs)

    loads = np.zeros(n_workers, dtype=np.int64)
    # Python lists keep the per-task scalar updates cheap; ``loads`` stays a
    # NumPy array because fast_decide probes it with fancy indexing.
    speed = [1.0] * n_workers if speeds is None else [float(s) for s in speeds]
    next_free = [0.0] * n_workers
    busy_time = [0.0] * n_workers
    counts = [0] * n_workers  # tasks placed per worker (= tasks completed)
    starts = np.empty(n_tasks)
    finishes = np.empty(n_tasks)
    durations_list = flat_durations.tolist()
    arrivals_list = arrival_times.tolist()
    offsets_list = offsets.tolist()

    # Finish sequences start after the arrival block so that a finish tying
    # an arrival in time sorts after it — the reference queue's exact order.
    heap = EventHeap(first_sequence=n_jobs)
    push = heap.push
    pop_until = heap.pop_until
    decide = scheduler.fast_decide
    messages = 0

    last_arrival = 0.0
    for j in job_order:
        now = arrivals_list[j]
        last_arrival = now
        for worker_id in pop_until(now):
            loads[worker_id] -= 1
        lo = offsets_list[j]
        hi = offsets_list[j + 1]
        targets, probe_messages = decide(loads, hi - lo, generator)
        messages += probe_messages
        for index, worker_id in enumerate(targets, start=lo):
            if not 0 <= worker_id < n_workers:
                raise ValueError(
                    f"scheduler placed an entry on unknown worker {worker_id}"
                )
            service = durations_list[index] / speed[worker_id]
            free = next_free[worker_id]
            start = free if free > now else now
            finish = start + service
            next_free[worker_id] = finish
            busy_time[worker_id] += service
            counts[worker_id] += 1
            loads[worker_id] += 1
            starts[index] = start
            finishes[index] = finish
            push(finish, worker_id)

    # Nothing after the last arrival changes any recorded time: the horizon
    # is the latest event, i.e. the last task finish (each job finishes at or
    # after its own arrival).
    horizon = float(finishes.max()) if n_tasks else (last_arrival if n_jobs else 0.0)

    if placement_counts is not None:
        placement_counts[:] = counts

    return build_report_arrays(
        scheduler_name=scheduler.describe(),
        arrival_times=arrival_times,
        offsets=offsets,
        starts=starts,
        finishes=finishes,
        busy_time=np.asarray(busy_time),
        messages=messages,
        horizon=horizon,
    )


def simulate_cluster(
    n_workers: int,
    scheduler: Scheduler,
    trace: AnyTrace,
    seed: "int | None" = None,
    engine: str = "auto",
    speeds: Optional[Sequence[float]] = None,
) -> ClusterReport:
    """One-call cluster simulation with engine dispatch.

    ``engine="auto"`` (the default) runs the fast event core whenever the
    scheduler supports it and falls back to the reference simulator
    otherwise; the choice never changes the result — both engines consume
    the same random stream and report the same history.
    """
    if engine not in CLUSTER_ENGINES:
        raise ValueError(f"engine must be one of {CLUSTER_ENGINES}, got {engine!r}")
    fast_capable = getattr(scheduler, "supports_fast_core", False)
    if engine == "fast" or (engine == "auto" and fast_capable):
        return simulate_cluster_fast(
            n_workers=n_workers, scheduler=scheduler, trace=trace,
            seed=seed, speeds=speeds,
        )
    simulator = ClusterSimulator(
        n_workers=n_workers, scheduler=scheduler, seed=seed, speeds=speeds
    )
    return simulator.run(trace)
