"""Event queue for the cluster discrete-event simulation.

A tiny, dependency-free priority queue of timestamped events.  Ties in time
are broken by insertion order, which makes simulation runs fully
deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Event", "EventQueue", "JOB_ARRIVAL", "TASK_FINISH"]

# Event kinds used by the cluster simulator.
JOB_ARRIVAL = "job_arrival"
TASK_FINISH = "task_finish"


@dataclass(order=True)
class Event:
    """A scheduled event.

    Ordering is by ``(time, sequence)``; ``kind`` and ``payload`` do not
    participate in comparisons.
    """

    time: float
    sequence: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """A min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, kind: str, payload: Any = None) -> Event:
        """Schedule an event at ``time`` and return it."""
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        event = Event(time=time, sequence=next(self._counter), kind=kind, payload=payload)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        return heapq.heappop(self._heap)

    def peek(self) -> Optional[Event]:
        """The earliest event without removing it, or ``None`` if empty."""
        return self._heap[0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
