"""Event queues for the cluster discrete-event simulation.

Two implementations share one ordering contract — events sort by
``(time, sequence)``, so ties in time are broken by insertion order and
simulation runs are fully deterministic for a fixed seed:

* :class:`EventQueue` — the reference queue: a min-heap of :class:`Event`
  dataclass instances carrying an arbitrary ``kind``/``payload``.  Clear,
  general, and the bottleneck at scale: every event costs a dataclass
  allocation plus rich-comparison dispatch in the heap.
* :class:`EventHeap` — the fast core's queue: a min-heap of plain
  ``(time, sequence, tag)`` tuples, where ``tag`` is a small integer (the
  fast simulator uses the worker id).  No per-event objects, no field
  comparators; tuple comparison never reaches ``tag`` because ``sequence``
  is unique.  This is the array-backed event core's keyed-on-``(time, seq)``
  representation.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

__all__ = ["Event", "EventQueue", "EventHeap", "JOB_ARRIVAL", "TASK_FINISH"]

# Event kinds used by the cluster simulator.
JOB_ARRIVAL = "job_arrival"
TASK_FINISH = "task_finish"


@dataclass(order=True)
class Event:
    """A scheduled event.

    Ordering is by ``(time, sequence)``; ``kind`` and ``payload`` do not
    participate in comparisons.
    """

    time: float
    sequence: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """A min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, kind: str, payload: Any = None) -> Event:
        """Schedule an event at ``time`` and return it."""
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        event = Event(time=time, sequence=next(self._counter), kind=kind, payload=payload)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        return heapq.heappop(self._heap)

    def peek(self) -> Optional[Event]:
        """The earliest event without removing it, or ``None`` if empty."""
        return self._heap[0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class EventHeap:
    """Allocation-free event heap keyed on ``(time, sequence)``.

    Entries are plain tuples ``(time, sequence, tag)``; ``sequence`` is
    assigned monotonically by :meth:`push` starting at ``first_sequence``,
    so equal-time events order by insertion and the integer ``tag`` payload
    never participates in comparisons.  The fast simulator seeds
    ``first_sequence`` with the number of job arrivals so that a task finish
    coinciding exactly with an arrival sorts *after* it — the same tie order
    the reference :class:`EventQueue` produces (all arrivals are pushed
    before any finish, with smaller sequence numbers).
    """

    __slots__ = ("_heap", "_next_sequence")

    def __init__(self, first_sequence: int = 0) -> None:
        self._heap: List[Tuple[float, int, int]] = []
        self._next_sequence = first_sequence

    def push(self, time: float, tag: int) -> None:
        """Schedule an event at ``time`` carrying the integer ``tag``."""
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        heapq.heappush(self._heap, (time, self._next_sequence, tag))
        self._next_sequence += 1

    def pop(self) -> Tuple[float, int, int]:
        """Remove and return the earliest ``(time, sequence, tag)`` entry."""
        if not self._heap:
            raise IndexError("pop from an empty event heap")
        return heapq.heappop(self._heap)

    def pop_until(self, time: float) -> Tuple[int, ...]:
        """Pop every event strictly earlier than ``time``; return the tags."""
        heap = self._heap
        tags: List[int] = []
        while heap and heap[0][0] < time:
            tags.append(heapq.heappop(heap)[2])
        return tuple(tags)

    def next_time(self) -> Optional[float]:
        """Time of the earliest event, or ``None`` if empty."""
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
