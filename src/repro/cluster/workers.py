"""Worker machines: single-slot servers with FIFO task queues.

Each worker executes one task at a time and queues the rest in FIFO order,
mirroring the worker model of Sparrow [Ousterhout et al., SOSP 2013], the
system the paper cites for the cluster-scheduling application.  Two queue
entry types exist:

* a concrete :class:`~repro.cluster.jobs.TaskRecord` (early binding), or
* a :class:`Reservation` placeholder (late binding): when the reservation
  reaches the head of the queue the worker asks the scheduler for a task; if
  the job has none left, the reservation is discarded.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Union

from .jobs import TaskRecord

__all__ = ["Reservation", "Worker"]


@dataclass
class Reservation:
    """A late-binding placeholder enqueued by a probe.

    Attributes
    ----------
    job_id:
        Job on whose behalf the reservation was placed.
    claim:
        Callback ``(worker_id, now) -> TaskRecord | None`` provided by the
        scheduler.  Returning ``None`` means every task of the job is already
        running elsewhere and the reservation should be discarded.
    """

    job_id: int
    claim: "callable"


QueueEntry = Union[TaskRecord, Reservation]


class Worker:
    """A single worker machine with a FIFO queue.

    ``speed`` models worker heterogeneity: a task of duration ``x`` occupies
    a worker of speed ``s`` for ``x / s`` time units (speed 1.0 is the
    homogeneous default).
    """

    def __init__(self, worker_id: int, speed: float = 1.0) -> None:
        if speed <= 0:
            raise ValueError(f"worker speed must be positive, got {speed}")
        self.worker_id = worker_id
        self.speed = speed
        self.queue: Deque[QueueEntry] = deque()
        self.running: Optional[TaskRecord] = None
        self.busy_until: float = 0.0
        self.tasks_completed: int = 0
        self.busy_time: float = 0.0

    def service_time(self, duration: float) -> float:
        """Wall-clock time this worker needs for a task of ``duration`` work."""
        return duration / self.speed

    # ------------------------------------------------------------------
    # Load signals used by probes
    # ------------------------------------------------------------------
    @property
    def queue_length(self) -> int:
        """Number of queued entries plus the running task, if any.

        This is the load estimate a probe message returns — the same signal
        the (k, d)-choice and per-task d-choice schedulers compare.
        """
        return len(self.queue) + (1 if self.running is not None else 0)

    def pending_work(self, now: float) -> float:
        """Remaining service time of the running task plus queued task work.

        Reservations contribute zero because their task durations are not yet
        known to the worker.
        """
        work = max(self.busy_until - now, 0.0) if self.running is not None else 0.0
        for entry in self.queue:
            if isinstance(entry, TaskRecord):
                work += entry.duration
        return work

    # ------------------------------------------------------------------
    # Queue operations (driven by the simulator)
    # ------------------------------------------------------------------
    def enqueue(self, entry: QueueEntry, now: float) -> Optional[TaskRecord]:
        """Add an entry; if the worker is idle, start work immediately.

        Returns the task that started (so the simulator can schedule its
        finish event), or ``None`` if nothing started.
        """
        if isinstance(entry, TaskRecord):
            entry.worker_id = self.worker_id
            entry.enqueue_time = now
        if self.running is None:
            started = self._start_entry(entry, now)
            if started is not None:
                return started
            # A reservation that could not be claimed: stay idle.
            return None
        self.queue.append(entry)
        return None

    def finish_current(self, now: float) -> Optional[TaskRecord]:
        """Complete the running task and start the next queue entry.

        Returns the next task that started (if any) so the simulator can
        schedule its finish event.
        """
        if self.running is None:
            raise RuntimeError(f"worker {self.worker_id} has no running task to finish")
        finished = self.running
        finished.finish_time = now
        self.busy_time += self.service_time(finished.duration)
        self.tasks_completed += 1
        self.running = None

        while self.queue:
            entry = self.queue.popleft()
            started = self._start_entry(entry, now)
            if started is not None:
                return started
        return None

    def _start_entry(self, entry: QueueEntry, now: float) -> Optional[TaskRecord]:
        """Try to start a queue entry; resolve reservations via their claim."""
        if isinstance(entry, Reservation):
            task = entry.claim(self.worker_id, now)
            if task is None:
                return None
            task.worker_id = self.worker_id
            task.enqueue_time = task.enqueue_time if task.enqueue_time is not None else now
            entry = task
        entry.start_time = now
        self.running = entry
        self.busy_until = now + self.service_time(entry.duration)
        return entry

    def utilization(self, horizon: float) -> float:
        """Fraction of the time horizon this worker spent executing tasks."""
        if horizon <= 0:
            return 0.0
        return min(self.busy_time / horizon, 1.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Worker(id={self.worker_id}, queue_length={self.queue_length}, "
            f"completed={self.tasks_completed})"
        )
