"""Runtime records for jobs and tasks in the cluster simulation.

The workload module (:mod:`repro.simulation.workloads`) describes *what*
arrives; these classes track *what happened* to each task and job during a
simulation run: queueing, start, finish, and the derived response times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..simulation.workloads import JobSpec

__all__ = ["TaskRecord", "JobRecord"]


@dataclass
class TaskRecord:
    """One task's life cycle inside the simulator."""

    job_id: int
    task_index: int
    duration: float
    arrival_time: float
    worker_id: Optional[int] = None
    enqueue_time: Optional[float] = None
    start_time: Optional[float] = None
    finish_time: Optional[float] = None

    @property
    def wait_time(self) -> float:
        """Time between arrival and start of service."""
        if self.start_time is None:
            raise ValueError("task has not started yet")
        return self.start_time - self.arrival_time

    @property
    def response_time(self) -> float:
        """Time between arrival and completion."""
        if self.finish_time is None:
            raise ValueError("task has not finished yet")
        return self.finish_time - self.arrival_time

    @property
    def finished(self) -> bool:
        return self.finish_time is not None


@dataclass
class JobRecord:
    """A job's tasks plus the derived job-level metrics.

    The paper's motivation (Section 1.3): a job's completion time is the time
    its *last* task finishes, so per-task d-choice degrades as parallelism
    grows — one straggler task suffices to delay the whole job.
    """

    spec: JobSpec
    tasks: List[TaskRecord] = field(default_factory=list)

    @classmethod
    def from_spec(cls, spec: JobSpec) -> "JobRecord":
        """Create runtime records for every task of the job."""
        record = cls(spec=spec)
        record.tasks = [
            TaskRecord(
                job_id=spec.job_id,
                task_index=index,
                duration=duration,
                arrival_time=spec.arrival_time,
            )
            for index, duration in enumerate(spec.task_durations)
        ]
        return record

    @property
    def job_id(self) -> int:
        return self.spec.job_id

    @property
    def arrival_time(self) -> float:
        return self.spec.arrival_time

    @property
    def finished(self) -> bool:
        return all(task.finished for task in self.tasks)

    @property
    def finish_time(self) -> float:
        """Completion time of the last task."""
        if not self.finished:
            raise ValueError(f"job {self.job_id} has unfinished tasks")
        return max(task.finish_time for task in self.tasks)  # type: ignore[arg-type]

    @property
    def response_time(self) -> float:
        """Job response time: last task finish minus job arrival."""
        return self.finish_time - self.arrival_time

    @property
    def mean_task_wait(self) -> float:
        """Average queueing delay across the job's tasks."""
        if not self.finished:
            raise ValueError(f"job {self.job_id} has unfinished tasks")
        return sum(task.wait_time for task in self.tasks) / len(self.tasks)
