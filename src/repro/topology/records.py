"""The frozen ``Topology`` record: zone → rack → bin trees with edge costs.

Real deployments do not probe a flat bin array: bins live in racks inside
zones, and a probe (or a ball transfer) that crosses a rack or zone
boundary costs more than a local one.  A :class:`Topology` freezes that
tree once — per-zone rack sizes, bins numbered contiguously zone by zone
and rack by rack — plus two cost tables keyed by the *relation* of a bin
to the caller's home rack/zone:

``"rack"``
    the bin shares the caller's rack (the cheapest edge),
``"zone"``
    same zone, different rack,
``"cross"``
    a different zone (the expensive edge).

Costs are monotone (``rack <= zone <= cross``) and purely observational:
they never perturb a scheme's random stream, so :meth:`Topology.flat`
(one zone, one rack, zero cost) reproduces the flat schemes' results
bit for bit — the parity the acceptance pins lock down.

The JSON contract (``format="repro-topology"``, ``version=1``) round-trips
through :meth:`Topology.to_dict` / :meth:`Topology.from_dict`, and the
named layout registry (:data:`TOPOLOGY_LAYOUTS`) provides bin-count
independent templates the CLI's ``--topology`` flag resolves by name.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

__all__ = [
    "TOPOLOGY_FORMAT",
    "TOPOLOGY_VERSION",
    "TopologyError",
    "Topology",
    "TopologyLayout",
    "TOPOLOGY_LAYOUTS",
    "as_topology",
    "load_topology",
    "save_topology",
    "topology_registry_dump",
    "zone_counter_extra",
]

TOPOLOGY_FORMAT = "repro-topology"
TOPOLOGY_VERSION = 1

#: The three relations a probed/target bin can have to the caller's home.
RELATIONS = ("rack", "zone", "cross")

#: Default edge costs for the non-trivial named layouts (arbitrary units;
#: only ratios matter).  Probing across a zone is modelled as 4x a
#: same-zone hop; moving a ball costs twice what probing does.
DEFAULT_PROBE_COSTS: Dict[str, float] = {"rack": 0.0, "zone": 1.0, "cross": 4.0}
DEFAULT_TRANSFER_COSTS: Dict[str, float] = {"rack": 0.0, "zone": 2.0, "cross": 8.0}

ZERO_COSTS: Dict[str, float] = {"rack": 0.0, "zone": 0.0, "cross": 0.0}


class TopologyError(ValueError):
    """Raised for malformed topology trees, costs or JSON documents."""


def _validate_costs(label: str, costs: Mapping[str, float]) -> Dict[str, float]:
    if set(costs) != set(RELATIONS):
        raise TopologyError(
            f"{label} must map exactly the relations {RELATIONS}, "
            f"got {sorted(costs)}"
        )
    normalized = {}
    for relation in RELATIONS:
        value = float(costs[relation])
        if not np.isfinite(value) or value < 0.0:
            raise TopologyError(
                f"{label}[{relation!r}] must be a finite non-negative "
                f"number, got {costs[relation]!r}"
            )
        normalized[relation] = value
    if not normalized["rack"] <= normalized["zone"] <= normalized["cross"]:
        raise TopologyError(
            f"{label} must be monotone (rack <= zone <= cross), got "
            f"rack={normalized['rack']:g}, zone={normalized['zone']:g}, "
            f"cross={normalized['cross']:g}"
        )
    return normalized


@dataclass(frozen=True)
class Topology:
    """A frozen zone → rack → bin tree with per-edge probe/transfer costs.

    ``zones[z][r]`` is the bin count of rack ``r`` in zone ``z``; bins are
    numbered contiguously zone by zone, rack by rack, so zone/rack
    membership is a pure function of the bin index.  The derived lookup
    arrays (``bin_zone``, ``bin_rack``, the rack/zone boundary vectors)
    are computed once at construction and shared read-only.

    The *home* of ball ``i`` interleaves round-robin over zones (zone
    ``i % n_zones``) and then round-robin over that zone's racks — a pure
    function of the ball index, so every surface (steppers, the scalar
    references, the event drivers) attributes the same ball to the same
    home without coordination.
    """

    name: str
    zones: Tuple[Tuple[int, ...], ...]
    probe_costs: Dict[str, float] = field(default_factory=lambda: dict(ZERO_COSTS))
    transfer_costs: Dict[str, float] = field(default_factory=lambda: dict(ZERO_COSTS))

    def __post_init__(self) -> None:
        zones = tuple(
            tuple(int(size) for size in zone) for zone in self.zones
        )
        if not zones:
            raise TopologyError("a topology needs at least one zone")
        for z, zone in enumerate(zones):
            if not zone:
                raise TopologyError(f"zone {z} has no racks")
            for r, size in enumerate(zone):
                if size <= 0:
                    raise TopologyError(
                        f"rack {r} of zone {z} must hold at least one bin, "
                        f"got {size}"
                    )
        object.__setattr__(self, "zones", zones)
        object.__setattr__(
            self, "probe_costs", _validate_costs("probe_costs", self.probe_costs)
        )
        object.__setattr__(
            self,
            "transfer_costs",
            _validate_costs("transfer_costs", self.transfer_costs),
        )

        rack_sizes = np.asarray(
            [size for zone in zones for size in zone], dtype=np.int64
        )
        rack_zone = np.asarray(
            [z for z, zone in enumerate(zones) for _ in zone], dtype=np.int64
        )
        rack_starts = np.concatenate(
            ([0], np.cumsum(rack_sizes))
        ).astype(np.int64)
        zone_sizes = np.asarray([sum(zone) for zone in zones], dtype=np.int64)
        zone_starts = np.concatenate(
            ([0], np.cumsum(zone_sizes))
        ).astype(np.int64)
        zone_rack_count = np.asarray([len(zone) for zone in zones], dtype=np.int64)
        zone_rack_start = np.concatenate(
            ([0], np.cumsum(zone_rack_count))
        )[:-1].astype(np.int64)
        n_racks = int(len(rack_sizes))
        object.__setattr__(self, "rack_sizes", rack_sizes)
        object.__setattr__(self, "rack_zone", rack_zone)
        object.__setattr__(self, "rack_starts", rack_starts)
        object.__setattr__(self, "zone_sizes", zone_sizes)
        object.__setattr__(self, "zone_starts", zone_starts)
        object.__setattr__(self, "zone_rack_count", zone_rack_count)
        object.__setattr__(self, "zone_rack_start", zone_rack_start)
        object.__setattr__(
            self, "bin_zone", np.repeat(rack_zone, rack_sizes)
        )
        object.__setattr__(
            self, "bin_rack", np.repeat(np.arange(n_racks), rack_sizes)
        )

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def n_zones(self) -> int:
        return len(self.zones)

    @property
    def n_racks(self) -> int:
        return int(self.rack_sizes.size)

    @property
    def n_bins(self) -> int:
        return int(self.rack_sizes.sum())

    @property
    def is_flat(self) -> bool:
        """One zone, one rack: the paper's undifferentiated bin array."""
        return self.n_zones == 1 and self.n_racks == 1

    @property
    def zero_cost(self) -> bool:
        return not any(self.probe_costs.values()) and not any(
            self.transfer_costs.values()
        )

    # ------------------------------------------------------------------
    # Home assignment (pure functions of the ball index)
    # ------------------------------------------------------------------
    def home_zone(self, ball_index: int) -> int:
        return int(ball_index) % self.n_zones

    def home_rack(self, ball_index: int) -> int:
        """The global rack id of ball ``ball_index``'s home rack."""
        zone = int(ball_index) % self.n_zones
        within = (int(ball_index) // self.n_zones) % int(
            self.zone_rack_count[zone]
        )
        return int(self.zone_rack_start[zone]) + within

    def home_zones(self, ball_indices: np.ndarray) -> np.ndarray:
        return ball_indices % self.n_zones

    def home_racks(self, ball_indices: np.ndarray) -> np.ndarray:
        zones = ball_indices % self.n_zones
        within = (ball_indices // self.n_zones) % self.zone_rack_count[zones]
        return self.zone_rack_start[zones] + within

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def grid(
        cls,
        n_bins: int,
        zones: int,
        racks_per_zone: int = 1,
        name: Optional[str] = None,
        probe_costs: Optional[Mapping[str, float]] = None,
        transfer_costs: Optional[Mapping[str, float]] = None,
    ) -> "Topology":
        """A regular ``zones x racks_per_zone`` grid over ``n_bins`` bins.

        Rack boundaries are the *global* ``linspace(0, n_bins, n_racks+1)``
        split — the exact group boundaries Always-Go-Left draws its ``d``
        probes from — so a grid whose total rack count equals ``d``
        reproduces the flat scheme's probe ranges bin for bin.
        """
        if zones < 1 or racks_per_zone < 1:
            raise TopologyError(
                f"need at least one zone and one rack per zone, got "
                f"zones={zones}, racks_per_zone={racks_per_zone}"
            )
        n_racks = zones * racks_per_zone
        if n_bins < n_racks:
            raise TopologyError(
                f"need n_bins >= {n_racks} racks, got n_bins={n_bins}"
            )
        boundaries = np.linspace(0, n_bins, n_racks + 1).astype(np.int64)
        sizes = np.diff(boundaries)
        zone_tuple = tuple(
            tuple(int(s) for s in sizes[z * racks_per_zone:(z + 1) * racks_per_zone])
            for z in range(zones)
        )
        return cls(
            name=name or f"grid-{zones}x{racks_per_zone}",
            zones=zone_tuple,
            probe_costs=dict(
                DEFAULT_PROBE_COSTS if probe_costs is None else probe_costs
            ),
            transfer_costs=dict(
                DEFAULT_TRANSFER_COSTS if transfer_costs is None else transfer_costs
            ),
        )

    @classmethod
    def flat(cls, n_bins: int) -> "Topology":
        """One zone, one rack, zero cost: the paper's flat bin array."""
        return cls.grid(
            n_bins, 1, 1, name="flat",
            probe_costs=ZERO_COSTS, transfer_costs=ZERO_COSTS,
        )

    # ------------------------------------------------------------------
    # JSON round-trip (format "repro-topology", version 1)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": TOPOLOGY_FORMAT,
            "version": TOPOLOGY_VERSION,
            "name": self.name,
            "zones": [list(zone) for zone in self.zones],
            "probe_costs": dict(self.probe_costs),
            "transfer_costs": dict(self.transfer_costs),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Topology":
        if payload.get("format") != TOPOLOGY_FORMAT:
            raise TopologyError(
                f"not a {TOPOLOGY_FORMAT} document "
                f"(format={payload.get('format')!r})"
            )
        if payload.get("version") != TOPOLOGY_VERSION:
            raise TopologyError(
                f"topology version {payload.get('version')!r} is not "
                f"supported (this build reads version {TOPOLOGY_VERSION})"
            )
        zones = payload.get("zones")
        if not isinstance(zones, (list, tuple)):
            raise TopologyError("topology document is missing its zones tree")
        return cls(
            name=str(payload.get("name") or "custom"),
            zones=tuple(tuple(zone) for zone in zones),
            probe_costs=dict(payload.get("probe_costs") or ZERO_COSTS),
            transfer_costs=dict(payload.get("transfer_costs") or ZERO_COSTS),
        )


def save_topology(path: "str | os.PathLike[str]", topology: Topology) -> None:
    """Write a topology document as canonical JSON (byte-stable)."""
    with open(path, "w", encoding="utf-8", newline="\n") as handle:
        json.dump(topology.to_dict(), handle, sort_keys=True, indent=2)
        handle.write("\n")


def load_topology(path: "str | os.PathLike[str]") -> Topology:
    """Read and validate a topology document from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise TopologyError(
                f"{os.fspath(path)}: invalid JSON ({exc.msg} at line "
                f"{exc.lineno})"
            ) from None
    if not isinstance(payload, dict):
        raise TopologyError(
            f"{os.fspath(path)}: not a topology document "
            f"(got {type(payload).__name__})"
        )
    return Topology.from_dict(payload)


# ----------------------------------------------------------------------
# Named layouts: bin-count independent templates
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TopologyLayout:
    """A named, ``n_bins``-independent topology template.

    ``bind(n_bins)`` materializes the layout as a :class:`Topology.grid`
    over a concrete bin count — how the CLI's ``--topology NAME`` flag and
    the ``topology_aware`` workload derive a tree from the spec's
    ``n_bins`` without baking a bin count into the registry.
    """

    name: str
    zones: int
    racks_per_zone: int
    probe_costs: Dict[str, float]
    transfer_costs: Dict[str, float]
    summary: str

    def bind(self, n_bins: int) -> Topology:
        return Topology.grid(
            n_bins,
            self.zones,
            self.racks_per_zone,
            name=self.name,
            probe_costs=self.probe_costs,
            transfer_costs=self.transfer_costs,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "zones": self.zones,
            "racks_per_zone": self.racks_per_zone,
            "probe_costs": dict(self.probe_costs),
            "transfer_costs": dict(self.transfer_costs),
            "summary": self.summary,
        }


TOPOLOGY_LAYOUTS: Dict[str, TopologyLayout] = {
    layout.name: layout
    for layout in (
        TopologyLayout(
            name="flat",
            zones=1,
            racks_per_zone=1,
            probe_costs=dict(ZERO_COSTS),
            transfer_costs=dict(ZERO_COSTS),
            summary="one zone, one rack, zero cost — the paper's flat array",
        ),
        TopologyLayout(
            name="dual_zone",
            zones=2,
            racks_per_zone=1,
            probe_costs=dict(DEFAULT_PROBE_COSTS),
            transfer_costs=dict(DEFAULT_TRANSFER_COSTS),
            summary="two zones of one rack each (the minimal cross-zone split)",
        ),
        TopologyLayout(
            name="quad_rack",
            zones=2,
            racks_per_zone=2,
            probe_costs=dict(DEFAULT_PROBE_COSTS),
            transfer_costs=dict(DEFAULT_TRANSFER_COSTS),
            summary="two zones x two racks (four go-left groups)",
        ),
        TopologyLayout(
            name="wide",
            zones=4,
            racks_per_zone=2,
            probe_costs=dict(DEFAULT_PROBE_COSTS),
            transfer_costs=dict(DEFAULT_TRANSFER_COSTS),
            summary="four zones x two racks (datacenter-shaped fan-out)",
        ),
    )
}


def as_topology(value: Any, n_bins: int) -> Topology:
    """Resolve any accepted ``topology=`` parameter spelling.

    ``None`` means the flat default; a string names a registered layout
    (bound to ``n_bins``); a mapping is a :meth:`Topology.from_dict`
    document (its bin total must match); a :class:`Topology` passes
    through after the same bin check.
    """
    if value is None:
        return Topology.flat(n_bins)
    if isinstance(value, Topology):
        topology = value
    elif isinstance(value, str):
        layout = TOPOLOGY_LAYOUTS.get(value)
        if layout is None:
            raise TopologyError(
                f"unknown topology layout {value!r}; choose from "
                f"{sorted(TOPOLOGY_LAYOUTS)} or pass a topology document"
            )
        return layout.bind(n_bins)
    elif isinstance(value, Mapping):
        topology = Topology.from_dict(value)
    else:
        raise TopologyError(
            f"topology must be None, a layout name, a topology document or "
            f"a Topology, got {type(value).__name__}"
        )
    if topology.n_bins != int(n_bins):
        raise TopologyError(
            f"topology {topology.name!r} covers {topology.n_bins} bins but "
            f"the spec has n_bins={n_bins}"
        )
    return topology


def topology_registry_dump() -> Dict[str, Any]:
    """The layout registry as one JSON document (the CLI's ``--json``)."""
    return {
        "format": "repro-topology-registry",
        "version": 1,
        "count": len(TOPOLOGY_LAYOUTS),
        "layouts": {
            name: TOPOLOGY_LAYOUTS[name].to_dict()
            for name in sorted(TOPOLOGY_LAYOUTS)
        },
    }


# ----------------------------------------------------------------------
# Shared result decoration
# ----------------------------------------------------------------------
def zone_counter_extra(
    topology: Topology, counters: Mapping[str, int]
) -> Dict[str, Any]:
    """Decorate zone counters with fractions and modelled costs.

    ``counters`` carries ``{rack,zone,cross}_probes`` and
    ``{rack,zone,cross}_places``; the scalar references and the derived
    engines both report their results through this one helper so the
    ``extra`` payloads cannot drift.
    """
    probes = {r: int(counters[f"{r}_probes"]) for r in RELATIONS}
    places = {r: int(counters[f"{r}_places"]) for r in RELATIONS}
    total_probes = sum(probes.values())
    total_places = sum(places.values())
    return {
        **{f"{r}_probes": probes[r] for r in RELATIONS},
        **{f"{r}_places": places[r] for r in RELATIONS},
        "cross_probe_fraction": (
            probes["cross"] / total_probes if total_probes else 0.0
        ),
        "cross_place_fraction": (
            places["cross"] / total_places if total_places else 0.0
        ),
        "probe_cost": float(
            sum(probes[r] * topology.probe_costs[r] for r in RELATIONS)
        ),
        "transfer_cost": float(
            sum(places[r] * topology.transfer_costs[r] for r in RELATIONS)
        ),
        "topology": topology.name,
    }
