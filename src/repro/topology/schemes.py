"""Scalar reference implementations of the topology-aware schemes.

Two schemes generalize the paper's flat processes onto a
:class:`~repro.topology.records.Topology`:

``run_hierarchical_go_left``
    Vöcking's Always-Go-Left with the topology's *racks* as the probe
    groups: one uniform probe per rack (racks ordered zone by zone), ties
    broken towards the leftmost rack.  A regular grid with ``d`` total
    racks draws from exactly the ``linspace`` group boundaries the flat
    scheme uses, so ``Topology.grid(n, d, 1)`` reproduces
    ``always_go_left`` with ``d`` groups bit for bit.

``run_locality_two_choice``
    Greedy[d] with a locality bias: a deterministic Bresenham schedule
    remaps an exact fraction ``bias`` of probe slots into the caller's
    home zone, and the ball spills to a cross-zone probe only when that
    probe is more than ``threshold`` balls lighter than the best local
    one.  At ``bias = 0`` no slot is remapped and the draw stream,
    selection rule and results are identical to flat ``two_choice``
    (``d = 2``); under ``Topology.flat()`` the remap is the identity, so
    parity holds for *any* bias.

Both runners draw the same RNG blocks as their derived engines (the
steppers in :mod:`repro.core.kernels.topology` and the vectorized runners
in the kernel table), which is what makes seed-for-seed equivalence
testable.  Costs never touch the random stream: they are accounted after
the fact through :func:`~repro.topology.records.zone_counter_extra`.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

import numpy as np

from ..core.baselines import _CHUNK, _make_rng, least_loaded_probe
from ..core.process import _DEFAULT_CHUNK_ROUNDS
from ..core.types import AllocationResult
from .records import Topology, as_topology, zone_counter_extra

__all__ = [
    "run_hierarchical_go_left",
    "run_locality_two_choice",
    "locality_select",
    "ZoneCounters",
]


class ZoneCounters:
    """Mutable local/zone/cross probe+place tally shared by the runners."""

    __slots__ = (
        "rack_probes", "zone_probes", "cross_probes",
        "rack_places", "zone_places", "cross_places",
    )

    def __init__(self) -> None:
        self.rack_probes = 0
        self.zone_probes = 0
        self.cross_probes = 0
        self.rack_places = 0
        self.zone_places = 0
        self.cross_places = 0

    def count_probes(
        self,
        topology: Topology,
        probes: np.ndarray,
        home_zones: np.ndarray,
        home_racks: np.ndarray,
    ) -> None:
        """Tally probe relations for a ``(balls, d)`` probe block."""
        probe_zones = topology.bin_zone[probes]
        probe_racks = topology.bin_rack[probes]
        same_zone = probe_zones == home_zones[:, None]
        same_rack = probe_racks == home_racks[:, None]
        self.rack_probes += int(np.count_nonzero(same_zone & same_rack))
        self.zone_probes += int(np.count_nonzero(same_zone & ~same_rack))
        self.cross_probes += int(np.count_nonzero(~same_zone))

    def count_place(
        self, topology: Topology, destination: int, hz: int, hr: int
    ) -> None:
        if int(topology.bin_zone[destination]) != hz:
            self.cross_places += 1
        elif int(topology.bin_rack[destination]) != hr:
            self.zone_places += 1
        else:
            self.rack_places += 1

    def count_places(
        self,
        topology: Topology,
        destinations: np.ndarray,
        home_zones: np.ndarray,
        home_racks: np.ndarray,
    ) -> None:
        dest_zones = topology.bin_zone[destinations]
        dest_racks = topology.bin_rack[destinations]
        same_zone = dest_zones == home_zones
        same_rack = dest_racks == home_racks
        self.rack_places += int(np.count_nonzero(same_zone & same_rack))
        self.zone_places += int(np.count_nonzero(same_zone & ~same_rack))
        self.cross_places += int(np.count_nonzero(~same_zone))

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


def locality_select(
    loads: Sequence[int],
    probes: Sequence[int],
    local_mask: np.ndarray,
    threshold: int,
    tiebreak: np.ndarray,
) -> int:
    """Pick the destination for one locality-two-choice ball.

    ``lexsort((tiebreak, heights))`` orders probes exactly as the flat
    strict rule does; when the probe set mixes local and remote bins the
    best local probe wins unless the best remote probe is more than
    ``threshold`` balls lighter.  All-local and all-remote rows reduce to
    the flat rule, which is the bit-for-bit parity anchor.
    """
    heights = np.fromiter(
        (loads[int(b)] for b in probes), dtype=np.int64, count=len(probes)
    ) + 1
    order = np.lexsort((tiebreak, heights))
    mask = local_mask[order]
    if mask.all() or not mask.any():
        return int(probes[int(order[0])])
    best_local = int(order[mask][0])
    best_remote = int(order[~mask][0])
    if heights[best_local] <= heights[best_remote] + threshold:
        return int(probes[best_local])
    return int(probes[best_remote])


def local_probe_slots(ball_indices: np.ndarray, d: int, bias: float) -> np.ndarray:
    """Bresenham local/remote schedule for a batch of balls.

    Probe slot ``t = ball*d + j`` is *local* iff the running total
    ``floor((t+1) * bias)`` advances at ``t`` — an exact-fraction
    deterministic schedule (``bias = 0`` never local, ``bias = 1`` always)
    that consumes no randomness, so the draw stream matches flat
    ``two_choice`` for every bias.  Returns a ``(balls, d)`` bool array.
    """
    slots = ball_indices[:, None] * np.int64(d) + np.arange(d, dtype=np.int64)
    return np.floor((slots + 1) * bias) > np.floor(slots * bias)


def _resolve_hierarchical(
    n_bins: int, d: Optional[int], topology: Any
) -> Topology:
    if topology is None:
        groups = 4 if d is None else int(d)
        topo = Topology.grid(n_bins, zones=groups, racks_per_zone=1)
    else:
        topo = as_topology(topology, n_bins)
        if d is not None and int(d) != topo.n_racks:
            raise ValueError(
                f"hierarchical go-left probes one bin per rack; topology "
                f"{topo.name!r} has {topo.n_racks} racks but d={d} was given"
            )
    if topo.n_racks < 1 or np.any(topo.rack_sizes <= 0):
        raise ValueError("every rack must contain at least one bin")
    return topo


def run_hierarchical_go_left(
    n_bins: int,
    d: Optional[int] = None,
    topology: Any = None,
    n_balls: Optional[int] = None,
    seed: "int | np.random.SeedSequence | None" = None,
    rng: Optional[np.random.Generator] = None,
) -> AllocationResult:
    """Always-Go-Left over a topology's racks (one probe per rack).

    Without a topology this defaults to a ``d``-zone one-rack-per-zone
    grid, which makes the probe ranges identical to flat
    ``always_go_left`` with ``d`` groups.  With a topology, ``d`` is
    implied by the rack count (passing both requires them to agree).
    """
    if n_bins <= 0:
        raise ValueError(f"n_bins must be positive, got {n_bins}")
    topo = _resolve_hierarchical(n_bins, d, topology)
    n_racks = topo.n_racks
    if n_balls is None:
        n_balls = n_bins
    if n_balls < 0:
        raise ValueError(f"n_balls must be non-negative, got {n_balls}")
    generator = _make_rng(seed, rng)

    boundaries = topo.rack_starts
    group_sizes = topo.rack_sizes
    counters = ZoneCounters()
    loads = [0] * n_bins
    messages = 0
    placed = 0
    while placed < n_balls:
        batch = min(n_balls - placed, _CHUNK)
        uniform = generator.random(size=(batch, n_racks))
        probes = (boundaries[:-1] + uniform * group_sizes).astype(np.int64)
        indices = np.arange(placed, placed + batch, dtype=np.int64)
        home_zones = topo.home_zones(indices)
        home_racks = topo.home_racks(indices)
        counters.count_probes(topo, probes, home_zones, home_racks)
        for offset, row in enumerate(probes.tolist()):
            messages += n_racks
            destination = least_loaded_probe(loads, row)
            loads[destination] += 1
            counters.count_place(
                topo, destination, int(home_zones[offset]), int(home_racks[offset])
            )
        placed += batch

    return AllocationResult(
        loads=np.asarray(loads, dtype=np.int64),
        scheme=f"hierarchical-go-left[{topo.name}]",
        n_bins=n_bins,
        n_balls=n_balls,
        k=1,
        d=n_racks,
        messages=messages,
        rounds=n_balls,
        policy="hierarchical",
        extra=zone_counter_extra(topo, counters.as_dict()),
    )


def run_locality_two_choice(
    n_bins: int,
    d: int = 2,
    bias: float = 0.0,
    threshold: int = 0,
    topology: Any = None,
    n_balls: Optional[int] = None,
    seed: "int | np.random.SeedSequence | None" = None,
    rng: Optional[np.random.Generator] = None,
    chunk_rounds: Optional[int] = None,
) -> AllocationResult:
    """Greedy[d] with zone-biased probes and threshold cross-zone spill.

    Each ball draws ``d`` uniform bins plus a tiebreak vector — the exact
    blocks flat ``two_choice`` draws — then the Bresenham schedule remaps
    an exact fraction ``bias`` of probe slots into the ball's home zone
    (``zone_starts[hz] + raw % zone_sizes[hz]``; the identity under a
    flat topology).  The ball joins the best local probe unless the best
    remote probe is more than ``threshold`` balls lighter.
    """
    if n_bins <= 0:
        raise ValueError(f"n_bins must be positive, got {n_bins}")
    if d < 1:
        raise ValueError(f"d must be at least 1, got {d}")
    if d > n_bins:
        raise ValueError(f"d must not exceed n_bins, got d={d}, n_bins={n_bins}")
    if not 0.0 <= bias <= 1.0:
        raise ValueError(f"bias must lie in [0, 1], got {bias}")
    threshold = int(threshold)
    if threshold < 0:
        raise ValueError(f"threshold must be non-negative, got {threshold}")
    topo = as_topology(topology, n_bins)
    if n_balls is None:
        n_balls = n_bins
    if n_balls < 0:
        raise ValueError(f"n_balls must be non-negative, got {n_balls}")
    if chunk_rounds is None:
        chunk_rounds = _DEFAULT_CHUNK_ROUNDS
    if chunk_rounds < 1:
        raise ValueError(f"chunk_rounds must be positive, got {chunk_rounds}")
    generator = _make_rng(seed, rng)

    zone_starts = topo.zone_starts
    zone_sizes = topo.zone_sizes
    bin_zone = topo.bin_zone
    counters = ZoneCounters()
    loads = [0] * n_bins
    messages = 0
    placed = 0
    drawn = 0
    while placed < n_balls:
        chunk = min(n_balls - drawn, chunk_rounds)
        buffer = generator.integers(0, n_bins, size=(chunk, d))
        drawn += chunk
        for row in buffer:
            ties = generator.random(d)
            index = placed
            hz = topo.home_zone(index)
            hr = topo.home_rack(index)
            local_slot = local_probe_slots(
                np.asarray([index], dtype=np.int64), d, bias
            )[0]
            mapped = np.where(
                local_slot,
                zone_starts[hz] + row % zone_sizes[hz],
                row,
            ).astype(np.int64)
            counters.count_probes(
                topo,
                mapped[None, :],
                np.asarray([hz], dtype=np.int64),
                np.asarray([hr], dtype=np.int64),
            )
            local_mask = bin_zone[mapped] == hz
            destination = locality_select(
                loads, mapped, local_mask, threshold, ties
            )
            loads[destination] += 1
            counters.count_place(topo, destination, hz, hr)
            messages += d
            placed += 1

    return AllocationResult(
        loads=np.asarray(loads, dtype=np.int64),
        scheme=f"locality-two-choice[{topo.name}]",
        n_bins=n_bins,
        n_balls=n_balls,
        k=1,
        d=d,
        messages=messages,
        rounds=n_balls,
        policy="locality",
        extra={
            **zone_counter_extra(topo, counters.as_dict()),
            "bias": float(bias),
            "threshold": threshold,
        },
    )
