"""Rack/zone topologies with cross-zone probe costs.

The :class:`~repro.topology.records.Topology` record freezes a
zone → rack → bin tree plus per-edge probe/transfer costs; the scheme
runners in :mod:`repro.topology.schemes` are the scalar references for
the topology-aware kernels (``hierarchical_always_go_left``,
``locality_two_choice``) registered in :mod:`repro.core.kernels.table`.
"""

from .records import (
    DEFAULT_PROBE_COSTS,
    DEFAULT_TRANSFER_COSTS,
    TOPOLOGY_FORMAT,
    TOPOLOGY_LAYOUTS,
    TOPOLOGY_VERSION,
    Topology,
    TopologyError,
    TopologyLayout,
    as_topology,
    load_topology,
    save_topology,
    topology_registry_dump,
    zone_counter_extra,
)
from .schemes import (
    ZoneCounters,
    local_probe_slots,
    locality_select,
    run_hierarchical_go_left,
    run_locality_two_choice,
)

__all__ = [
    "DEFAULT_PROBE_COSTS",
    "DEFAULT_TRANSFER_COSTS",
    "TOPOLOGY_FORMAT",
    "TOPOLOGY_LAYOUTS",
    "TOPOLOGY_VERSION",
    "Topology",
    "TopologyError",
    "TopologyLayout",
    "ZoneCounters",
    "as_topology",
    "load_topology",
    "local_probe_slots",
    "locality_select",
    "run_hierarchical_go_left",
    "run_locality_two_choice",
    "save_topology",
    "topology_registry_dump",
    "zone_counter_extra",
]
