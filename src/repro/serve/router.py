"""Shard routing policies: the paper's schemes applied to shard load vectors.

Which of the N allocator shards should serve the next placement?  That is
itself a balls-into-bins instance — shards are bins, requests are balls —
so the router speaks the paper's own language: ``round_robin`` is the
deterministic baseline, ``least_loaded`` is the full-information d=N probe,
and ``two_choice`` is the paper's (1, d)-choice scheme over the shard load
vector (probe ``d`` shards uniformly, commit to the least loaded).

Policies are *pluggable through the same registry machinery as the schemes
themselves*: :data:`ROUTER_POLICIES` is a
:class:`~repro.api.registry.SchemeRegistry`, so lookup, aliasing, signature
introspection and ``describe()`` all behave exactly like
``repro.api.get_scheme`` — one mechanism, two catalogues.

Determinism contract
--------------------
Routing decisions are a pure function of (policy, seed, arrival order).
Batch windows are timing-dependent (the server coalesces whatever arrived
within the window), so a policy must route identically no matter how the
request sequence was chunked into :meth:`Router.route_batch` calls.  The
randomized policy guarantees this by pre-drawing its probe rows in
fixed-size blocks that never align with batch boundaries; the deterministic
policies carry only counters/loads.  ``route(loads)`` is literally
``route_batch(1, loads)[0]``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..api.registry import SchemeRegistry

__all__ = [
    "ROUTER_POLICIES",
    "router_policy",
    "available_router_policies",
    "describe_router_policy",
    "RouterError",
    "Router",
    "RoundRobinRouter",
    "LeastLoadedRouter",
    "TwoChoiceRouter",
    "TopologyRouter",
    "make_router",
    "restore_router",
]

#: Probe rows pre-drawn per RNG block by the randomized policies.  Fixed —
#: part of the determinism contract (decisions must not depend on how the
#: arrival sequence was chunked into batch windows).
PROBE_BLOCK = 4096


class RouterError(ValueError):
    """Raised for unknown policies, bad shard counts and corrupt states."""


class Router:
    """Base class: a stateful ``arrival order -> shard index`` function.

    Subclasses implement :meth:`_route_into`, filling a destination array
    while maintaining a *working* shard-load view so that the i-th decision
    of a batch sees the i-1 earlier decisions of the same batch — batched
    routing is bit-identical to one-at-a-time routing.
    """

    policy = "base"

    def __init__(self, n_shards: int, seed: Optional[int] = None) -> None:
        if not isinstance(n_shards, int) or isinstance(n_shards, bool):
            raise RouterError(f"n_shards must be an integer, got {n_shards!r}")
        if n_shards < 1:
            raise RouterError(f"n_shards must be at least 1, got {n_shards}")
        self.n_shards = n_shards
        self.seed = seed
        self.decisions = 0

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route(self, shard_loads: Sequence[int]) -> int:
        """Route one request; ``shard_loads`` is the current live view."""
        return int(self.route_batch(1, shard_loads)[0])

    def route_batch(self, count: int, shard_loads: Sequence[int]) -> np.ndarray:
        """Route ``count`` requests arriving as one window.

        Returns the destination shard of each request in arrival order.
        Identical to ``count`` successive :meth:`route` calls against a live
        load view — the window is an ingestion optimization, not a semantic
        one.
        """
        count = int(count)
        if count < 0:
            raise RouterError(f"count must be non-negative, got {count}")
        loads = np.asarray(shard_loads, dtype=np.int64)
        if loads.shape != (self.n_shards,):
            raise RouterError(
                f"shard_loads must have shape ({self.n_shards},), "
                f"got {loads.shape}"
            )
        destinations = np.empty(count, dtype=np.int64)
        self._route_into(destinations, loads.copy())
        self.decisions += count
        return destinations

    def _route_into(self, destinations: np.ndarray, working: np.ndarray) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Persistence (cross-shard snapshot manifests)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """JSON-serializable policy state (manifest payload)."""
        return {
            "policy": self.policy,
            "n_shards": self.n_shards,
            "seed": self.seed,
            "decisions": self.decisions,
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        if state.get("policy") != self.policy:
            raise RouterError(
                f"cannot load {state.get('policy')!r} state into a "
                f"{self.policy!r} router"
            )
        if int(state["n_shards"]) != self.n_shards:
            raise RouterError(
                f"router state was captured over {state['n_shards']} shards, "
                f"this pool has {self.n_shards}"
            )
        self.decisions = int(state["decisions"])

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"{type(self).__name__}(n_shards={self.n_shards}, "
            f"decisions={self.decisions})"
        )


class RoundRobinRouter(Router):
    """Cycle through the shards in index order, ignoring load."""

    policy = "round_robin"

    def _route_into(self, destinations: np.ndarray, working: np.ndarray) -> None:
        count = len(destinations)
        np.mod(
            np.arange(self.decisions, self.decisions + count, dtype=np.int64),
            self.n_shards,
            out=destinations,
        )


class LeastLoadedRouter(Router):
    """Full-information baseline: always the least-loaded shard.

    Ties break to the lowest shard index (``argmin`` semantics), so the
    policy is deterministic without a seed.  Each decision inside a batch
    sees the batch's earlier decisions — batched routing water-fills.
    """

    policy = "least_loaded"

    def _route_into(self, destinations: np.ndarray, working: np.ndarray) -> None:
        loads: List[int] = working.tolist()  # python ints: fast scalar loop
        n = self.n_shards
        for position in range(len(destinations)):
            best = 0
            best_load = loads[0]
            for shard in range(1, n):
                if loads[shard] < best_load:
                    best = shard
                    best_load = loads[shard]
            destinations[position] = best
            loads[best] = best_load + 1


class TwoChoiceRouter(Router):
    """The paper's (1, d)-choice scheme over the shard load vector.

    Each request probes ``d`` shards uniformly at random (with replacement,
    matching the reference processes) and commits to the least loaded; ties
    break to the earliest probe.  Probe rows are pre-drawn in fixed
    :data:`PROBE_BLOCK`-row blocks from the policy's own generator, so the
    decision sequence depends only on (seed, arrival order) — never on how
    requests were grouped into batch windows.
    """

    policy = "two_choice"

    def __init__(
        self, n_shards: int, seed: Optional[int] = None, d: int = 2
    ) -> None:
        super().__init__(n_shards, seed=seed)
        if not isinstance(d, int) or isinstance(d, bool) or d < 1:
            raise RouterError(f"d must be a positive integer, got {d!r}")
        self.d = d
        self.rng = np.random.default_rng(seed)
        self._probes: np.ndarray = np.empty((0, d), dtype=np.int64)
        self._probe_pos = 0

    def _next_probe_rows(self, count: int) -> np.ndarray:
        """``count`` probe rows, consuming (and refilling) the block buffer."""
        rows = np.empty((count, self.d), dtype=np.int64)
        filled = 0
        while filled < count:
            if self._probe_pos == len(self._probes):
                self._probes = self.rng.integers(
                    0, self.n_shards, size=(PROBE_BLOCK, self.d), dtype=np.int64
                )
                self._probe_pos = 0
            take = min(count - filled, len(self._probes) - self._probe_pos)
            rows[filled : filled + take] = self._probes[
                self._probe_pos : self._probe_pos + take
            ]
            self._probe_pos += take
            filled += take
        return rows

    def _route_into(self, destinations: np.ndarray, working: np.ndarray) -> None:
        count = len(destinations)
        if count == 0:
            return
        probe_rows = self._next_probe_rows(count).tolist()
        loads: List[int] = working.tolist()
        for position, row in enumerate(probe_rows):
            best = row[0]
            best_load = loads[best]
            for shard in row[1:]:
                load = loads[shard]
                if load < best_load:
                    best = shard
                    best_load = load
            destinations[position] = best
            loads[best] = best_load + 1

    def state_dict(self) -> Dict[str, Any]:
        state = super().state_dict()
        state["d"] = self.d
        state["rng"] = _encode_rng_state(self.rng.bit_generator.state)
        # Only the unconsumed suffix of the probe buffer is state; a restore
        # resumes from it before drawing fresh blocks.
        state["probes"] = self._probes[self._probe_pos :].tolist()
        return state

    def load_state(self, state: Dict[str, Any]) -> None:
        super().load_state(state)
        if int(state["d"]) != self.d:
            raise RouterError(
                f"router state was captured with d={state['d']}, "
                f"this router has d={self.d}"
            )
        self.rng.bit_generator.state = _decode_rng_state(state["rng"])
        probes = np.asarray(state["probes"], dtype=np.int64)
        self._probes = probes.reshape(len(probes), self.d)
        self._probe_pos = 0


class TopologyRouter(TwoChoiceRouter):
    """Zone-aware d-choice: probe the caller's zone first, spill on threshold.

    Shards map onto ``zones`` round-robin (shard ``s`` lives in zone
    ``s % zones``) and arrivals carry a home zone the same way (the i-th
    request belongs to zone ``i % zones`` — the serve-side analogue of the
    ``topology_aware`` workload's home assignment).  Each request draws the
    same pre-drawn probe row a :class:`TwoChoiceRouter` would, then remaps
    the *first* probe into its home zone's shard set; the remaining probes
    stay global.  The best local probe wins unless the best cross-zone probe
    beats it by more than ``threshold``, in which case the request spills and
    is charged ``cross_cost``.  ``cross_routes``/``route_cost`` tally the
    spills; both persist through :meth:`state_dict`.

    With ``zones=1`` every shard is local, no spill can happen, and the
    decision sequence degenerates to plain ``two_choice`` bit-for-bit (the
    probe stream is shared, the remap is the identity mod 1 pool).
    """

    policy = "topology"

    def __init__(
        self,
        n_shards: int,
        seed: Optional[int] = None,
        d: int = 2,
        zones: int = 2,
        threshold: int = 0,
        cross_cost: float = 1.0,
    ) -> None:
        super().__init__(n_shards, seed=seed, d=d)
        if not isinstance(zones, int) or isinstance(zones, bool) or zones < 1:
            raise RouterError(f"zones must be a positive integer, got {zones!r}")
        if zones > n_shards:
            raise RouterError(
                f"zones must not exceed n_shards ({n_shards}), got {zones}"
            )
        if not isinstance(threshold, int) or isinstance(threshold, bool):
            raise RouterError(
                f"threshold must be a non-negative integer, got {threshold!r}"
            )
        if threshold < 0:
            raise RouterError(
                f"threshold must be a non-negative integer, got {threshold!r}"
            )
        cross_cost = float(cross_cost)
        if not np.isfinite(cross_cost) or cross_cost < 0:
            raise RouterError(
                f"cross_cost must be finite and non-negative, got {cross_cost!r}"
            )
        self.zones = zones
        self.threshold = threshold
        self.cross_cost = cross_cost
        self.shard_zone = np.arange(n_shards, dtype=np.int64) % zones
        self._zone_shards = [
            np.flatnonzero(self.shard_zone == zone).tolist()
            for zone in range(zones)
        ]
        self.cross_routes = 0
        self.route_cost = 0.0

    def _route_into(self, destinations: np.ndarray, working: np.ndarray) -> None:
        count = len(destinations)
        if count == 0:
            return
        probe_rows = self._next_probe_rows(count).tolist()
        loads: List[int] = working.tolist()
        shard_zone = self.shard_zone.tolist()
        zones = self.zones
        threshold = self.threshold
        base = self.decisions
        for position, row in enumerate(probe_rows):
            home = (base + position) % zones
            pool = self._zone_shards[home]
            row[0] = pool[row[0] % len(pool)]
            best_local = -1
            best_local_load = 0
            best_remote = -1
            best_remote_load = 0
            for shard in row:
                load = loads[shard]
                if shard_zone[shard] == home:
                    if best_local < 0 or load < best_local_load:
                        best_local = shard
                        best_local_load = load
                else:
                    if best_remote < 0 or load < best_remote_load:
                        best_remote = shard
                        best_remote_load = load
            # The first probe is always local, so best_local is always set.
            if best_remote < 0 or best_local_load <= best_remote_load + threshold:
                chosen = best_local
            else:
                chosen = best_remote
                self.cross_routes += 1
                self.route_cost += self.cross_cost
            destinations[position] = chosen
            loads[chosen] += 1

    def state_dict(self) -> Dict[str, Any]:
        state = super().state_dict()
        state["zones"] = self.zones
        state["threshold"] = self.threshold
        state["cross_cost"] = self.cross_cost
        state["cross_routes"] = self.cross_routes
        state["route_cost"] = self.route_cost
        return state

    def load_state(self, state: Dict[str, Any]) -> None:
        super().load_state(state)
        if int(state["zones"]) != self.zones:
            raise RouterError(
                f"router state was captured with zones={state['zones']}, "
                f"this router has zones={self.zones}"
            )
        self.cross_routes = int(state.get("cross_routes", 0))
        self.route_cost = float(state.get("route_cost", 0.0))


def _encode_rng_state(state: Dict[str, Any]) -> Dict[str, Any]:
    """numpy bit-generator state as plain JSON types (ints stay exact)."""

    def encode(value: Any) -> Any:
        if isinstance(value, dict):
            return {key: encode(item) for key, item in value.items()}
        if isinstance(value, np.integer):
            return int(value)
        if isinstance(value, np.ndarray):
            return {"__ndarray__": value.tolist(), "dtype": value.dtype.str}
        return value

    return encode(state)


def _decode_rng_state(state: Dict[str, Any]) -> Dict[str, Any]:
    def decode(value: Any) -> Any:
        if isinstance(value, dict):
            if "__ndarray__" in value:
                return np.asarray(
                    value["__ndarray__"], dtype=np.dtype(value["dtype"])
                )
            return {key: decode(item) for key, item in value.items()}
        return value

    return decode(state)


# ----------------------------------------------------------------------
# The policy catalogue — same registry machinery as the schemes
# ----------------------------------------------------------------------
#: Registry of router policies.  A second :class:`SchemeRegistry` instance:
#: registration introspects the factory signature, names resolve through
#: aliases, and ``describe()`` reports parameters — identical mechanics to
#: the scheme catalogue behind ``repro.api.get_scheme``.
ROUTER_POLICIES = SchemeRegistry()

router_policy = ROUTER_POLICIES.register


@router_policy("round_robin", aliases=("rr",), tags=("router",))
def _round_robin(n_shards: int, seed: Optional[int] = None) -> Router:
    """Cycle through shards in index order (load-oblivious baseline)."""
    return RoundRobinRouter(n_shards, seed=seed)


@router_policy("least_loaded", aliases=("ll",), tags=("router",))
def _least_loaded(n_shards: int, seed: Optional[int] = None) -> Router:
    """Always the least-loaded shard (full-information d=N probe)."""
    return LeastLoadedRouter(n_shards, seed=seed)


@router_policy("two_choice", aliases=("two", "d_choice"), tags=("router",))
def _two_choice(
    n_shards: int, seed: Optional[int] = None, d: int = 2
) -> Router:
    """Probe d shards uniformly, commit to the least loaded (the paper)."""
    return TwoChoiceRouter(n_shards, seed=seed, d=d)


@router_policy("topology", aliases=("zone",), tags=("router",))
def _topology(
    n_shards: int,
    seed: Optional[int] = None,
    d: int = 2,
    zones: int = 2,
    threshold: int = 0,
    cross_cost: float = 1.0,
) -> Router:
    """Zone-biased d-choice: local probe first, cross-zone spill on threshold."""
    return TopologyRouter(
        n_shards,
        seed=seed,
        d=d,
        zones=zones,
        threshold=threshold,
        cross_cost=cross_cost,
    )


def available_router_policies() -> List[str]:
    """Sorted canonical names of every registered router policy."""
    return ROUTER_POLICIES.names()


def describe_router_policy(name: str) -> Dict[str, Any]:
    """Summary and parameters of one policy (registry ``describe()``)."""
    return ROUTER_POLICIES.describe(name)


def make_router(
    policy: str,
    n_shards: int,
    seed: Optional[int] = None,
    **params: Any,
) -> Router:
    """Instantiate a registered policy by name (or alias).

    ``params`` forwards policy-specific knobs (e.g. ``d=4`` for
    ``two_choice``); unknown policies raise with the candidate list, like
    scheme lookup does.
    """
    try:
        info = ROUTER_POLICIES.get(policy)
    except KeyError as exc:
        raise RouterError(str(exc.args[0])) from None
    try:
        router = info.runner(n_shards=n_shards, seed=seed, **params)
    except TypeError:
        supported = [
            name for name in info.parameters if name not in ("n_shards", "seed")
        ]
        raise RouterError(
            f"invalid parameters {sorted(params)} for router policy "
            f"{info.name!r}; supported: {supported}"
        ) from None
    if not isinstance(router, Router):
        raise RouterError(
            f"policy {info.name!r} factory returned "
            f"{type(router).__name__}, expected a Router"
        )
    return router


def restore_router(state: Dict[str, Any]) -> Router:
    """Rebuild a router from a :meth:`Router.state_dict` capture."""
    try:
        policy = state["policy"]
        n_shards = int(state["n_shards"])
    except (KeyError, TypeError) as exc:
        raise RouterError(f"malformed router state: missing {exc}") from None
    params: Dict[str, Any] = {}
    for key, caster in (
        ("d", int),
        ("zones", int),
        ("threshold", int),
        ("cross_cost", float),
    ):
        if key in state:
            params[key] = caster(state[key])
    router = make_router(policy, n_shards, seed=state.get("seed"), **params)
    router.load_state(state)
    return router
