"""The load generator: drive a running allocation server, measure it.

``repro loadgen`` is the companion of ``repro serve``: it builds a
deterministic request stream from the workload registry that powers
``repro stream`` and ``simulate`` (:mod:`repro.workloads` — the same
``(workload, params, seed)`` triple yields the identical event list on
every surface), fans it out over N pipelined connections, and reports
sustained placements/sec plus latency percentiles and the server's
batching counters.

The *request stream* is deterministic (fixed seed -> same events, same
per-connection partition); the *measurements* are wall-clock.  Events are
fired flat-out (arrival timestamps shape the trace, they are not used to
pace transmission) — the generator measures what the server can sustain,
not what the arrival process would offer.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..workloads import generate_workload_events
from .client import ServeClient, ServeError

__all__ = ["LoadgenReport", "build_loadgen_events", "run_loadgen", "loadgen"]


def build_loadgen_events(
    items: int,
    churn: float = 0.0,
    arrival_process: str = "none",
    arrival_rate: float = 1000.0,
    burstiness: float = 4.0,
    seed: Optional[int] = 0,
    workload: Optional[str] = None,
    workload_params: Optional[Dict[str, Any]] = None,
) -> List[Dict[str, Any]]:
    """The loadgen's event stream: the registry stream, verbatim.

    One derivation point so the cross-surface equivalence harness can
    assert the loadgen fires byte-for-byte the events ``repro stream``
    and ``simulate`` consume for the same ``(workload, params, seed)``.
    """
    return generate_workload_events(
        items,
        arrival_process=arrival_process,
        arrival_rate=arrival_rate,
        burstiness=burstiness,
        churn=churn,
        seed=seed,
        workload=workload,
        workload_params=workload_params,
    )


@dataclass
class LoadgenReport:
    """Outcome of one loadgen run against a live server."""

    events: int
    places: int
    removes: int
    errors: int
    connections: int
    wall_time: float
    placements_per_sec: float
    latency_ms: Dict[str, float]
    server: Dict[str, Any] = field(default_factory=dict)
    pool: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "events": self.events,
            "places": self.places,
            "removes": self.removes,
            "errors": self.errors,
            "connections": self.connections,
            "wall_time": self.wall_time,
            "placements_per_sec": self.placements_per_sec,
            "latency_ms": dict(self.latency_ms),
            "server": dict(self.server),
            "pool": dict(self.pool),
        }

    def format_text(self) -> str:
        lines = [
            f"loadgen: {self.events} events ({self.places} places, "
            f"{self.removes} removes, {self.errors} errors) "
            f"over {self.connections} connections",
            f"  wall_time: {self.wall_time:.3f} s",
            f"  placements_per_sec: {self.placements_per_sec:,.0f}",
            "  latency_ms: "
            + ", ".join(
                f"{key}={value:.3f}" for key, value in self.latency_ms.items()
            ),
        ]
        if self.server:
            lines.append(
                f"  server: requests={self.server['requests']}, "
                f"batches={self.server['batches']}, "
                f"mean_batch={self.server['mean_batch']:.1f}, "
                f"largest_batch={self.server['largest_batch']}"
            )
        if self.pool:
            lines.append(
                f"  pool: shards={self.pool['n_shards']} "
                f"(policy={self.pool['policy']}), "
                f"placed={self.pool['placed']}, "
                f"live_items={self.pool['live_items']}, "
                f"max_load={self.pool['max_load']}, "
                f"shard_items={self.pool['shard_items']}"
            )
        if self.pool and "cross_routes" in self.pool:
            lines.append(
                f"  routing: cross_routes={self.pool['cross_routes']} "
                f"(fraction={self.pool['cross_route_fraction']:.4f}), "
                f"route_cost={self.pool['route_cost']:.1f}"
            )
        return "\n".join(lines)


class _Tally:
    """Mutable counters shared by the connection drivers."""

    def __init__(self) -> None:
        self.places = 0
        self.removes = 0
        self.errors = 0
        self.latencies: List[float] = []


async def _drive_connection(
    host: str,
    port: int,
    events: List[Dict[str, Any]],
    max_in_flight: int,
    tally: _Tally,
) -> None:
    """Fire one connection's event subsequence with a bounded window.

    Requests pipeline (up to ``max_in_flight`` outstanding); within the
    connection they are *written* in event order, which is what lets the
    server's arrival-order semantics guarantee a place lands before the
    remove of the same item.
    """
    client = await ServeClient.connect(host, port)
    window = asyncio.Semaphore(max_in_flight)
    tasks: List[asyncio.Task] = []

    async def fire(event: Dict[str, Any]) -> None:
        try:
            started = time.perf_counter()
            if event["op"] == "place":
                await client.place(event.get("item"))
                tally.places += 1
            else:
                await client.remove(event["item"])
                tally.removes += 1
            tally.latencies.append(time.perf_counter() - started)
        except ServeError:
            tally.errors += 1
        finally:
            window.release()

    try:
        for event in events:
            await window.acquire()
            tasks.append(asyncio.create_task(fire(event)))
        if tasks:
            await asyncio.gather(*tasks)
    finally:
        await client.close()


def _partition_events(
    events: List[Dict[str, Any]], connections: int
) -> List[List[Dict[str, Any]]]:
    """Split the stream by item id, keeping each item's events together.

    A remove must travel on the connection that placed the item (ordering
    is per-connection), so events partition by ``item % connections`` —
    every event carries the item id it concerns.
    """
    parts: List[List[Dict[str, Any]]] = [[] for _ in range(connections)]
    for event in events:
        parts[event["item"] % connections].append(event)
    return parts


async def run_loadgen(
    host: str,
    port: int,
    items: int,
    connections: int = 4,
    max_in_flight: int = 64,
    churn: float = 0.0,
    arrival_process: str = "none",
    arrival_rate: float = 1000.0,
    burstiness: float = 4.0,
    seed: Optional[int] = 0,
    collect_stats: bool = True,
    shutdown_after: bool = False,
    workload: Optional[str] = None,
    workload_params: Optional[Dict[str, Any]] = None,
) -> LoadgenReport:
    """Drive ``items`` placements (plus churn) at the server; measure.

    The event stream and its partition over connections are deterministic
    in ``seed``; see the module docstring for what is and is not measured.
    ``shutdown_after`` sends the shutdown op once the stream (and the final
    stats read) completes — the clean-exit path the CI smoke step uses.
    """
    if connections < 1:
        raise ValueError(f"connections must be positive, got {connections}")
    if max_in_flight < 1:
        raise ValueError(
            f"max_in_flight must be positive, got {max_in_flight}"
        )
    events = build_loadgen_events(
        items,
        arrival_process=arrival_process,
        arrival_rate=arrival_rate,
        burstiness=burstiness,
        churn=churn,
        seed=seed,
        workload=workload,
        workload_params=workload_params,
    )
    connections = min(connections, max(1, items))
    parts = _partition_events(events, connections)
    tally = _Tally()
    started = time.perf_counter()
    await asyncio.gather(
        *(
            _drive_connection(host, port, part, max_in_flight, tally)
            for part in parts
            if part
        )
    )
    wall_time = max(time.perf_counter() - started, 1e-12)
    server_stats: Dict[str, Any] = {}
    pool_stats: Dict[str, Any] = {}
    if collect_stats or shutdown_after:
        client = await ServeClient.connect(host, port)
        try:
            if collect_stats:
                stats = await client.stats()
                server_stats = stats["server"]
                pool_stats = stats["pool"]
                pool_stats.pop("shards", None)  # per-shard detail is verbose
            if shutdown_after:
                await client.shutdown()
        finally:
            await client.close()
    if tally.latencies:
        values = np.percentile(
            np.asarray(tally.latencies) * 1000.0, (50, 95, 99)
        )
        latency_ms = {
            "p50": float(values[0]),
            "p95": float(values[1]),
            "p99": float(values[2]),
            "mean": float(np.mean(tally.latencies) * 1000.0),
            "max": float(np.max(tally.latencies) * 1000.0),
        }
    else:
        latency_ms = {"p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}
    return LoadgenReport(
        events=len(events),
        places=tally.places,
        removes=tally.removes,
        errors=tally.errors,
        connections=connections,
        wall_time=wall_time,
        placements_per_sec=tally.places / wall_time,
        latency_ms=latency_ms,
        server=server_stats,
        pool=pool_stats,
    )


def loadgen(**kwargs: Any) -> LoadgenReport:
    """Synchronous wrapper: ``asyncio.run(run_loadgen(...))``."""
    return asyncio.run(run_loadgen(**kwargs))
