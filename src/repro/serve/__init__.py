"""repro.serve — the sharded allocation service.

:mod:`repro.online` made the allocator a long-lived service; this package
makes it *horizontal*: N allocator shards (one
:class:`~repro.online.allocator.OnlineAllocator` per worker process, or per
thread for debugging) behind a pluggable router, fronted by an asyncio TCP
server that coalesces concurrent placements into ``place_batch`` windows.
The shard-routing question is itself a (k, d)-choice instance, so the
default policy is the paper's own ``two_choice`` scheme applied to the
shard load vector.

Key pieces
----------
:class:`ShardPool`
    The in-process client API: route + place/remove across N shards,
    consistent cross-shard snapshot manifests (per-shard digests,
    verify-before-restore), atomic save/load.
:mod:`~repro.serve.router`
    ``round_robin`` / ``least_loaded`` / ``two_choice`` policies, looked up
    through the same registry machinery as the schemes themselves.
:class:`AllocationServer` / :class:`ServeClient`
    Newline-delimited JSON over TCP with a batching window
    (``max_batch`` / ``max_delay``); pipelining asyncio client plus a
    blocking facade.  CLI: ``repro serve``.
:func:`run_loadgen`
    Deterministic workload generator + measurement harness against a live
    server.  CLI: ``repro loadgen``.
"""

from .client import BlockingServeClient, ServeClient, ServeError
from .loadgen import LoadgenReport, loadgen, run_loadgen
from .pool import (
    MANIFEST_FORMAT,
    MANIFEST_VERSION,
    ShardPool,
    ShardPoolError,
)
from .protocol import PROTOCOL_VERSION, ProtocolError
from .router import (
    ROUTER_POLICIES,
    LeastLoadedRouter,
    RoundRobinRouter,
    Router,
    RouterError,
    TopologyRouter,
    TwoChoiceRouter,
    available_router_policies,
    describe_router_policy,
    make_router,
    restore_router,
    router_policy,
)
from .server import AllocationServer, ServeConfig

__all__ = [
    "MANIFEST_FORMAT",
    "MANIFEST_VERSION",
    "PROTOCOL_VERSION",
    "ROUTER_POLICIES",
    "AllocationServer",
    "BlockingServeClient",
    "LeastLoadedRouter",
    "LoadgenReport",
    "ProtocolError",
    "RoundRobinRouter",
    "Router",
    "RouterError",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ShardPool",
    "ShardPoolError",
    "TopologyRouter",
    "TwoChoiceRouter",
    "available_router_policies",
    "describe_router_policy",
    "loadgen",
    "make_router",
    "restore_router",
    "router_policy",
    "run_loadgen",
]
