"""The asyncio frontend: NDJSON over TCP, batched into ``place_batch`` windows.

:class:`AllocationServer` owns a :class:`~repro.serve.pool.ShardPool` and
serves the :mod:`~repro.serve.protocol` over TCP.  Concurrent ``place``
requests — from any number of connections — are coalesced into *batch
windows*: the batcher collects up to ``max_batch`` placements or whatever
arrived within ``max_delay`` seconds of the first, then routes and places
the whole window through one :meth:`ShardPool.place_batch` call, riding the
allocator's batched ingestion path instead of paying the per-request loop.

Ordering semantics: every mutating operation (place, place_batch, remove,
snapshot) passes through one queue and executes in arrival order — a
``remove`` flushes the window collecting in front of it, and ``snapshot``
quiesces the whole pipeline before the manifest is captured, so the written
manifest is a consistent cut.  Responses may return out of order (clients
match them by ``id``).

All pool work runs on a dedicated single-thread executor: the event loop
never blocks on shard IPC, and pool state is touched by exactly one thread.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..api.spec import SchemeSpec
from .pool import ShardPool, ShardPoolError
from .protocol import (
    ProtocolError,
    decode_request,
    encode,
    error_response,
    ok_response,
)

__all__ = ["ServeConfig", "AllocationServer"]


@dataclass
class ServeConfig:
    """Tunables of one server instance."""

    host: str = "127.0.0.1"
    port: int = 0  #: 0 = ephemeral; read the bound port off ``server.port``
    n_shards: int = 1
    policy: str = "two_choice"
    mode: str = "process"
    policy_params: Dict[str, Any] = field(default_factory=dict)
    max_batch: int = 1024  #: placements coalesced per window at most
    max_delay: float = 0.002  #: seconds the window stays open after its first
    snapshot_on_exit: Optional[str] = None  #: manifest path written by stop()

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be positive, got {self.max_batch}")
        if self.max_delay < 0:
            raise ValueError(
                f"max_delay must be non-negative, got {self.max_delay}"
            )


class _Stop:
    """Queue sentinel ending the batch loop."""


_STOP = _Stop()


class AllocationServer:
    """One shard pool behind a batching TCP frontend.

    Build it with a spec (the pool is created on :meth:`start`) or hand it a
    pre-built pool.  Typical lifecycle::

        server = AllocationServer(spec, ServeConfig(n_shards=4))
        await server.start()
        ...                       # port available as server.port
        await server.serve_forever()   # returns after stop()/shutdown op
    """

    def __init__(
        self,
        spec: Optional[SchemeSpec] = None,
        config: Optional[ServeConfig] = None,
        pool: Optional[ShardPool] = None,
    ) -> None:
        if (spec is None) == (pool is None):
            raise ValueError("pass exactly one of spec= or pool=")
        self.spec = spec if spec is not None else pool.spec
        self.config = config if config is not None else ServeConfig()
        self.pool = pool
        self._server: Optional[asyncio.base_events.Server] = None
        self._port: Optional[int] = None
        # The queue and the stopped event are created inside start() — on
        # Python 3.9 asyncio primitives bind to the loop that is running at
        # construction time, and the server object may be built before any
        # loop exists.
        self._queue: "Optional[asyncio.Queue[Any]]" = None
        self._batcher: Optional[asyncio.Task] = None
        self._pool_executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-pool"
        )
        self._stopped: Optional[asyncio.Event] = None
        self._stopping = False
        # Counters reported by the stats op (and the CI smoke step).
        self.requests = 0
        self.places = 0
        self.removes = 0
        self.protocol_errors = 0
        self.batches = 0
        self.batched_places = 0
        self.largest_batch = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound TCP port (valid after :meth:`start`, survives close)."""
        if self._port is None:
            raise RuntimeError("the server has not been started")
        return self._port

    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._stopped = asyncio.Event()
        if self.pool is None:
            config = self.config
            self.pool = await loop.run_in_executor(
                self._pool_executor,
                lambda: ShardPool(
                    self.spec,
                    config.n_shards,
                    policy=config.policy,
                    mode=config.mode,
                    policy_params=config.policy_params,
                ),
            )
        self._batcher = asyncio.create_task(self._batch_loop())
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Drain the pipeline, optionally snapshot, shut everything down."""
        if self._stopped is None:
            raise RuntimeError("the server has not been started")
        if self._stopping:
            await self._stopped.wait()
            return
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._batcher is not None:
            await self._queue.put(_STOP)
            await self._batcher
        if self.pool is not None:
            loop = asyncio.get_running_loop()
            if self.config.snapshot_on_exit:
                await loop.run_in_executor(
                    self._pool_executor,
                    self.pool.save,
                    self.config.snapshot_on_exit,
                )
            await loop.run_in_executor(self._pool_executor, self.pool.close)
        self._pool_executor.shutdown(wait=True)
        self._stopped.set()

    async def serve_forever(self) -> None:
        """Block until :meth:`stop` completes (shutdown op or external)."""
        if self._stopped is None:
            raise RuntimeError("the server has not been started")
        await self._stopped.wait()

    # ------------------------------------------------------------------
    # The batching window
    # ------------------------------------------------------------------
    async def _pool_call(self, fn: Any, *args: Any) -> Any:
        return await asyncio.get_running_loop().run_in_executor(
            self._pool_executor, fn, *args
        )

    async def _flush(
        self, batch: List[Tuple[Any, "asyncio.Future"]]
    ) -> None:
        """Place one window through the pool and resolve its futures."""
        if not batch:
            return
        items = [item for item, _ in batch]
        keys: Optional[List[Any]] = None
        if any(item is not None for item in items):
            # The pool requires all-or-none item ids; untracked placements
            # in a mixed window get synthetic ones.
            keys = [
                item if item is not None else f"__serve_auto_{self.places + i}"
                for i, item in enumerate(items)
            ]
        self.batches += 1
        self.batched_places += len(batch)
        self.largest_batch = max(self.largest_batch, len(batch))
        try:
            shards, bins = await self._pool_call(
                self.pool.place_batch, len(batch), keys
            )
        except (ShardPoolError, ValueError) as exc:
            for _, future in batch:
                if not future.done():
                    future.set_exception(ShardPoolError(str(exc)))
            return
        self.places += len(batch)
        for position, (_, future) in enumerate(batch):
            if not future.done():
                future.set_result(
                    (int(shards[position]), int(bins[position]))
                )

    async def _batch_loop(self) -> None:
        """Coalesce queued placements into windows; keep arrival order."""
        loop = asyncio.get_running_loop()
        stopping = False
        while not stopping:
            entry = await self._queue.get()
            if entry is _STOP:
                break
            batch: List[Tuple[Any, "asyncio.Future"]] = []
            # Collect a window: up to max_batch places, or whatever arrives
            # within max_delay of the first; any non-place entry closes the
            # window (it must execute after the places queued before it).
            deadline = loop.time() + self.config.max_delay
            tail: Optional[Any] = None
            while True:
                kind = entry[0]
                if kind == "place":
                    batch.append((entry[1], entry[2]))
                    if len(batch) >= self.config.max_batch:
                        break
                else:
                    tail = entry
                    break
                timeout = deadline - loop.time()
                if timeout <= 0:
                    break
                try:
                    entry = await asyncio.wait_for(
                        self._queue.get(), timeout
                    )
                except asyncio.TimeoutError:
                    break
                if entry is _STOP:
                    stopping = True
                    break
            await self._flush(batch)
            if tail is not None:
                await self._run_ordered(tail)
        # Drain anything queued behind the stop sentinel.
        while not self._queue.empty():
            entry = self._queue.get_nowait()
            if entry is _STOP:
                continue
            future = entry[2]
            if not future.done():
                future.set_exception(ShardPoolError("the server is stopping"))

    async def _run_ordered(self, entry: Any) -> None:
        """Execute a non-place entry at its arrival-order position."""
        kind, payload, future = entry
        try:
            if kind == "remove":
                result = await self._pool_call(self.pool.remove, payload)
            elif kind == "batch":
                result = await self._pool_call(
                    self.pool.place_batch, payload, None
                )
                self.places += payload
            elif kind == "snapshot":
                result = await self._pool_call(self.pool.save, payload)
            else:  # pragma: no cover - internal invariant
                raise ShardPoolError(f"unknown queue entry {kind!r}")
        except (ShardPoolError, ValueError) as exc:
            if not future.done():
                future.set_exception(ShardPoolError(str(exc)))
            return
        if not future.done():
            future.set_result(result)

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        tasks: List[asyncio.Task] = []
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                # One task per request: responses go out as they resolve
                # (matched by id), so a pipelining client keeps the batch
                # window full instead of ping-ponging per request.
                tasks.append(
                    asyncio.create_task(
                        self._serve_request(line, writer, write_lock)
                    )
                )
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _serve_request(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        self.requests += 1
        request_id: Any = None
        try:
            request = decode_request(line)
            request_id = request.get("id")
            response = await self._dispatch(request)
        except ProtocolError as exc:
            self.protocol_errors += 1
            response = error_response(request_id, str(exc))
        except (ShardPoolError, ValueError) as exc:
            response = error_response(request_id, str(exc))
        async with write_lock:
            writer.write(encode(response))
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request["op"]
        request_id = request.get("id")
        loop = asyncio.get_running_loop()
        if op == "ping":
            return ok_response(request_id, op="ping")
        if op == "place":
            future: "asyncio.Future" = loop.create_future()
            await self._queue.put(("place", request.get("item"), future))
            shard, bin_index = await future
            return ok_response(request_id, shard=shard, bin=bin_index)
        if op == "place_batch":
            future = loop.create_future()
            await self._queue.put(("batch", request["count"], future))
            shards, bins = await future
            return ok_response(
                request_id,
                shards=[int(s) for s in shards],
                bins=[int(b) for b in bins],
            )
        if op == "remove":
            future = loop.create_future()
            await self._queue.put(("remove", request["item"], future))
            shard, bin_index = await future
            self.removes += 1
            return ok_response(request_id, shard=shard, bin=bin_index)
        if op == "stats":
            pool_summary = await self._pool_call(self.pool.summary)
            return ok_response(
                request_id, server=self.server_stats(), pool=pool_summary
            )
        if op == "snapshot":
            future = loop.create_future()
            await self._queue.put(("snapshot", request["path"], future))
            manifest = await future
            return ok_response(
                request_id,
                path=request["path"],
                shards=len(manifest["shards"]),
            )
        if op == "shutdown":
            # Respond first, then tear down (the response must get out
            # before the connection dies with the server).
            asyncio.create_task(self.stop())
            return ok_response(request_id, op="shutdown")
        raise ProtocolError(f"unknown op {op!r}")  # pragma: no cover

    def server_stats(self) -> Dict[str, Any]:
        """Frontend counters (batching effectiveness, error counts)."""
        mean_batch = (
            self.batched_places / self.batches if self.batches else 0.0
        )
        return {
            "requests": self.requests,
            "places": self.places,
            "removes": self.removes,
            "protocol_errors": self.protocol_errors,
            "batches": self.batches,
            "batched_places": self.batched_places,
            "largest_batch": self.largest_batch,
            "mean_batch": mean_batch,
            "max_batch": self.config.max_batch,
            "max_delay": self.config.max_delay,
        }
