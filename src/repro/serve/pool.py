"""The shard pool: N :class:`OnlineAllocator` workers behind one router.

A :class:`ShardPool` scales the streaming allocator horizontally: each shard
is a full, independent :class:`~repro.online.allocator.OnlineAllocator`
(its own bins, its own RNG stream, its own telemetry) running either in a
worker *process* (``mode="process"`` — placements/sec scales with cores) or
a worker *thread* (``mode="thread"`` — the zero-IPC fallback for
single-core debugging).  A pluggable :class:`~repro.serve.router.Router`
decides which shard serves each request; the routing question is itself a
(k, d)-choice instance, so the default policy is the paper's own
``two_choice`` applied to the shard load vector.

Determinism contract
--------------------
* Shard seeds derive from the spec's root seed through one
  :class:`numpy.random.SeedSequence` fan-out, so a pool is reproducible
  end-to-end from ``(spec, n_shards, policy)``.
* Routing decisions depend only on (policy, seed, arrival order) — never on
  how requests were grouped into batches (see :mod:`repro.serve.router`).
* Each shard's stream is **bit-identical** to a standalone
  ``OnlineAllocator`` built from that shard's spec (same derived seed, same
  pinned ``n_balls``) and fed the same subsequence — the pool adds routing
  and transport, never drift.

Snapshots
---------
:meth:`ShardPool.snapshot` captures a *manifest*: shard count, router
policy state, pool counters, and one full per-shard snapshot guarded by a
SHA-256 digest (:func:`repro.online.allocator.snapshot_digest`).
:meth:`ShardPool.restore` verifies every digest, rebuilds the router and
resumes all shards bit-identically.  :meth:`save` / :meth:`load` move
manifests to disk atomically (``*.tmp`` + ``os.replace``).
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..api.spec import SchemeSpec
from ..online.allocator import (
    OnlineAllocator,
    OnlineAllocatorError,
    load_snapshot,
    snapshot_digest,
    write_snapshot,
)
from .router import Router, make_router, restore_router

__all__ = [
    "MANIFEST_FORMAT",
    "MANIFEST_VERSION",
    "ShardPoolError",
    "ShardPool",
]

MANIFEST_FORMAT = "repro-serve-manifest"
MANIFEST_VERSION = 1

#: Supported shard execution modes.
MODES = ("process", "thread")


class ShardPoolError(ValueError):
    """Raised for bad pool requests, dead shards and corrupt manifests."""


# ----------------------------------------------------------------------
# The per-shard worker (one allocator, one command loop)
# ----------------------------------------------------------------------
class _ShardServer:
    """Executes pool commands against one allocator (runs inside a worker)."""

    def __init__(
        self,
        spec: Optional[SchemeSpec] = None,
        snapshot: Optional[Dict[str, Any]] = None,
    ) -> None:
        if snapshot is not None:
            self.allocator = OnlineAllocator.restore(snapshot)
        else:
            assert spec is not None
            self.allocator = OnlineAllocator(spec)

    def handle(self, message: Tuple[Any, ...]) -> Any:
        op = message[0]
        allocator = self.allocator
        if op == "place_batch":
            _, count, items = message
            return allocator.place_batch(count, items=items)
        if op == "place":
            return allocator.place(message[1])
        if op == "remove":
            return allocator.remove(message[1])
        if op == "loads":
            return np.array(allocator.loads, copy=True)
        if op == "snapshot":
            return allocator.snapshot()
        if op == "summary":
            return allocator.summary()
        if op == "telemetry":
            return allocator.telemetry.counters()
        raise ShardPoolError(f"unknown shard op {op!r}")


def _shard_worker_process(conn: Any, payload: Dict[str, Any]) -> None:
    """Entry point of a ``mode="process"`` shard worker."""
    try:
        server = _ShardServer(**payload)
    except Exception as exc:  # construction errors surface in the parent
        conn.send(("error", f"{type(exc).__name__}: {exc}"))
        conn.close()
        return
    conn.send(("ready", None))
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        if message[0] == "stop":
            conn.send(("ok", None))
            break
        try:
            conn.send(("ok", server.handle(message)))
        except Exception as exc:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
    conn.close()


class _ProcessShard:
    """A shard in its own OS process, spoken to over a pipe.

    ``submit``/``result`` are split so the pool can dispatch one command to
    every shard and only then start collecting — that concurrency is the
    whole point of process mode.
    """

    def __init__(self, index: int, payload: Dict[str, Any]) -> None:
        self.index = index
        context = multiprocessing.get_context()
        self._conn, child_conn = context.Pipe()
        self._process = context.Process(
            target=_shard_worker_process,
            args=(child_conn, payload),
            daemon=True,
            name=f"repro-serve-shard-{index}",
        )
        self._process.start()
        child_conn.close()
        status, value = self._receive()
        if status != "ready":
            raise ShardPoolError(f"shard {index} failed to start: {value}")

    def submit(self, message: Tuple[Any, ...]) -> None:
        try:
            self._conn.send(message)
        except (BrokenPipeError, OSError):
            raise ShardPoolError(f"shard {self.index} is gone") from None

    def _receive(self) -> Tuple[str, Any]:
        try:
            return self._conn.recv()
        except EOFError:
            raise ShardPoolError(
                f"shard {self.index} died (worker process exited)"
            ) from None

    def result(self) -> Any:
        status, value = self._receive()
        if status != "ok":
            raise ShardPoolError(f"shard {self.index}: {value}")
        return value

    def call(self, *message: Any) -> Any:
        self.submit(message)
        return self.result()

    def close(self) -> None:
        if self._process.is_alive():
            try:
                self._conn.send(("stop",))
                self._conn.recv()
            except (BrokenPipeError, OSError, EOFError):
                pass
        self._process.join(timeout=5)
        if self._process.is_alive():  # pragma: no cover - defensive
            self._process.terminate()
            self._process.join(timeout=5)
        self._conn.close()


class _ThreadShard:
    """A shard on a worker thread: same command surface, no IPC.

    The fallback for single-core debugging (``mode="thread"``): results are
    identical to process mode — only the transport differs — and the live
    allocator is reachable as ``.server.allocator`` from the parent.
    """

    def __init__(self, index: int, payload: Dict[str, Any]) -> None:
        self.index = index
        self.server = _ShardServer(**payload)
        self._requests: "queue.Queue[Optional[Tuple[Any, ...]]]" = queue.Queue()
        self._responses: "queue.Queue[Tuple[str, Any]]" = queue.Queue()
        self._thread = threading.Thread(
            target=self._loop, daemon=True, name=f"repro-serve-shard-{index}"
        )
        self._thread.start()

    def _loop(self) -> None:
        while True:
            message = self._requests.get()
            if message is None or message[0] == "stop":
                self._responses.put(("ok", None))
                break
            try:
                self._responses.put(("ok", self.server.handle(message)))
            except Exception as exc:
                self._responses.put(
                    ("error", f"{type(exc).__name__}: {exc}")
                )

    def submit(self, message: Tuple[Any, ...]) -> None:
        self._requests.put(message)

    def result(self) -> Any:
        status, value = self._responses.get()
        if status != "ok":
            raise ShardPoolError(f"shard {self.index}: {value}")
        return value

    def call(self, *message: Any) -> Any:
        self.submit(message)
        return self.result()

    def close(self) -> None:
        if self._thread.is_alive():
            self._requests.put(("stop",))
            self._responses.get()
            self._thread.join(timeout=5)


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------
def _derive_capacity(spec: SchemeSpec) -> int:
    """Total planned stream length: the spec's ``n_balls``/``n_bins``."""
    for key in ("n_balls", "n_bins"):
        if spec.params.get(key) is not None:
            return int(spec.params[key])
    raise ShardPoolError(
        "the pool capacity could not be derived from the spec; give it an "
        "n_balls (or n_bins) parameter"
    )


def _shard_specs(
    spec: SchemeSpec, n_shards: int, capacity: int
) -> Tuple[List[SchemeSpec], List[int], int]:
    """Derive the per-shard specs, their seeds and the router seed.

    Every shard plans the *full* pool capacity (any shard could, in the
    worst routing case, receive every item), so a shard's stream is
    bit-identical to a standalone allocator built from the same spec and
    fed the same subsequence.  Seeds fan out of the root seed through one
    ``SeedSequence``; the router draws from its own independent word.
    """
    from ..online.trace import _pin_stream_length

    if not isinstance(spec.seed, (int, type(None))):
        raise ShardPoolError(
            f"shard pools require an integer (or None) spec seed, "
            f"got {spec.seed!r}"
        )
    words = np.random.SeedSequence(spec.seed).generate_state(n_shards + 1)
    shard_seeds = [int(word) for word in words[:n_shards]]
    router_seed = int(words[n_shards])
    pinned = _pin_stream_length(spec.scheme, dict(spec.params), capacity)
    base = spec.with_params(**pinned) if pinned != dict(spec.params) else spec
    specs = [base.with_seed(seed) for seed in shard_seeds]
    return specs, shard_seeds, router_seed


class ShardPool:
    """N allocator shards behind a routing policy — the in-process client API.

    Parameters
    ----------
    spec:
        The scheme served by every shard.  ``params["n_balls"]`` (falling
        back to ``n_bins``) fixes the pool's total planned capacity; the
        spec's seed is the root of the per-shard seed fan-out.
    n_shards:
        Number of allocator workers.
    policy:
        A registered router policy name (``round_robin``, ``least_loaded``,
        ``two_choice``) or a pre-built :class:`Router` instance.
    mode:
        ``"process"`` (one OS process per shard, scales with cores) or
        ``"thread"`` (one thread per shard, zero IPC — the ``n_jobs=1``
        debugging fallback).
    policy_params:
        Extra keyword parameters of the policy factory (e.g. ``{"d": 4}``).
    """

    def __init__(
        self,
        spec: SchemeSpec,
        n_shards: int,
        policy: "str | Router" = "two_choice",
        mode: str = "process",
        policy_params: Optional[Dict[str, Any]] = None,
    ) -> None:
        if not isinstance(n_shards, int) or isinstance(n_shards, bool):
            raise ShardPoolError(f"n_shards must be an integer, got {n_shards!r}")
        if n_shards < 1:
            raise ShardPoolError(f"n_shards must be at least 1, got {n_shards}")
        if mode not in MODES:
            raise ShardPoolError(f"mode must be one of {MODES}, got {mode!r}")
        self.spec = spec
        self.n_shards = n_shards
        self.mode = mode
        self.capacity = _derive_capacity(spec)
        specs, self.shard_seeds, self.router_seed = _shard_specs(
            spec, n_shards, self.capacity
        )
        self.shard_specs = specs
        if isinstance(policy, Router):
            if policy.n_shards != n_shards:
                raise ShardPoolError(
                    f"router covers {policy.n_shards} shards, pool has "
                    f"{n_shards}"
                )
            self.router = policy
        else:
            self.router = make_router(
                policy, n_shards, seed=self.router_seed,
                **(policy_params or {}),
            )
        self._shards = self._start_shards(
            [{"spec": shard_spec} for shard_spec in specs]
        )
        self._shard_items = np.zeros(n_shards, dtype=np.int64)
        self._items: Dict[Any, int] = {}  # item id -> shard index
        self.placed = 0
        self.removed = 0
        self._closed = False

    def _start_shards(
        self, payloads: List[Dict[str, Any]]
    ) -> List[Any]:
        shard_type = _ProcessShard if self.mode == "process" else _ThreadShard
        shards: List[Any] = []
        try:
            for index, payload in enumerate(payloads):
                shards.append(shard_type(index, payload))
        except Exception:
            for shard in shards:
                shard.close()
            raise
        return shards

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def live_items(self) -> int:
        return self.placed - self.removed

    @property
    def remaining(self) -> int:
        """Placements left before the pool's planned capacity is exhausted."""
        return self.capacity - self.placed

    def shard_loads(self) -> np.ndarray:
        """Live item count per shard (the router's load vector)."""
        return self._shard_items.copy()

    def bin_loads(self) -> List[np.ndarray]:
        """Every shard's per-bin load vector (one pipe round-trip each)."""
        self._check_open()
        for shard in self._shards:
            shard.submit(("loads",))
        return [shard.result() for shard in self._shards]

    def items(self) -> Dict[Any, int]:
        """Tracked live items mapped to their shard."""
        return dict(self._items)

    # ------------------------------------------------------------------
    # Placement and churn
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise ShardPoolError("the pool is closed")

    def place(self, item: Any = None) -> Tuple[int, int]:
        """Route and place one item; returns ``(shard, bin)``."""
        shards, bins = self.place_batch(
            1, items=None if item is None else [item]
        )
        return int(shards[0]), int(bins[0])

    def place_batch(
        self, count: int, items: Optional[Sequence[Any]] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Route and place ``count`` items arriving as one window.

        Returns ``(shards, bins)`` in arrival order.  Routing is computed
        sequentially against the live shard-load vector (bit-identical to
        ``count`` single :meth:`place` calls); the per-shard placements then
        run concurrently — every shard receives its sub-batch before any
        result is collected.
        """
        self._check_open()
        count = int(count)
        if count < 0:
            raise ShardPoolError(f"count must be non-negative, got {count}")
        if items is not None:
            if len(items) != count:
                raise ShardPoolError(
                    f"items has {len(items)} entries for {count} placements"
                )
            if any(item is None for item in items):
                raise ShardPoolError("item ids must not be None")
            seen = set(items)
            if len(seen) != count:
                raise ShardPoolError("items contains duplicate ids")
            collisions = seen & self._items.keys()
            if collisions:
                raise ShardPoolError(
                    f"item {sorted(collisions, key=repr)[0]!r} is already "
                    f"placed"
                )
        if count > self.remaining:
            raise ShardPoolError(
                f"cannot place {count} items: only {self.remaining} of the "
                f"pool's planned capacity {self.capacity} remain"
            )
        shards = self.router.route_batch(count, self._shard_items)
        bins = np.empty(count, dtype=np.int64)
        positions: List[np.ndarray] = []
        busy: List[int] = []
        for shard_index in range(self.n_shards):
            where = np.flatnonzero(shards == shard_index)
            positions.append(where)
            if len(where) == 0:
                continue
            shard_items = (
                [items[p] for p in where] if items is not None else None
            )
            self._shards[shard_index].submit(
                ("place_batch", len(where), shard_items)
            )
            busy.append(shard_index)
        failure: Optional[ShardPoolError] = None
        for shard_index in busy:
            try:
                bins[positions[shard_index]] = self._shards[shard_index].result()
            except ShardPoolError as exc:
                # Keep draining the other shards so the pool stays usable,
                # then surface the first failure.
                if failure is None:
                    failure = exc
        if failure is not None:
            raise failure
        for shard_index in busy:
            self._shard_items[shard_index] += len(positions[shard_index])
        self.placed += count
        if items is not None:
            for position, item in enumerate(items):
                self._items[item] = int(shards[position])
        return shards, bins

    def remove(self, item: Any) -> Tuple[int, int]:
        """Retire a tracked item; returns the ``(shard, bin)`` it occupied."""
        self._check_open()
        try:
            shard_index = self._items.pop(item)
        except KeyError:
            raise ShardPoolError(
                f"unknown item {item!r}; place it with an item id before "
                f"removing it"
            ) from None
        try:
            bin_index = self._shards[shard_index].call("remove", item)
        except ShardPoolError:
            self._items[item] = shard_index  # undo the pop
            raise
        self._shard_items[shard_index] -= 1
        self.removed += 1
        return shard_index, int(bin_index)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """Deterministic pool-wide statistics plus per-shard summaries."""
        self._check_open()
        for shard in self._shards:
            shard.submit(("summary",))
        shard_summaries = [shard.result() for shard in self._shards]
        max_load = max(s["max_load"] for s in shard_summaries)
        total_bins = sum(s["n_bins"] for s in shard_summaries)
        live = sum(s["live_balls"] for s in shard_summaries)
        mean = live / total_bins if total_bins else 0.0
        summary = {
            "scheme": self.spec.scheme,
            "n_shards": self.n_shards,
            "mode": self.mode,
            "policy": self.router.policy,
            "router_decisions": self.router.decisions,
            "capacity": self.capacity,
            "placed": self.placed,
            "removed": self.removed,
            "live_items": live,
            "total_bins": total_bins,
            "max_load": max_load,
            "mean_load": mean,
            "gap": max_load - mean,
            "shard_items": self._shard_items.tolist(),
            "shards": shard_summaries,
        }
        cross_routes = getattr(self.router, "cross_routes", None)
        if cross_routes is not None:
            decisions = self.router.decisions
            summary["cross_routes"] = int(cross_routes)
            summary["cross_route_fraction"] = (
                int(cross_routes) / decisions if decisions else 0.0
            )
            summary["route_cost"] = float(self.router.route_cost)
        return summary

    def telemetry_counters(self) -> List[Dict[str, int]]:
        """Per-shard telemetry counters (placements, removals, samples)."""
        self._check_open()
        for shard in self._shards:
            shard.submit(("telemetry",))
        return [shard.result() for shard in self._shards]

    # ------------------------------------------------------------------
    # Cross-shard snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A consistent cross-shard manifest (quiesce -> capture -> digest).

        The pool's command transport is synchronous, so by the time every
        shard has answered the ``snapshot`` command there are no in-flight
        placements anywhere — the per-shard documents are a consistent cut.
        Each one is recorded together with its canonical SHA-256 digest;
        :meth:`restore` verifies the digests before rebuilding anything.
        """
        self._check_open()
        for shard in self._shards:
            shard.submit(("snapshot",))
        shard_snapshots = [shard.result() for shard in self._shards]
        return {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "spec": self.spec.to_dict(),
            "n_shards": self.n_shards,
            "mode": self.mode,
            "capacity": self.capacity,
            "shard_seeds": list(self.shard_seeds),
            "router": self.router.state_dict(),
            "placed": self.placed,
            "removed": self.removed,
            "shard_items": self._shard_items.tolist(),
            "items": [[item, shard] for item, shard in self._items.items()],
            "shards": [
                {"digest": snapshot_digest(snap), "snapshot": snap}
                for snap in shard_snapshots
            ],
        }

    @classmethod
    def restore(
        cls, manifest: Dict[str, Any], mode: Optional[str] = None
    ) -> "ShardPool":
        """Rebuild a pool from a :meth:`snapshot` manifest.

        Every shard digest is verified before any worker starts; the router
        resumes its exact decision stream; the restored pool continues
        bit-identically to the one that was captured.  ``mode`` optionally
        overrides the captured execution mode (the shard state machine is
        transport-independent).
        """
        if manifest.get("format") != MANIFEST_FORMAT:
            raise ShardPoolError(
                f"not a shard-pool manifest: format={manifest.get('format')!r}"
            )
        if manifest.get("version") != MANIFEST_VERSION:
            raise ShardPoolError(
                f"unsupported manifest version {manifest.get('version')!r} "
                f"(this build reads version {MANIFEST_VERSION})"
            )
        entries = manifest["shards"]
        if len(entries) != int(manifest["n_shards"]):
            raise ShardPoolError(
                f"manifest names {manifest['n_shards']} shards but carries "
                f"{len(entries)} shard snapshots"
            )
        for index, entry in enumerate(entries):
            digest = snapshot_digest(entry["snapshot"])
            if digest != entry["digest"]:
                raise ShardPoolError(
                    f"shard {index} snapshot digest mismatch "
                    f"(manifest {entry['digest'][:12]}..., "
                    f"recomputed {digest[:12]}...); the manifest is corrupt"
                )
        spec_dict = manifest["spec"]
        spec = SchemeSpec(
            scheme=spec_dict["scheme"],
            params=spec_dict["params"],
            policy=spec_dict.get("policy"),
            seed=spec_dict.get("seed"),
            trials=spec_dict.get("trials", 1),
            engine=spec_dict.get("engine", "auto"),
            label=spec_dict.get("label"),
        )
        pool = cls.__new__(cls)
        pool.spec = spec
        pool.n_shards = int(manifest["n_shards"])
        pool.mode = mode if mode is not None else manifest["mode"]
        if pool.mode not in MODES:
            raise ShardPoolError(
                f"mode must be one of {MODES}, got {pool.mode!r}"
            )
        pool.capacity = int(manifest["capacity"])
        pool.shard_seeds = [int(seed) for seed in manifest["shard_seeds"]]
        pool.shard_specs, _, pool.router_seed = _shard_specs(
            spec, pool.n_shards, pool.capacity
        )
        pool.router = restore_router(manifest["router"])
        pool._shards = pool._start_shards(
            [{"snapshot": entry["snapshot"]} for entry in entries]
        )
        pool._shard_items = np.asarray(manifest["shard_items"], dtype=np.int64)
        pool._items = {item: int(shard) for item, shard in manifest["items"]}
        pool.placed = int(manifest["placed"])
        pool.removed = int(manifest["removed"])
        pool._closed = False
        return pool

    def save(self, path: Any) -> Dict[str, Any]:
        """Capture :meth:`snapshot` and write it to ``path`` atomically."""
        manifest = self.snapshot()
        write_snapshot(path, manifest)
        return manifest

    @classmethod
    def load(cls, path: Any, mode: Optional[str] = None) -> "ShardPool":
        """Restore a pool from a manifest file written by :meth:`save`."""
        try:
            manifest = load_snapshot(path)
        except OnlineAllocatorError as exc:
            raise ShardPoolError(str(exc)) from None
        return cls.restore(manifest, mode=mode)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop every shard worker (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for shard in self._shards:
            shard.close()

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"ShardPool({self.spec.display_label!r}, "
            f"n_shards={self.n_shards}, mode={self.mode!r}, "
            f"policy={self.router.policy!r}, "
            f"placed={self.placed}/{self.capacity})"
        )
