"""The serve wire protocol: newline-delimited JSON over TCP.

One request per line, one response per line; both are canonical JSON
(sorted keys, no whitespace) so captures are byte-stable.  Requests carry a
client-chosen ``id`` that the response echoes — responses may arrive out of
order (the server batches concurrent placements), so the ``id`` is how a
pipelining client matches them up.

Requests::

    {"id":0,"op":"ping"}
    {"id":1,"op":"place"}                  # route + place one item
    {"id":2,"op":"place","item":"user-7"}  # ...tracked under an id
    {"id":3,"op":"place_batch","count":64} # one pre-formed batch
    {"id":4,"op":"remove","item":"user-7"}
    {"id":5,"op":"stats"}
    {"id":6,"op":"snapshot","path":"pool.manifest.json"}
    {"id":7,"op":"shutdown"}

Responses::

    {"id":1,"ok":true,"shard":2,"bin":417}
    {"id":3,"ok":true,"bins":[...],"shards":[...]}
    {"id":4,"ok":false,"error":"unknown item 'user-7'; ..."}

Mutating operations (place / place_batch / remove / snapshot) execute in
arrival order; ``snapshot`` additionally quiesces the batching window, so
the manifest it writes is a consistent cut of the whole pool.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

__all__ = [
    "PROTOCOL_VERSION",
    "REQUEST_OPS",
    "ProtocolError",
    "encode",
    "decode_request",
    "ok_response",
    "error_response",
]

PROTOCOL_VERSION = 1

#: Operations a client may send.
REQUEST_OPS = (
    "ping",
    "place",
    "place_batch",
    "remove",
    "stats",
    "snapshot",
    "shutdown",
)


class ProtocolError(ValueError):
    """Raised for unparsable lines and malformed requests."""


def encode(payload: Dict[str, Any]) -> bytes:
    """One protocol line: canonical JSON plus the newline terminator."""
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode_request(line: bytes) -> Dict[str, Any]:
    """Parse and validate one request line.

    Raises :class:`ProtocolError` with a message safe to echo back to the
    client (it names the problem, never the server's internals).
    """
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        raise ProtocolError("request is not valid JSON") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(payload).__name__}"
        )
    op = payload.get("op")
    if op not in REQUEST_OPS:
        raise ProtocolError(
            f"unknown op {op!r} (expected one of {', '.join(REQUEST_OPS)})"
        )
    if op == "place_batch":
        count = payload.get("count")
        if not isinstance(count, int) or isinstance(count, bool) or count < 0:
            raise ProtocolError(
                f"place_batch needs a non-negative integer 'count', "
                f"got {count!r}"
            )
    if op == "remove" and "item" not in payload:
        raise ProtocolError("remove needs an 'item'")
    if op == "snapshot":
        path = payload.get("path")
        if not isinstance(path, str) or not path:
            raise ProtocolError("snapshot needs a non-empty string 'path'")
    return payload


def ok_response(request_id: Any, **fields: Any) -> Dict[str, Any]:
    response: Dict[str, Any] = {"id": request_id, "ok": True}
    response.update(fields)
    return response


def error_response(request_id: Any, message: str) -> Dict[str, Any]:
    return {"id": request_id, "ok": False, "error": str(message)}
