"""Clients for the allocation server: asyncio-native and blocking.

:class:`ServeClient` is the asyncio client: it pipelines — requests go out
without waiting for earlier responses, a reader task matches responses back
to callers by ``id`` — which is what keeps the server's batch window full.
:class:`BlockingServeClient` wraps it for synchronous callers (tests, small
scripts): it runs a private event loop on a background thread and exposes
the same methods as plain blocking calls.

The zero-transport alternative is the pool itself:
:class:`~repro.serve.pool.ShardPool` exposes the same ``place`` /
``place_batch`` / ``remove`` / ``snapshot`` surface in-process.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Dict, List, Optional, Tuple

from .protocol import encode

__all__ = ["ServeError", "ServeClient", "BlockingServeClient"]


class ServeError(RuntimeError):
    """An error response from the server, or a dead connection."""


class ServeClient:
    """Pipelining asyncio client for one server connection.

    Use :meth:`connect` to build one::

        client = await ServeClient.connect("127.0.0.1", port)
        shard, bin_index = await client.place("user-7")
        await client.close()
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._pending: Dict[int, "asyncio.Future[Dict[str, Any]]"] = {}
        self._next_id = 0
        self._closed = False
        self._reader_task = asyncio.create_task(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServeClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        import json

        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    response = json.loads(line)
                except ValueError:
                    continue  # not ours to crash on; the request times out
                future = self._pending.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (ConnectionResetError, asyncio.CancelledError):
            pass
        finally:
            self._closed = True
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ServeError("connection closed by the server")
                    )
            self._pending.clear()

    async def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request and await its matched response.

        Raises :class:`ServeError` when the server answers ``ok: false``.
        """
        if self._closed:
            raise ServeError("the client is closed")
        request_id = self._next_id
        self._next_id += 1
        payload = dict(payload, id=request_id)
        future: "asyncio.Future[Dict[str, Any]]" = (
            asyncio.get_running_loop().create_future()
        )
        self._pending[request_id] = future
        self._writer.write(encode(payload))
        await self._writer.drain()
        response = await future
        if not response.get("ok"):
            raise ServeError(response.get("error", "unknown server error"))
        return response

    async def close(self) -> None:
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    async def ping(self) -> bool:
        return bool((await self.request({"op": "ping"})).get("ok"))

    async def place(self, item: Any = None) -> Tuple[int, int]:
        """Place one item; returns ``(shard, bin)``."""
        payload: Dict[str, Any] = {"op": "place"}
        if item is not None:
            payload["item"] = item
        response = await self.request(payload)
        return int(response["shard"]), int(response["bin"])

    async def place_batch(self, count: int) -> Tuple[List[int], List[int]]:
        """Place one pre-formed batch; returns ``(shards, bins)``."""
        response = await self.request({"op": "place_batch", "count": count})
        return response["shards"], response["bins"]

    async def remove(self, item: Any) -> Tuple[int, int]:
        response = await self.request({"op": "remove", "item": item})
        return int(response["shard"]), int(response["bin"])

    async def stats(self) -> Dict[str, Any]:
        response = await self.request({"op": "stats"})
        return {"server": response["server"], "pool": response["pool"]}

    async def snapshot(self, path: str) -> Dict[str, Any]:
        return await self.request({"op": "snapshot", "path": path})

    async def shutdown(self) -> None:
        await self.request({"op": "shutdown"})


class BlockingServeClient:
    """Synchronous facade: one private event loop on a background thread.

    Every method blocks until its response arrives.  Intended for tests and
    small scripts; throughput-sensitive callers should use
    :class:`ServeClient` (or many of them) inside their own event loop.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._timeout = timeout
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, daemon=True,
            name="repro-serve-client",
        )
        self._thread.start()
        self._client: ServeClient = self._call(
            ServeClient.connect(host, port)
        )

    def _call(self, coroutine: Any) -> Any:
        future = asyncio.run_coroutine_threadsafe(coroutine, self._loop)
        return future.result(timeout=self._timeout)

    def ping(self) -> bool:
        return self._call(self._client.ping())

    def place(self, item: Any = None) -> Tuple[int, int]:
        return self._call(self._client.place(item))

    def place_batch(self, count: int) -> Tuple[List[int], List[int]]:
        return self._call(self._client.place_batch(count))

    def remove(self, item: Any) -> Tuple[int, int]:
        return self._call(self._client.remove(item))

    def stats(self) -> Dict[str, Any]:
        return self._call(self._client.stats())

    def snapshot(self, path: str) -> Dict[str, Any]:
        return self._call(self._client.snapshot(path))

    def shutdown(self) -> None:
        self._call(self._client.shutdown())

    def close(self) -> None:
        if self._loop.is_closed():
            return
        try:
            self._call(self._client.close())
        except Exception:
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5)
        self._loop.close()

    def __enter__(self) -> "BlockingServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
