"""Failure injection and availability analysis for the storage substrate.

Replication and chunking trade storage overhead for availability; the paper
motivates (k, d)-choice as the placement step of that pipeline.  This module
fails random subsets of servers, measures which files remain available, and
re-replicates lost replicas using the system's own placement policy (so the
repair traffic also benefits from the load-balanced placement).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..simulation.rng import make_generator
from .system import StorageSystem

__all__ = ["AvailabilityReport", "fail_random_servers", "availability", "re_replicate"]


@dataclass(frozen=True)
class AvailabilityReport:
    """Availability after a failure event."""

    policy: str
    n_servers: int
    failed_servers: int
    n_files: int
    available_files: int
    lost_replicas: int

    @property
    def availability(self) -> float:
        """Fraction of files still readable."""
        if self.n_files == 0:
            return 1.0
        return self.available_files / self.n_files

    def as_dict(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "servers": self.n_servers,
            "failed": self.failed_servers,
            "files": self.n_files,
            "available": self.available_files,
            "availability": round(self.availability, 6),
            "lost_replicas": self.lost_replicas,
        }


def fail_random_servers(
    system: StorageSystem,
    count: int,
    seed: "int | None" = None,
    rng: Optional[np.random.Generator] = None,
) -> List[int]:
    """Fail ``count`` distinct random servers; returns their ids."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    alive_ids = [s.server_id for s in system.servers if s.alive]
    if count > len(alive_ids):
        raise ValueError(
            f"cannot fail {count} servers; only {len(alive_ids)} are alive"
        )
    generator = rng if rng is not None else make_generator(seed)
    picks = generator.choice(len(alive_ids), size=count, replace=False)
    failed = [alive_ids[int(i)] for i in picks]
    for server_id in failed:
        system.servers[server_id].fail()
    return failed


def availability(system: StorageSystem) -> AvailabilityReport:
    """Measure which files are still readable given current liveness."""
    alive = [server.alive for server in system.servers]
    available = sum(1 for f in system.files.values() if f.is_available(alive))
    lost_replicas = sum(
        1
        for f in system.files.values()
        for server_id, _ in f.placements
        if not alive[server_id]
    )
    return AvailabilityReport(
        policy=system.placement.name,
        n_servers=system.n_servers,
        failed_servers=sum(1 for a in alive if not a),
        n_files=len(system.files),
        available_files=available,
        lost_replicas=lost_replicas,
    )


def re_replicate(system: StorageSystem) -> int:
    """Recreate replicas lost to failed servers on alive servers.

    Every lost replica is re-placed using the system's placement policy with
    the remaining alive servers as candidates.  Returns the number of
    replicas recreated.  Files in "chunking" mode whose chunks were lost are
    also repaired (in a real system this would require erasure coding or a
    surviving copy; here we model only the placement traffic).
    """
    repaired = 0
    for stored in system.files.values():
        lost = [
            (server_id, replica_index)
            for server_id, replica_index in stored.placements
            if not system.servers[server_id].alive
        ]
        if not lost:
            continue
        decision = system.placement.place(len(lost), system.servers, system.rng)
        system.placement_messages += decision.messages
        for (old_server, replica_index), new_server in zip(lost, decision.servers):
            system.servers[new_server].store(stored.file_id, replica_index, stored.size)
            stored.placements.remove((old_server, replica_index))
            stored.placements.append((new_server, replica_index))
            repaired += 1
    return repaired
