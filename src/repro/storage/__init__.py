"""Distributed-storage substrate: replica/chunk placement with (k, d)-choice.

Built to exercise the paper's Section 1.3 storage application: files are
replicated into ``k`` copies (or split into ``k`` chunks) and placed on the
``k`` least loaded of ``d`` randomly probed servers.
"""

from .failures import (
    AvailabilityReport,
    availability,
    fail_random_servers,
    re_replicate,
)
from .files import StoredFile
from .placement import (
    KDChoicePlacement,
    PerReplicaDChoicePlacement,
    PlacementDecision,
    PlacementPolicy,
    RandomPlacement,
)
from .servers import StorageServer
from .system import StorageReport, StorageSystem, simulate_storage_fast

__all__ = [
    "StorageServer",
    "StoredFile",
    "PlacementPolicy",
    "PlacementDecision",
    "RandomPlacement",
    "PerReplicaDChoicePlacement",
    "KDChoicePlacement",
    "StorageSystem",
    "StorageReport",
    "simulate_storage_fast",
    "AvailabilityReport",
    "availability",
    "fail_random_servers",
    "re_replicate",
]
