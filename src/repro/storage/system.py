"""The distributed storage system.

:class:`StorageSystem` glues servers, files and a placement policy together:
it stores file populations, answers lookups, reports load-balance and message
metrics, and (together with :mod:`repro.storage.failures`) exercises failure
and re-replication scenarios.

:func:`simulate_storage_fast` is the array twin for the common case — place
a whole population on an all-alive cluster and report the balance.  It keeps
one maintained load vector instead of server/file objects and draws the
exact random variates of the object path, so it is seed-for-seed identical
to ``StorageSystem.store_population`` + ``report()`` while running in
O(probes) per file instead of O(servers).

Serialization contract: :meth:`StorageReport.to_dict` /
:meth:`StorageReport.from_dict` round-trip every field at full precision
through plain JSON types (``as_dict`` stays the rounded table form), and the
report dataclass pickles for process-pool fan-out.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Dict, Iterable, List, Mapping, Optional

import numpy as np

from ..simulation.rng import make_generator
from ..simulation.workloads import FileSpec
from .files import StoredFile
from .placement import PlacementPolicy
from .servers import StorageServer

__all__ = ["StorageReport", "StorageSystem", "simulate_storage_fast"]


@dataclass(frozen=True)
class StorageReport:
    """Load-balance and cost summary of a storage system."""

    policy: str
    n_servers: int
    n_files: int
    n_replicas: int
    max_load: int
    mean_load: float
    load_stddev: float
    gap: float
    placement_messages: int
    messages_per_file: float
    mean_lookup_cost: float
    max_bytes: float
    mean_bytes: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "servers": self.n_servers,
            "files": self.n_files,
            "replicas": self.n_replicas,
            "max_load": self.max_load,
            "mean_load": round(self.mean_load, 4),
            "gap": round(self.gap, 4),
            "messages": self.placement_messages,
            "messages_per_file": round(self.messages_per_file, 4),
            "mean_lookup_cost": round(self.mean_lookup_cost, 4),
        }

    def to_dict(self) -> Dict[str, object]:
        """Full-precision, JSON-safe form; inverse of :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "StorageReport":
        """Rebuild a report from :meth:`to_dict` output."""
        names = {f.name for f in fields(cls)}
        unknown = set(payload) - names
        if unknown:
            raise ValueError(f"unknown StorageReport fields: {sorted(unknown)}")
        missing = names - set(payload)
        if missing:
            raise ValueError(f"missing StorageReport fields: {sorted(missing)}")
        return cls(**payload)


class StorageSystem:
    """A cluster of storage servers under one placement policy.

    Parameters
    ----------
    n_servers:
        Number of storage servers.
    placement:
        Placement policy (see :mod:`repro.storage.placement`).
    mode:
        "replication" (copies; any replica serves a read) or "chunking"
        (a file is split into k chunks and all are needed).
    seed, rng:
        Randomness for probe choices.
    """

    def __init__(
        self,
        n_servers: int,
        placement: PlacementPolicy,
        mode: str = "replication",
        seed: "int | None" = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if n_servers <= 0:
            raise ValueError(f"n_servers must be positive, got {n_servers}")
        if mode not in ("replication", "chunking"):
            raise ValueError(
                f"mode must be 'replication' or 'chunking', got {mode!r}"
            )
        self.n_servers = n_servers
        self.placement = placement
        self.mode = mode
        self.rng = rng if rng is not None else make_generator(seed)
        self.servers: List[StorageServer] = [
            StorageServer(server_id=i) for i in range(n_servers)
        ]
        self.files: Dict[int, StoredFile] = {}
        self.placement_messages = 0

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def store_file(self, spec: FileSpec) -> StoredFile:
        """Place every replica/chunk of one file."""
        if spec.file_id in self.files:
            raise ValueError(f"file {spec.file_id} is already stored")
        decision = self.placement.place(spec.replicas, self.servers, self.rng)
        if len(decision.servers) != spec.replicas:
            raise RuntimeError(
                f"placement returned {len(decision.servers)} servers for "
                f"{spec.replicas} replicas"
            )
        per_replica_size = spec.size / spec.replicas if self.mode == "chunking" else spec.size
        stored = StoredFile(
            file_id=spec.file_id,
            size=per_replica_size,
            mode=self.mode,
            candidates=decision.candidates,
        )
        for replica_index, server_id in enumerate(decision.servers):
            self.servers[server_id].store(spec.file_id, replica_index, per_replica_size)
            stored.placements.append((server_id, replica_index))
        self.files[spec.file_id] = stored
        self.placement_messages += decision.messages
        return stored

    def store_population(self, specs: Iterable[FileSpec]) -> List[StoredFile]:
        """Store a whole population of files."""
        return [self.store_file(spec) for spec in specs]

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def lookup_cost(self, file_id: int) -> int:
        """Messages needed to locate the file's replicas (no directory).

        The reader contacts the file's probe-candidate set; this matches the
        paper's observation that a chunked file stored with (k, k+1)-choice is
        found with ``k + 1`` messages versus ``2k`` for per-chunk two-choice.
        """
        return self._file(file_id).lookup_cost

    def read_file(self, file_id: int) -> bool:
        """Whether the file can currently be served (liveness-aware)."""
        alive = [server.alive for server in self.servers]
        return self._file(file_id).is_available(alive)

    def _file(self, file_id: int) -> StoredFile:
        try:
            return self.files[file_id]
        except KeyError as exc:
            raise KeyError(f"unknown file {file_id}") from exc

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def load_vector(self) -> np.ndarray:
        """Replica count per server."""
        return np.asarray([s.replica_count for s in self.servers], dtype=np.int64)

    def bytes_vector(self) -> np.ndarray:
        """Bytes stored per server."""
        return np.asarray([s.bytes_stored for s in self.servers], dtype=float)

    def report(self) -> StorageReport:
        """Summarize balance and cost for the current contents."""
        loads = self.load_vector()
        bytes_stored = self.bytes_vector()
        n_replicas = int(loads.sum())
        lookup_costs = [f.lookup_cost for f in self.files.values()]
        return StorageReport(
            policy=self.placement.name,
            n_servers=self.n_servers,
            n_files=len(self.files),
            n_replicas=n_replicas,
            max_load=int(loads.max()) if loads.size else 0,
            mean_load=float(loads.mean()) if loads.size else 0.0,
            load_stddev=float(loads.std()) if loads.size else 0.0,
            gap=float(loads.max() - loads.mean()) if loads.size else 0.0,
            placement_messages=self.placement_messages,
            messages_per_file=(
                self.placement_messages / len(self.files) if self.files else 0.0
            ),
            mean_lookup_cost=float(np.mean(lookup_costs)) if lookup_costs else 0.0,
            max_bytes=float(bytes_stored.max()) if bytes_stored.size else 0.0,
            mean_bytes=float(bytes_stored.mean()) if bytes_stored.size else 0.0,
        )


def simulate_storage_fast(
    n_servers: int,
    sizes: "np.ndarray | List[float]",
    replicas: int,
    placement: PlacementPolicy,
    mode: str = "replication",
    seed: "int | None" = None,
    rng: Optional[np.random.Generator] = None,
) -> "tuple[np.ndarray, StorageReport]":
    """Place a population with the fast storage core; return (loads, report).

    Seed-for-seed identical to building a :class:`StorageSystem`, storing a
    constant-``replicas`` population with the same sizes, and calling
    ``report()`` — for policies with ``supports_fast_core`` on an all-alive
    cluster.  Use the object path for failure/rebuild scenarios.
    """
    if n_servers <= 0:
        raise ValueError(f"n_servers must be positive, got {n_servers}")
    if mode not in ("replication", "chunking"):
        raise ValueError(f"mode must be 'replication' or 'chunking', got {mode!r}")
    if replicas <= 0:
        raise ValueError(f"replicas must be positive, got {replicas}")
    if not getattr(placement, "supports_fast_core", False):
        raise ValueError(
            f"placement {placement.name!r} does not support the fast storage "
            f"core; use StorageSystem.store_population instead"
        )
    generator = rng if rng is not None else make_generator(seed)
    sizes = np.asarray(sizes, dtype=float)
    n_files = int(sizes.shape[0])

    loads = np.zeros(n_servers, dtype=np.int64)
    bytes_stored = [0.0] * n_servers
    lookup_costs: List[int] = []
    messages = 0
    fast_place = placement.fast_place
    for i in range(n_files):
        decision = fast_place(loads, replicas, generator)
        if len(decision.servers) != replicas:
            raise RuntimeError(
                f"placement returned {len(decision.servers)} servers for "
                f"{replicas} replicas"
            )
        per_replica_size = sizes[i] / replicas if mode == "chunking" else sizes[i]
        per_replica_size = float(per_replica_size)
        for server_id in decision.servers:
            loads[server_id] += 1
            bytes_stored[server_id] += per_replica_size
        messages += decision.messages
        lookup_costs.append(len(decision.candidates))

    bytes_array = np.asarray(bytes_stored)
    report = StorageReport(
        policy=placement.name,
        n_servers=n_servers,
        n_files=n_files,
        n_replicas=int(loads.sum()),
        max_load=int(loads.max()) if loads.size else 0,
        mean_load=float(loads.mean()) if loads.size else 0.0,
        load_stddev=float(loads.std()) if loads.size else 0.0,
        gap=float(loads.max() - loads.mean()) if loads.size else 0.0,
        placement_messages=messages,
        messages_per_file=messages / n_files if n_files else 0.0,
        mean_lookup_cost=float(np.mean(lookup_costs)) if lookup_costs else 0.0,
        max_bytes=float(bytes_array.max()) if bytes_array.size else 0.0,
        mean_bytes=float(bytes_array.mean()) if bytes_array.size else 0.0,
    )
    return loads, report
