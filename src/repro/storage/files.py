"""Stored-file records for the distributed-storage substrate.

A :class:`StoredFile` remembers where each of its replicas (or chunks) was
placed and which servers were probed as candidates — the latter is what a
lookup has to contact, so it determines the search cost the paper discusses
for the data-partitioning case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

__all__ = ["StoredFile"]


@dataclass
class StoredFile:
    """Placement record of one file.

    Attributes
    ----------
    file_id:
        Identifier of the file.
    size:
        Size of each replica/chunk (uniform within a file).
    mode:
        "replication" (any replica serves a read) or "chunking" (all chunks
        are needed to reconstruct the file).
    placements:
        One ``(server_id, replica_index)`` pair per replica.
    candidates:
        The servers probed when the file was placed.  A lookup that does not
        keep a directory must contact these candidates to locate the
        replicas, so ``len(candidates)`` is the lookup message cost.
    """

    file_id: int
    size: float
    mode: str
    placements: List[Tuple[int, int]] = field(default_factory=list)
    candidates: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.mode not in ("replication", "chunking"):
            raise ValueError(
                f"mode must be 'replication' or 'chunking', got {self.mode!r}"
            )
        if self.size < 0:
            raise ValueError(f"size must be non-negative, got {self.size}")

    @property
    def replica_count(self) -> int:
        return len(self.placements)

    @property
    def server_ids(self) -> List[int]:
        """Servers holding at least one replica of this file."""
        return [server_id for server_id, _ in self.placements]

    @property
    def lookup_cost(self) -> int:
        """Messages needed to locate every replica without a directory."""
        return len(self.candidates)

    def is_available(self, alive: Sequence[bool]) -> bool:
        """Whether the file can be served given per-server liveness flags.

        Under replication one live replica suffices; under chunking every
        chunk must live on an alive server.
        """
        replica_alive = [alive[server_id] for server_id, _ in self.placements]
        if not replica_alive:
            return False
        if self.mode == "replication":
            return any(replica_alive)
        return all(replica_alive)
