"""Storage servers.

A server holds replicas (or chunks) of files.  Its *load* — the signal probed
by placement policies — is the number of replicas it stores; the byte-weighted
load is also tracked for experiments with non-uniform file sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set

__all__ = ["StorageServer"]


@dataclass
class StorageServer:
    """A single storage server."""

    server_id: int
    alive: bool = True
    replicas: Set["tuple[int, int]"] = field(default_factory=set)
    bytes_stored: float = 0.0
    _sizes: Dict["tuple[int, int]", float] = field(default_factory=dict)

    @property
    def replica_count(self) -> int:
        """Number of replicas stored (the probe signal)."""
        return len(self.replicas)

    def store(self, file_id: int, replica_index: int, size: float) -> None:
        """Store one replica of a file."""
        if not self.alive:
            raise RuntimeError(f"server {self.server_id} is down; cannot store")
        key = (file_id, replica_index)
        if key in self.replicas:
            raise ValueError(
                f"server {self.server_id} already stores replica {replica_index} "
                f"of file {file_id}"
            )
        self.replicas.add(key)
        self._sizes[key] = size
        self.bytes_stored += size

    def drop(self, file_id: int, replica_index: int) -> None:
        """Remove one replica (used by re-replication after failures)."""
        key = (file_id, replica_index)
        if key not in self.replicas:
            raise KeyError(
                f"server {self.server_id} does not store replica {replica_index} "
                f"of file {file_id}"
            )
        self.replicas.discard(key)
        self.bytes_stored -= self._sizes.pop(key)

    def holds(self, file_id: int, replica_index: int) -> bool:
        """Whether this server stores the given replica."""
        return (file_id, replica_index) in self.replicas

    def fail(self) -> None:
        """Mark the server as failed.  Its replicas become unavailable."""
        self.alive = False

    def recover(self) -> None:
        """Bring the server back online (its replicas are intact)."""
        self.alive = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "up" if self.alive else "down"
        return (
            f"StorageServer(id={self.server_id}, replicas={self.replica_count}, "
            f"{status})"
        )
