"""Replica / chunk placement policies.

The paper's distributed-storage application (Section 1.3): when a file is
replicated into ``k`` copies (or split into ``k`` chunks), the (k, d)-choice
scheme stores them on the ``k`` least loaded of ``d`` randomly probed servers.
With ``d = k + 1`` this achieves the asymptotic balance of two-choice at
roughly half its message cost, and lookups only need to contact ``k + 1``
candidate servers instead of ``2k``.

Policies implemented:

* :class:`RandomPlacement` — every replica to an independent random server.
* :class:`PerReplicaDChoicePlacement` — every replica independently probes
  ``d`` servers and picks the least loaded (classic two-choice for d = 2).
* :class:`KDChoicePlacement` — the paper's scheme: one batch of ``d`` probes
  for the whole file; the ``k`` replicas go to the ``k`` least loaded probed
  servers under the multiplicity cap.

A placement policy returns a :class:`PlacementDecision` with the chosen
servers, the probed candidate set (= lookup cost) and the probe messages.
Distinct-server constraints (a fault-tolerance requirement: two replicas on
one server are pointless) can be enforced by each policy via
``require_distinct``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from ..core.policies import StrictPolicy
from .servers import StorageServer

__all__ = [
    "PlacementDecision",
    "PlacementPolicy",
    "RandomPlacement",
    "PerReplicaDChoicePlacement",
    "KDChoicePlacement",
]


@dataclass
class PlacementDecision:
    """Outcome of placing one file."""

    servers: List[int] = field(default_factory=list)
    candidates: List[int] = field(default_factory=list)
    messages: int = 0


class PlacementPolicy(ABC):
    """Base class for placement policies."""

    name: str = "placement"

    #: Whether :meth:`fast_place` implements this policy for the fast
    #: storage core (:func:`repro.storage.system.simulate_storage_fast`).
    supports_fast_core: bool = False

    def __init__(self, require_distinct: bool = False) -> None:
        self.require_distinct = require_distinct

    @abstractmethod
    def place(
        self,
        replicas: int,
        servers: Sequence[StorageServer],
        rng: np.random.Generator,
    ) -> PlacementDecision:
        """Choose a server for each of ``replicas`` replicas."""

    def fast_place(
        self,
        loads: np.ndarray,
        replicas: int,
        rng: np.random.Generator,
    ) -> PlacementDecision:
        """Array twin of :meth:`place` for an all-alive cluster.

        ``loads`` is the maintained replica-count vector — the signal
        :meth:`place` reads via ``StorageServer.replica_count``.
        Implementations MUST draw exactly the random variates of
        :meth:`place` so the fast storage core is seed-for-seed identical
        to :class:`~repro.storage.system.StorageSystem`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support the fast storage core"
        )

    def _fast_sample(
        self, n_servers: int, count: int, rng: np.random.Generator
    ) -> List[int]:
        """Draw-for-draw twin of :meth:`_sample` over servers ``0..n-1``."""
        if self.require_distinct:
            if count > n_servers:
                raise ValueError(
                    f"cannot probe {count} distinct servers out of {n_servers}"
                )
            picks = rng.choice(n_servers, size=count, replace=False)
        else:
            picks = rng.integers(0, n_servers, size=count)
        return [int(p) for p in picks]

    # ------------------------------------------------------------------
    # Helpers shared by the concrete policies
    # ------------------------------------------------------------------
    @staticmethod
    def _alive_ids(servers: Sequence[StorageServer]) -> List[int]:
        alive = [server.server_id for server in servers if server.alive]
        if not alive:
            raise RuntimeError("no alive servers available for placement")
        return alive

    @staticmethod
    def _sample(
        population: Sequence[int], count: int, rng: np.random.Generator, distinct: bool
    ) -> List[int]:
        if distinct:
            if count > len(population):
                raise ValueError(
                    f"cannot probe {count} distinct servers out of {len(population)}"
                )
            picks = rng.choice(len(population), size=count, replace=False)
        else:
            picks = rng.integers(0, len(population), size=count)
        return [int(population[i]) for i in picks]


class RandomPlacement(PlacementPolicy):
    """Every replica goes to an independent uniformly random alive server."""

    name = "random"
    supports_fast_core = True

    def fast_place(
        self, loads: np.ndarray, replicas: int, rng: np.random.Generator
    ) -> PlacementDecision:
        if replicas <= 0:
            raise ValueError(f"replicas must be positive, got {replicas}")
        chosen = self._fast_sample(len(loads), replicas, rng)
        return PlacementDecision(
            servers=chosen, candidates=list(chosen), messages=replicas
        )

    def place(
        self,
        replicas: int,
        servers: Sequence[StorageServer],
        rng: np.random.Generator,
    ) -> PlacementDecision:
        if replicas <= 0:
            raise ValueError(f"replicas must be positive, got {replicas}")
        alive = self._alive_ids(servers)
        chosen = self._sample(alive, replicas, rng, self.require_distinct)
        return PlacementDecision(
            servers=chosen, candidates=list(chosen), messages=replicas
        )


class PerReplicaDChoicePlacement(PlacementPolicy):
    """Each replica independently probes ``d`` servers (classic d-choice)."""

    def __init__(self, d: int = 2, require_distinct: bool = False) -> None:
        super().__init__(require_distinct=require_distinct)
        if d < 1:
            raise ValueError(f"d must be at least 1, got {d}")
        self.d = d
        self.name = f"per-replica-{d}-choice"

    supports_fast_core = True

    def fast_place(
        self, loads: np.ndarray, replicas: int, rng: np.random.Generator
    ) -> PlacementDecision:
        if replicas <= 0:
            raise ValueError(f"replicas must be positive, got {replicas}")
        n_servers = len(loads)
        decision = PlacementDecision()
        already_used: set = set()
        for _ in range(replicas):
            # place() always probes with replacement (require_distinct only
            # constrains which probed server may be *chosen*), so mirror the
            # distinct=False sampling path exactly.
            probes = [int(p) for p in rng.integers(0, n_servers, size=self.d)]
            decision.messages += self.d
            decision.candidates.extend(probes)
            eligible = [
                p for p in probes
                if not (self.require_distinct and p in already_used)
            ] or probes
            best = min(eligible, key=lambda sid: loads[sid])
            decision.servers.append(best)
            already_used.add(best)
        return decision

    def place(
        self,
        replicas: int,
        servers: Sequence[StorageServer],
        rng: np.random.Generator,
    ) -> PlacementDecision:
        if replicas <= 0:
            raise ValueError(f"replicas must be positive, got {replicas}")
        alive = self._alive_ids(servers)
        decision = PlacementDecision()
        already_used: set[int] = set()
        for _ in range(replicas):
            probes = self._sample(alive, self.d, rng, distinct=False)
            decision.messages += self.d
            decision.candidates.extend(probes)
            eligible = [
                p for p in probes
                if not (self.require_distinct and p in already_used)
            ] or probes
            best = min(eligible, key=lambda sid: servers[sid].replica_count)
            decision.servers.append(best)
            already_used.add(best)
        return decision


class KDChoicePlacement(PlacementPolicy):
    """The paper's (k, d)-choice placement: one probe batch per file.

    Parameters
    ----------
    extra_probes:
        ``d = k + extra_probes`` probes are issued for a file with ``k``
        replicas (the paper highlights ``d = k + 1``).
    probe_ratio:
        Alternatively ``d = ceil(probe_ratio * k)``; used when
        ``extra_probes`` is ``None``.
    """

    def __init__(
        self,
        extra_probes: "int | None" = 1,
        probe_ratio: float = 2.0,
        require_distinct: bool = False,
    ) -> None:
        super().__init__(require_distinct=require_distinct)
        if extra_probes is not None and extra_probes < 0:
            raise ValueError(f"extra_probes must be non-negative, got {extra_probes}")
        if extra_probes is None and probe_ratio < 1.0:
            raise ValueError(f"probe_ratio must be at least 1, got {probe_ratio}")
        self.extra_probes = extra_probes
        self.probe_ratio = probe_ratio
        self._policy = StrictPolicy()
        label = (
            f"d=k+{extra_probes}" if extra_probes is not None else f"d={probe_ratio:g}k"
        )
        self.name = f"(k,d)-choice[{label}]"

    def probes_for(self, replicas: int, n_alive: int) -> int:
        if self.extra_probes is not None:
            d = replicas + self.extra_probes
        else:
            d = int(np.ceil(self.probe_ratio * replicas))
        return max(replicas, min(d, n_alive) if self.require_distinct else d)

    supports_fast_core = True

    def fast_place(
        self, loads: np.ndarray, replicas: int, rng: np.random.Generator
    ) -> PlacementDecision:
        if replicas <= 0:
            raise ValueError(f"replicas must be positive, got {replicas}")
        n_servers = len(loads)
        d = self.probes_for(replicas, n_servers)
        probes = self._fast_sample(n_servers, d, rng)
        destinations = self._policy.select(loads, probes, replicas, rng)
        return PlacementDecision(
            servers=[int(s) for s in destinations],
            candidates=probes,
            messages=d,
        )

    def place(
        self,
        replicas: int,
        servers: Sequence[StorageServer],
        rng: np.random.Generator,
    ) -> PlacementDecision:
        if replicas <= 0:
            raise ValueError(f"replicas must be positive, got {replicas}")
        alive = self._alive_ids(servers)
        d = self.probes_for(replicas, len(alive))
        probes = self._sample(alive, d, rng, self.require_distinct)

        # Strict (k, d)-choice selection over the replica-count load signal.
        # The policy indexes loads by server id, so build a sparse view.
        loads = [server.replica_count for server in servers]
        destinations = self._policy.select(loads, probes, replicas, rng)
        return PlacementDecision(
            servers=[int(s) for s in destinations],
            candidates=probes,
            messages=d,
        )
