"""repro — a reproduction of "A Generalization of Multiple Choice
Balls-into-Bins: Tight Bounds" (Gahyun Park, PODC 2011 / arXiv:1201.3310).

The package implements the (k, d)-choice allocation process, the classic
balls-into-bins baselines and adaptive comparators, the theoretical bounds of
the paper, and two application substrates (a Sparrow-style cluster scheduler
and a distributed-storage placement simulator), plus experiment recipes that
regenerate every table and figure in the paper's evaluation.

Canonical entry point
---------------------
Workloads are expressed declaratively through :mod:`repro.api`: build a
:class:`~repro.api.SchemeSpec` naming any registered scheme and execute it
with :func:`repro.api.simulate` (one run) or :func:`repro.api.simulate_many`
(seed-tree fan-out over trials):

>>> from repro.api import SchemeSpec, simulate
>>> spec = SchemeSpec(scheme="kd_choice",
...                   params={"n_bins": 4096, "k": 4, "d": 8}, seed=7)
>>> simulate(spec).max_load <= 4
True

``repro.api.available_schemes()`` lists every registered workload, and
constructing a spec with ``SchemeSpec(..., engine="vectorized")`` selects
the batch fast path (seed-for-seed identical to the scalar reference).

The historical ``run_*`` helpers below remain as thin shims around the same
implementations for backwards compatibility; they emit a
:class:`DeprecationWarning` when called — prefer the spec API in new code.

>>> from repro import run_kd_choice
>>> result = run_kd_choice(n_bins=4096, k=4, d=8, seed=7)  # doctest: +SKIP
>>> result.max_load <= 4  # doctest: +SKIP
True
"""

import functools as _functools
import warnings as _warnings

from .core import (
    AllocationResult,
    BallPlacement,
    BinState,
    ChurnResult,
    DynamicKDChoiceProcess,
    GreedyPolicy,
    KDChoiceProcess,
    ProcessParams,
    SerializedKDChoice,
    StaleKDChoiceProcess,
    StrictPolicy,
    WeightedKDChoiceProcess,
    get_policy,
    metrics,
    run_always_go_left,
    run_batch_random,
    run_churn_kd_choice,
    run_d_choice,
    run_kd_choice,
    run_kd_choice_vectorized,
    run_one_plus_beta,
    run_serialized_kd_choice,
    run_single_choice,
    run_stale_kd_choice,
    run_threshold_adaptive,
    run_two_phase_adaptive,
    run_weighted_kd_choice,
)
from .api import (
    SchemeSpec,
    available_schemes,
    describe_scheme,
    register_scheme,
    simulate,
    simulate_many,
)
from . import analysis, api, cluster, experiments, simulation, storage

#: The historical helpers kept as deprecated shims.  ``repro.core`` still
#: exposes the undecorated implementations (the registry and the engines
#: call those directly); only these top-level re-exports warn.
_DEPRECATED_RUNNERS = (
    "run_always_go_left",
    "run_batch_random",
    "run_churn_kd_choice",
    "run_d_choice",
    "run_kd_choice",
    "run_kd_choice_vectorized",
    "run_one_plus_beta",
    "run_serialized_kd_choice",
    "run_single_choice",
    "run_stale_kd_choice",
    "run_threshold_adaptive",
    "run_two_phase_adaptive",
    "run_weighted_kd_choice",
)


def _deprecated_shim(func):
    """Wrap a ``run_*`` implementation so calling it via ``repro`` warns."""

    @_functools.wraps(func)
    def shim(*args, **kwargs):
        _warnings.warn(
            f"repro.{func.__name__} is deprecated; build a "
            f"repro.api.SchemeSpec and call repro.api.simulate instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return func(*args, **kwargs)

    shim.__doc__ = (
        f".. deprecated:: 1.0\n   Use :func:`repro.api.simulate` with a "
        f":class:`repro.api.SchemeSpec` instead.\n\n{func.__doc__ or ''}"
    )
    return shim


for _name in _DEPRECATED_RUNNERS:
    globals()[_name] = _deprecated_shim(globals()[_name])
del _name

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # unified spec API
    "SchemeSpec",
    "simulate",
    "simulate_many",
    "available_schemes",
    "describe_scheme",
    "register_scheme",
    # core re-exports
    "AllocationResult",
    "ProcessParams",
    "BinState",
    "KDChoiceProcess",
    "run_kd_choice",
    "run_kd_choice_vectorized",
    "SerializedKDChoice",
    "run_serialized_kd_choice",
    "BallPlacement",
    "StrictPolicy",
    "GreedyPolicy",
    "get_policy",
    "run_single_choice",
    "run_d_choice",
    "run_one_plus_beta",
    "run_always_go_left",
    "run_batch_random",
    "run_threshold_adaptive",
    "run_two_phase_adaptive",
    "WeightedKDChoiceProcess",
    "run_weighted_kd_choice",
    "StaleKDChoiceProcess",
    "run_stale_kd_choice",
    "DynamicKDChoiceProcess",
    "ChurnResult",
    "run_churn_kd_choice",
    "metrics",
    # subpackages
    "api",
    "analysis",
    "simulation",
    "experiments",
    "cluster",
    "storage",
]
