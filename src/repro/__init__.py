"""repro — a reproduction of "A Generalization of Multiple Choice
Balls-into-Bins: Tight Bounds" (Gahyun Park, PODC 2011 / arXiv:1201.3310).

The package implements the (k, d)-choice allocation process, the classic
balls-into-bins baselines and adaptive comparators, the theoretical bounds of
the paper, and two application substrates (a Sparrow-style cluster scheduler
and a distributed-storage placement simulator), plus experiment recipes that
regenerate every table and figure in the paper's evaluation.

Canonical entry point
---------------------
Workloads are expressed declaratively through :mod:`repro.api`: build a
:class:`~repro.api.SchemeSpec` naming any registered scheme and execute it
with :func:`repro.api.simulate` (one run) or :func:`repro.api.simulate_many`
(seed-tree fan-out over trials):

>>> from repro.api import SchemeSpec, simulate
>>> spec = SchemeSpec(scheme="kd_choice",
...                   params={"n_bins": 4096, "k": 4, "d": 8}, seed=7)
>>> simulate(spec).max_load <= 4
True

``repro.api.available_schemes()`` lists every registered workload, and
constructing a spec with ``SchemeSpec(..., engine="vectorized")`` selects
the batch fast path (seed-for-seed identical to the scalar reference).

The historical top-level ``run_*`` shims (deprecated since the spec API
landed) are gone; the undecorated reference implementations remain
importable from :mod:`repro.core` for the registry and the engines.
"""

from .core import (
    AllocationResult,
    BallPlacement,
    BinState,
    ChurnResult,
    DynamicKDChoiceProcess,
    GreedyPolicy,
    KDChoiceProcess,
    ProcessParams,
    SerializedKDChoice,
    StaleKDChoiceProcess,
    StrictPolicy,
    WeightedKDChoiceProcess,
    get_policy,
    metrics,
)
from .api import (
    SchemeSpec,
    available_schemes,
    describe_scheme,
    register_scheme,
    simulate,
    simulate_many,
)
from . import analysis, api, cluster, experiments, simulation, storage

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # unified spec API
    "SchemeSpec",
    "simulate",
    "simulate_many",
    "available_schemes",
    "describe_scheme",
    "register_scheme",
    # core re-exports
    "AllocationResult",
    "ProcessParams",
    "BinState",
    "KDChoiceProcess",
    "SerializedKDChoice",
    "BallPlacement",
    "StrictPolicy",
    "GreedyPolicy",
    "get_policy",
    "WeightedKDChoiceProcess",
    "StaleKDChoiceProcess",
    "DynamicKDChoiceProcess",
    "ChurnResult",
    "metrics",
    # subpackages
    "api",
    "analysis",
    "simulation",
    "experiments",
    "cluster",
    "storage",
]
