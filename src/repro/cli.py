"""Command-line interface: run any experiment recipe from the shell.

Examples
--------
::

    # A scaled-down Table 1 (rows k=1,2,4, all d columns)
    python -m repro table1 --n 12288 --trials 3 --k 1 2 4
    python -m repro table1 --small          # CI smoke run

    # The unified scheme API: list schemes, run any of them declaratively
    python -m repro schemes
    python -m repro schemes --describe kd_choice
    python -m repro simulate --scheme kd_choice \
        --param n_bins=4096 --param k=4 --param d=8 \
        --trials 3 --seed 7 --engine vectorized

    # Figures 1 and 2: sorted load profiles with proof landmarks
    python -m repro profile --n 16384

    # Theorem 1 regimes, Theorem 2 heavy case, trade-off, applications
    python -m repro regimes
    python -m repro heavy
    python -m repro tradeoff
    python -m repro scheduling
    python -m repro storage --compare
    python -m repro majorization
    python -m repro ablation

    # Spec-driven substrate runs (fast event core, scenario library,
    # parallel trials + on-disk result cache)
    python -m repro cluster --workers 256 --trace-jobs 5000 \
        --distribution pareto --arrival-process mmpp --trials 3 --jobs 4
    python -m repro storage --servers 1024 --files 100000 \
        --cache-dir .result-cache
    python -m repro storage --servers 256 --files 4096 \
        --fail-fraction 0.05 --rebuild

    # The streaming allocation service: serve a live workload (optionally
    # recording it), then replay the trace deterministically on any engine
    python -m repro stream --scheme kd_choice --param n_bins=4096 \
        --param k=4 --param d=8 --items 100000 --arrival-process mmpp \
        --churn 0.1 --record run.jsonl
    python -m repro replay --trace run.jsonl --engine scalar
    python -m repro replay --trace run.jsonl --snapshot-every 4096 \
        --snapshot-dir .snapshots

    # The sharded allocation service: N allocator shards behind a
    # (two-choice) router and a batching TCP frontend, plus its load
    # generator (run them in two terminals)
    python -m repro serve --scheme kd_choice --param n_bins=4096 \
        --param k=4 --param d=8 --shards 4 --port 7411
    python -m repro loadgen --port 7411 --items 100000 \
        --connections 8 --churn 0.1
"""

from __future__ import annotations

import argparse
import ast
import json
import math
import os
import re
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from .api import (
    ENGINES,
    ResultStore,
    SchemeSpec,
    available_schemes,
    describe_scheme,
    registry_dump,
    simulate_trials,
)

from .workloads import (
    WorkloadError,
    available_workloads,
    bind_spec_params,
    get_workload,
    substrate_arrivals,
    workloads_dump,
)

from .experiments import (
    ablation_table,
    churn_table,
    exact_validation_table,
    generate_report,
    heavy_table,
    majorization_table,
    open_question_table,
    regime_table,
    run_churn_experiment,
    run_exact_validation,
    run_heavy_case,
    run_load_profile,
    run_majorization_chain,
    run_open_question_heavy,
    run_policy_ablation,
    run_regime_scaling,
    run_scheduling_experiment,
    run_staleness_experiment,
    run_storage_experiment,
    run_table1,
    run_tradeoff,
    run_weighted_experiment,
    scheduling_table,
    staleness_table,
    storage_table,
    tradeoff_table,
    weighted_table,
)
from .simulation.results import ResultTable

__all__ = ["main", "build_parser"]

#: Values that should have parsed as a Python literal (numbers, quoted
#: strings, containers) but did not: anything *not* starting like a bare
#: word.  Bare words stay plain strings (e.g. distribution names).
_LITERAL_PREFIX = re.compile(r"^[\d+\-.'\"\[({]")

_BOOL_TOKENS = {"true": True, "false": False, "yes": True, "no": False}


def _parse_param_token(token: str) -> Tuple[str, object]:
    """Parse one ``--param KEY=VALUE`` token into ``(key, value)``.

    Used as an ``argparse`` type, so malformed tokens surface as clean
    ``error: argument --param: ...`` messages naming the offending token
    instead of raw tracebacks.  Values parse as Python literals (ints,
    floats, quoted strings, lists/tuples), case-insensitive booleans
    (``true``/``false``/``yes``/``no``) or ``none``; bare words fall back to
    plain strings so e.g. ``--param distribution=pareto`` works unquoted.
    """
    key, separator, raw = token.partition("=")
    key = key.strip()
    if not separator:
        raise argparse.ArgumentTypeError(
            f"expected KEY=VALUE, got {token!r} (missing '=')"
        )
    if not key:
        raise argparse.ArgumentTypeError(f"empty parameter name in {token!r}")
    raw = raw.strip()
    if not raw:
        raise argparse.ArgumentTypeError(f"empty value for parameter {key!r} in {token!r}")
    lowered = raw.lower()
    if lowered in _BOOL_TOKENS:
        return key, _BOOL_TOKENS[lowered]
    if lowered in ("none", "null"):
        return key, None
    try:
        return key, ast.literal_eval(raw)
    except (ValueError, SyntaxError):
        if _LITERAL_PREFIX.match(raw):
            raise argparse.ArgumentTypeError(
                f"cannot parse value {raw!r} in {token!r}"
            ) from None
        return key, raw  # bare word: a plain string parameter


def _add_workload_flags(parser: argparse.ArgumentParser) -> None:
    """The shared ``--workload`` flag group (stream/loadgen/cluster/simulate).

    Each command's historical arrival/churn flags stay as working aliases
    of the ``uniform`` registry entry; ``--workload`` selects any registered
    scenario and ``--workload-param`` configures it against the scenario's
    schema.  Mixing the two spellings is rejected (by the registry shim for
    the event-stream surfaces, and explicitly for ``cluster``).
    """
    parser.add_argument(
        "--workload", type=str, default=None, choices=available_workloads(),
        metavar="NAME",
        help="registered workload scenario (see `repro workloads`); the "
        "legacy arrival/churn flags alias the 'uniform' entry and cannot "
        "be combined with --workload",
    )
    parser.add_argument(
        "--workload-param", action="append", default=[], metavar="KEY=VALUE",
        type=_parse_param_token,
        help="workload parameter (repeatable), e.g. --workload-param "
        "exponent=1.2; validated against the scenario's parameter schema",
    )


def _add_topology_flag(parser: argparse.ArgumentParser) -> None:
    """The shared ``--topology`` flag (simulate/stream/serve/loadgen).

    Accepts either a named layout from :data:`repro.topology.TOPOLOGY_LAYOUTS`
    (bin-count independent, bound against the spec's ``n_bins``) or a path
    to a ``repro-topology`` JSON document.
    """
    parser.add_argument(
        "--topology", type=str, default=None, metavar="NAME|FILE",
        help="rack/zone topology for zone-aware schemes: a named layout "
        "(see `repro topology`) or a topology JSON file; injected as the "
        "spec's topology parameter",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro-kd`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro-kd",
        description="Reproduce experiments from 'A Generalization of Multiple "
        "Choice Balls-into-Bins' (Park, PODC 2011).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    table1 = subparsers.add_parser("table1", help="Reproduce Table 1 (max-load grid)")
    table1.add_argument("--n", type=int, default=3 * 2 ** 12, help="balls and bins")
    table1.add_argument("--trials", type=int, default=3, help="runs per cell")
    table1.add_argument("--seed", type=int, default=0)
    table1.add_argument("--k", type=int, nargs="*", default=None, help="k rows")
    table1.add_argument("--d", type=int, nargs="*", default=None, help="d columns")
    table1.add_argument(
        "--engine", choices=list(ENGINES), default="auto",
        help="execution engine for every cell",
    )
    table1.add_argument(
        "--small", action="store_true",
        help="tiny smoke-test grid (n=768, 2 trials, k in {1,2,4}, d in {1,2,5,9})",
    )
    table1.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="fan each cell's trials out over N worker processes "
        "(-1 = all CPUs); results are identical for every value",
    )
    table1.add_argument(
        "--cache-dir", type=str, default=None, metavar="DIR",
        help="memoize per-trial results in DIR; rerunning against a warm "
        "cache skips the scheme runners and reports the hit count",
    )
    table1.add_argument(
        "--cache-max-entries", type=int, default=None, metavar="N",
        help="after the run, evict the oldest cache entries beyond N",
    )

    schemes = subparsers.add_parser(
        "schemes", help="List (or describe) the registered simulation schemes"
    )
    schemes.add_argument(
        "--describe", type=str, default=None, metavar="SCHEME",
        help="print the parameters and engines of one scheme",
    )
    schemes.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable registry dump: every scheme with "
        "its parameters, engines, and vectorized/online support (with the "
        "reason when unsupported)",
    )
    schemes.add_argument(
        "--check", action="store_true",
        help="run the registry/kernel parity lint: every ball-stream "
        "scheme's engines must be derived from its kernel registration and "
        "the compatibility shims must define nothing of their own; exits "
        "nonzero naming the offending scheme/module on drift",
    )

    workloads_cmd = subparsers.add_parser(
        "workloads",
        help="List (or describe) the registered workload scenarios",
    )
    workloads_cmd.add_argument(
        "--describe", type=str, default=None, metavar="WORKLOAD",
        help="print the parameters and hooks of one workload",
    )
    workloads_cmd.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable workload-registry dump: every "
        "scenario with its parameter schema and surface hooks",
    )

    topology_cmd = subparsers.add_parser(
        "topology",
        help="List the named rack/zone topology layouts (or validate a "
        "topology JSON file)",
    )
    topology_cmd.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable topology-layout registry dump",
    )
    topology_cmd.add_argument(
        "--validate", type=str, default=None, metavar="FILE",
        help="validate a repro-topology JSON document (schema, cost "
        "monotonicity, zone/rack shape) and print its summary",
    )

    bench = subparsers.add_parser(
        "bench",
        help="Compare two BENCH_*.json throughput snapshots (CI regression "
        "gate)",
    )
    bench.add_argument(
        "--compare", nargs=2, required=True, metavar=("OLD", "NEW"),
        help="baseline and candidate snapshot files; every shared "
        "*items_per_sec series is compared",
    )
    bench.add_argument(
        "--tolerance", type=float, default=0.10, metavar="FRACTION",
        help="allowed throughput drop before a series counts as a "
        "regression (default 0.10 = 10%%)",
    )

    simulate_cmd = subparsers.add_parser(
        "simulate", help="Run any registered scheme from a declarative spec"
    )
    simulate_cmd.add_argument("--scheme", type=str, required=True)
    simulate_cmd.add_argument(
        "--param", action="append", default=[], metavar="KEY=VALUE",
        type=_parse_param_token,
        help="scheme parameter (repeatable), e.g. --param n_bins=4096; values "
        "parse as literals, booleans (true/false) or bare-word strings",
    )
    simulate_cmd.add_argument("--policy", type=str, default=None)
    simulate_cmd.add_argument("--trials", type=int, default=1)
    simulate_cmd.add_argument("--seed", type=int, default=0)
    simulate_cmd.add_argument("--engine", choices=list(ENGINES), default="auto")
    simulate_cmd.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="fan the trials out over N worker processes (-1 = all CPUs)",
    )
    simulate_cmd.add_argument(
        "--cache-dir", type=str, default=None, metavar="DIR",
        help="memoize per-trial results in DIR and report hits/misses",
    )
    simulate_cmd.add_argument(
        "--cache-max-entries", type=int, default=None, metavar="N",
        help="after the run, evict the oldest cache entries beyond N",
    )
    _add_workload_flags(simulate_cmd)
    _add_topology_flag(simulate_cmd)

    stream = subparsers.add_parser(
        "stream",
        help="Serve a generated workload through the streaming allocator "
        "(repro.online), optionally recording it as a replayable trace",
    )
    stream.add_argument("--scheme", type=str, required=True)
    stream.add_argument(
        "--param", action="append", default=[], metavar="KEY=VALUE",
        type=_parse_param_token,
        help="scheme parameter (repeatable), e.g. --param n_bins=4096",
    )
    stream.add_argument("--policy", type=str, default=None)
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument(
        "--engine", choices=list(ENGINES), default="auto",
        help="ingestion mode: scalar steps unit by unit, auto/vectorized "
        "ride the batch kernels (results identical)",
    )
    stream.add_argument(
        "--items", type=int, default=None, metavar="N",
        help="requests to place (default: the spec's n_balls / n_bins)",
    )
    stream.add_argument(
        "--arrival-process", type=str, default="none",
        choices=["none", "poisson", "mmpp"],
        help="stamp events with substrate arrival times",
    )
    stream.add_argument("--arrival-rate", type=float, default=1000.0)
    stream.add_argument("--burstiness", type=float, default=4.0)
    stream.add_argument(
        "--churn", type=float, default=0.0, metavar="FRACTION",
        help="probability each placement is followed by the removal of a "
        "random live item",
    )
    stream.add_argument(
        "--workload-seed", type=int, default=None, metavar="SEED",
        help="seed of the workload generator (independent of the spec seed)",
    )
    stream.add_argument(
        "--record", type=str, default=None, metavar="TRACE",
        help="record the served stream as a replayable JSONL trace",
    )
    stream.add_argument(
        "--snapshot-every", type=int, default=None, metavar="EVENTS",
        help="capture an allocator snapshot every EVENTS events",
    )
    stream.add_argument(
        "--snapshot-dir", type=str, default=None, metavar="DIR",
        help="write the snapshots into DIR (JSON, one file per capture)",
    )
    stream.add_argument(
        "--telemetry-every", type=int, default=4096, metavar="EVENTS",
        help="events between live telemetry samples",
    )
    _add_workload_flags(stream)
    _add_topology_flag(stream)

    replay = subparsers.add_parser(
        "replay",
        help="Replay a recorded trace deterministically through the "
        "streaming allocator",
    )
    replay.add_argument(
        "--trace", type=str, required=True, metavar="TRACE",
        help="path to a repro-online-trace JSONL file",
    )
    replay.add_argument(
        "--engine", choices=list(ENGINES), default="auto",
        help="ingestion mode (results identical across engines)",
    )
    replay.add_argument(
        "--snapshot-every", type=int, default=None, metavar="EVENTS",
        help="capture an allocator snapshot every EVENTS events",
    )
    replay.add_argument(
        "--snapshot-dir", type=str, default=None, metavar="DIR",
        help="write the snapshots into DIR (JSON, one file per capture)",
    )
    replay.add_argument(
        "--record-out", type=str, default=None, metavar="TRACE",
        help="re-record the consumed stream (byte-identical round trip)",
    )
    replay.add_argument(
        "--telemetry-every", type=int, default=4096, metavar="EVENTS",
        help="events between live telemetry samples",
    )

    serve = subparsers.add_parser(
        "serve",
        help="Run the sharded allocation service: N allocator shards behind "
        "a router and a batching TCP frontend (repro.serve)",
    )
    serve.add_argument(
        "--scheme", type=str, default=None,
        help="scheme every shard runs (required unless --restore)",
    )
    serve.add_argument(
        "--param", action="append", default=[], metavar="KEY=VALUE",
        type=_parse_param_token,
        help="scheme parameter (repeatable), e.g. --param n_bins=4096",
    )
    serve.add_argument("--policy", type=str, default=None)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--engine", choices=list(ENGINES), default="auto",
        help="shard ingestion mode (results identical across engines)",
    )
    serve.add_argument(
        "--items", type=int, default=None, metavar="N",
        help="pool capacity: total placements the service will accept "
        "(overrides the spec's n_balls)",
    )
    serve.add_argument(
        "--shards", type=int, default=4, metavar="N",
        help="number of allocator shards",
    )
    serve.add_argument(
        "--router", type=str, default="two_choice",
        help="shard-routing policy: two_choice (the paper's scheme applied "
        "to the shard load vector), topology (zone-biased probes with "
        "cross-zone spill), least_loaded, or round_robin",
    )
    serve.add_argument(
        "--router-d", type=int, default=None, metavar="D",
        help="probes per placement for the two_choice/topology routers "
        "(default 2)",
    )
    serve.add_argument(
        "--mode", choices=["process", "thread"], default="process",
        help="shard isolation: one process per shard (default) or one "
        "thread (debugging)",
    )
    serve.add_argument("--host", type=str, default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0 = ephemeral; the bound port is printed and can "
        "be written with --port-file)",
    )
    serve.add_argument(
        "--port-file", type=str, default=None, metavar="FILE",
        help="write the bound port to FILE once listening (atomic; for "
        "scripted startup handshakes)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=1024, metavar="N",
        help="most placements coalesced into one batch window",
    )
    serve.add_argument(
        "--max-delay-ms", type=float, default=2.0, metavar="MS",
        help="milliseconds a batch window stays open after its first place",
    )
    serve.add_argument(
        "--restore", type=str, default=None, metavar="MANIFEST",
        help="resume from a pool manifest written by --snapshot-on-exit "
        "or the snapshot op (mutually exclusive with --scheme)",
    )
    serve.add_argument(
        "--snapshot-on-exit", type=str, default=None, metavar="MANIFEST",
        help="write a consistent cross-shard manifest on clean shutdown",
    )
    _add_topology_flag(serve)

    loadgen_cmd = subparsers.add_parser(
        "loadgen",
        help="Drive a running allocation server with a deterministic "
        "workload; report placements/sec and latency percentiles",
    )
    loadgen_cmd.add_argument("--host", type=str, default="127.0.0.1")
    loadgen_cmd.add_argument(
        "--port", type=int, required=True,
        help="port of the running `repro serve` instance",
    )
    loadgen_cmd.add_argument(
        "--items", type=int, default=10000, metavar="N",
        help="placements to drive (plus churn removals)",
    )
    loadgen_cmd.add_argument(
        "--connections", type=int, default=4, metavar="N",
        help="concurrent pipelined connections",
    )
    loadgen_cmd.add_argument(
        "--max-in-flight", type=int, default=64, metavar="N",
        help="outstanding requests per connection",
    )
    loadgen_cmd.add_argument(
        "--churn", type=float, default=0.0, metavar="FRACTION",
        help="probability each placement is followed by a removal",
    )
    loadgen_cmd.add_argument(
        "--arrival-process", type=str, default="none",
        choices=["none", "poisson", "mmpp"],
        help="stamp events with substrate arrival times (shapes the "
        "trace; transmission is not paced)",
    )
    loadgen_cmd.add_argument("--arrival-rate", type=float, default=1000.0)
    loadgen_cmd.add_argument("--burstiness", type=float, default=4.0)
    loadgen_cmd.add_argument(
        "--seed", type=int, default=0,
        help="workload seed (fixed seed -> identical event stream)",
    )
    loadgen_cmd.add_argument(
        "--shutdown-after", action="store_true",
        help="send the shutdown op once the stream completes",
    )
    loadgen_cmd.add_argument(
        "--json", action="store_true",
        help="print the report as one JSON object instead of text",
    )
    _add_workload_flags(loadgen_cmd)
    _add_topology_flag(loadgen_cmd)

    profile = subparsers.add_parser(
        "profile", help="Figures 1 & 2: sorted load profiles with landmarks"
    )
    profile.add_argument("--n", type=int, default=3 * 2 ** 14)
    profile.add_argument("--seed", type=int, default=0)

    regimes = subparsers.add_parser("regimes", help="Theorem 1 regime scaling")
    regimes.add_argument("--trials", type=int, default=3)
    regimes.add_argument("--seed", type=int, default=0)
    regimes.add_argument(
        "--engine", choices=list(ENGINES), default="auto",
        help="execution engine for every configuration (results-neutral)",
    )
    regimes.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="fan each configuration's trials out over N worker processes",
    )

    heavy = subparsers.add_parser("heavy", help="Theorem 2 heavily loaded case")
    heavy.add_argument("--n", type=int, default=1 << 12)
    heavy.add_argument("--trials", type=int, default=3)
    heavy.add_argument("--seed", type=int, default=0)

    tradeoff = subparsers.add_parser("tradeoff", help="Max load vs message cost")
    tradeoff.add_argument("--n", type=int, default=3 * 2 ** 13)
    tradeoff.add_argument("--trials", type=int, default=3)
    tradeoff.add_argument("--seed", type=int, default=0)
    tradeoff.add_argument(
        "--engine", choices=list(ENGINES), default="auto",
        help="execution engine for every scheme spec (results-neutral)",
    )
    tradeoff.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="fan each scheme's trials out over N worker processes",
    )

    scheduling = subparsers.add_parser(
        "scheduling", help="Cluster-scheduling application experiment"
    )
    scheduling.add_argument("--workers", type=int, default=64)
    scheduling.add_argument("--jobs", type=int, default=400)
    scheduling.add_argument("--seed", type=int, default=0)

    cluster = subparsers.add_parser(
        "cluster",
        help="Run the cluster-scheduling substrate as a spec-driven trial "
        "fan-out (scenario library, caching, parallel trials)",
    )
    cluster.add_argument("--workers", type=int, default=64)
    cluster.add_argument(
        "--trace-jobs", type=int, default=200, metavar="J",
        help="number of jobs in the simulated trace",
    )
    cluster.add_argument("--tasks-per-job", type=int, default=4)
    cluster.add_argument("--probe-ratio", type=float, default=2.0)
    cluster.add_argument("--arrival-rate", type=float, default=8.0)
    cluster.add_argument(
        "--distribution", type=str, default="exponential",
        help="service-time distribution (exponential, uniform, constant, "
        "pareto, lognormal)",
    )
    cluster.add_argument(
        "--duration-shape", type=float, default=2.5,
        help="tail parameter for pareto (shape) / lognormal (sigma)",
    )
    cluster.add_argument(
        "--arrival-process", type=str, default="poisson",
        choices=["poisson", "mmpp"],
        help="memoryless or bursty (two-state MMPP) arrivals",
    )
    cluster.add_argument("--burstiness", type=float, default=4.0)
    cluster.add_argument(
        "--speed-spread", type=float, default=0.0,
        help="worker heterogeneity: lognormal sigma of the speed factors",
    )
    cluster.add_argument("--trials", type=int, default=3)
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument("--engine", choices=list(ENGINES), default="auto")
    cluster.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="fan the trials out over N worker processes (-1 = all CPUs)",
    )
    cluster.add_argument(
        "--cache-dir", type=str, default=None, metavar="DIR",
        help="memoize per-trial results in DIR and report hits/misses",
    )
    cluster.add_argument(
        "--cache-max-entries", type=int, default=None, metavar="N",
        help="after the run, evict the oldest cache entries beyond N",
    )
    _add_workload_flags(cluster)

    storage = subparsers.add_parser(
        "storage",
        help="Run the storage-placement substrate as a spec-driven trial "
        "fan-out (--compare prints the policy-comparison experiment instead)",
    )
    storage.add_argument("--servers", type=int, default=1024)
    storage.add_argument("--files", type=int, default=8192)
    storage.add_argument("--seed", type=int, default=0)
    storage.add_argument(
        "--compare", action="store_true",
        help="run the historical placement-policy comparison table",
    )
    storage.add_argument("--replicas", type=int, default=3)
    storage.add_argument(
        "--extra-probes", type=int, default=1,
        help="d = replicas + extra_probes probes per file",
    )
    storage.add_argument(
        "--mode", type=str, default="replication",
        choices=["replication", "chunking"],
    )
    storage.add_argument(
        "--size-dist", type=str, default="constant",
        choices=["constant", "exponential", "lognormal"],
    )
    storage.add_argument(
        "--fail-fraction", type=float, default=0.0,
        help="fail this fraction of servers after placement and measure "
        "availability (runs on the reference substrate)",
    )
    storage.add_argument(
        "--rebuild", action="store_true",
        help="re-replicate the replicas lost to --fail-fraction failures",
    )
    storage.add_argument("--trials", type=int, default=3)
    storage.add_argument("--engine", choices=list(ENGINES), default="auto")
    storage.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="fan the trials out over N worker processes (-1 = all CPUs)",
    )
    storage.add_argument(
        "--cache-dir", type=str, default=None, metavar="DIR",
        help="memoize per-trial results in DIR and report hits/misses",
    )
    storage.add_argument(
        "--cache-max-entries", type=int, default=None, metavar="N",
        help="after the run, evict the oldest cache entries beyond N",
    )

    majorization = subparsers.add_parser(
        "majorization", help="Empirical Section 3 majorization checks"
    )
    majorization.add_argument("--n", type=int, default=3 * 2 ** 10)
    majorization.add_argument("--trials", type=int, default=8)
    majorization.add_argument("--seed", type=int, default=0)

    ablation = subparsers.add_parser(
        "ablation", help="Strict vs greedy allocation policy (Section 7)"
    )
    ablation.add_argument("--n", type=int, default=3 * 2 ** 10)
    ablation.add_argument("--trials", type=int, default=5)
    ablation.add_argument("--seed", type=int, default=0)

    weighted = subparsers.add_parser(
        "weighted", help="Extension: weighted balls (exponential / Pareto weights)"
    )
    weighted.add_argument("--n", type=int, default=3 * 2 ** 10)
    weighted.add_argument("--trials", type=int, default=3)
    weighted.add_argument("--seed", type=int, default=0)

    staleness = subparsers.add_parser(
        "staleness", help="Extension: stale load information (parallel rounds)"
    )
    staleness.add_argument("--n", type=int, default=3 * 2 ** 10)
    staleness.add_argument("--trials", type=int, default=3)
    staleness.add_argument("--seed", type=int, default=0)

    churn = subparsers.add_parser(
        "churn", help="Extension: dynamic insert/delete steady state"
    )
    churn.add_argument("--n", type=int, default=512)
    churn.add_argument("--rounds", type=int, default=2048)
    churn.add_argument("--seed", type=int, default=0)

    open_question = subparsers.add_parser(
        "open-question", help="Section 7 open case: heavily loaded d < 2k"
    )
    open_question.add_argument("--n", type=int, default=1 << 11)
    open_question.add_argument("--trials", type=int, default=3)
    open_question.add_argument("--seed", type=int, default=0)

    exact = subparsers.add_parser(
        "exact", help="Validate the simulator against exact tiny-instance distributions"
    )
    exact.add_argument("--trials", type=int, default=4000)
    exact.add_argument("--seed", type=int, default=0)

    report = subparsers.add_parser(
        "report", help="Run every recipe (scaled) and emit a Markdown report"
    )
    report.add_argument("--seed", type=int, default=0)
    report.add_argument(
        "--sections", nargs="*", default=None, help="subset of section keys to run"
    )
    report.add_argument(
        "--output", type=str, default=None, help="write the Markdown to this file"
    )

    return parser


def _print(table_or_text: "ResultTable | str") -> None:
    if isinstance(table_or_text, ResultTable):
        print(table_or_text.to_text())
    else:
        print(table_or_text)


def _collect_params(pairs: Sequence[Tuple[str, object]]) -> Dict[str, object]:
    """Merge the (key, value) tuples produced by :func:`_parse_param_token`."""
    return {key: value for key, value in pairs}


def _make_store(cache_dir: Optional[str]) -> Optional[ResultStore]:
    return ResultStore(cache_dir) if cache_dir else None


def _print_cache_stats(store: Optional[ResultStore]) -> None:
    if store is not None:
        print(
            f"cache: {store.hits} hits, {store.misses} misses "
            f"({store.cache_dir})"
        )


def _prune_cache(store: Optional[ResultStore], max_entries: Optional[int]) -> None:
    """Apply ``--cache-max-entries`` after a run and report the eviction."""
    if max_entries is None or store is None:
        # A limit without a store is rejected at argument-parse time.
        return
    try:
        evicted = store.prune(max_entries=max_entries)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None
    print(f"cache: pruned {evicted} entries, kept {len(store)}")


def _workload_param_args(args: argparse.Namespace) -> Optional[Dict[str, object]]:
    """``--workload-param`` tokens as a dict (``None`` when absent)."""
    if not args.workload_param:
        return None
    if args.workload is None:
        raise SystemExit("error: --workload-param requires --workload")
    return _collect_params(args.workload_param)


def _resolve_topology_arg(value: Optional[str]) -> "object | None":
    """``--topology NAME|FILE`` -> a spec-ready ``topology=`` parameter.

    A path that exists on disk loads as a ``repro-topology`` document (the
    spec carries the full dict); anything else must name a registered
    layout and stays a string (bound to ``n_bins`` at run time).
    """
    if value is None:
        return None
    from .topology import TOPOLOGY_LAYOUTS, TopologyError, load_topology

    if os.path.exists(value):
        try:
            return load_topology(value).to_dict()
        except (OSError, TopologyError) as exc:
            raise SystemExit(
                f"error: cannot load topology file {value!r}: {exc}"
            ) from None
    if value not in TOPOLOGY_LAYOUTS:
        raise SystemExit(
            f"error: unknown topology {value!r}; named layouts: "
            f"{', '.join(sorted(TOPOLOGY_LAYOUTS))} (or pass a topology "
            f"JSON file)"
        )
    return value


def _topology_shape(resolved: object) -> Tuple[int, int]:
    """``(zones, racks_per_zone)`` of a resolved ``--topology`` value."""
    if isinstance(resolved, str):
        from .topology import TOPOLOGY_LAYOUTS

        layout = TOPOLOGY_LAYOUTS[resolved]
        return layout.zones, layout.racks_per_zone
    zones = resolved["zones"]  # type: ignore[index]
    return len(zones), max(len(racks) for racks in zones)


def _run_topology(args: argparse.Namespace) -> None:
    from .topology import (
        TOPOLOGY_LAYOUTS,
        TopologyError,
        load_topology,
        topology_registry_dump,
    )

    if args.validate is not None:
        try:
            topology = load_topology(args.validate)
        except FileNotFoundError:
            raise SystemExit(
                f"error: topology file {args.validate!r} not found"
            ) from None
        except (OSError, TopologyError) as exc:
            raise SystemExit(f"error: invalid topology: {exc}") from None
        costs = ", ".join(
            f"{relation}={topology.probe_costs[relation]:g}"
            for relation in ("rack", "zone", "cross")
        )
        print(
            f"{topology.name}: valid ({topology.n_zones} zones, "
            f"{topology.n_racks} racks, {topology.n_bins} bins)"
        )
        print(f"  probe_costs: {costs}")
        return
    if args.json:
        print(json.dumps(topology_registry_dump(), indent=2, sort_keys=True))
        return
    width = max(len(name) for name in TOPOLOGY_LAYOUTS)
    for name in sorted(TOPOLOGY_LAYOUTS):
        layout = TOPOLOGY_LAYOUTS[name]
        print(
            f"{name:<{width}}  {layout.zones}x{layout.racks_per_zone}  "
            f"{layout.summary}"
        )


def _run_simulate(args: argparse.Namespace) -> None:
    store = _make_store(args.cache_dir)
    params = _collect_params(args.param)
    topology = _resolve_topology_arg(args.topology)
    if topology is not None:
        params["topology"] = topology
    workload_params = _workload_param_args(args)
    if args.workload is not None:
        # The workload contributes scenario-derived spec parameters (e.g.
        # hetero_bins capacities); explicit --param values win.  Item-level
        # event structure does not reach the batch engines — the equivalence
        # harness pins the stream itself via the simulation surface.
        try:
            params.update(bind_spec_params(args.workload, workload_params, params))
        except WorkloadError as exc:
            raise SystemExit(f"error: {exc}") from None
    try:
        spec = SchemeSpec(
            scheme=args.scheme,
            params=params,
            policy=args.policy,
            seed=args.seed,
            trials=args.trials,
            engine=args.engine,
        )
        outcome = simulate_trials(spec, n_jobs=args.jobs, cache=store)
    except KeyError as exc:  # unknown scheme: surface the candidate list
        raise SystemExit(f"error: {exc.args[0]}") from None
    except ValueError as exc:  # spec errors and runner parameter validation
        raise SystemExit(f"error: {exc}") from None
    record = outcome.record()
    print(f"spec: {spec.display_label} (engine={args.engine}, seed={args.seed})")
    for key, value in record.items():
        print(f"  {key}: {value}")
    _print_cache_stats(store)
    _prune_cache(store, args.cache_max_entries)


def _run_substrate(
    args: argparse.Namespace, scheme: str, params: Dict[str, object]
) -> None:
    """Shared driver of the spec-driven ``cluster`` / ``storage`` commands."""
    store = _make_store(args.cache_dir)
    try:
        spec = SchemeSpec(
            scheme=scheme,
            params=params,
            seed=args.seed,
            trials=args.trials,
            engine=args.engine,
        )
        outcome = simulate_trials(spec, n_jobs=args.jobs, cache=store)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None
    print(f"spec: {spec.display_label} (engine={args.engine}, seed={args.seed})")
    for key, value in outcome.record().items():
        print(f"  {key}: {value}")
    _print_cache_stats(store)
    _prune_cache(store, args.cache_max_entries)


def _run_stream(args: argparse.Namespace) -> None:
    from .online import LoadTelemetry, stream_workload
    from .online.trace import TraceError

    params = _collect_params(args.param)
    topology = _resolve_topology_arg(args.topology)
    if topology is not None:
        params["topology"] = topology
    try:
        spec = SchemeSpec(
            scheme=args.scheme,
            params=params,
            policy=args.policy,
            seed=args.seed,
            engine=args.engine,
        )
        summary = stream_workload(
            spec,
            items=args.items,
            arrival_process=args.arrival_process,
            arrival_rate=args.arrival_rate,
            burstiness=args.burstiness,
            churn=args.churn,
            workload_seed=args.workload_seed,
            record=args.record,
            snapshot_every=args.snapshot_every,
            snapshot_dir=args.snapshot_dir,
            telemetry=LoadTelemetry(sample_every=args.telemetry_every),
            workload=args.workload,
            workload_params=_workload_param_args(args),
        )
    except KeyError as exc:
        raise SystemExit(f"error: {exc.args[0]}") from None
    except (ValueError, TraceError) as exc:
        raise SystemExit(f"error: {exc}") from None
    print(summary.format_text())
    if args.record:
        print(f"recorded: {args.record} ({summary.events} events)")


def _run_replay(args: argparse.Namespace) -> None:
    from .online import LoadTelemetry, replay_trace
    from .online.trace import TraceError

    try:
        summary = replay_trace(
            args.trace,
            engine=args.engine,
            snapshot_every=args.snapshot_every,
            snapshot_dir=args.snapshot_dir,
            record_out=args.record_out,
            telemetry=LoadTelemetry(sample_every=args.telemetry_every),
        )
    except FileNotFoundError:
        raise SystemExit(f"error: trace file {args.trace!r} not found") from None
    except KeyError as exc:
        raise SystemExit(f"error: {exc.args[0]}") from None
    except (ValueError, TraceError) as exc:
        raise SystemExit(f"error: {exc}") from None
    print(summary.format_text())


def _write_port_file(path: str, port: int) -> None:
    """Publish the bound port atomically (a reader never sees a torn file)."""
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(f"{port}\n")
    os.replace(tmp, path)


def _run_serve(args: argparse.Namespace) -> None:
    import asyncio
    import signal

    from .serve import AllocationServer, ServeConfig, ShardPool, ShardPoolError

    if (args.scheme is None) == (args.restore is None):
        raise SystemExit(
            "error: pass exactly one of --scheme (fresh pool) or "
            "--restore (resume from a manifest)"
        )

    topology = _resolve_topology_arg(args.topology)
    policy_params: Dict[str, object] = (
        {"d": args.router_d} if args.router_d is not None else {}
    )
    if topology is not None and args.router in ("topology", "zone"):
        # The topology router maps shards onto zones; derive the zone count
        # from the --topology layout so the two surfaces stay in step.
        policy_params.setdefault("zones", _topology_shape(topology)[0])

    async def _main() -> None:
        config = ServeConfig(
            host=args.host,
            port=args.port,
            n_shards=args.shards,
            policy=args.router,
            mode=args.mode,
            policy_params=policy_params,
            max_batch=args.max_batch,
            max_delay=args.max_delay_ms / 1000.0,
            snapshot_on_exit=args.snapshot_on_exit,
        )
        if args.restore is not None:
            pool = ShardPool.load(args.restore, mode=args.mode)
            server = AllocationServer(pool=pool, config=config)
        else:
            params = _collect_params(args.param)
            if topology is not None:
                # Topology routing composes with any shard scheme; the spec
                # parameter only exists on the topology-aware schemes.
                try:
                    accepts = "topology" in describe_scheme(args.scheme)["parameters"]
                except KeyError:
                    accepts = False  # unknown scheme: spec creation reports it
                if accepts:
                    params["topology"] = topology
            if args.items is not None:
                params["n_balls"] = args.items
            spec = SchemeSpec(
                scheme=args.scheme,
                params=params,
                policy=args.policy,
                seed=args.seed,
                engine=args.engine,
            )
            server = AllocationServer(spec, config)
        await server.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    signum, lambda: asyncio.ensure_future(server.stop())
                )
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-Unix loop: Ctrl-C falls back to KeyboardInterrupt
        pool = server.pool
        print(
            f"serving {server.spec.display_label} on "
            f"{config.host}:{server.port} (shards={pool.n_shards}, "
            f"router={pool.router.policy}, mode={pool.mode})",
            flush=True,
        )
        if args.port_file:
            _write_port_file(args.port_file, server.port)
        await server.serve_forever()
        print(
            f"stopped: served {server.places} places, "
            f"{server.removes} removes over {server.requests} requests",
            flush=True,
        )

    try:
        asyncio.run(_main())
    except KeyError as exc:
        raise SystemExit(f"error: {exc.args[0]}") from None
    except (ShardPoolError, ValueError) as exc:
        raise SystemExit(f"error: {exc}") from None


def _run_loadgen(args: argparse.Namespace) -> None:
    from .serve import ServeError, loadgen

    workload = args.workload
    workload_params = _workload_param_args(args)
    topology = _resolve_topology_arg(args.topology)
    if topology is not None:
        # --topology selects the zone-tagged workload and sizes its grid to
        # the layout, so the generated stream matches the server's topology.
        if workload is None:
            workload = "topology_aware"
        zones, racks_per_zone = _topology_shape(topology)
        workload_params = dict(workload_params or {})
        workload_params.setdefault("zones", zones)
        workload_params.setdefault("racks_per_zone", racks_per_zone)
    try:
        report = loadgen(
            host=args.host,
            port=args.port,
            items=args.items,
            connections=args.connections,
            max_in_flight=args.max_in_flight,
            churn=args.churn,
            arrival_process=args.arrival_process,
            arrival_rate=args.arrival_rate,
            burstiness=args.burstiness,
            seed=args.seed,
            shutdown_after=args.shutdown_after,
            workload=workload,
            workload_params=workload_params,
        )
    except ConnectionRefusedError:
        raise SystemExit(
            f"error: no server listening on {args.host}:{args.port} "
            f"(start one with `repro serve`)"
        ) from None
    except OSError as exc:
        raise SystemExit(
            f"error: cannot reach {args.host}:{args.port} ({exc})"
        ) from None
    except (ServeError, ValueError) as exc:
        raise SystemExit(f"error: {exc}") from None
    if args.json:
        print(json.dumps(report.to_dict(), sort_keys=True))
    else:
        print(report.format_text())


def _collect_rates(payload: object, prefix: str = "") -> Dict[str, float]:
    """Flatten every numeric ``*items_per_sec`` entry to ``dotted.path -> rate``."""
    rates: Dict[str, float] = {}
    if isinstance(payload, dict):
        for key in sorted(payload):
            value = payload[key]
            path = f"{prefix}.{key}" if prefix else str(key)
            if key.endswith("items_per_sec") and isinstance(value, (int, float)):
                rates[path] = float(value)
            else:
                rates.update(_collect_rates(value, path))
    return rates


def _normalize_rate_paths(rates: Dict[str, float]) -> Dict[str, float]:
    """Fold version-1 envelope spellings onto the version-2 ``series.`` prefix.

    Version-1 snapshots nested their rates under ``schemes`` (bench_report)
    or kept them at the top level (bench_serve); mapping both onto the
    unified envelope keeps ``repro bench --compare`` usable across any
    old/new snapshot pair.
    """
    normalized: Dict[str, float] = {}
    for path, rate in rates.items():
        if path.startswith("schemes."):
            path = "series." + path[len("schemes."):]
        elif "." not in path:
            path = f"series.shard_pool.{path}"
        normalized[path] = rate
    return normalized


def _run_bench_compare(args: argparse.Namespace) -> None:
    old_path, new_path = args.compare
    snapshots = []
    for path in (old_path, new_path):
        try:
            with open(path, encoding="utf-8") as handle:
                snapshots.append(json.load(handle))
        except (OSError, json.JSONDecodeError) as exc:
            raise SystemExit(f"error: cannot read snapshot {path}: {exc}") from None
    old, new = snapshots

    old_cpus, new_cpus = old.get("cpus"), new.get("cpus")
    if old_cpus is not None and new_cpus is not None and old_cpus != new_cpus:
        # Different machines: throughput deltas say nothing about the code.
        print(
            f"warning: snapshots were taken on different machines "
            f"({old_path}: {old_cpus} CPUs, {new_path}: {new_cpus} CPUs); "
            f"skipping the regression comparison"
        )
        return

    old_rates = _normalize_rate_paths(_collect_rates(old))
    new_rates = _normalize_rate_paths(_collect_rates(new))
    shared = sorted(set(old_rates) & set(new_rates))
    if not shared:
        raise SystemExit(
            f"error: {old_path} and {new_path} share no *items_per_sec "
            f"series; nothing to compare"
        )

    regressions: List[str] = []
    anomalies: List[str] = []
    width = max(len(series) for series in shared)
    for series in shared:
        before, after = old_rates[series], new_rates[series]
        if not math.isfinite(before) or before <= 0.0 or not math.isfinite(after):
            # A zero, negative or NaN rate is a broken snapshot (a crashed
            # bench run, a hand-edited file), not a throughput measurement;
            # reporting it as a +0.0% pass would let a fabricated baseline
            # slip through the gate.
            anomalies.append(series)
            print(
                f"{series:<{width}}  {before:>12,.0f}/s -> {after:>12,.0f}/s  "
                f"ANOMALY (rate is zero, negative or non-finite)"
            )
            continue
        change = (after - before) / before
        marker = ""
        if after < before * (1.0 - args.tolerance):
            marker = "  REGRESSION"
            regressions.append(series)
        print(
            f"{series:<{width}}  {before:>12,.0f}/s -> {after:>12,.0f}/s  "
            f"({change:+.1%}){marker}"
        )
    only = sorted(set(old_rates) ^ set(new_rates))
    if only:
        print(f"not compared (present in one snapshot only): {', '.join(only)}")
    failures: List[str] = []
    if regressions:
        failures.append(
            f"{len(regressions)} series regressed more than "
            f"{args.tolerance:.0%}: {', '.join(regressions)}"
        )
    if anomalies:
        if args.tolerance >= 1.0:
            # An explicit tolerance of 100%+ says "report, don't gate";
            # anomalies stay visible above but do not fail the run.
            print(
                f"warning: {len(anomalies)} series with unusable rates "
                f"ignored at --tolerance >= 100%: {', '.join(anomalies)}"
            )
        else:
            failures.append(
                f"{len(anomalies)} series carry an unusable rate "
                f"(zero, negative or non-finite): {', '.join(anomalies)}"
            )
    if failures:
        raise SystemExit("; ".join(failures))
    print(
        f"{len(shared) - len(anomalies)} series within {args.tolerance:.0%} "
        f"of {old_path}"
    )


def _run_schemes(args: argparse.Namespace) -> None:
    if args.check:
        from .api import lint_registry
        from .core.compiled import describe_backend

        # Machine-local diagnostic, deliberately absent from --json (the
        # registry dump must stay host-independent for the golden tests).
        backend = describe_backend()
        if backend["available"]:
            print(
                f"compiled backend: available (compiler={backend['compiler']}, "
                f"cache={backend['cache_dir']})"
            )
        else:
            print(f"compiled backend: unavailable ({backend['reason']})")
        problems = lint_registry()
        if problems:
            for problem in problems:
                print(f"parity: {problem}")
            raise SystemExit(
                f"{len(problems)} registry/kernel parity violation(s)"
            )
        print(
            f"registry/kernel parity OK ({len(available_schemes())} schemes, "
            f"{len(available_workloads())} workloads)"
        )
        return
    if args.json:
        print(json.dumps(registry_dump(), indent=2, sort_keys=True))
        return
    if args.describe is not None:
        try:
            description = describe_scheme(args.describe)
        except KeyError as exc:
            raise SystemExit(f"error: {exc.args[0]}") from None
        print(f"{description['name']}: {description['summary']}")
        print(f"  engines: {', '.join(description['engines'])}")
        print(f"  online: {'yes' if description['online'] else 'no'}")
        if description["aliases"]:
            print(f"  aliases: {', '.join(description['aliases'])}")
        print("  parameters:")
        for name, default in description["parameters"].items():
            print(f"    {name} = {default}")
        return
    width = max(len(name) for name in available_schemes())
    for name in available_schemes():
        print(f"{name:<{width}}  {describe_scheme(name)['summary']}")


def _run_workloads(args: argparse.Namespace) -> None:
    if args.json:
        print(json.dumps(workloads_dump(), indent=2, sort_keys=True))
        return
    if args.describe is not None:
        try:
            record = get_workload(args.describe)
        except WorkloadError as exc:
            raise SystemExit(f"error: {exc}") from None
        print(f"{record.name}: {record.summary}")
        hooks = [
            label
            for label, present in (
                ("arrival stamps", record.stamper is not None
                 or "arrival_process" in record.defaults),
                ("tenant labels", record.labeler is not None),
                ("spec binding", record.binder is not None),
                ("substrate arrivals", record.arrivals is not None),
            )
            if present
        ]
        print(f"  hooks: {', '.join(hooks) if hooks else 'none'}")
        print("  parameters:")
        for name, default in record.defaults.items():
            print(f"    {name} = {default}")
        return
    names = available_workloads()
    width = max(len(name) for name in names)
    for name in names:
        print(f"{name:<{width}}  {get_workload(name).summary}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-kd`` / ``python -m repro``."""
    parser = build_parser()
    args = parser.parse_args(argv)

    # Reject the combination before any work runs: a long computation that
    # only errors at the end would waste the whole run.
    if (
        getattr(args, "cache_max_entries", None) is not None
        and not getattr(args, "cache_dir", None)
    ):
        parser.error("--cache-max-entries requires --cache-dir")

    if args.command == "table1":
        if args.small:
            args.n = min(args.n, 768)
            args.trials = min(args.trials, 2)
            args.k = args.k if args.k is not None else [1, 2, 4]
            args.d = args.d if args.d is not None else [1, 2, 5, 9]
        store = _make_store(args.cache_dir)
        try:
            result = run_table1(
                n=args.n, trials=args.trials, seed=args.seed,
                k_values=args.k, d_values=args.d, engine=args.engine,
                n_jobs=args.jobs, cache=store,
            )
        except ValueError as exc:  # e.g. an invalid --jobs value
            raise SystemExit(f"error: {exc}") from None
        _print(result.to_text())
        _print_cache_stats(store)
        _prune_cache(store, args.cache_max_entries)
    elif args.command == "schemes":
        _run_schemes(args)
    elif args.command == "workloads":
        _run_workloads(args)
    elif args.command == "topology":
        _run_topology(args)
    elif args.command == "bench":
        _run_bench_compare(args)
    elif args.command == "simulate":
        _run_simulate(args)
    elif args.command == "stream":
        _run_stream(args)
    elif args.command == "replay":
        _run_replay(args)
    elif args.command == "serve":
        _run_serve(args)
    elif args.command == "loadgen":
        _run_loadgen(args)
    elif args.command == "profile":
        result = run_load_profile(n=args.n, seed=args.seed)
        lines: List[str] = []
        for series in result.series:
            lines.append(
                f"(k={series.k}, d={series.d}, n={series.n}): max load {series.max_load}, "
                f"beta0={series.beta0:.1f}, gamma0={series.gamma0:.1f}, "
                f"gamma*={series.gamma_star_:.1f}"
            )
            lines.append(f"  Figure 1 decomposition: {series.figure1_decomposition()}")
            lines.append(f"  Figure 2 decomposition: {series.figure2_decomposition()}")
        _print("\n".join(lines))
    elif args.command == "regimes":
        _print(
            regime_table(
                run_regime_scaling(
                    trials=args.trials, seed=args.seed,
                    n_jobs=args.jobs, engine=args.engine,
                )
            )
        )
    elif args.command == "heavy":
        _print(heavy_table(run_heavy_case(n=args.n, trials=args.trials, seed=args.seed)))
    elif args.command == "tradeoff":
        _print(
            tradeoff_table(
                run_tradeoff(
                    n=args.n, trials=args.trials, seed=args.seed,
                    n_jobs=args.jobs, engine=args.engine,
                )
            )
        )
    elif args.command == "scheduling":
        _print(
            scheduling_table(
                run_scheduling_experiment(
                    n_workers=args.workers, n_jobs=args.jobs, seed=args.seed
                )
            )
        )
    elif args.command == "cluster":
        params = {
            "n_workers": args.workers,
            "n_jobs": args.trace_jobs,
            "tasks_per_job": args.tasks_per_job,
            "probe_ratio": args.probe_ratio,
            "arrival_rate": args.arrival_rate,
            "duration_distribution": args.distribution,
            "duration_shape": args.duration_shape,
            "arrival_process": args.arrival_process,
            "burstiness": args.burstiness,
            "speed_spread": args.speed_spread,
        }
        if args.workload is not None:
            # The substrate stamps its own arrival process; a workload
            # drives it through the record's arrivals hook.  The legacy
            # arrival flags alias the 'uniform' entry, so combining the
            # spellings would be ambiguous.
            legacy_defaults = {
                "arrival_process": "poisson",
                "arrival_rate": 8.0,
                "burstiness": 4.0,
            }
            drifted = sorted(
                f"--{flag.replace('_', '-')}"
                for flag, default in legacy_defaults.items()
                if getattr(args, flag) != default
            )
            if drifted:
                raise SystemExit(
                    f"error: pass either --workload {args.workload} (with "
                    f"--workload-param) or the legacy flags "
                    f"{', '.join(drifted)} — not both"
                )
            try:
                params.update(
                    substrate_arrivals(args.workload, _workload_param_args(args))
                )
            except WorkloadError as exc:
                raise SystemExit(f"error: {exc}") from None
        else:
            _workload_param_args(args)  # rejects --workload-param alone
        _run_substrate(args, "cluster_scheduling", params)
    elif args.command == "storage":
        if args.compare:
            _print(
                storage_table(
                    run_storage_experiment(
                        n_servers=args.servers, n_files=args.files, seed=args.seed
                    )
                )
            )
        else:
            _run_substrate(
                args,
                "storage_placement",
                {
                    "n_servers": args.servers,
                    "n_files": args.files,
                    "replicas": args.replicas,
                    "extra_probes": args.extra_probes,
                    "mode": args.mode,
                    "size_distribution": args.size_dist,
                    "fail_fraction": args.fail_fraction,
                    "rebuild": args.rebuild,
                },
            )
    elif args.command == "majorization":
        _print(
            majorization_table(
                run_majorization_chain(n=args.n, trials=args.trials, seed=args.seed)
            )
        )
    elif args.command == "ablation":
        _print(
            ablation_table(
                run_policy_ablation(n=args.n, trials=args.trials, seed=args.seed)
            )
        )
    elif args.command == "weighted":
        _print(
            weighted_table(
                run_weighted_experiment(n=args.n, trials=args.trials, seed=args.seed)
            )
        )
    elif args.command == "staleness":
        _print(
            staleness_table(
                run_staleness_experiment(n=args.n, trials=args.trials, seed=args.seed)
            )
        )
    elif args.command == "churn":
        _print(
            churn_table(
                run_churn_experiment(n=args.n, rounds=args.rounds, seed=args.seed)
            )
        )
    elif args.command == "open-question":
        _print(
            open_question_table(
                run_open_question_heavy(n=args.n, trials=args.trials, seed=args.seed)
            )
        )
    elif args.command == "exact":
        _print(
            exact_validation_table(
                run_exact_validation(trials=args.trials, seed=args.seed)
            )
        )
    elif args.command == "report":
        report = generate_report(seed=args.seed, sections=args.sections)
        markdown = report.to_markdown()
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(markdown)
            print(f"wrote {args.output} ({len(report.sections)} sections)")
        else:
            print(markdown)
    else:  # pragma: no cover - argparse enforces the choices
        parser.error(f"unknown command {args.command!r}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
