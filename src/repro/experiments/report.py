"""One-shot reproduction report.

``generate_report`` runs a scaled version of every experiment recipe and
renders a single Markdown document — the same artefacts EXPERIMENTS.md
records, regenerated from scratch on the current machine.  It is exposed as
``python -m repro report`` and used by the integration tests as a smoke test
that every recipe composes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..simulation.rng import SeedTree
from .ablation import ablation_table, run_policy_ablation
from .applications import (
    run_scheduling_experiment,
    run_storage_experiment,
    scheduling_table,
    storage_table,
)
from .extensions import (
    churn_table,
    exact_validation_table,
    open_question_table,
    run_churn_experiment,
    run_exact_validation,
    run_open_question_heavy,
    run_staleness_experiment,
    run_weighted_experiment,
    staleness_table,
    weighted_table,
)
from .heavy import heavy_table, run_heavy_case
from .load_profile import run_load_profile
from .majorization_exp import majorization_table, run_majorization_chain
from .regimes import regime_table, run_regime_scaling
from .table1 import run_table1
from .tradeoff import run_tradeoff, tradeoff_table

__all__ = ["ReportSection", "ReproductionReport", "generate_report", "REPORT_SECTIONS"]


@dataclass
class ReportSection:
    """One experiment's rendered output."""

    key: str
    title: str
    body: str


@dataclass
class ReproductionReport:
    """A collection of report sections, renderable as Markdown."""

    seed: int
    sections: List[ReportSection] = field(default_factory=list)

    def section(self, key: str) -> ReportSection:
        for section in self.sections:
            if section.key == key:
                return section
        raise KeyError(f"no section named {key!r}")

    def to_markdown(self) -> str:
        lines = [
            "# (k, d)-choice reproduction report",
            "",
            f"Root seed: `{self.seed}`.  Scaled-down parameters; see EXPERIMENTS.md "
            "for paper-scale anchors.",
            "",
        ]
        for section in self.sections:
            lines.append(f"## {section.title}")
            lines.append("")
            lines.append("```")
            lines.append(section.body.rstrip())
            lines.append("```")
            lines.append("")
        return "\n".join(lines)


def _table1_section(seed: int) -> str:
    result = run_table1(
        n=3 * 2 ** 11,
        trials=3,
        seed=seed,
        k_values=(1, 2, 4, 8, 16),
        d_values=(1, 2, 3, 5, 9, 17),
    )
    return result.to_text()


def _profile_section(seed: int) -> str:
    result = run_load_profile(n=3 * 2 ** 12, configurations=((4, 8), (16, 17)), seed=seed)
    lines = []
    for series in result.series:
        lines.append(
            f"(k={series.k}, d={series.d}): max load {series.max_load}, "
            f"beta0={series.beta0:.0f}, gamma0={series.gamma0:.0f}, "
            f"gamma*={series.gamma_star_:.0f}, "
            f"B(beta0)={series.load_at_beta0}, B(gamma0)={series.load_at_gamma0}, "
            f"B(gamma*)={series.load_at_gamma_star}"
        )
    return "\n".join(lines)


#: Section key -> (title, builder).  Builders take the section seed and
#: return the rendered text body.
REPORT_SECTIONS: Dict[str, tuple[str, Callable[[int], str]]] = {
    "table1": ("Table 1 — maximum load grid", _table1_section),
    "profiles": ("Figures 1 & 2 — sorted load profiles and landmarks", _profile_section),
    "regimes": (
        "Theorem 1 regimes",
        lambda seed: regime_table(
            run_regime_scaling(n_values=(1 << 10, 1 << 12), trials=2, seed=seed)
        ).to_text(),
    ),
    "heavy": (
        "Theorem 2 — heavily loaded case",
        lambda seed: heavy_table(
            run_heavy_case(n=1 << 10, load_factors=(1, 4), trials=2, seed=seed)
        ).to_text(),
    ),
    "majorization": (
        "Section 3 — majorization chain",
        lambda seed: majorization_table(
            run_majorization_chain(n=3 * 2 ** 9, configurations=((3, 5),), trials=6, seed=seed)
        ).to_text(),
    ),
    "tradeoff": (
        "Section 1.1 — max load vs message cost",
        lambda seed: tradeoff_table(run_tradeoff(n=3 * 2 ** 11, trials=2, seed=seed)).to_text(),
    ),
    "scheduling": (
        "Application — cluster scheduling",
        lambda seed: scheduling_table(
            run_scheduling_experiment(
                n_workers=64, tasks_per_job_values=(4, 16), n_jobs=150, seed=seed
            )
        ).to_text(),
    ),
    "storage": (
        "Application — distributed storage",
        lambda seed: storage_table(
            run_storage_experiment(n_servers=256, n_files=2048, replica_values=(3,), seed=seed)
        ).to_text(),
    ),
    "ablation": (
        "Ablation — strict vs greedy policy",
        lambda seed: ablation_table(
            run_policy_ablation(n=3 * 2 ** 10, trials=3, seed=seed)
        ).to_text(),
    ),
    "weighted": (
        "Extension — weighted balls",
        lambda seed: weighted_table(
            run_weighted_experiment(n=3 * 2 ** 9, trials=2, seed=seed)
        ).to_text(),
    ),
    "staleness": (
        "Extension — stale information",
        lambda seed: staleness_table(
            run_staleness_experiment(n=3 * 2 ** 9, trials=2, seed=seed)
        ).to_text(),
    ),
    "churn": (
        "Extension — dynamic churn",
        lambda seed: churn_table(
            run_churn_experiment(n=256, rounds=1024, trials=1, seed=seed)
        ).to_text(),
    ),
    "open_question": (
        "Extension — open question (d < 2k, heavily loaded)",
        lambda seed: open_question_table(
            run_open_question_heavy(n=1 << 10, load_factors=(1, 4), trials=2, seed=seed)
        ).to_text(),
    ),
    "exact": (
        "Validation — exact vs simulated distributions",
        lambda seed: exact_validation_table(
            run_exact_validation(instances=((4, 2, 3), (5, 2, 4)), trials=2000, seed=seed)
        ).to_text(),
    ),
}


def generate_report(
    seed: int = 0,
    sections: Optional[List[str]] = None,
) -> ReproductionReport:
    """Run the selected experiment recipes and bundle their rendered output.

    Parameters
    ----------
    seed:
        Root seed; each section derives its own stream.
    sections:
        Optional subset of section keys (default: all of
        :data:`REPORT_SECTIONS`, in order).
    """
    keys = list(REPORT_SECTIONS) if sections is None else list(sections)
    unknown = [key for key in keys if key not in REPORT_SECTIONS]
    if unknown:
        raise ValueError(
            f"unknown report sections {unknown}; available: {sorted(REPORT_SECTIONS)}"
        )
    tree = SeedTree(seed)
    report = ReproductionReport(seed=seed)
    for key in keys:
        title, builder = REPORT_SECTIONS[key]
        body = builder(tree.integer_seed())
        report.sections.append(ReportSection(key=key, title=title, body=body))
    return report
