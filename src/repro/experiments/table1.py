"""Reproduction of Table 1: maximum load of (k, d)-choice on a (k, d) grid.

The paper's Table 1 reports, for ``n = 3 · 2^16`` balls into ``n`` bins and a
grid of ``k`` and ``d`` values, the set of maximum loads observed over ten
simulation runs (cells show e.g. "2" or "2, 3"; dashes mark invalid
``k > d`` combinations — except the ``d = 1`` column, which is the classic
single-choice process).

``run_table1`` regenerates the grid.  The full paper-scale run
(``n = 196 608``) takes minutes; the default here is a scaled-down
``n = 3 · 2^12`` grid whose qualitative shape (which cells are 2, where the
values grow as ``k`` approaches ``d``) matches the paper.  The bench
``benchmarks/bench_table1.py`` runs a row subset routinely and marks the full
grid as ``slow``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from os import PathLike
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.statistics import format_value_set, observed_value_set
from ..api import ResultStore, SchemeSpec, simulate_trials
from ..api.cache import as_result_store
from ..simulation.results import GridTable
from ..simulation.rng import SeedTree

__all__ = [
    "TABLE1_N",
    "TABLE1_K_VALUES",
    "TABLE1_D_VALUES",
    "PAPER_TABLE1",
    "Table1Cell",
    "Table1Result",
    "table1_cell",
    "run_table1",
]

#: The paper's problem size: n = 3 * 2^16 = 196 608 balls and bins.
TABLE1_N = 3 * 2 ** 16

#: Row labels (k) of Table 1, in paper order.
TABLE1_K_VALUES: Tuple[int, ...] = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192)

#: Column labels (d) of Table 1, in paper order.
TABLE1_D_VALUES: Tuple[int, ...] = (1, 2, 3, 5, 9, 17, 25, 49, 65, 193)

#: The values printed in the paper's Table 1 (sets of observed max loads).
#: Keys are (k, d); cells the paper leaves blank (k > d, other than d = 1
#: which is single choice for k = 1 only) are absent.
PAPER_TABLE1: Dict[Tuple[int, int], Tuple[int, ...]] = {
    (1, 1): (7, 8, 9), (1, 2): (3, 4), (1, 3): (3,), (1, 5): (2,), (1, 9): (2,),
    (1, 17): (2,), (1, 25): (2,), (1, 49): (2,), (1, 65): (2,), (1, 193): (2,),
    (2, 3): (4,), (2, 5): (3,), (2, 9): (2,), (2, 17): (2,), (2, 25): (2,),
    (2, 49): (2,), (2, 65): (2,), (2, 193): (2,),
    (3, 5): (3,), (3, 9): (2,), (3, 17): (2,), (3, 25): (2,), (3, 49): (2,),
    (3, 65): (2,), (3, 193): (2,),
    (4, 5): (4,), (4, 9): (3,), (4, 17): (2,), (4, 25): (2,), (4, 49): (2,),
    (4, 65): (2,), (4, 193): (2,),
    (6, 9): (3,), (6, 17): (2,), (6, 25): (2,), (6, 49): (2,), (6, 65): (2,),
    (6, 193): (2,),
    (8, 9): (4,), (8, 17): (2, 3), (8, 25): (2,), (8, 49): (2,), (8, 65): (2,),
    (8, 193): (2,),
    (12, 17): (3,), (12, 25): (2,), (12, 49): (2,), (12, 65): (2,), (12, 193): (2,),
    (16, 17): (4, 5), (16, 25): (3,), (16, 49): (2,), (16, 65): (2,), (16, 193): (2,),
    (24, 25): (5,), (24, 49): (2,), (24, 65): (2,), (24, 193): (2,),
    (32, 49): (3,), (32, 65): (2,), (32, 193): (2,),
    (48, 49): (5,), (48, 65): (3,), (48, 193): (2,),
    (64, 65): (5,), (64, 193): (2,),
    (96, 193): (2,),
    (128, 193): (2,),
    (192, 193): (5, 6),
}


@dataclass(frozen=True)
class Table1Cell:
    """Result of one (k, d) cell: the observed maximum loads over the trials."""

    k: int
    d: int
    n: int
    trials: int
    max_loads: Tuple[int, ...]

    @property
    def observed(self) -> List[int]:
        """Distinct observed values, sorted (the paper's cell contents)."""
        return observed_value_set(self.max_loads)

    @property
    def text(self) -> str:
        """Cell text as printed in Table 1, e.g. "2" or "2, 3"."""
        return format_value_set(self.max_loads)


@dataclass
class Table1Result:
    """The whole reproduced grid."""

    n: int
    trials: int
    cells: Dict[Tuple[int, int], Table1Cell] = field(default_factory=dict)

    def grid(self) -> GridTable:
        """Render the grid in the paper's layout."""
        k_values = sorted({k for k, _ in self.cells})
        d_values = sorted({d for _, d in self.cells})
        table = GridTable(
            row_labels=[f"k = {k}" for k in k_values],
            column_labels=[f"d = {d}" for d in d_values],
            row_header="",
            title=f"Maximum bin load for (k,d)-choice with n = {self.n} "
            f"({self.trials} trials per cell)",
        )
        for (k, d), cell in self.cells.items():
            table.set(f"k = {k}", f"d = {d}", cell.text)
        return table

    def to_text(self) -> str:
        return self.grid().to_text()


def table1_cell(
    n: int,
    k: int,
    d: int,
    trials: int = 10,
    seed: "int | None" = 0,
    engine: str = "auto",
    n_jobs: Optional[int] = None,
    cache: "ResultStore | str | PathLike[str] | None" = None,
) -> Table1Cell:
    """Run one (k, d) cell of Table 1.

    ``d = 1`` means the classic single-choice process (only defined for
    ``k = 1`` in the paper's table; here any ``k <= d`` is accepted, with
    ``k = d`` degenerating to batched single choice).  The cell is expressed
    as a ``kd_choice`` :class:`~repro.api.SchemeSpec`; ``engine`` forwards to
    the execution engine (the vectorized fast path is seed-for-seed identical
    to the scalar reference), ``n_jobs`` fans the trials out over a process
    pool and ``cache`` skips trials already in an on-disk
    :class:`~repro.api.ResultStore` — none of the three changes the results.
    """
    if k > d:
        raise ValueError(
            f"cell (k={k}, d={d}) is invalid: the process requires k <= d"
        )
    spec = SchemeSpec(
        scheme="kd_choice", params={"n_bins": n, "k": k, "d": d}, engine=engine
    )
    outcome = simulate_trials(
        spec,
        trials=trials,
        seed_tree=SeedTree(seed),
        n_jobs=n_jobs,
        cache=cache,
    )
    max_loads = tuple(int(value) for value in outcome.metric_values("max_load"))
    return Table1Cell(k=k, d=d, n=n, trials=trials, max_loads=max_loads)


def run_table1(
    n: int = 3 * 2 ** 12,
    trials: int = 10,
    seed: "int | None" = 0,
    k_values: Optional[Sequence[int]] = None,
    d_values: Optional[Sequence[int]] = None,
    engine: str = "auto",
    n_jobs: Optional[int] = None,
    cache: "ResultStore | str | PathLike[str] | None" = None,
) -> Table1Result:
    """Reproduce (a scaled version of) Table 1.

    Parameters
    ----------
    n:
        Number of balls and bins.  Use ``TABLE1_N`` for the paper-scale run.
    trials:
        Runs per cell (the paper uses 10).
    k_values, d_values:
        Row / column subsets; default to the paper's full grid.  Cells with
        ``k > d`` are skipped, as in the paper.
    engine:
        Execution engine for every cell spec ("auto", "scalar",
        "vectorized"); the engines are seed-for-seed identical.
    n_jobs:
        Trial-execution parallelism per cell (``None``/1 serial, >= 2 a
        process pool, -1 all CPUs); results are identical for every value.
    cache:
        Optional :class:`~repro.api.ResultStore` (or directory path); cells
        whose trials are already cached skip the scheme runner entirely.
    """
    ks = tuple(k_values) if k_values is not None else TABLE1_K_VALUES
    ds = tuple(d_values) if d_values is not None else TABLE1_D_VALUES
    cache = as_result_store(cache)
    tree = SeedTree(seed)
    result = Table1Result(n=n, trials=trials)
    for k in ks:
        for d in ds:
            # The paper's grid contains cells with k < d plus the single
            # (1, 1) cell for the classic single-choice column; other k >= d
            # combinations are printed as dashes.
            if k > d or (k == d and k != 1):
                continue
            cell_seed = tree.integer_seed()
            result.cells[(k, d)] = table1_cell(
                n=n, k=k, d=d, trials=trials, seed=cell_seed, engine=engine,
                n_jobs=n_jobs, cache=cache,
            )
    return result
