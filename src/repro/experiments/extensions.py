"""Extension experiments beyond the paper's evaluation.

The paper's Section 7 lists open directions (the heavily loaded case for
``d < 2k``, dynamically adjusted policies) and its related-work section
points at weighted and parallel variants.  These recipes exercise the
extension modules built in :mod:`repro.core`:

* :func:`run_weighted_experiment` — weighted balls (exponential / Pareto
  weights) vs unit balls;
* :func:`run_staleness_experiment` — how the maximum load degrades when
  probes see stale load snapshots (parallel-rounds model);
* :func:`run_churn_experiment` — the dynamic insert/delete system's
  steady-state gap;
* :func:`run_open_question_heavy` — the open ``d < 2k`` heavily loaded case,
  measured side by side with the proven ``d ≥ 2k`` regime;
* :func:`run_exact_validation` — exact tiny-instance distributions vs the
  Monte-Carlo simulator (a correctness check of the whole pipeline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..analysis.exact import (
    empirical_max_load_distribution,
    exact_kd_choice_distribution,
    expected_max_load,
    max_load_distribution,
    total_variation_distance,
)
from ..core.dynamic import run_churn_kd_choice
from ..core.process import run_kd_choice
from ..core.stale import run_stale_kd_choice
from ..core.weighted import run_weighted_kd_choice
from ..simulation.results import ResultTable
from ..simulation.rng import SeedTree
from ..simulation.runner import run_trials

__all__ = [
    "WeightedPoint",
    "run_weighted_experiment",
    "weighted_table",
    "StalenessPoint",
    "run_staleness_experiment",
    "staleness_table",
    "ChurnPoint",
    "run_churn_experiment",
    "churn_table",
    "OpenQuestionPoint",
    "run_open_question_heavy",
    "open_question_table",
    "ExactValidationPoint",
    "run_exact_validation",
    "exact_validation_table",
]


# ----------------------------------------------------------------------
# Weighted balls
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WeightedPoint:
    """Weighted vs unit allocation at one (k, d) configuration."""

    k: int
    d: int
    n: int
    weight_distribution: str
    mean_weighted_gap: float
    mean_unit_max_load: float


def run_weighted_experiment(
    n: int = 3 * 2 ** 10,
    configurations: Sequence[tuple[int, int]] = ((1, 2), (4, 8), (16, 17)),
    weight_distributions: Sequence[str] = ("constant", "exponential", "pareto"),
    trials: int = 3,
    seed: "int | None" = 0,
) -> List[WeightedPoint]:
    """Measure the weighted-load gap for several weight distributions."""
    tree = SeedTree(seed)
    points: List[WeightedPoint] = []
    for k, d in configurations:
        unit_loads = run_trials(
            lambda s, k=k, d=d: run_kd_choice(n_bins=n, k=k, d=d, seed=s),
            trials=trials,
            seed=tree.integer_seed(),
        )
        for distribution in weight_distributions:
            gaps = run_trials(
                lambda s, k=k, d=d, w=distribution: run_weighted_kd_choice(
                    n_bins=n, k=k, d=d, weights=w, seed=s
                ),
                trials=trials,
                seed=tree.integer_seed(),
                metric=lambda result: float(result.extra["weighted_gap"]),
            )
            points.append(
                WeightedPoint(
                    k=k,
                    d=d,
                    n=n,
                    weight_distribution=distribution,
                    mean_weighted_gap=sum(gaps) / len(gaps),
                    mean_unit_max_load=sum(unit_loads) / len(unit_loads),
                )
            )
    return points


def weighted_table(points: Sequence[WeightedPoint]) -> ResultTable:
    table = ResultTable(
        columns=["k", "d", "weights", "mean_weighted_gap", "mean_unit_max_load"],
        title="Weighted (k,d)-choice: weighted-load gap by weight distribution",
    )
    for p in points:
        table.add(
            {
                "k": p.k,
                "d": p.d,
                "weights": p.weight_distribution,
                "mean_weighted_gap": p.mean_weighted_gap,
                "mean_unit_max_load": p.mean_unit_max_load,
            }
        )
    return table


# ----------------------------------------------------------------------
# Stale information (parallel rounds)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StalenessPoint:
    """Max load as a function of the staleness epoch length."""

    k: int
    d: int
    n: int
    stale_rounds: int
    mean_max_load: float
    max_max_load: float


def run_staleness_experiment(
    n: int = 3 * 2 ** 10,
    k: int = 4,
    d: int = 8,
    stale_rounds_values: Sequence[int] = (1, 4, 16, 64, 256),
    trials: int = 3,
    seed: "int | None" = 0,
) -> List[StalenessPoint]:
    """Sweep the staleness epoch and measure the resulting maximum load."""
    tree = SeedTree(seed)
    points: List[StalenessPoint] = []
    for stale_rounds in stale_rounds_values:
        values = run_trials(
            lambda s, e=stale_rounds: run_stale_kd_choice(
                n_bins=n, k=k, d=d, stale_rounds=e, seed=s
            ),
            trials=trials,
            seed=tree.integer_seed(),
        )
        points.append(
            StalenessPoint(
                k=k,
                d=d,
                n=n,
                stale_rounds=stale_rounds,
                mean_max_load=sum(values) / len(values),
                max_max_load=max(values),
            )
        )
    return points


def staleness_table(points: Sequence[StalenessPoint]) -> ResultTable:
    table = ResultTable(
        columns=["k", "d", "stale_rounds", "mean_max_load", "max_max_load"],
        title="Stale-information (k,d)-choice: max load vs staleness epoch",
    )
    for p in points:
        table.add(
            {
                "k": p.k,
                "d": p.d,
                "stale_rounds": p.stale_rounds,
                "mean_max_load": p.mean_max_load,
                "max_max_load": p.max_max_load,
            }
        )
    return table


# ----------------------------------------------------------------------
# Dynamic churn
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChurnPoint:
    """Steady-state behaviour of the insert/delete system."""

    k: int
    d: int
    n: int
    rounds: int
    steady_gap: float
    steady_max_load: float
    final_balls: int


def run_churn_experiment(
    n: int = 512,
    configurations: Sequence[tuple[int, int]] = ((1, 1), (1, 2), (4, 8)),
    rounds: int = 2048,
    trials: int = 2,
    seed: "int | None" = 0,
) -> List[ChurnPoint]:
    """Measure the steady-state gap of balanced insert/delete churn."""
    tree = SeedTree(seed)
    points: List[ChurnPoint] = []
    for k, d in configurations:
        gaps: List[float] = []
        max_loads: List[float] = []
        final_balls = 0
        for trial_seed in tree.integer_seeds(trials):
            result = run_churn_kd_choice(
                n_bins=n, k=k, d=d, rounds=rounds, seed=trial_seed
            )
            gaps.append(result.steady_state_gap())
            max_loads.append(result.steady_state_max_load())
            final_balls = int(result.final_loads.sum())
        points.append(
            ChurnPoint(
                k=k,
                d=d,
                n=n,
                rounds=rounds,
                steady_gap=sum(gaps) / len(gaps),
                steady_max_load=sum(max_loads) / len(max_loads),
                final_balls=final_balls,
            )
        )
    return points


def churn_table(points: Sequence[ChurnPoint]) -> ResultTable:
    table = ResultTable(
        columns=["k", "d", "rounds", "steady_gap", "steady_max_load", "final_balls"],
        title="Dynamic churn: steady-state gap under balanced insert/delete",
    )
    for p in points:
        table.add(
            {
                "k": p.k,
                "d": p.d,
                "rounds": p.rounds,
                "steady_gap": p.steady_gap,
                "steady_max_load": p.steady_max_load,
                "final_balls": p.final_balls,
            }
        )
    return table


# ----------------------------------------------------------------------
# Open question: heavily loaded case with d < 2k
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OpenQuestionPoint:
    """Gap measurements for the open d < 2k heavily loaded case."""

    k: int
    d: int
    n: int
    load_factor: int
    mean_gap: float
    regime: str


def run_open_question_heavy(
    n: int = 1 << 11,
    load_factors: Sequence[int] = (1, 4, 16),
    proven: Sequence[tuple[int, int]] = ((4, 8),),
    open_cases: Sequence[tuple[int, int]] = ((4, 6), (8, 9), (16, 17)),
    trials: int = 3,
    seed: "int | None" = 0,
) -> List[OpenQuestionPoint]:
    """Measure the gap for d < 2k (open in the paper) next to d >= 2k.

    Theorem 2 covers ``d ≥ 2k``; whether the gap stays bounded for
    ``k ≤ d < 2k`` is explicitly left open (Section 7).  The simulation gives
    the conjecture-level answer.
    """
    tree = SeedTree(seed)
    points: List[OpenQuestionPoint] = []
    for label, configurations in (("proven (d>=2k)", proven), ("open (d<2k)", open_cases)):
        for k, d in configurations:
            for factor in load_factors:
                gaps = run_trials(
                    lambda s, k=k, d=d, m=factor * n: run_kd_choice(
                        n_bins=n, k=k, d=d, n_balls=m, seed=s
                    ),
                    trials=trials,
                    seed=tree.integer_seed(),
                    metric=lambda result: float(result.gap),
                )
                points.append(
                    OpenQuestionPoint(
                        k=k,
                        d=d,
                        n=n,
                        load_factor=factor,
                        mean_gap=sum(gaps) / len(gaps),
                        regime=label,
                    )
                )
    return points


def open_question_table(points: Sequence[OpenQuestionPoint]) -> ResultTable:
    table = ResultTable(
        columns=["regime", "k", "d", "m/n", "mean_gap"],
        title="Open question (Section 7): heavily loaded gap for d < 2k",
    )
    for p in points:
        table.add(
            {
                "regime": p.regime,
                "k": p.k,
                "d": p.d,
                "m/n": p.load_factor,
                "mean_gap": p.mean_gap,
            }
        )
    return table


# ----------------------------------------------------------------------
# Exact validation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExactValidationPoint:
    """Exact vs Monte-Carlo max-load distribution on a tiny instance."""

    n_bins: int
    k: int
    d: int
    trials: int
    exact_expected_max: float
    empirical_expected_max: float
    total_variation: float


def run_exact_validation(
    instances: Sequence[tuple[int, int, int]] = ((4, 1, 2), (4, 2, 3), (5, 2, 4), (6, 3, 4)),
    trials: int = 4000,
    seed: "int | None" = 0,
) -> List[ExactValidationPoint]:
    """Compare exact tiny-instance distributions with the simulator."""
    tree = SeedTree(seed)
    points: List[ExactValidationPoint] = []
    for n_bins, k, d in instances:
        n_balls = n_bins - (n_bins % k)
        exact = exact_kd_choice_distribution(n_bins, k, d, n_balls=n_balls)
        exact_max = max_load_distribution(exact)
        empirical = empirical_max_load_distribution(
            n_bins, k, d, trials=trials, seed=tree.integer_seed(), n_balls=n_balls
        )
        points.append(
            ExactValidationPoint(
                n_bins=n_bins,
                k=k,
                d=d,
                trials=trials,
                exact_expected_max=expected_max_load(exact),
                empirical_expected_max=sum(v * p for v, p in empirical.items()),
                total_variation=total_variation_distance(exact_max, empirical),
            )
        )
    return points


def exact_validation_table(points: Sequence[ExactValidationPoint]) -> ResultTable:
    table = ResultTable(
        columns=[
            "n_bins", "k", "d", "trials",
            "exact_E[max]", "empirical_E[max]", "total_variation",
        ],
        title="Exact vs simulated max-load distributions (tiny instances)",
    )
    for p in points:
        table.add(
            {
                "n_bins": p.n_bins,
                "k": p.k,
                "d": p.d,
                "trials": p.trials,
                "exact_E[max]": p.exact_expected_max,
                "empirical_E[max]": p.empirical_expected_max,
                "total_variation": p.total_variation,
            }
        )
    return table
