"""The maximum-load versus message-cost trade-off (Section 1.1).

The paper's headline claim: by choosing ``k`` and ``d`` appropriately,
(k, d)-choice achieves

* a **constant** maximum load with ``O(n)`` messages (``d = 2k``,
  ``k = Θ(polylog n)``), or
* ``o(ln ln n)`` maximum load with ``(1 + o(1)) n`` messages
  (``d − k = Θ(ln n)``, ``k ≥ Θ(ln² n)``),

and thereby matches the best known *adaptive* algorithms while being
non-adaptive.  This experiment runs single choice, Greedy[2], Greedy[d],
(1+β)-choice, the adaptive comparators and several (k, d)-choice settings on
the same instance size and reports (max load, messages per ball) pairs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from ..core.adaptive import run_threshold_adaptive, run_two_phase_adaptive
from ..core.baselines import (
    run_always_go_left,
    run_d_choice,
    run_one_plus_beta,
    run_single_choice,
)
from ..core.process import run_kd_choice
from ..core.types import AllocationResult
from ..simulation.results import ResultTable
from ..simulation.rng import SeedTree
from ..simulation.runner import ExperimentRunner

__all__ = ["TradeoffPoint", "run_tradeoff", "tradeoff_table", "default_schemes"]


@dataclass(frozen=True)
class TradeoffPoint:
    """Mean max load and message cost of one scheme."""

    scheme: str
    mean_max_load: float
    min_max_load: float
    max_max_load: float
    mean_messages_per_ball: float


SchemeFactory = Callable[[int, int], AllocationResult]
"""A callable ``(n, seed) -> AllocationResult``."""


def default_schemes(n: int) -> Dict[str, SchemeFactory]:
    """The scheme suite compared by the trade-off experiment."""
    log_n = max(2, round(math.log(n)))
    log_sq = max(2, round(math.log(n) ** 2))
    schemes: Dict[str, SchemeFactory] = {
        "single-choice": lambda n_, s: run_single_choice(n_, seed=s),
        "greedy[2]": lambda n_, s: run_d_choice(n_, d=2, seed=s),
        "greedy[4]": lambda n_, s: run_d_choice(n_, d=4, seed=s),
        "(1+0.5)-choice": lambda n_, s: run_one_plus_beta(n_, beta=0.5, seed=s),
        "always-go-left[2]": lambda n_, s: run_always_go_left(n_, d=2, seed=s),
        "adaptive-threshold": lambda n_, s: run_threshold_adaptive(n_, seed=s),
        "adaptive-two-phase": lambda n_, s: run_two_phase_adaptive(n_, seed=s),
        # Constant max load at 2n messages: d = 2k with k = Θ(polylog n).
        f"(k,2k)-choice k=ln^2 n={log_sq}": (
            lambda n_, s, k=log_sq: run_kd_choice(n_, k=k, d=2 * k, seed=s)
        ),
        # o(ln ln n) max load at (1+o(1))n messages: d - k = Θ(ln n), k = ln^2 n.
        f"(k,k+ln n)-choice k={log_sq}": (
            lambda n_, s, k=log_sq, extra=log_n: run_kd_choice(n_, k=k, d=k + extra, seed=s)
        ),
        # Storage setting: d = k + 1 with k = ln n (half of two-choice's cost).
        f"(k,k+1)-choice k=ln n={log_n}": (
            lambda n_, s, k=log_n: run_kd_choice(n_, k=k, d=k + 1, seed=s)
        ),
    }
    return schemes


def run_tradeoff(
    n: int = 3 * 2 ** 13,
    trials: int = 3,
    seed: "int | None" = 0,
    schemes: "Dict[str, SchemeFactory] | None" = None,
) -> List[TradeoffPoint]:
    """Run every scheme ``trials`` times and collect (max load, messages)."""
    scheme_map = schemes if schemes is not None else default_schemes(n)
    tree = SeedTree(seed)
    runner = ExperimentRunner(
        trials=trials,
        seed=tree.integer_seed(),
        metrics={
            "max_load": lambda r: float(r.max_load),
            "messages_per_ball": lambda r: float(r.messages_per_ball),
        },
    )
    points: List[TradeoffPoint] = []
    for name, factory in scheme_map.items():
        outcome = runner.run(lambda s, f=factory: f(n, s), label=name)
        max_stats = outcome.statistics("max_load")
        msg_stats = outcome.statistics("messages_per_ball")
        points.append(
            TradeoffPoint(
                scheme=name,
                mean_max_load=max_stats.mean,
                min_max_load=max_stats.minimum,
                max_max_load=max_stats.maximum,
                mean_messages_per_ball=msg_stats.mean,
            )
        )
    return points


def tradeoff_table(points: Sequence[TradeoffPoint]) -> ResultTable:
    """Flatten trade-off points into a printable table."""
    table = ResultTable(
        columns=[
            "scheme", "mean_max_load", "min_max_load", "max_max_load",
            "mean_messages_per_ball",
        ],
        title="Maximum load vs message cost (Section 1.1 trade-off)",
    )
    for point in points:
        table.add(
            {
                "scheme": point.scheme,
                "mean_max_load": point.mean_max_load,
                "min_max_load": point.min_max_load,
                "max_max_load": point.max_max_load,
                "mean_messages_per_ball": point.mean_messages_per_ball,
            }
        )
    return table
