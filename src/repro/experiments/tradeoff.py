"""The maximum-load versus message-cost trade-off (Section 1.1).

The paper's headline claim: by choosing ``k`` and ``d`` appropriately,
(k, d)-choice achieves

* a **constant** maximum load with ``O(n)`` messages (``d = 2k``,
  ``k = Θ(polylog n)``), or
* ``o(ln ln n)`` maximum load with ``(1 + o(1)) n`` messages
  (``d − k = Θ(ln n)``, ``k ≥ Θ(ln² n)``),

and thereby matches the best known *adaptive* algorithms while being
non-adaptive.  This experiment runs single choice, Greedy[2], Greedy[d],
(1+β)-choice, the adaptive comparators and several (k, d)-choice settings on
the same instance size and reports (max load, messages per ball) pairs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from os import PathLike
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..api import ResultStore, SchemeSpec, simulate_trials
from ..api.cache import as_result_store
from ..core.types import AllocationResult
from ..simulation.results import ResultTable
from ..simulation.rng import SeedTree
from ..simulation.runner import ExperimentOutcome, TrialOutcome

__all__ = ["TradeoffPoint", "run_tradeoff", "tradeoff_table", "default_schemes"]


def _max_load_metric(result: AllocationResult) -> float:
    return float(result.max_load)


def _messages_per_ball_metric(result: AllocationResult) -> float:
    return float(result.messages_per_ball)


#: Module-level (hence picklable) metric set, so ``n_jobs > 1`` can ship the
#: metrics to pool workers.
_TRADEOFF_METRICS = {
    "max_load": _max_load_metric,
    "messages_per_ball": _messages_per_ball_metric,
}


@dataclass(frozen=True)
class TradeoffPoint:
    """Mean max load and message cost of one scheme."""

    scheme: str
    mean_max_load: float
    min_max_load: float
    max_max_load: float
    mean_messages_per_ball: float


SchemeFactory = Callable[[int, int], AllocationResult]
"""Legacy form: a callable ``(n, seed) -> AllocationResult``."""

SchemeEntry = Union[SchemeSpec, SchemeFactory]


def default_schemes(n: int) -> Dict[str, SchemeSpec]:
    """The scheme suite compared by the trade-off experiment.

    Every entry is a declarative :class:`~repro.api.SchemeSpec` bound to the
    instance size ``n``; :func:`run_tradeoff` seeds and executes them through
    :func:`repro.api.simulate`.
    """
    log_n = max(2, round(math.log(n)))
    log_sq = max(2, round(math.log(n) ** 2))
    schemes: Dict[str, SchemeSpec] = {
        "single-choice": SchemeSpec("single_choice", {"n_bins": n}),
        "greedy[2]": SchemeSpec("d_choice", {"n_bins": n, "d": 2}),
        "greedy[4]": SchemeSpec("d_choice", {"n_bins": n, "d": 4}),
        "(1+0.5)-choice": SchemeSpec("one_plus_beta", {"n_bins": n, "beta": 0.5}),
        "always-go-left[2]": SchemeSpec("always_go_left", {"n_bins": n, "d": 2}),
        "adaptive-threshold": SchemeSpec("threshold_adaptive", {"n_bins": n}),
        "adaptive-two-phase": SchemeSpec("two_phase_adaptive", {"n_bins": n}),
        # Constant max load at 2n messages: d = 2k with k = Θ(polylog n).
        f"(k,2k)-choice k=ln^2 n={log_sq}": SchemeSpec(
            "kd_choice", {"n_bins": n, "k": log_sq, "d": 2 * log_sq}
        ),
        # o(ln ln n) max load at (1+o(1))n messages: d - k = Θ(ln n), k = ln^2 n.
        f"(k,k+ln n)-choice k={log_sq}": SchemeSpec(
            "kd_choice", {"n_bins": n, "k": log_sq, "d": log_sq + log_n}
        ),
        # Storage setting: d = k + 1 with k = ln n (half of two-choice's cost).
        f"(k,k+1)-choice k=ln n={log_n}": SchemeSpec(
            "kd_choice", {"n_bins": n, "k": log_n, "d": log_n + 1}
        ),
    }
    return schemes


def run_tradeoff(
    n: int = 3 * 2 ** 13,
    trials: int = 3,
    seed: "int | None" = 0,
    schemes: "Dict[str, SchemeEntry] | None" = None,
    n_jobs: Optional[int] = None,
    cache: "ResultStore | str | PathLike[str] | None" = None,
    engine: str = "auto",
) -> List[TradeoffPoint]:
    """Run every scheme ``trials`` times and collect (max load, messages).

    ``schemes`` maps labels to :class:`~repro.api.SchemeSpec` objects
    (preferred) or to legacy ``(n, seed) -> AllocationResult`` callables.
    ``n_jobs``/``cache`` forward to :func:`repro.api.simulate_trials` for
    spec entries (results are identical for every setting); legacy callables
    always run serially and uncached.  ``engine`` overrides the execution
    engine of every spec entry (also results-neutral: the engines are
    seed-for-seed identical wherever both exist).
    """
    scheme_map = schemes if schemes is not None else default_schemes(n)
    if engine != "auto":
        scheme_map = {
            name: replace(entry, engine=engine)
            if isinstance(entry, SchemeSpec)
            else entry
            for name, entry in scheme_map.items()
        }
    cache = as_result_store(cache)
    tree = SeedTree(seed)
    # One derived subtree shared by every entry, in mapping order — the same
    # derivation sequence the historical ExperimentRunner-based version used.
    inner = SeedTree(tree.integer_seed())
    points: List[TradeoffPoint] = []
    for name, entry in scheme_map.items():
        if isinstance(entry, SchemeSpec):
            outcome = simulate_trials(
                entry,
                trials=trials,
                seed_tree=inner,
                metrics=_TRADEOFF_METRICS,
                n_jobs=n_jobs,
                cache=cache,
            )
            outcome.label = name
        else:
            outcome = ExperimentOutcome(label=name)
            for trial_seed in inner.integer_seeds(trials):
                result = entry(n, trial_seed)
                outcome.trials.append(
                    TrialOutcome(
                        seed=trial_seed,
                        metrics={
                            key: fn(result) for key, fn in _TRADEOFF_METRICS.items()
                        },
                    )
                )
        max_stats = outcome.statistics("max_load")
        msg_stats = outcome.statistics("messages_per_ball")
        points.append(
            TradeoffPoint(
                scheme=name,
                mean_max_load=max_stats.mean,
                min_max_load=max_stats.minimum,
                max_max_load=max_stats.maximum,
                mean_messages_per_ball=msg_stats.mean,
            )
        )
    return points


def tradeoff_table(points: Sequence[TradeoffPoint]) -> ResultTable:
    """Flatten trade-off points into a printable table."""
    table = ResultTable(
        columns=[
            "scheme", "mean_max_load", "min_max_load", "max_max_load",
            "mean_messages_per_ball",
        ],
        title="Maximum load vs message cost (Section 1.1 trade-off)",
    )
    for point in points:
        table.add(
            {
                "scheme": point.scheme,
                "mean_max_load": point.mean_max_load,
                "min_max_load": point.min_max_load,
                "max_max_load": point.max_max_load,
                "mean_messages_per_ball": point.mean_messages_per_ball,
            }
        )
    return table
