"""Reproduction of Figures 1 and 2: the sorted bin-load vector.

Both figures in the paper are schematic sketches of the sorted load vector
``B_1 ≥ B_2 ≥ ... ≥ B_n`` at the end of the (k, d)-choice process, annotated
with the landmark ranks used in the proofs:

* Figure 1 (upper bound):  ``β₀ = n / (6 d_k)`` — the maximum load is split
  into ``B_{β₀}`` plus the difference ``B_1 − B_{β₀}``.
* Figure 2 (lower bound):  ``γ* = 4 n / d_k`` and ``γ₀ = n / d`` — the lower
  bound is ``B_{γ*}`` plus the difference ``B_1 − B_{γ₀}``.

The reproduction measures the actual sorted profile from simulation, records
the loads at those landmark ranks, and checks the decomposition inequalities
the figures illustrate (``M = B_1 ≥ B_{γ*} + (B_1 − B_{γ₀})`` when
``γ* ≥ γ₀``, and ``M = B_{β₀} + (B_1 − B_{β₀})``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analysis.recurrences import beta_zero, gamma_star, gamma_zero
from ..core.metrics import load_profile
from ..core.process import run_kd_choice

__all__ = ["ProfileSeries", "LoadProfileResult", "run_load_profile", "downsample_profile"]


def downsample_profile(profile: np.ndarray, points: int = 64) -> List[tuple[int, int]]:
    """Downsample a sorted load profile to ``points`` (rank, load) pairs.

    Ranks are spaced geometrically so the head of the distribution (where the
    interesting structure lives) keeps full resolution.
    """
    n = profile.shape[0]
    if n == 0:
        return []
    if points <= 1:
        return [(1, int(profile[0]))]
    ranks = np.unique(
        np.clip(
            np.geomspace(1, n, num=min(points, n)).astype(np.int64), 1, n
        )
    )
    return [(int(rank), int(profile[rank - 1])) for rank in ranks]


@dataclass(frozen=True)
class ProfileSeries:
    """The sorted-load series of one run plus the figure landmarks."""

    k: int
    d: int
    n: int
    max_load: int
    profile_points: List[tuple[int, int]]
    beta0: float
    gamma0: float
    gamma_star_: float
    load_at_beta0: Optional[int]
    load_at_gamma0: Optional[int]
    load_at_gamma_star: Optional[int]

    def figure1_decomposition(self) -> Dict[str, float]:
        """Figure 1's split of the maximum load: ``B_{β₀}`` and ``B_1 − B_{β₀}``."""
        base = self.load_at_beta0 if self.load_at_beta0 is not None else 0
        return {
            "B_beta0": float(base),
            "B1_minus_Bbeta0": float(self.max_load - base),
            "max_load": float(self.max_load),
        }

    def figure2_decomposition(self) -> Dict[str, float]:
        """Figure 2's lower-bound pieces: ``B_{γ*}`` and ``B_1 − B_{γ₀}``."""
        at_star = self.load_at_gamma_star if self.load_at_gamma_star is not None else 0
        at_zero = self.load_at_gamma0 if self.load_at_gamma0 is not None else 0
        return {
            "B_gamma_star": float(at_star),
            "B1_minus_Bgamma0": float(self.max_load - at_zero),
            "max_load": float(self.max_load),
        }


@dataclass
class LoadProfileResult:
    """Profiles for several (k, d) configurations at the same ``n``."""

    n: int
    series: List[ProfileSeries] = field(default_factory=list)

    def as_records(self) -> List[Dict[str, object]]:
        records = []
        for s in self.series:
            record: Dict[str, object] = {
                "k": s.k,
                "d": s.d,
                "n": s.n,
                "max_load": s.max_load,
                "beta0": round(s.beta0, 2),
                "gamma0": round(s.gamma0, 2),
                "gamma_star": round(s.gamma_star_, 2),
                "B_at_beta0": s.load_at_beta0,
                "B_at_gamma0": s.load_at_gamma0,
                "B_at_gamma_star": s.load_at_gamma_star,
            }
            records.append(record)
        return records


def _load_at_rank(profile: np.ndarray, rank: float) -> Optional[int]:
    """Load of the bin at (1-based) rank ``rank``; ``None`` if out of range."""
    index = int(math.floor(rank))
    if index < 1 or index > profile.shape[0]:
        return None
    return int(profile[index - 1])


def run_load_profile(
    n: int = 3 * 2 ** 14,
    configurations: Sequence[tuple[int, int]] = ((4, 8), (16, 17)),
    seed: "int | None" = 0,
    profile_points: int = 64,
) -> LoadProfileResult:
    """Measure sorted load profiles and figure landmarks for several (k, d).

    The default configurations cover both proof regimes: (4, 8) has
    ``d_k = 2`` (Figure 1's ``d_k = O(1)`` setting) and (16, 17) has
    ``d_k = 17`` (the growing-``d_k`` setting where the ``B_{γ*}`` term
    matters).
    """
    result = LoadProfileResult(n=n)
    for index, (k, d) in enumerate(configurations):
        run = run_kd_choice(n_bins=n, k=k, d=d, seed=None if seed is None else seed + index)
        profile = load_profile(run)
        beta0 = beta_zero(k, d, n)
        gamma0 = gamma_zero(d, n)
        gstar = gamma_star(k, d, n)
        result.series.append(
            ProfileSeries(
                k=k,
                d=d,
                n=n,
                max_load=run.max_load,
                profile_points=downsample_profile(profile, points=profile_points),
                beta0=beta0,
                gamma0=gamma0,
                gamma_star_=gstar,
                load_at_beta0=_load_at_rank(profile, beta0) if beta0 >= 1 else None,
                load_at_gamma0=_load_at_rank(profile, gamma0),
                load_at_gamma_star=_load_at_rank(profile, gstar) if gstar >= 1 else None,
            )
        )
    return result
