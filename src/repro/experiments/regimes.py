"""Theorem 1 regimes: maximum-load scaling against the closed-form bounds.

The theorem distinguishes two regimes:

* ``d_k = O(1)``: the maximum load grows like ``ln ln n / ln(d − k + 1)``
  (plus an additive constant) — the familiar doubly-logarithmic multiple-
  choice behaviour.
* ``d_k → ∞``: an extra ``ln d_k / ln ln d_k`` term appears; as ``k``
  approaches ``d`` the process degrades towards single choice.

This experiment sweeps ``n`` for representative configurations of each regime
(plus the single-choice anchor) and reports measured maximum loads alongside
the predicted leading terms so the growth shapes can be compared.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from os import PathLike
from typing import Callable, Dict, List, Optional, Sequence

from ..analysis.bounds import classify_regime, theorem1_leading_term
from ..api import ResultStore, SchemeSpec, simulate_trials
from ..api.cache import as_result_store
from ..simulation.results import ResultTable
from ..simulation.rng import SeedTree

__all__ = ["RegimeConfig", "RegimePoint", "run_regime_scaling", "DEFAULT_CONFIGS"]


@dataclass(frozen=True)
class RegimeConfig:
    """A named family of (k, d) choices parameterized by ``n``."""

    name: str
    k_of_n: Callable[[int], int]
    d_of_n: Callable[[int], int]

    def parameters(self, n: int) -> tuple[int, int]:
        k = min(max(1, int(self.k_of_n(n))), n)
        d = min(max(k, int(self.d_of_n(n))), n)
        k = min(k, d)
        return k, d


#: Default configurations: one per regime discussed in Section 1.1.
DEFAULT_CONFIGS: Sequence[RegimeConfig] = (
    # Classic two-choice anchor, d_k = 2.
    RegimeConfig("greedy[2]  (k=1,d=2)", lambda n: 1, lambda n: 2),
    # d_k = O(1) with a wide gap d - k = k: constant-ish max load.
    RegimeConfig("(k,2k), k=ln n  [d_k=2]", lambda n: max(1, round(math.log(n))),
                 lambda n: 2 * max(1, round(math.log(n)))),
    # d_k -> infinity: d = k + 1 with k = sqrt(n).
    RegimeConfig("(k,k+1), k=sqrt n  [d_k→∞]", lambda n: max(1, int(math.isqrt(n))),
                 lambda n: max(1, int(math.isqrt(n))) + 1),
    # Single-choice anchor.
    RegimeConfig("single-choice (k=d=1)", lambda n: 1, lambda n: 1),
)


@dataclass(frozen=True)
class RegimePoint:
    """Measured and predicted maximum load for one (config, n) pair."""

    config: str
    n: int
    k: int
    d: int
    regime: str
    mean_max_load: float
    min_max_load: float
    max_max_load: float
    predicted_leading_term: float


def run_regime_scaling(
    n_values: Sequence[int] = (1 << 10, 1 << 12, 1 << 14, 1 << 16),
    configs: Sequence[RegimeConfig] = DEFAULT_CONFIGS,
    trials: int = 3,
    seed: "int | None" = 0,
    n_jobs: Optional[int] = None,
    cache: "ResultStore | str | PathLike[str] | None" = None,
    engine: str = "auto",
) -> List[RegimePoint]:
    """Sweep ``n`` for each configuration and collect measured vs predicted.

    ``n_jobs``/``cache``/``engine`` forward to the spec execution layer;
    results are identical for every setting (the engines are seed-for-seed
    identical).
    """
    cache = as_result_store(cache)
    tree = SeedTree(seed)
    points: List[RegimePoint] = []
    for config in configs:
        for n in n_values:
            k, d = config.parameters(n)
            spec = SchemeSpec(
                scheme="kd_choice",
                params={"n_bins": n, "k": k, "d": d},
                seed=tree.integer_seed(),
                trials=trials,
                label=config.name,
                engine=engine,
            )
            values = simulate_trials(
                spec, n_jobs=n_jobs, cache=cache
            ).metric_values("max_load")
            regime = classify_regime(k, d, n) if k < d else None
            points.append(
                RegimePoint(
                    config=config.name,
                    n=n,
                    k=k,
                    d=d,
                    regime=regime.name if regime is not None else "single_choice_like",
                    mean_max_load=sum(values) / len(values),
                    min_max_load=min(values),
                    max_max_load=max(values),
                    predicted_leading_term=theorem1_leading_term(k, d, n),
                )
            )
    return points


def regime_table(points: Sequence[RegimePoint]) -> ResultTable:
    """Flatten regime points into a printable table."""
    table = ResultTable(
        columns=[
            "config", "n", "k", "d", "regime",
            "mean_max_load", "min_max_load", "max_max_load", "predicted_leading_term",
        ],
        title="Theorem 1 regimes: measured maximum load vs predicted leading term",
    )
    for point in points:
        table.add(
            {
                "config": point.config,
                "n": point.n,
                "k": point.k,
                "d": point.d,
                "regime": point.regime,
                "mean_max_load": point.mean_max_load,
                "min_max_load": point.min_max_load,
                "max_max_load": point.max_max_load,
                "predicted_leading_term": point.predicted_leading_term,
            }
        )
    return table


__all__.append("regime_table")
