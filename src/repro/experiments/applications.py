"""Application experiments: cluster scheduling and distributed storage.

These reproduce the Section 1.3 arguments on real (simulated) substrates:

* **Cluster scheduling** — per-task d-choice versus batch (k, d)-choice
  probing as a job's parallelism grows.  The claim: the response time of a
  job is governed by its slowest task, so sharing one probe wave across the
  whole job ((k, d)-choice / Sparrow's batch sampling) beats independent
  per-task probing at equal or lower message cost.
* **Distributed storage** — placing ``k`` replicas (or chunks) per file with
  (k, k+1)-choice gives balance comparable to per-replica two-choice at
  roughly half the probe and lookup cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..cluster.schedulers import (
    BatchSamplingScheduler,
    LateBindingScheduler,
    PerTaskDChoiceScheduler,
    RandomScheduler,
    Scheduler,
)
from ..cluster.simulator import simulate_cluster
from ..cluster.metrics import ClusterReport
from ..simulation.results import ResultTable
from ..simulation.rng import SeedTree
from ..simulation.workloads import file_population, file_sizes, poisson_job_trace
from ..storage.placement import (
    KDChoicePlacement,
    PerReplicaDChoicePlacement,
    RandomPlacement,
)
from ..storage.system import StorageReport, StorageSystem, simulate_storage_fast

__all__ = [
    "SchedulingComparison",
    "run_scheduling_experiment",
    "scheduling_table",
    "StorageComparison",
    "run_storage_experiment",
    "storage_table",
]


# ----------------------------------------------------------------------
# Cluster scheduling
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SchedulingComparison:
    """Reports of every scheduler for one parallelism level."""

    tasks_per_job: int
    reports: Dict[str, ClusterReport]


def _default_schedulers(probe_ratio: float) -> List[Scheduler]:
    return [
        RandomScheduler(),
        PerTaskDChoiceScheduler(d=2),
        BatchSamplingScheduler(probe_ratio=probe_ratio),
        LateBindingScheduler(probe_ratio=probe_ratio),
    ]


def run_scheduling_experiment(
    n_workers: int = 64,
    tasks_per_job_values: Sequence[int] = (4, 16, 64),
    n_jobs: int = 400,
    utilization: float = 0.7,
    probe_ratio: float = 2.0,
    seed: "int | None" = 0,
    engine: str = "auto",
) -> List[SchedulingComparison]:
    """Compare schedulers while sweeping the per-job parallelism ``k``.

    The arrival rate is set so the offered load is ``utilization`` of the
    cluster capacity regardless of ``k`` (mean task duration 1.0).

    ``engine`` selects the cluster simulation engine ("auto" runs the fast
    event core for every scheduler that supports it; results are identical
    either way — the engines are seed-for-seed equivalent).
    """
    if not 0 < utilization < 1:
        raise ValueError(f"utilization must be in (0, 1), got {utilization}")
    tree = SeedTree(seed)
    comparisons: List[SchedulingComparison] = []
    for k in tasks_per_job_values:
        arrival_rate = utilization * n_workers / k  # jobs per unit time
        trace_seed = tree.integer_seed()
        reports: Dict[str, ClusterReport] = {}
        for scheduler in _default_schedulers(probe_ratio):
            trace = poisson_job_trace(
                n_jobs=n_jobs,
                arrival_rate=arrival_rate,
                tasks_per_job=k,
                mean_task_duration=1.0,
                seed=trace_seed,  # identical workload across schedulers
            )
            report = simulate_cluster(
                n_workers=n_workers,
                scheduler=scheduler,
                trace=trace,
                seed=tree.integer_seed(),
                engine=engine,
            )
            reports[scheduler.describe()] = report
        comparisons.append(SchedulingComparison(tasks_per_job=k, reports=reports))
    return comparisons


def scheduling_table(comparisons: Sequence[SchedulingComparison]) -> ResultTable:
    """Flatten scheduling comparisons into a printable table."""
    table = ResultTable(
        columns=[
            "tasks_per_job", "scheduler", "mean_response", "p95_response",
            "p99_response", "mean_task_wait", "messages_per_task", "utilization",
        ],
        title="Cluster scheduling: per-task probing vs batch (k,d)-choice probing",
    )
    for comparison in comparisons:
        for name, report in comparison.reports.items():
            record = report.as_dict()
            table.add(
                {
                    "tasks_per_job": comparison.tasks_per_job,
                    "scheduler": name,
                    "mean_response": record["mean_response"],
                    "p95_response": record["p95_response"],
                    "p99_response": record["p99_response"],
                    "mean_task_wait": record["mean_task_wait"],
                    "messages_per_task": record["messages_per_task"],
                    "utilization": record["utilization"],
                }
            )
    return table


# ----------------------------------------------------------------------
# Distributed storage
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StorageComparison:
    """Reports of every placement policy for one replication factor."""

    replicas: int
    reports: Dict[str, StorageReport]


def run_storage_experiment(
    n_servers: int = 1024,
    n_files: int = 8192,
    replica_values: Sequence[int] = (2, 3, 8),
    mode: str = "replication",
    seed: "int | None" = 0,
    engine: str = "auto",
) -> List[StorageComparison]:
    """Compare placement policies while sweeping the replication factor.

    ``engine="auto"`` places each population with the fast storage core
    (seed-for-seed identical to the reference ``StorageSystem`` path, which
    ``engine="reference"`` forces).
    """
    if engine not in ("auto", "fast", "reference"):
        raise ValueError(f"engine must be auto, fast or reference, got {engine!r}")
    tree = SeedTree(seed)
    comparisons: List[StorageComparison] = []
    for replicas in replica_values:
        policies = [
            RandomPlacement(),
            PerReplicaDChoicePlacement(d=2),
            KDChoicePlacement(extra_probes=1),
            KDChoicePlacement(extra_probes=None, probe_ratio=2.0),
        ]
        reports: Dict[str, StorageReport] = {}
        population_seed = tree.integer_seed()
        for policy in policies:
            if engine == "reference" or not policy.supports_fast_core:
                population = file_population(
                    n_files=n_files, replicas=replicas, seed=population_seed
                )
                system = StorageSystem(
                    n_servers=n_servers,
                    placement=policy,
                    mode=mode,
                    seed=tree.integer_seed(),
                )
                system.store_population(population)
                reports[policy.name] = system.report()
            else:
                sizes = file_sizes(n_files, seed=population_seed)
                _, report = simulate_storage_fast(
                    n_servers=n_servers,
                    sizes=sizes,
                    replicas=replicas,
                    placement=policy,
                    mode=mode,
                    seed=tree.integer_seed(),
                )
                reports[policy.name] = report
        comparisons.append(StorageComparison(replicas=replicas, reports=reports))
    return comparisons


def storage_table(comparisons: Sequence[StorageComparison]) -> ResultTable:
    """Flatten storage comparisons into a printable table."""
    table = ResultTable(
        columns=[
            "replicas", "policy", "max_load", "gap", "messages_per_file",
            "mean_lookup_cost",
        ],
        title="Distributed storage: replica placement balance and message cost",
    )
    for comparison in comparisons:
        for name, report in comparison.reports.items():
            record = report.as_dict()
            table.add(
                {
                    "replicas": comparison.replicas,
                    "policy": name,
                    "max_load": record["max_load"],
                    "gap": record["gap"],
                    "messages_per_file": record["messages_per_file"],
                    "mean_lookup_cost": record["mean_lookup_cost"],
                }
            )
    return table
