"""Theorem 2: the heavily loaded case (``m > n`` balls into ``n`` bins).

For ``d ≥ 2k`` the paper sandwiches (k, d)-choice between ``A(1, d−k+1)`` and
``A(1, ⌊d/k⌋)`` and inherits the heavily loaded d-choice result: the *gap*
between the maximum and the average load stays ``Θ(ln ln n)`` — independent
of ``m``.  (For ``d < 2k`` the question is open; Section 7.)

This experiment measures the gap of (k, d)-choice for growing ``m / n`` and
compares it against the gap of the two sandwich processes and the Theorem 2
bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..analysis.bounds import theorem2_bounds
from ..core.process import run_kd_choice
from ..simulation.results import ResultTable
from ..simulation.rng import SeedTree
from ..simulation.runner import run_trials

__all__ = ["HeavyPoint", "run_heavy_case", "heavy_table"]


@dataclass(frozen=True)
class HeavyPoint:
    """Gap measurements at one (k, d, m/n) point."""

    k: int
    d: int
    n: int
    load_factor: int
    mean_gap: float
    max_gap: float
    sandwich_lower_gap: float
    sandwich_upper_gap: float
    bound_lower: float
    bound_upper: float


def run_heavy_case(
    n: int = 1 << 12,
    load_factors: Sequence[int] = (1, 2, 4, 8),
    configurations: Sequence[tuple[int, int]] = ((2, 4), (4, 8), (8, 16)),
    trials: int = 3,
    seed: "int | None" = 0,
) -> List[HeavyPoint]:
    """Measure the max-minus-average gap as the number of balls grows.

    Every configuration satisfies ``d ≥ 2k`` (Theorem 2's hypothesis); the
    sandwich processes ``A(1, d−k+1)`` and ``A(1, ⌊d/k⌋)`` are run with the
    same ``m`` for reference.
    """
    tree = SeedTree(seed)
    points: List[HeavyPoint] = []
    for k, d in configurations:
        if d < 2 * k:
            raise ValueError(
                f"Theorem 2 requires d >= 2k; configuration (k={k}, d={d}) violates it"
            )
        for factor in load_factors:
            m = factor * n
            gaps = run_trials(
                lambda s, k=k, d=d, m=m: run_kd_choice(n_bins=n, k=k, d=d, n_balls=m, seed=s),
                trials=trials,
                seed=tree.integer_seed(),
                metric=lambda result: float(result.gap),
            )
            lower_gaps = run_trials(
                lambda s, k=k, d=d, m=m: run_kd_choice(
                    n_bins=n, k=1, d=d - k + 1, n_balls=m, seed=s
                ),
                trials=trials,
                seed=tree.integer_seed(),
                metric=lambda result: float(result.gap),
            )
            upper_d = max(d // k, 1)
            upper_gaps = run_trials(
                lambda s, upper_d=upper_d, m=m: run_kd_choice(
                    n_bins=n, k=1, d=upper_d, n_balls=m, seed=s
                ),
                trials=trials,
                seed=tree.integer_seed(),
                metric=lambda result: float(result.gap),
            )
            bound_lower, bound_upper = theorem2_bounds(k, d, m, n)
            points.append(
                HeavyPoint(
                    k=k,
                    d=d,
                    n=n,
                    load_factor=factor,
                    mean_gap=sum(gaps) / len(gaps),
                    max_gap=max(gaps),
                    sandwich_lower_gap=sum(lower_gaps) / len(lower_gaps),
                    sandwich_upper_gap=sum(upper_gaps) / len(upper_gaps),
                    bound_lower=bound_lower,
                    bound_upper=bound_upper,
                )
            )
    return points


def heavy_table(points: Sequence[HeavyPoint]) -> ResultTable:
    """Flatten heavy-case points into a printable table."""
    table = ResultTable(
        columns=[
            "k", "d", "n", "m/n", "mean_gap", "max_gap",
            "gap_A(1,d-k+1)", "gap_A(1,floor(d/k))", "bound_lower", "bound_upper",
        ],
        title="Theorem 2 (heavily loaded case): gap between max and average load",
    )
    for p in points:
        table.add(
            {
                "k": p.k,
                "d": p.d,
                "n": p.n,
                "m/n": p.load_factor,
                "mean_gap": p.mean_gap,
                "max_gap": p.max_gap,
                "gap_A(1,d-k+1)": p.sandwich_lower_gap,
                "gap_A(1,floor(d/k))": p.sandwich_upper_gap,
                "bound_lower": p.bound_lower,
                "bound_upper": p.bound_upper,
            }
        )
    return table
