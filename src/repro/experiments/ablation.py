"""Policy ablation: the strict multiplicity-capped rule vs the greedy relaxation.

Section 7 of the paper observes that the (k, d)-choice policy is not always
optimal: when a lightly loaded bin is sampled only once it can still receive
only one ball.  The proposed adjustment lets less-loaded candidate bins
receive more balls regardless of sampling multiplicity, and the paper
conjectures this "may reduce the maximum load to a constant even when k ≈ d
and d is large".

This ablation runs both policies on configurations with ``k`` close to ``d``
(where the strict policy degrades towards single choice) and on ordinary
configurations (where the two should essentially coincide).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core.process import run_kd_choice
from ..simulation.results import ResultTable
from ..simulation.rng import SeedTree
from ..simulation.runner import run_trials

__all__ = ["AblationPoint", "run_policy_ablation", "ablation_table"]


@dataclass(frozen=True)
class AblationPoint:
    """Max-load comparison of the two policies at one (k, d)."""

    k: int
    d: int
    n: int
    strict_mean: float
    strict_max: float
    greedy_mean: float
    greedy_max: float

    @property
    def improvement(self) -> float:
        """Mean max-load reduction achieved by the greedy relaxation."""
        return self.strict_mean - self.greedy_mean


def run_policy_ablation(
    n: int = 3 * 2 ** 10,
    configurations: Sequence[tuple[int, int]] = ((2, 3), (8, 9), (32, 33), (8, 16)),
    trials: int = 5,
    seed: "int | None" = 0,
) -> List[AblationPoint]:
    """Compare strict vs greedy policies over several (k, d) configurations."""
    tree = SeedTree(seed)
    points: List[AblationPoint] = []
    for k, d in configurations:
        strict_values = run_trials(
            lambda s, k=k, d=d: run_kd_choice(n_bins=n, k=k, d=d, policy="strict", seed=s),
            trials=trials,
            seed=tree.integer_seed(),
        )
        greedy_values = run_trials(
            lambda s, k=k, d=d: run_kd_choice(n_bins=n, k=k, d=d, policy="greedy", seed=s),
            trials=trials,
            seed=tree.integer_seed(),
        )
        points.append(
            AblationPoint(
                k=k,
                d=d,
                n=n,
                strict_mean=sum(strict_values) / len(strict_values),
                strict_max=max(strict_values),
                greedy_mean=sum(greedy_values) / len(greedy_values),
                greedy_max=max(greedy_values),
            )
        )
    return points


def ablation_table(points: Sequence[AblationPoint]) -> ResultTable:
    """Flatten ablation points into a printable table."""
    table = ResultTable(
        columns=["k", "d", "n", "strict_mean", "greedy_mean", "improvement"],
        title="Policy ablation: strict multiplicity cap vs greedy relaxation (Section 7)",
    )
    for point in points:
        table.add(
            {
                "k": point.k,
                "d": point.d,
                "n": point.n,
                "strict_mean": point.strict_mean,
                "greedy_mean": point.greedy_mean,
                "improvement": point.improvement,
            }
        )
    return table
