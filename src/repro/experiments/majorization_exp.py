"""Empirical verification of the Section 3 majorization chain.

The proof of Theorem 2 rests on the sandwich (Properties (iv) and (v))::

    A(1, d−k+1)  ≤_mj  A(k, d)  ≤_mj  A(1, ⌊d/k⌋)

together with the monotonicity properties (ii) (more probes help) and (iii)
(smaller rounds help).  This experiment runs independent trials of the
processes involved and checks that the empirical prefix-sum profiles and
maximum-load distributions are consistent with each claimed ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..analysis.majorization import MajorizationReport, compare_processes
from ..core.process import run_kd_choice
from ..simulation.results import ResultTable
from ..simulation.rng import SeedTree

__all__ = ["MajorizationExperiment", "run_majorization_chain", "majorization_table"]


@dataclass(frozen=True)
class MajorizationExperiment:
    """One claimed ordering and its empirical report."""

    claim: str
    report: MajorizationReport


def _kd_runner(n: int, k: int, d: int):
    return lambda seed: run_kd_choice(n_bins=n, k=k, d=d, seed=seed)


def run_majorization_chain(
    n: int = 3 * 2 ** 10,
    configurations: Sequence[tuple[int, int]] = ((3, 5), (8, 12)),
    trials: int = 8,
    seed: "int | None" = 0,
) -> List[MajorizationExperiment]:
    """Check the Theorem 2 sandwich and Property (ii) for several (k, d).

    For each configuration three orderings are evaluated:

    1. ``A(1, d−k+1) ≤_mj A(k, d)``  (Property (v) + (iv), the lower side),
    2. ``A(k, d) ≤_mj A(1, ⌊d/k⌋)``   (Property (iv), the upper side),
    3. ``A(k, d+2) ≤_mj A(k, d)``     (Property (ii): extra probes help).
    """
    tree = SeedTree(seed)
    experiments: List[MajorizationExperiment] = []
    for k, d in configurations:
        if k >= d:
            raise ValueError(f"configurations need k < d, got (k={k}, d={d})")
        seeds = tree.integer_seeds(trials * 2)
        experiments.append(
            MajorizationExperiment(
                claim=f"A(1,{d - k + 1}) <=mj A({k},{d})",
                report=compare_processes(
                    _kd_runner(n, 1, d - k + 1),
                    _kd_runner(n, k, d),
                    trials=trials,
                    seeds=seeds,
                    label_small=f"A(1,{d - k + 1})",
                    label_large=f"A({k},{d})",
                    tolerance=0.01 * n,
                ),
            )
        )
        seeds = tree.integer_seeds(trials * 2)
        floor_ratio = max(d // k, 1)
        experiments.append(
            MajorizationExperiment(
                claim=f"A({k},{d}) <=mj A(1,{floor_ratio})",
                report=compare_processes(
                    _kd_runner(n, k, d),
                    _kd_runner(n, 1, floor_ratio),
                    trials=trials,
                    seeds=seeds,
                    label_small=f"A({k},{d})",
                    label_large=f"A(1,{floor_ratio})",
                    tolerance=0.01 * n,
                ),
            )
        )
        seeds = tree.integer_seeds(trials * 2)
        experiments.append(
            MajorizationExperiment(
                claim=f"A({k},{d + 2}) <=mj A({k},{d})",
                report=compare_processes(
                    _kd_runner(n, k, d + 2),
                    _kd_runner(n, k, d),
                    trials=trials,
                    seeds=seeds,
                    label_small=f"A({k},{d + 2})",
                    label_large=f"A({k},{d})",
                    tolerance=0.01 * n,
                ),
            )
        )
    return experiments


def majorization_table(experiments: Sequence[MajorizationExperiment]) -> ResultTable:
    """Flatten the experiments into a printable table."""
    table = ResultTable(
        columns=[
            "claim", "trials", "prefix_fraction", "max_load_dominance",
            "mean_max_small", "mean_max_large", "consistent",
        ],
        title="Section 3 majorization chain: empirical consistency checks",
    )
    for experiment in experiments:
        record = experiment.report.as_dict()
        record["claim"] = experiment.claim
        table.add(record)
    return table
