"""Experiment recipes: one module per paper artefact (table, figure, claim).

Every module exposes a ``run_*`` function returning structured results plus a
``*_table`` helper that renders them the way the paper presents them; the
benchmark harness and the examples call these recipes.
"""

from .ablation import AblationPoint, ablation_table, run_policy_ablation
from .applications import (
    SchedulingComparison,
    StorageComparison,
    run_scheduling_experiment,
    run_storage_experiment,
    scheduling_table,
    storage_table,
)
from .extensions import (
    ChurnPoint,
    ExactValidationPoint,
    OpenQuestionPoint,
    StalenessPoint,
    WeightedPoint,
    churn_table,
    exact_validation_table,
    open_question_table,
    run_churn_experiment,
    run_exact_validation,
    run_open_question_heavy,
    run_staleness_experiment,
    run_weighted_experiment,
    staleness_table,
    weighted_table,
)
from .heavy import HeavyPoint, heavy_table, run_heavy_case
from .report import (
    REPORT_SECTIONS,
    ReportSection,
    ReproductionReport,
    generate_report,
)
from .load_profile import (
    LoadProfileResult,
    ProfileSeries,
    downsample_profile,
    run_load_profile,
)
from .majorization_exp import (
    MajorizationExperiment,
    majorization_table,
    run_majorization_chain,
)
from .regimes import (
    DEFAULT_CONFIGS,
    RegimeConfig,
    RegimePoint,
    regime_table,
    run_regime_scaling,
)
from .table1 import (
    PAPER_TABLE1,
    TABLE1_D_VALUES,
    TABLE1_K_VALUES,
    TABLE1_N,
    Table1Cell,
    Table1Result,
    run_table1,
    table1_cell,
)
from .tradeoff import TradeoffPoint, default_schemes, run_tradeoff, tradeoff_table

__all__ = [
    # table 1
    "TABLE1_N",
    "TABLE1_K_VALUES",
    "TABLE1_D_VALUES",
    "PAPER_TABLE1",
    "Table1Cell",
    "Table1Result",
    "table1_cell",
    "run_table1",
    # figures
    "ProfileSeries",
    "LoadProfileResult",
    "run_load_profile",
    "downsample_profile",
    # regimes
    "RegimeConfig",
    "RegimePoint",
    "DEFAULT_CONFIGS",
    "run_regime_scaling",
    "regime_table",
    # heavy case
    "HeavyPoint",
    "run_heavy_case",
    "heavy_table",
    # majorization
    "MajorizationExperiment",
    "run_majorization_chain",
    "majorization_table",
    # tradeoff
    "TradeoffPoint",
    "run_tradeoff",
    "tradeoff_table",
    "default_schemes",
    # applications
    "SchedulingComparison",
    "StorageComparison",
    "run_scheduling_experiment",
    "run_storage_experiment",
    "scheduling_table",
    "storage_table",
    # ablation
    "AblationPoint",
    "run_policy_ablation",
    "ablation_table",
    # extensions
    "WeightedPoint",
    "run_weighted_experiment",
    "weighted_table",
    "StalenessPoint",
    "run_staleness_experiment",
    "staleness_table",
    "ChurnPoint",
    "run_churn_experiment",
    "churn_table",
    "OpenQuestionPoint",
    "run_open_question_heavy",
    "open_question_table",
    "ExactValidationPoint",
    "run_exact_validation",
    "exact_validation_table",
    # report
    "REPORT_SECTIONS",
    "ReportSection",
    "ReproductionReport",
    "generate_report",
]
