"""Pluggable trial-execution backends: serial and process-parallel fan-out.

The paper's experiments are embarrassingly parallel over trials: every trial
of a :class:`~repro.api.spec.SchemeSpec` is an independent run under its own
pre-derived seed.  This module turns that structure into a pluggable
execution layer:

* :class:`SerialExecutor` runs trials in-process, in order — the reference
  behaviour.
* :class:`ProcessExecutor` fans the same trials out over a
  :class:`concurrent.futures.ProcessPoolExecutor`.

**Determinism contract.**  Backends never derive randomness themselves: the
caller pre-derives every trial seed from the experiment's
:class:`~repro.simulation.rng.SeedTree` *before* execution and the backend
merely maps :func:`run_trial` over ``(spec, seed)`` pairs, returning
outcomes in submission order.  Parallel results are therefore byte-identical
to serial ones — same seeds, same metrics, same ordering — and the choice of
``n_jobs`` is purely a wall-clock decision.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import List, Mapping, Optional, Sequence

from ..simulation.runner import _DEFAULT_METRICS, MetricFunction, TrialOutcome
from .registry import get_scheme
from .spec import SchemeSpec, SchemeSpecError

__all__ = [
    "run_trial",
    "resolve_metric_set",
    "resolve_n_jobs",
    "resolve_executor",
    "SerialExecutor",
    "ProcessExecutor",
]


def resolve_metric_set(
    spec: SchemeSpec,
    metrics: Optional[Mapping[str, MetricFunction]] = None,
) -> "dict[str, MetricFunction]":
    """The metric set a ``metrics=None`` trial of ``spec`` computes.

    Explicit metrics win; otherwise the scheme's registered default set is
    used (the application substrates register rich report-backed metrics —
    response-time percentiles, lookup costs — so those ride through every
    trial path); the library default (max load, gap, messages) is the final
    fallback.  Resolution happens independently in every process, so the
    ``metrics=None`` fan-out never ships metric functions across pickling
    boundaries.
    """
    if metrics is not None:
        return dict(metrics)
    try:
        info = get_scheme(spec.scheme)
    except KeyError:
        # Unknown schemes fail with the full candidate list at execution;
        # metric resolution should not pre-empt that clearer error.
        return dict(_DEFAULT_METRICS)
    if info.metrics:
        return dict(info.metrics)
    return dict(_DEFAULT_METRICS)


def run_trial(
    spec: SchemeSpec,
    seed: "int | None",
    metrics: Optional[Mapping[str, MetricFunction]] = None,
) -> TrialOutcome:
    """Execute one ``(spec, seed)`` trial and extract its metrics.

    This is the unit of work every backend schedules.  It lives at module
    level so a process pool can pickle it by reference; ``metrics=None``
    selects the scheme's default metric set (see :func:`resolve_metric_set`)
    without having to ship the functions to the worker.  Metric values are
    coerced to ``float`` (the declared :data:`MetricFunction` contract), so
    an outcome round-tripped through the JSON result cache is
    indistinguishable from a freshly computed one.
    """
    from .engine import _execute  # deferred: engine builds on this module

    metric_map = resolve_metric_set(spec, metrics)
    result = _execute(spec, seed)
    return TrialOutcome(
        seed=seed,
        metrics={name: float(fn(result)) for name, fn in metric_map.items()},
    )


def resolve_n_jobs(n_jobs: "int | None") -> int:
    """Normalize an ``n_jobs`` argument to a positive worker count.

    ``None`` and ``1`` mean serial execution; ``-1`` means one worker per
    available CPU; any other non-positive value is a configuration error.
    """
    if n_jobs is None:
        return 1
    if not isinstance(n_jobs, int) or isinstance(n_jobs, bool):
        raise SchemeSpecError(f"n_jobs must be an integer or None, got {n_jobs!r}")
    if n_jobs == -1:
        return max(1, os.cpu_count() or 1)
    if n_jobs < 1:
        raise SchemeSpecError(
            f"n_jobs must be a positive integer or -1 (all CPUs), got {n_jobs}"
        )
    return n_jobs


class SerialExecutor:
    """Run every trial in-process, in submission order."""

    n_jobs = 1

    def run(
        self,
        spec: SchemeSpec,
        seeds: Sequence["int | None"],
        metrics: Optional[Mapping[str, MetricFunction]] = None,
    ) -> List[TrialOutcome]:
        return [run_trial(spec, seed, metrics) for seed in seeds]


class ProcessExecutor:
    """Fan trials out over a :class:`ProcessPoolExecutor`.

    Results are collected in submission order, so the outcome list is
    indistinguishable from :class:`SerialExecutor`'s for the same seeds.
    """

    def __init__(self, n_jobs: int) -> None:
        n_jobs = resolve_n_jobs(n_jobs)
        if n_jobs < 2:
            raise SchemeSpecError(
                f"ProcessExecutor needs at least 2 workers, got {n_jobs}; "
                f"use SerialExecutor for in-process execution"
            )
        self.n_jobs = n_jobs

    @staticmethod
    def _check_payload(
        spec: SchemeSpec, metrics: Optional[Mapping[str, MetricFunction]]
    ) -> None:
        """Fail with an actionable message when the work cannot cross processes."""
        try:
            pickle.dumps(spec)
        except Exception as exc:
            raise SchemeSpecError(
                f"spec {spec.display_label!r} cannot be pickled for "
                f"process-parallel execution: {exc}"
            ) from exc
        if metrics is None:
            return
        for name, fn in metrics.items():
            try:
                pickle.dumps(fn)
            except Exception as exc:
                raise SchemeSpecError(
                    f"metric {name!r} cannot be pickled for process-parallel "
                    f"execution; use a module-level function instead of a "
                    f"lambda/closure, or run with n_jobs=1"
                ) from exc

    def run(
        self,
        spec: SchemeSpec,
        seeds: Sequence["int | None"],
        metrics: Optional[Mapping[str, MetricFunction]] = None,
    ) -> List[TrialOutcome]:
        if not seeds:
            return []
        self._check_payload(spec, metrics)
        workers = min(self.n_jobs, len(seeds))
        if workers < 2:
            return SerialExecutor().run(spec, seeds, metrics)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(run_trial, spec, seed, metrics) for seed in seeds]
            return [future.result() for future in futures]


def resolve_executor(n_jobs: "int | None") -> "SerialExecutor | ProcessExecutor":
    """Pick the backend for an ``n_jobs`` argument (``None``/1 -> serial)."""
    workers = resolve_n_jobs(n_jobs)
    return SerialExecutor() if workers == 1 else ProcessExecutor(workers)
