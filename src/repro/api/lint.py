"""Registry/kernel parity lint.

The kernel contract (:mod:`repro.core.kernels`) makes one registration per
scheme the single source of truth for its engine surfaces.  This module
checks, mechanically, that the scheme registry never drifts away from the
kernel table:

* every kernel in :data:`~repro.core.kernels.table.KERNELS` backs a
  registered scheme whose ``vectorized``/``online``/guard surfaces are the
  *identical objects* the kernel carries (not merely equal — a re-wrapped
  engine is exactly the drift this lint exists to catch);
* every registered scheme is either kernel-backed or explicitly listed in
  :data:`~repro.core.kernels.table.EXEMPT_SCHEMES` (the bespoke substrate
  simulators);
* the compatibility shims ``repro.core.vectorized`` and
  ``repro.online.steppers`` define nothing of their own — they re-export
  kernel symbols only, so there is no second implementation to rot.

The workload registry (:mod:`repro.workloads`) gets the same treatment:

* every consuming surface (``repro.online.trace``,
  ``repro.simulation.workloads``, ``repro.serve.loadgen``) must carry the
  registry's own function objects, not re-implementations;
* every registered workload must be reachable from the CLI's shared
  ``--workload`` flag group (``simulate``/``stream``/``loadgen``/
  ``cluster``);
* the deprecated ``--arrival-process``/``--churn`` spellings must resolve
  to a registered entry whose schema still accepts them;
* every scenario's event stream must be deterministic in its seed.

The topology registry (:mod:`repro.topology`) is linted the same way:

* every scheme tagged ``topology`` must be kernel-backed (its engines are
  derived, never hand-wired);
* every named layout must bind, JSON-round-trip exactly, and dump
  byte-identically on a double run;
* the shared ``--topology`` flag must be present on every CLI surface that
  reaches the topology-aware schemes (``simulate``/``stream``/``serve``/
  ``loadgen``).

Exposed to users as ``python -m repro schemes --check`` and locked down by
``tests/api/test_registry_parity.py``; CI runs both.
"""

from __future__ import annotations

import importlib
from typing import List

__all__ = ["lint_registry"]

#: Modules that must be pure re-export shims (they historically held the
#: per-scheme engine implementations now living in repro.core.kernels).
_SHIM_MODULES = ("repro.core.vectorized", "repro.online.steppers")


def _kernel_surface_violations() -> List[str]:
    from ..core.kernels import EXEMPT_SCHEMES, KERNELS
    from .registry import REGISTRY

    problems: List[str] = []
    registered = set(REGISTRY.names())

    for name, kernel in sorted(KERNELS.items()):
        if name not in registered:
            problems.append(
                f"kernel {name!r} (core/kernels/table.py) has no registered "
                f"scheme; register it in api/schemes.py with kernel=KERNELS[{name!r}]"
            )
            continue
        info = REGISTRY.get(name)
        if info.kernel != kernel.name:
            problems.append(
                f"scheme {name!r} (api/schemes.py) is not kernel-backed "
                f"(info.kernel={info.kernel!r}); pass kernel=KERNELS[{name!r}] "
                f"instead of explicit engine surfaces"
            )
            continue
        surfaces = (
            ("vectorized", info.vectorized, kernel.vectorized),
            ("online", info.online, kernel.stepper),
            ("vectorized_guard", info.vectorized_guard, kernel.vectorized_guard),
            (
                "vectorized_fastpath_guard",
                info.vectorized_fastpath_guard,
                kernel.fastpath_guard,
            ),
            ("compiled", info.compiled, kernel.compiled),
            ("compiled_guard", info.compiled_guard, kernel.compiled_guard),
            (
                "compiled_fastpath_guard",
                info.compiled_fastpath_guard,
                kernel.compiled_fastpath_guard,
            ),
        )
        for surface, registered_obj, kernel_obj in surfaces:
            if registered_obj is not kernel_obj:
                problems.append(
                    f"scheme {name!r}: registry {surface} is not the kernel's "
                    f"object (registry={registered_obj!r}, "
                    f"kernel={kernel_obj!r}); the registration in "
                    f"api/schemes.py must derive it from KERNELS[{name!r}]"
                )

    for name in sorted(registered):
        if name in KERNELS:
            continue
        if name not in EXEMPT_SCHEMES:
            problems.append(
                f"scheme {name!r} (api/schemes.py) has no kernel and is not in "
                f"EXEMPT_SCHEMES (core/kernels/table.py); add a kernel "
                f"registration or list it as exempt"
            )
    return problems


def _shim_purity_violations() -> List[str]:
    problems: List[str] = []
    for module_name in _SHIM_MODULES:
        module = importlib.import_module(module_name)
        owned = sorted(
            name
            for name, value in vars(module).items()
            if not name.startswith("__")
            and getattr(value, "__module__", None) == module_name
        )
        if owned:
            problems.append(
                f"shim module {module_name} defines its own symbols "
                f"{owned}; it must only re-export from repro.core.kernels"
            )
    return problems


#: Surfaces that must carry the workload registry's own function objects
#: (module, attribute): a wrapper or re-implementation here would be a
#: second stream derivation that can silently drift from the registry.
_WORKLOAD_SURFACES = (
    ("repro.online.trace", "generate_workload_events"),
    ("repro.simulation.workloads", "workload_events"),
    ("repro.serve.loadgen", "generate_workload_events"),
)

#: CLI subcommands that must expose the shared ``--workload`` flag group.
_WORKLOAD_COMMANDS = ("simulate", "stream", "loadgen", "cluster")


def _workload_surface_violations() -> List[str]:
    problems: List[str] = []
    for module_name, attribute in _WORKLOAD_SURFACES:
        module = importlib.import_module(module_name)
        surface = getattr(module, attribute, None)
        if surface is None:
            problems.append(
                f"workload surface {module_name}.{attribute} is missing; "
                f"it must re-export the registry function from "
                f"repro.workloads.records"
            )
            continue
        owner = getattr(surface, "__module__", None)
        if owner != "repro.workloads.records":
            problems.append(
                f"workload surface {module_name}.{attribute} is not the "
                f"registry's function (defined in {owner}); re-export it "
                f"from repro.workloads.records instead of wrapping it"
            )
    return problems


def _workload_cli_violations() -> List[str]:
    import argparse

    from repro.cli import build_parser
    from repro.workloads import available_workloads

    problems: List[str] = []
    registered = available_workloads()
    parser = build_parser()
    subparsers = next(
        action for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    )
    for command in _WORKLOAD_COMMANDS:
        subparser = subparsers.choices.get(command)
        if subparser is None:
            problems.append(
                f"CLI subcommand {command!r} is missing; the shared "
                f"--workload flag group (cli.py) expects it"
            )
            continue
        flag = next(
            (
                action for action in subparser._actions
                if "--workload" in action.option_strings
            ),
            None,
        )
        if flag is None:
            problems.append(
                f"repro {command} has no --workload flag; attach "
                f"_add_workload_flags in cli.py so every registered "
                f"workload stays CLI-reachable"
            )
        elif list(flag.choices or ()) != registered:
            problems.append(
                f"repro {command} --workload choices {sorted(flag.choices or ())} "
                f"drifted from the registry {sorted(registered)}; the flag "
                f"must offer exactly available_workloads()"
            )
    return problems


def _workload_registry_violations() -> List[str]:
    from repro.workloads import (
        WORKLOADS,
        WorkloadError,
        generate_events,
        resolve_legacy,
    )

    problems: List[str] = []

    # The deprecated flag spellings must keep resolving to a registered
    # entry whose schema accepts every legacy kwarg.
    name, params = resolve_legacy()
    record = WORKLOADS.get(name)
    if record is None:
        problems.append(
            f"legacy workload kwargs resolve to unregistered workload "
            f"{name!r}; register it in repro/workloads/library.py"
        )
    else:
        try:
            record.resolve_params(params)
        except WorkloadError as exc:
            problems.append(
                f"legacy workload kwargs no longer fit workload {name!r}'s "
                f"schema: {exc}"
            )

    # Every scenario's stream must be deterministic in (params, seed).
    for workload in WORKLOADS.values():
        try:
            first = generate_events(workload.name, 8, seed=0)
            second = generate_events(workload.name, 8, seed=0)
        except Exception as exc:  # pragma: no cover - registration bug
            problems.append(
                f"workload {workload.name!r} failed to generate a tiny "
                f"stream: {exc}"
            )
            continue
        if first != second:
            problems.append(
                f"workload {workload.name!r} is not deterministic: two "
                f"seed-0 streams differ; derive all randomness from "
                f"workload_branches(seed, ...)"
            )
    return problems


#: CLI subcommands that must expose the shared ``--topology`` flag.
_TOPOLOGY_COMMANDS = ("simulate", "stream", "serve", "loadgen")


def _topology_registry_violations() -> List[str]:
    import json

    from repro.topology import (
        TOPOLOGY_LAYOUTS,
        Topology,
        TopologyError,
        topology_registry_dump,
    )

    from ..core.kernels import KERNELS
    from .registry import REGISTRY

    problems: List[str] = []

    # Topology-aware schemes ride the same kernel contract as everything
    # else: a hand-wired engine surface would escape the equivalence pins.
    for name in REGISTRY.names():
        info = REGISTRY.get(name)
        if "topology" not in (info.tags or ()):
            continue
        if info.kernel is None or info.kernel not in KERNELS:
            problems.append(
                f"topology scheme {name!r} (api/schemes.py) is not "
                f"kernel-backed; register it with kernel=KERNELS[{name!r}]"
            )

    # Every named layout must bind and survive an exact JSON round-trip.
    for name, layout in sorted(TOPOLOGY_LAYOUTS.items()):
        if name != layout.name:
            problems.append(
                f"topology layout registered as {name!r} carries "
                f"name={layout.name!r}; the registry key must match"
            )
        try:
            topology = layout.bind(64)
        except TopologyError as exc:
            problems.append(
                f"topology layout {name!r} fails to bind 64 bins: {exc}"
            )
            continue
        if Topology.from_dict(topology.to_dict()) != topology:
            problems.append(
                f"topology layout {name!r} does not JSON-round-trip "
                f"(from_dict(to_dict()) differs); fix "
                f"repro/topology/records.py"
            )
        first = json.dumps(topology.to_dict(), sort_keys=True)
        second = json.dumps(layout.bind(64).to_dict(), sort_keys=True)
        if first != second:
            problems.append(
                f"topology layout {name!r} dumps differently on a double "
                f"run; to_dict() must be deterministic"
            )

    if json.dumps(topology_registry_dump(), sort_keys=True) != json.dumps(
        topology_registry_dump(), sort_keys=True
    ):
        problems.append(
            "topology_registry_dump() is not deterministic across calls"
        )
    return problems


def _topology_cli_violations() -> List[str]:
    import argparse

    from repro.cli import build_parser

    problems: List[str] = []
    parser = build_parser()
    subparsers = next(
        action for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    )
    if "topology" not in subparsers.choices:
        problems.append(
            "CLI subcommand 'topology' is missing; the layout registry "
            "must stay inspectable (cli.py)"
        )
    for command in _TOPOLOGY_COMMANDS:
        subparser = subparsers.choices.get(command)
        if subparser is None:
            problems.append(
                f"CLI subcommand {command!r} is missing; the shared "
                f"--topology flag (cli.py) expects it"
            )
            continue
        flag = next(
            (
                action for action in subparser._actions
                if "--topology" in action.option_strings
            ),
            None,
        )
        if flag is None:
            problems.append(
                f"repro {command} has no --topology flag; attach "
                f"_add_topology_flag in cli.py so every named layout stays "
                f"CLI-reachable"
            )
    return problems


def lint_registry() -> List[str]:
    """Return every registry/kernel parity violation (empty when clean).

    Each violation is one human-readable sentence naming the offending
    scheme or module and the file to fix.  ``python -m repro schemes
    --check`` prints these and exits nonzero when any exist.
    """
    import repro.api.schemes  # noqa: F401  (populate the registry)

    return (
        _kernel_surface_violations()
        + _shim_purity_violations()
        + _workload_surface_violations()
        + _workload_cli_violations()
        + _workload_registry_violations()
        + _topology_registry_violations()
        + _topology_cli_violations()
    )
