"""The scheme registry: a single discoverable catalogue of every workload.

Every allocation process, baseline, comparator and application substrate in
the repository registers itself here under a short name via the
:func:`register_scheme` decorator.  Downstream layers (sweeps, experiment
recipes, the CLI, remote executors) then express work as
:class:`~repro.api.spec.SchemeSpec` objects instead of hand-wiring lambdas
around fourteen differently-shaped ``run_*`` functions.

The registry stores, per scheme:

* the runner callable and its introspected keyword signature (used to
  validate spec params before execution),
* an optional *vectorized* runner for the fast batch engine,
* an optional *online* stepper factory for the streaming allocation service
  (:mod:`repro.online`), mirroring the vectorized capability surface,
* a one-line summary (the first docstring line by default) for
  :func:`describe_scheme` / the ``python -m repro schemes`` listing.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "SchemeInfo",
    "SchemeRegistry",
    "register_scheme",
    "available_schemes",
    "describe_scheme",
    "get_scheme",
    "registry_dump",
    "vectorized_unsupported_reason",
    "vectorized_fastpath_reason",
    "compiled_unsupported_reason",
    "compiled_fastpath_reason",
    "online_unsupported_reason",
    "REGISTRY",
]

Runner = Callable[..., Any]


@dataclass(frozen=True)
class SchemeInfo:
    """Registration record of one scheme."""

    name: str
    runner: Runner
    summary: str
    parameters: Tuple[str, ...]
    defaults: Mapping[str, Any]
    required: Tuple[str, ...]
    aliases: Tuple[str, ...] = ()
    tags: Tuple[str, ...] = ()
    vectorized: Optional[Runner] = None
    #: Optional predicate ``(params) -> reason-or-None`` marking parameter
    #: regions the vectorized runner does not support (e.g. a failure
    #: scenario only the reference simulator implements).  ``None`` (the
    #: return value) means supported.  This is the *hard* capability level:
    #: a reason here means forcing ``engine="vectorized"`` raises.
    vectorized_guard: Optional[Callable[[Mapping[str, Any]], Optional[str]]] = None
    #: Optional predicate ``(params) -> reason-or-None`` marking parameter
    #: regions where the vectorized runner *works* but brings no speedup
    #: (it drives the per-unit kernel), so ``engine="auto"`` should stay on
    #: the scalar reference.  Forcing ``engine="vectorized"`` is honoured.
    vectorized_fastpath_guard: Optional[
        Callable[[Mapping[str, Any]], Optional[str]]
    ] = None
    #: Optional compiled (C-backend) runner, derived from the kernel record
    #: exactly like ``vectorized``.  Selected via ``engine="compiled"`` or
    #: the ``REPRO_KERNEL=compiled`` auto-preference; seed-for-seed
    #: identical to the scalar reference by construction.
    compiled: Optional[Runner] = None
    #: Hard capability guard for the compiled runner (parameters the C
    #: kernels cannot run, e.g. probe widths beyond the static scratch).
    compiled_guard: Optional[Callable[[Mapping[str, Any]], Optional[str]]] = None
    #: Soft guard: the compiled engine works but degenerates to the
    #: per-unit drive path (no speedup), so auto-preference skips it.
    compiled_fastpath_guard: Optional[
        Callable[[Mapping[str, Any]], Optional[str]]
    ] = None
    #: Optional stepper factory for the online/streaming allocation service
    #: (:mod:`repro.online`).  The factory mirrors the scalar runner's
    #: keyword signature but returns a stepper object (incremental
    #: placements) instead of a finished ``AllocationResult``.
    online: Optional[Runner] = None
    #: Optional predicate ``(params) -> reason-or-None`` marking parameter
    #: regions the online stepper does not support.  Mirrors
    #: ``vectorized_guard``.
    online_guard: Optional[Callable[[Mapping[str, Any]], Optional[str]]] = None
    #: Optional scheme-specific default metric set for trial fan-outs
    #: (``metrics=None`` paths).  Must map names to module-level functions of
    #: the :class:`~repro.core.types.AllocationResult` returning floats, so
    #: trials stay picklable and cacheable.  ``None`` selects the library
    #: default (max load, gap, messages).
    metrics: Optional[Mapping[str, Callable[[Any], float]]] = None
    #: Name of the kernel (in :data:`repro.core.kernels.table.KERNELS`) this
    #: scheme's engine surfaces were derived from, or ``None`` for the
    #: bespoke substrate simulators.  Set by passing ``kernel=`` to
    #: ``register``; ``repro schemes --check`` verifies derived surfaces
    #: stay identical to the kernel table.
    kernel: Optional[str] = None

    @property
    def accepts_policy(self) -> bool:
        return "policy" in self.parameters

    @property
    def accepts_rng(self) -> bool:
        return "rng" in self.parameters

    def describe(self) -> Dict[str, Any]:
        """Human/machine-readable description of the scheme."""
        return {
            "name": self.name,
            "summary": self.summary,
            "parameters": {
                name: (self.defaults[name] if name in self.defaults else "<required>")
                for name in self.parameters
            },
            "required": list(self.required),
            "aliases": list(self.aliases),
            "tags": list(self.tags),
            "engines": (
                ["scalar"]
                + (["vectorized"] if self.vectorized else [])
                + (["compiled"] if self.compiled else [])
            ),
            "online": self.online is not None,
            "metrics": sorted(self.metrics) if self.metrics else None,
            "kernel_derived": self.kernel is not None,
        }


def _introspect(runner: Runner) -> Tuple[Tuple[str, ...], Dict[str, Any], Tuple[str, ...]]:
    """Extract (parameter names, defaults, required names) from a runner."""
    names: List[str] = []
    defaults: Dict[str, Any] = {}
    required: List[str] = []
    for parameter in inspect.signature(runner).parameters.values():
        if parameter.kind in (parameter.VAR_POSITIONAL, parameter.VAR_KEYWORD):
            continue
        names.append(parameter.name)
        if parameter.default is not parameter.empty:
            defaults[parameter.name] = parameter.default
        else:
            required.append(parameter.name)
    return tuple(names), defaults, tuple(required)


class SchemeRegistry:
    """Mutable mapping from scheme name (and aliases) to :class:`SchemeInfo`."""

    def __init__(self) -> None:
        self._schemes: Dict[str, SchemeInfo] = {}
        self._aliases: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        *,
        summary: Optional[str] = None,
        aliases: Tuple[str, ...] = (),
        tags: Tuple[str, ...] = (),
        kernel: Optional[Any] = None,
        vectorized: Optional[Runner] = None,
        vectorized_guard: Optional[
            Callable[[Mapping[str, Any]], Optional[str]]
        ] = None,
        online: Optional[Runner] = None,
        online_guard: Optional[
            Callable[[Mapping[str, Any]], Optional[str]]
        ] = None,
        metrics: Optional[Mapping[str, Callable[[Any], float]]] = None,
    ) -> Callable[[Runner], Runner]:
        """Decorator registering ``runner`` under ``name``.

        Usage::

            @register_scheme("kd_choice", aliases=("kd",),
                             kernel=KERNELS["kd_choice"])
            def _run(n_bins, k, d, ...):
                ...

        ``kernel`` (a :class:`repro.core.kernels.table.Kernel`) is the
        preferred wiring: the scheme's ``vectorized=``, ``online=`` and
        guard surfaces are derived from the kernel's capabilities and may
        not also be passed explicitly — one registration, one source of
        truth, checked by ``repro schemes --check``.
        """
        if not isinstance(name, str) or not name:
            raise ValueError(f"scheme name must be a non-empty string, got {name!r}")
        fastpath_guard = None
        if kernel is not None:
            if vectorized is not None or vectorized_guard is not None or online is not None:
                raise ValueError(
                    f"scheme {name!r} passes kernel= and explicit engine "
                    f"surfaces; engines of a kernel-backed scheme are derived "
                    f"from the kernel alone"
                )
            vectorized = kernel.vectorized
            vectorized_guard = kernel.vectorized_guard
            fastpath_guard = kernel.fastpath_guard
            compiled = kernel.compiled
            compiled_guard = kernel.compiled_guard
            compiled_fastpath_guard = kernel.compiled_fastpath_guard
            online = kernel.stepper
        else:
            compiled = None
            compiled_guard = None
            compiled_fastpath_guard = None

        def decorator(runner: Runner) -> Runner:
            if name in self._schemes or name in self._aliases:
                raise ValueError(f"scheme {name!r} is already registered")
            doc = (inspect.getdoc(runner) or "").strip()
            first_line = doc.splitlines()[0] if doc else ""
            parameters, defaults, required = _introspect(runner)
            info = SchemeInfo(
                name=name,
                runner=runner,
                summary=summary if summary is not None else first_line,
                parameters=parameters,
                defaults=defaults,
                required=required,
                aliases=tuple(aliases),
                tags=tuple(tags),
                vectorized=vectorized,
                vectorized_guard=vectorized_guard,
                vectorized_fastpath_guard=fastpath_guard,
                compiled=compiled,
                compiled_guard=compiled_guard,
                compiled_fastpath_guard=compiled_fastpath_guard,
                online=online,
                online_guard=online_guard,
                metrics=dict(metrics) if metrics is not None else None,
                kernel=kernel.name if kernel is not None else None,
            )
            self._schemes[name] = info
            for alias in info.aliases:
                if alias in self._schemes or alias in self._aliases:
                    raise ValueError(f"scheme alias {alias!r} is already registered")
                self._aliases[alias] = name
            return runner

        return decorator

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, name: str) -> SchemeInfo:
        """Resolve a scheme name or alias to its registration record."""
        canonical = self._aliases.get(name, name)
        try:
            return self._schemes[canonical]
        except KeyError:
            known = ", ".join(sorted(self._schemes))
            raise KeyError(
                f"unknown scheme {name!r}; available schemes: {known}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._schemes or name in self._aliases

    def names(self) -> List[str]:
        """Canonical scheme names, sorted."""
        return sorted(self._schemes)

    def describe(self, name: str) -> Dict[str, Any]:
        return self.get(name).describe()


#: The process-wide registry; populated by :mod:`repro.api.schemes` on import.
REGISTRY = SchemeRegistry()

register_scheme = REGISTRY.register


def available_schemes() -> List[str]:
    """Sorted canonical names of every registered scheme."""
    return REGISTRY.names()


def describe_scheme(name: str) -> Dict[str, Any]:
    """Summary, parameters (with defaults) and engines of one scheme."""
    return REGISTRY.describe(name)


def get_scheme(name: str) -> SchemeInfo:
    """The raw :class:`SchemeInfo` record for ``name`` (or an alias)."""
    return REGISTRY.get(name)


def _json_safe(value: Any) -> Any:
    """Map a default value to something ``json.dumps`` accepts verbatim.

    Scheme defaults are almost always plain scalars; the fallback covers
    anything exotic (a callable threshold, say) with its ``repr`` so the
    dump stays loadable rather than crashing the CLI.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, Mapping):
        return {str(key): _json_safe(item) for key, item in value.items()}
    return repr(value)


def registry_dump() -> Dict[str, Any]:
    """Machine-readable dump of the whole registry.

    Backs ``python -m repro schemes --json``: one JSON-safe record per
    scheme with its parameters, engines, and — the part the plain listing
    omits — whether the vectorized engine and the online stepper support
    the scheme *at its default parameters*, with the human-readable reason
    when they do not.  Parameter-dependent guards are evaluated against the
    defaults, so a scheme whose fast path only drops out in exotic corners
    still reports as supported here.
    """
    schemes: List[Dict[str, Any]] = []
    for name in REGISTRY.names():
        info = REGISTRY.get(name)
        entry = info.describe()
        entry["parameters"] = {
            key: _json_safe(value) for key, value in entry["parameters"].items()
        }
        entry["vectorized"] = info.vectorized is not None
        entry["vectorized_unsupported_reason"] = vectorized_unsupported_reason(
            info, None, info.defaults
        )
        entry["vectorized_fastpath_reason"] = vectorized_fastpath_reason(
            info, None, info.defaults
        )
        entry["compiled"] = info.compiled is not None
        # probe_backend=False keeps the dump a property of the *registry*,
        # not of this machine: whether the C backend builds here is surfaced
        # by ``repro schemes --check`` instead, so the golden dump stays
        # valid in compiler-less environments.
        entry["compiled_unsupported_reason"] = compiled_unsupported_reason(
            info, None, info.defaults, probe_backend=False
        )
        entry["compiled_fastpath_reason"] = compiled_fastpath_reason(
            info, None, info.defaults, probe_backend=False
        )
        entry["online"] = info.online is not None
        entry["online_unsupported_reason"] = online_unsupported_reason(
            info, None, info.defaults
        )
        schemes.append(entry)
    return {
        "format": "repro-scheme-registry",
        "version": 1,
        "count": len(schemes),
        "schemes": schemes,
    }


def vectorized_unsupported_reason(
    info: SchemeInfo,
    policy: Optional[str],
    params: Mapping[str, Any],
) -> Optional[str]:
    """Why ``engine="vectorized"`` cannot run this configuration, or ``None``.

    The single source of truth for engine/scheme compatibility: it backs
    both the construction-time validation in
    :class:`~repro.api.spec.SchemeSpec` and the run-time resolution in
    :func:`~repro.api.engine.resolve_engine` (so ``engine="auto"`` falls
    back to the scalar reference exactly when a forced ``"vectorized"``
    would have been rejected).
    """
    if info.vectorized is None:
        return (
            f"scheme {info.name!r} has no vectorized engine; "
            f"available engines: scalar"
        )
    if policy not in (None, "strict"):
        return (
            f"the vectorized engine supports only the strict policy, "
            f"got policy={policy!r}"
        )
    if info.vectorized_guard is not None:
        return info.vectorized_guard(params)
    return None


def vectorized_fastpath_reason(
    info: SchemeInfo,
    policy: Optional[str],
    params: Mapping[str, Any],
) -> Optional[str]:
    """Why ``engine="auto"`` should *prefer the scalar engine*, or ``None``.

    A superset of :func:`vectorized_unsupported_reason`: any configuration
    the vectorized engine cannot run at all is also not a fast path, and on
    top of that a scheme's ``vectorized_fastpath_guard`` can mark regions
    where the batch engine merely drives the per-unit kernel with no
    speedup (the serialized and greedy schemes, callable thresholds).
    ``engine="auto"`` resolution uses this reason; forcing
    ``engine="vectorized"`` only checks the hard reason.
    """
    hard = vectorized_unsupported_reason(info, policy, params)
    if hard is not None:
        return hard
    if info.vectorized_fastpath_guard is not None:
        return info.vectorized_fastpath_guard(params)
    return None


def compiled_unsupported_reason(
    info: SchemeInfo,
    policy: Optional[str],
    params: Mapping[str, Any],
    probe_backend: bool = True,
) -> Optional[str]:
    """Why ``engine="compiled"`` cannot run this configuration, or ``None``.

    Mirrors :func:`vectorized_unsupported_reason` (same policy restriction —
    the compiled engines derive from the same steppers) plus the scheme's
    ``compiled_guard`` and, when ``probe_backend`` is true, whether the C
    backend can actually build/load in this environment.  Construction-time
    spec validation passes ``probe_backend=False`` so a spec's validity is a
    structural property, not a property of the machine it was built on;
    run-time engine resolution probes.
    """
    if info.compiled is None:
        return (
            f"scheme {info.name!r} has no compiled engine; "
            f"available engines: "
            + ("scalar, vectorized" if info.vectorized else "scalar")
        )
    if policy not in (None, "strict"):
        return (
            f"the compiled engine supports only the strict policy, "
            f"got policy={policy!r}"
        )
    if info.compiled_guard is not None:
        reason = info.compiled_guard(params)
        if reason is not None:
            return reason
    if probe_backend:
        from repro.core.compiled import backend_unavailable_reason

        reason = backend_unavailable_reason()
        if reason is not None:
            return f"compiled backend unavailable: {reason}"
    return None


def compiled_fastpath_reason(
    info: SchemeInfo,
    policy: Optional[str],
    params: Mapping[str, Any],
    probe_backend: bool = True,
) -> Optional[str]:
    """Why auto-preference should *skip the compiled engine*, or ``None``.

    A superset of :func:`compiled_unsupported_reason`, mirroring
    :func:`vectorized_fastpath_reason`: configurations where the compiled
    engine is honoured but degenerates to the per-unit drive path (callable
    thresholds) are no reason to override the default engine choice.
    """
    hard = compiled_unsupported_reason(info, policy, params, probe_backend)
    if hard is not None:
        return hard
    if info.compiled_fastpath_guard is not None:
        return info.compiled_fastpath_guard(params)
    return None


def online_unsupported_reason(
    info: SchemeInfo,
    policy: Optional[str],
    params: Mapping[str, Any],
) -> Optional[str]:
    """Why this configuration cannot run as an online allocator, or ``None``.

    The single source of truth for online/scheme compatibility, mirroring
    :func:`vectorized_unsupported_reason`: it backs both the construction-time
    validation in :class:`~repro.online.allocator.OnlineAllocator` and the
    registry dichotomy tests.  Online steppers mirror the *scalar* reference
    engines, so any policy the scalar runner accepts is accepted here; the
    scheme either provides a stepper factory or names why it cannot stream.
    """
    if info.online is None:
        return (
            f"scheme {info.name!r} has no online allocator; schemes stream "
            f"only when per-item placement is well defined (see "
            f"repro.online)"
        )
    if info.online_guard is not None:
        return info.online_guard(params)
    return None
