"""On-disk result cache: skip recomputing identical trials across runs.

Parameter sweeps rerun the same ``(spec, trial seed)`` work over and over —
every Table 1 rerun, every widened grid, every report regeneration repeats
trials that were already computed.  :class:`ResultStore` memoizes the
per-trial metrics on disk, content-addressed on

``(spec.cache_key(), trial_seed, resolved engine, metric names)``

so a warm store lets sweeps and experiment recipes skip the scheme runners
entirely.  Entries are small JSON documents (one per trial) written
atomically; a corrupt or unreadable entry is treated as a miss and silently
recomputed.

The key deliberately mirrors the determinism contract of the executor layer
(:mod:`repro.api.executor`): given the same spec content, trial seed and
engine, a trial's metrics are reproducible, so caching them is exact — not
an approximation.  Metric *names* are part of the key; the store assumes a
metric name identifies one function (true for the default metric set and for
any sanely-named custom metric).
"""

from __future__ import annotations

import json
import os
import tempfile
from hashlib import sha256
from pathlib import Path
from typing import Dict, Iterable, Optional, Sequence

from ..simulation.runner import TrialOutcome
from .spec import SchemeSpec

__all__ = ["ResultStore", "as_result_store"]

#: Format marker written into every entry; bump to invalidate old layouts.
# Bump whenever any scheme's RNG stream changes for a fixed seed (entries
# become unreproducible, not merely stale): v2 = the engine-v2 work moved the
# scalar weighted/stale processes to chunked/epoch block draws.  v3 = the
# substrate scale-out: cluster/storage schemes gained scenario parameters,
# fast engines and report-backed default metric sets, so pre-v3 substrate
# entries describe a different metric vocabulary.
_ENTRY_VERSION = 3


def as_result_store(
    cache: "ResultStore | str | os.PathLike[str] | None",
) -> Optional["ResultStore"]:
    """Normalize a ``cache=`` argument: pass stores through, wrap paths.

    Every layer that accepts ``cache`` (engine, sweeps, recipes, CLI) funnels
    through this one helper, so a caller can hand the same value — a
    directory path or a ready :class:`ResultStore` — to any of them.
    """
    if cache is None or isinstance(cache, ResultStore):
        return cache
    return ResultStore(cache)


class ResultStore:
    """A content-addressed, on-disk store of per-trial metrics.

    Parameters
    ----------
    cache_dir:
        Directory holding the entries (created on demand).  Stores rooted at
        the same directory share entries across processes and runs.

    The store keeps ``hits`` / ``misses`` / ``stores`` / ``pruned`` counters
    for the lifetime of the instance, so callers (e.g. the CLI) can report
    how much recomputation was skipped (and how much was evicted).
    """

    def __init__(self, cache_dir: "str | os.PathLike[str]") -> None:
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.pruned = 0

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    @staticmethod
    def entry_key(
        spec: SchemeSpec,
        seed: "int | None",
        engine: str,
        metric_names: Iterable[str],
    ) -> str:
        """The content address of one trial's metrics."""
        names = ",".join(sorted(metric_names))
        payload = f"{spec.cache_key()}:{seed}:{engine}:{names}:v{_ENTRY_VERSION}"
        return sha256(payload.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        # Two-level fan-out keeps directories small on big sweeps.
        return self.cache_dir / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # Load / store
    # ------------------------------------------------------------------
    def load(
        self,
        spec: SchemeSpec,
        seed: "int | None",
        engine: str,
        metric_names: Sequence[str],
    ) -> Optional[TrialOutcome]:
        """Return the cached outcome for this trial, or ``None`` on a miss.

        Corrupt entries (unparseable JSON, wrong shape, mismatched seed or
        metric names) are deleted and reported as misses, so a damaged cache
        degrades to recomputation instead of failing the experiment.
        """
        key = self.entry_key(spec, seed, engine, metric_names)
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            if entry["version"] != _ENTRY_VERSION or entry["seed"] != seed:
                raise ValueError("stale or mismatched entry")
            metrics = entry["metrics"]
            if sorted(metrics) != sorted(metric_names) or not all(
                isinstance(value, (int, float)) for value in metrics.values()
            ):
                raise ValueError("metric payload does not match the request")
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError, json.JSONDecodeError):
            # Corrupt entry: drop it so the rewrite below starts clean.
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return TrialOutcome(seed=seed, metrics={k: float(v) for k, v in metrics.items()})

    def store(
        self,
        spec: SchemeSpec,
        seed: "int | None",
        engine: str,
        outcome: TrialOutcome,
    ) -> Path:
        """Persist one trial's metrics (atomic write) and return the path."""
        key = self.entry_key(spec, seed, engine, outcome.metrics)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "version": _ENTRY_VERSION,
            "seed": seed,
            "engine": engine,
            "spec": spec.to_dict(),
            "metrics": {name: float(value) for name, value in outcome.metrics.items()},
        }
        # Write-then-rename so concurrent readers never see a partial entry.
        descriptor, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, default=repr)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stores += 1
        return path

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def prune(
        self,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> int:
        """Evict oldest entries until the store fits the given limits.

        Without limits the store grows without bound (every new spec/seed/
        engine combination adds an entry forever); ``prune`` bounds it by
        entry count and/or total payload bytes, evicting in
        least-recently-written order (file mtime, ties broken by name so the
        order is stable).  Returns the number of entries removed; the
        lifetime ``pruned`` counter accumulates it, and the hit/miss
        counters are untouched — eviction is not a cache event.

        Concurrent writers are safe: an entry vanishing mid-prune is simply
        skipped, and readers treat a missing entry as an ordinary miss.
        """
        if max_entries is None and max_bytes is None:
            return 0
        if max_entries is not None and max_entries < 0:
            raise ValueError(
                f"max_entries must be non-negative, got {max_entries}"
            )
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be non-negative, got {max_bytes}")
        entries = []
        for path in self.cache_dir.glob("*/*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue  # vanished under a concurrent prune/rewrite
            entries.append((stat.st_mtime, path.name, stat.st_size, path))
        entries.sort()  # oldest first
        keep = len(entries)
        if max_entries is not None:
            keep = min(keep, max_entries)
        if max_bytes is not None:
            total = sum(size for _, _, size, _ in entries[len(entries) - keep:])
            while keep > 0 and total > max_bytes:
                total -= entries[len(entries) - keep][2]
                keep -= 1
        evicted = 0
        for _, _, _, path in entries[: len(entries) - keep]:
            try:
                path.unlink()
            except OSError:
                continue
            evicted += 1
        self.pruned += evicted
        return evicted

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Lifetime counters, for logs and CLI summaries."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "pruned": self.pruned,
        }

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        return sum(1 for _ in self.cache_dir.glob("*/*.json"))

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"ResultStore({str(self.cache_dir)!r}, hits={self.hits}, "
            f"misses={self.misses}, stores={self.stores})"
        )
