"""Spec execution: ``simulate`` / ``simulate_many``.

:func:`simulate` is the canonical entry point of the library: it resolves a
:class:`~repro.api.spec.SchemeSpec` against the scheme registry, validates
the parameters against the runner's signature, picks an execution engine
(scalar reference or the vectorized fast path) and returns the familiar
:class:`~repro.core.types.AllocationResult`.

:func:`simulate_many` fans a batch of specs out over repeated trials with a
*shared* :class:`~repro.simulation.rng.SeedTree`, so a whole experiment is
reproducible from one root seed, and returns one
:class:`~repro.simulation.runner.ExperimentOutcome` per spec — the same
aggregation type the historical ``ExperimentRunner`` produces, so existing
statistics/table code applies unchanged.

Both trial entry points accept ``n_jobs`` (fan trials out over a process
pool, see :mod:`repro.api.executor`) and ``cache`` (memoize per-trial
metrics on disk, see :mod:`repro.api.cache`).  Trial seeds are pre-derived
from the seed tree *before* any execution, so parallel and cached runs are
byte-identical to the serial reference.
"""

from __future__ import annotations

import os
from os import PathLike
from typing import Dict, Iterable, List, Mapping, Optional

from ..core.types import AllocationResult
from ..simulation.rng import SeedTree
from ..simulation.runner import (
    ExperimentOutcome,
    MetricFunction,
    TrialOutcome,
)
from .cache import ResultStore, as_result_store
from .executor import resolve_executor, resolve_metric_set
from .registry import (
    SchemeInfo,
    compiled_fastpath_reason,
    compiled_unsupported_reason,
    get_scheme,
    vectorized_fastpath_reason,
    vectorized_unsupported_reason,
)
from .spec import SchemeSpec, SchemeSpecError

__all__ = [
    "simulate",
    "simulate_trials",
    "simulate_many",
    "resolve_engine",
    "build_runner_kwargs",
]


def resolve_engine(spec: SchemeSpec, info: Optional[SchemeInfo] = None) -> str:
    """Decide which engine a spec runs on ("scalar", "vectorized" or
    "compiled").

    ``engine="auto"`` selects the vectorized fast path whenever the scheme
    provides one and the spec stays inside its *fast-path* envelope (strict
    policy, no guard-rejected parameters, an actual speedup on offer); the
    engines are seed-for-seed identical, so this is purely a performance
    decision.  A forced ``engine="vectorized"`` is honoured whenever the
    batch engine can run the spec at all — including the derived
    drive-the-kernel engines that a fast-path guard keeps away from
    ``auto`` — and raises :class:`~repro.api.spec.SchemeSpecError` outside
    that hard envelope (normally already at spec construction; this
    re-check covers specs built before the scheme was registered).  A
    forced ``engine="compiled"`` additionally probes whether the C backend
    can build/load here and raises with the guard reason when it cannot.

    Under ``engine="auto"``, the ``REPRO_KERNEL`` environment variable
    steers the preference: ``compiled`` prefers the compiled engine when
    its full fast path (scheme coverage, parameters, backend availability)
    applies — degrading silently to the normal auto choice otherwise —
    and ``scalar`` pins the reference engine.
    """
    info = info if info is not None else get_scheme(spec.scheme)
    if spec.engine == "scalar":
        return "scalar"
    if spec.engine == "vectorized":
        reason = vectorized_unsupported_reason(info, spec.policy, spec.params)
        if reason is not None:
            raise SchemeSpecError(reason)
        return "vectorized"
    if spec.engine == "compiled":
        reason = compiled_unsupported_reason(
            info, spec.policy, spec.params, probe_backend=True
        )
        if reason is not None:
            raise SchemeSpecError(reason)
        return "compiled"
    # auto
    preference = os.environ.get("REPRO_KERNEL", "").strip().lower()
    if preference == "scalar":
        return "scalar"
    if preference == "compiled":
        reason = compiled_fastpath_reason(
            info, spec.policy, spec.params, probe_backend=True
        )
        if reason is None:
            return "compiled"
    reason = vectorized_fastpath_reason(info, spec.policy, spec.params)
    return "scalar" if reason is not None else "vectorized"


def build_runner_kwargs(
    spec: SchemeSpec,
    info: SchemeInfo,
    seed: "int | None",
) -> Dict[str, object]:
    """Validate spec params against the runner signature and add randomness.

    Shared by every execution surface that turns a spec into a runner call:
    the batch engines here, and the streaming allocator
    (:class:`repro.online.OnlineAllocator`), whose stepper factories mirror
    the scalar runner signatures.
    """
    kwargs: Dict[str, object] = dict(spec.params)
    accepted = set(info.parameters)
    unknown = set(kwargs) - accepted
    if unknown:
        raise SchemeSpecError(
            f"scheme {info.name!r} does not accept parameter(s) "
            f"{sorted(unknown)}; accepted: {sorted(accepted)}"
        )
    reserved = {"seed", "rng", "policy"} & set(kwargs)
    if reserved:
        raise SchemeSpecError(
            f"pass {sorted(reserved)} through the SchemeSpec fields, "
            f"not through params"
        )
    missing = [
        name
        for name in info.required
        if name not in kwargs and name not in ("seed", "rng", "policy")
    ]
    if missing:
        raise SchemeSpecError(
            f"scheme {info.name!r} is missing required parameter(s) {missing}"
        )
    if spec.policy is not None:
        if not info.accepts_policy:
            raise SchemeSpecError(
                f"scheme {info.name!r} does not accept a policy "
                f"(got policy={spec.policy!r})"
            )
        kwargs["policy"] = spec.policy
    if spec.rng is not None:
        if not info.accepts_rng:
            raise SchemeSpecError(f"scheme {info.name!r} does not accept an rng")
        kwargs["rng"] = spec.rng
    elif "seed" in info.parameters:
        kwargs["seed"] = seed
    return kwargs


def _execute(spec: SchemeSpec, seed: "int | None") -> AllocationResult:
    info = get_scheme(spec.scheme)
    engine = resolve_engine(spec, info)
    if engine == "compiled":
        runner = info.compiled
    elif engine == "vectorized":
        runner = info.vectorized
    else:
        runner = info.runner
    kwargs = build_runner_kwargs(spec, info, seed)
    result = runner(**kwargs)
    if not isinstance(result, AllocationResult):
        raise TypeError(
            f"scheme {info.name!r} returned {type(result).__name__}, "
            f"expected AllocationResult"
        )
    return result


def simulate(spec: SchemeSpec) -> AllocationResult:
    """Execute one spec once and return its :class:`AllocationResult`.

    This is the canonical front door of the library; the historical
    ``run_*`` helpers remain as thin shims around the same implementations.

    Examples
    --------
    >>> from repro.api import SchemeSpec, simulate
    >>> result = simulate(SchemeSpec(scheme="kd_choice",
    ...                              params={"n_bins": 512, "k": 2, "d": 4},
    ...                              seed=0))
    >>> result.total_balls_check()
    True
    """
    return _execute(spec, spec.seed)


def simulate_trials(
    spec: SchemeSpec,
    trials: Optional[int] = None,
    seed_tree: Optional[SeedTree] = None,
    metrics: Optional[Mapping[str, MetricFunction]] = None,
    n_jobs: Optional[int] = None,
    cache: "ResultStore | str | PathLike[str] | None" = None,
) -> ExperimentOutcome:
    """Run one spec ``trials`` times with independent derived seeds.

    ``seed_tree`` defaults to a fresh tree rooted at ``spec.seed``; pass a
    shared tree to interleave several specs in one reproducible experiment
    (that is exactly what :func:`simulate_many` does).

    ``n_jobs`` selects the execution backend (``None``/1 serial, >= 2 a
    process pool, -1 one worker per CPU); ``cache`` (a
    :class:`~repro.api.cache.ResultStore` or a directory path) memoizes
    per-trial metrics on disk.  Every trial seed is derived from the tree
    before anything executes, so neither knob changes the results — cached
    and parallel runs are identical to the serial reference.
    """
    n_trials = spec.trials if trials is None else trials
    if n_trials < 1:
        raise SchemeSpecError(f"trials must be at least 1, got {n_trials}")
    if spec.rng is not None:
        # A bound generator would make every trial share one stream while the
        # recorded per-trial seeds claim otherwise; insist on seed-based specs
        # so the outcome's provenance is honest.
        raise SchemeSpecError(
            "specs with a bound rng cannot be fanned out over trials; "
            "use the seed field instead"
        )
    tree = seed_tree if seed_tree is not None else SeedTree(spec.seed)
    executor = resolve_executor(n_jobs)
    store = as_result_store(cache)
    # Pre-derive every seed up front: the derivation order (and therefore the
    # seed of trial i) must not depend on the backend or on cache hits.
    seeds = tree.integer_seeds(n_trials)

    # The scheme's default metric set (not the library default) names the
    # cache entries, so substrate trials cache their rich report metrics.
    metric_names = sorted(resolve_metric_set(spec, metrics))
    results: Dict[int, TrialOutcome] = {}
    pending: List[int] = []
    if store is not None:
        engine = resolve_engine(spec)
        for index, trial_seed in enumerate(seeds):
            hit = store.load(spec, trial_seed, engine, metric_names)
            if hit is not None:
                results[index] = hit
            else:
                pending.append(index)
    else:
        pending = list(range(n_trials))

    computed = executor.run(spec, [seeds[index] for index in pending], metrics)
    for index, trial in zip(pending, computed):
        results[index] = trial
        if store is not None:
            store.store(spec, seeds[index], engine, trial)

    outcome = ExperimentOutcome(label=spec.display_label)
    outcome.trials.extend(results[index] for index in range(n_trials))
    return outcome


def simulate_many(
    specs: Iterable[SchemeSpec],
    trials: Optional[int] = None,
    seed: "int | None" = 0,
    metrics: Optional[Mapping[str, MetricFunction]] = None,
    n_jobs: Optional[int] = None,
    cache: "ResultStore | str | PathLike[str] | None" = None,
) -> List[ExperimentOutcome]:
    """Execute a batch of specs, fanning each out over repeated trials.

    All trial seeds derive from one shared :class:`SeedTree` rooted at
    ``seed``, in spec order — rerunning the same batch with the same root
    seed reproduces every trial of every spec exactly.

    Parameters
    ----------
    specs:
        The specs to run, in order.
    trials:
        Override for every spec's own ``trials`` field.
    seed:
        Root seed of the shared tree.
    metrics:
        Metric functions applied to each result (default: max load, gap,
        messages).
    n_jobs:
        Trial-execution parallelism (see :func:`simulate_trials`); results
        are identical for every value.
    cache:
        Optional :class:`~repro.api.cache.ResultStore` (or directory path)
        shared by every spec in the batch.
    """
    tree = SeedTree(seed)
    store = as_result_store(cache)
    return [
        simulate_trials(
            spec,
            trials=trials,
            seed_tree=tree,
            metrics=metrics,
            n_jobs=n_jobs,
            cache=store,
        )
        for spec in specs
    ]
