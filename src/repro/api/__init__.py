"""repro.api — the unified, spec-driven front door of the library.

Instead of fourteen differently-shaped ``run_*`` helpers, every workload in
the repository (the paper's (k, d)-choice process, its serialized, weighted,
stale, dynamic and greedy variants, the classic baselines, the adaptive
comparators and the application substrates) is registered in one
:class:`~repro.api.registry.SchemeRegistry` and executed from one
declarative :class:`~repro.api.spec.SchemeSpec`:

>>> from repro.api import SchemeSpec, simulate, available_schemes
>>> "kd_choice" in available_schemes()
True
>>> spec = SchemeSpec(scheme="kd_choice",
...                   params={"n_bins": 1024, "k": 4, "d": 8},
...                   seed=7, engine="vectorized")
>>> simulate(spec).total_balls_check()
True

Key pieces
----------
:class:`SchemeSpec`
    Immutable description of one configuration: scheme name, parameters,
    policy, seed/rng, trial count, execution engine.
:func:`register_scheme` / :func:`available_schemes` / :func:`describe_scheme`
    The registry surface; new schemes self-register with a decorator.
:func:`simulate` / :func:`simulate_many`
    Execute one spec, or fan a batch of specs out over repeated trials with
    a shared :class:`~repro.simulation.rng.SeedTree`.
:data:`~repro.api.spec.ENGINES`
    ``"scalar"`` is the reference implementation; ``"vectorized"`` the
    argpartition-based batch engine (seed-for-seed identical, ~4x faster on
    the (k, d)-choice hot loop); ``"auto"`` picks for you.
:mod:`~repro.api.executor` / :mod:`~repro.api.cache`
    The execution layer: ``simulate_trials(..., n_jobs=4)`` fans trials out
    over a process pool (byte-identical to serial — seeds are pre-derived),
    and ``cache=ResultStore(dir)`` memoizes per-trial metrics on disk so
    repeated sweeps skip recomputation.
"""

from .cache import ResultStore
from .engine import (
    build_runner_kwargs,
    resolve_engine,
    simulate,
    simulate_many,
    simulate_trials,
)
from .executor import (
    ProcessExecutor,
    SerialExecutor,
    resolve_executor,
    resolve_metric_set,
    resolve_n_jobs,
    run_trial,
)
from .lint import lint_registry
from .registry import (
    REGISTRY,
    SchemeInfo,
    SchemeRegistry,
    available_schemes,
    compiled_fastpath_reason,
    compiled_unsupported_reason,
    describe_scheme,
    get_scheme,
    online_unsupported_reason,
    register_scheme,
    registry_dump,
    vectorized_fastpath_reason,
    vectorized_unsupported_reason,
)
from .spec import ENGINES, SchemeSpec, SchemeSpecError
from . import schemes as _schemes  # noqa: F401  (imported for registration side effect)

__all__ = [
    "ENGINES",
    "REGISTRY",
    "ProcessExecutor",
    "ResultStore",
    "SchemeInfo",
    "SchemeRegistry",
    "SchemeSpec",
    "SchemeSpecError",
    "SerialExecutor",
    "available_schemes",
    "build_runner_kwargs",
    "compiled_fastpath_reason",
    "compiled_unsupported_reason",
    "describe_scheme",
    "get_scheme",
    "lint_registry",
    "online_unsupported_reason",
    "register_scheme",
    "registry_dump",
    "resolve_engine",
    "vectorized_fastpath_reason",
    "vectorized_unsupported_reason",
    "resolve_executor",
    "resolve_metric_set",
    "resolve_n_jobs",
    "run_trial",
    "simulate",
    "simulate_many",
    "simulate_trials",
]
