"""Declarative simulation specs: one dataclass describes any workload.

A :class:`SchemeSpec` is the unit of work of the unified API: it names a
registered scheme, carries its parameters, and fixes the policy, randomness,
trial count and execution engine.  Specs are immutable and hashable-free
plain data, so sweeps, experiment recipes, CLIs and distributed front ends
can build, store and ship them without touching any process class.

Examples
--------
>>> from repro.api import SchemeSpec, simulate
>>> spec = SchemeSpec(scheme="kd_choice",
...                   params={"n_bins": 1024, "k": 4, "d": 8}, seed=7)
>>> simulate(spec).total_balls_check()
True
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from types import MappingProxyType
from typing import Any, Dict, Mapping, Optional

import numpy as np

__all__ = ["ENGINES", "SchemeSpecError", "SchemeSpec"]

#: Recognized execution engines.  "auto" lets the engine pick the fastest
#: implementation that is exactly equivalent to the scalar reference;
#: "scalar" forces the reference implementation; "vectorized" forces the
#: batch engine (and errors on schemes that do not provide one);
#: "compiled" forces the C-backend engine (and errors on schemes without
#: one, or when the backend cannot build in this environment).
ENGINES = ("auto", "scalar", "vectorized", "compiled")


class SchemeSpecError(ValueError):
    """Raised when a spec is malformed or incompatible with its scheme."""


@dataclass(frozen=True)
class SchemeSpec:
    """Declarative description of one simulation configuration.

    Attributes
    ----------
    scheme:
        Name of a registered scheme (see
        :func:`repro.api.available_schemes`).
    params:
        Keyword parameters forwarded to the scheme runner (problem size,
        ``k``/``d``, scheme-specific knobs...).  Validated against the
        runner's signature at execution time.
    policy:
        Allocation policy name, for schemes that accept one ("strict",
        "greedy").  ``None`` keeps the scheme's default.
    seed:
        Root integer seed for the run; ``None`` means nondeterministic.
    rng:
        Alternatively an existing generator (takes precedence over ``seed``;
        excluded from equality comparisons).
    trials:
        Number of independent trials when the spec is executed through
        :func:`repro.api.simulate_many`.
    engine:
        One of :data:`ENGINES`.
    label:
        Optional display label for result tables; defaults to an
        auto-generated one.
    """

    scheme: str
    params: Mapping[str, Any] = field(default_factory=dict)
    policy: Optional[str] = None
    seed: "int | np.random.SeedSequence | None" = None
    rng: Optional[np.random.Generator] = field(default=None, compare=False)
    trials: int = 1
    engine: str = "auto"
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.scheme, str) or not self.scheme:
            raise SchemeSpecError(
                f"scheme must be a non-empty string, got {self.scheme!r}"
            )
        if not isinstance(self.params, Mapping):
            raise SchemeSpecError(
                f"params must be a mapping of keyword arguments, "
                f"got {type(self.params).__name__}"
            )
        for key in self.params:
            if not isinstance(key, str):
                raise SchemeSpecError(f"parameter names must be strings, got {key!r}")
        # Freeze the mapping so a spec cannot drift after construction.
        object.__setattr__(self, "params", MappingProxyType(dict(self.params)))
        if self.policy is not None and not isinstance(self.policy, str):
            raise SchemeSpecError(f"policy must be a string or None, got {self.policy!r}")
        if not isinstance(self.trials, int) or isinstance(self.trials, bool):
            raise SchemeSpecError(f"trials must be an integer, got {self.trials!r}")
        if self.trials < 1:
            raise SchemeSpecError(f"trials must be at least 1, got {self.trials}")
        if self.engine not in ENGINES:
            raise SchemeSpecError(
                f"engine must be one of {ENGINES}, got {self.engine!r}"
            )
        if self.rng is not None and not isinstance(self.rng, np.random.Generator):
            raise SchemeSpecError(
                f"rng must be a numpy Generator or None, got {type(self.rng).__name__}"
            )
        if self.engine == "vectorized":
            # Engine/scheme compatibility is known statically, so surface it
            # at construction rather than at run time.  Unknown scheme names
            # are left for execution (where they raise with the full
            # candidate list); the registry import is deferred because
            # repro.api.registry builds on this module.
            from .registry import REGISTRY, get_scheme, vectorized_unsupported_reason

            if self.scheme in REGISTRY:
                reason = vectorized_unsupported_reason(
                    get_scheme(self.scheme), self.policy, self.params
                )
                if reason is not None:
                    raise SchemeSpecError(reason)
        if self.engine == "compiled":
            # Same static check for the compiled engine, minus the backend
            # probe (probe_backend=False): a spec's validity is a structural
            # property — whether the C backend builds on *this* machine is a
            # run-time question answered by resolve_engine.
            from .registry import REGISTRY, compiled_unsupported_reason, get_scheme

            if self.scheme in REGISTRY:
                reason = compiled_unsupported_reason(
                    get_scheme(self.scheme),
                    self.policy,
                    self.params,
                    probe_backend=False,
                )
                if reason is not None:
                    raise SchemeSpecError(reason)

    def __hash__(self) -> int:
        # The generated frozen-dataclass hash would choke on the params
        # mapping (and on unhashable parameter values such as weight arrays);
        # hash a normalized tuple so specs can key caches and sets.
        def hashable(value: Any) -> Any:
            try:
                hash(value)
            except TypeError:
                return repr(value)
            return value

        params_key = tuple(
            (name, hashable(value)) for name, value in sorted(self.params.items())
        )
        return hash(
            (
                self.scheme,
                params_key,
                self.policy,
                hashable(self.seed),
                self.trials,
                self.engine,
                self.label,
            )
        )

    # ------------------------------------------------------------------
    # Pickling (process-pool fan-out)
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        # The frozen params mapping is a MappingProxyType, which pickle
        # rejects; ship a plain dict and re-freeze on the other side.
        state = dict(self.__dict__)
        state["params"] = dict(state["params"])
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        for key, value in state.items():
            if key == "params":
                value = MappingProxyType(dict(value))
            object.__setattr__(self, key, value)

    # ------------------------------------------------------------------
    # Content addressing
    # ------------------------------------------------------------------
    def cache_key(self) -> str:
        """Content hash of the *work* this spec describes.

        Two specs share a key exactly when they run the same scheme with the
        same parameters and policy — the fields that determine an execution's
        output given a trial seed.  ``seed``, ``trials``, ``label`` and
        ``engine`` are deliberately excluded: trial count and label are
        presentation, while the seed and the *resolved* engine are keyed
        separately by :meth:`~repro.api.cache.ResultStore.entry_key` (so
        ``engine="auto"`` shares entries with the engine it resolves to).
        Scheme aliases resolve to the canonical name, so ``"kd"`` and
        ``"kd_choice"`` address the same entries.
        """

        def canonical(value: Any) -> Any:
            if value is None or isinstance(value, (str, int, float, bool)):
                return value
            if isinstance(value, np.ndarray):
                digest = hashlib.sha256(np.ascontiguousarray(value).tobytes())
                return ["__ndarray__", list(value.shape), value.dtype.str,
                        digest.hexdigest()]
            if isinstance(value, Mapping):
                return {str(k): canonical(v) for k, v in sorted(value.items())}
            if isinstance(value, (list, tuple)):
                return [canonical(v) for v in value]
            return repr(value)

        scheme = self.scheme
        try:  # resolve aliases to the canonical scheme name
            from .registry import get_scheme

            scheme = get_scheme(self.scheme).name
        except KeyError:
            pass
        payload = json.dumps(
            {
                "scheme": scheme,
                "params": canonical(self.params),
                "policy": self.policy,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # Derived views and functional updates
    # ------------------------------------------------------------------
    @property
    def display_label(self) -> str:
        """The spec's label, auto-generated from scheme and params if unset."""
        if self.label is not None:
            return self.label
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.scheme}({rendered})" if rendered else self.scheme

    def with_seed(self, seed: "int | np.random.SeedSequence | None") -> "SchemeSpec":
        """A copy of this spec with a different seed (and no bound rng)."""
        return replace(self, seed=seed, rng=None, params=dict(self.params))

    def with_params(self, **updates: Any) -> "SchemeSpec":
        """A copy of this spec with parameters merged over the existing ones."""
        merged: Dict[str, Any] = dict(self.params)
        merged.update(updates)
        return replace(self, params=merged)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (for JSON logs and provenance records)."""
        return {
            "scheme": self.scheme,
            "params": dict(self.params),
            "policy": self.policy,
            "seed": self.seed if isinstance(self.seed, (int, type(None))) else repr(self.seed),
            "trials": self.trials,
            "engine": self.engine,
            "label": self.label,
        }
