"""Registrations: every workload in the repository as a named scheme.

Importing this module (which :mod:`repro.api` does eagerly) populates the
:data:`~repro.api.registry.REGISTRY` with

* the paper's (k, d)-choice process and its serialized, weighted, stale and
  dynamic variants,
* the classic baselines (single choice, Greedy[d], (1+β)-choice,
  Always-Go-Left, batched random) and the adaptive comparators,
* application substrates (cluster scheduling, distributed storage) adapted
  to return the common :class:`~repro.core.types.AllocationResult`.

Every runner takes keyword parameters plus ``seed``/``rng`` and returns an
``AllocationResult``, so one :class:`~repro.api.spec.SchemeSpec` shape
describes all of them.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.adaptive import run_threshold_adaptive, run_two_phase_adaptive
from ..core.baselines import (
    run_always_go_left,
    run_batch_random,
    run_d_choice,
    run_one_plus_beta,
    run_single_choice,
)
from ..core.dynamic import allocation_from_churn, run_churn_kd_choice
from ..core.kernels import KERNELS
from ..core.process import run_kd_choice
from ..core.serialization import run_serialized_kd_choice
from ..core.stale import run_stale_kd_choice
from ..core.types import AllocationResult
from ..core.weighted import run_weighted_kd_choice
from ..topology.schemes import run_hierarchical_go_left, run_locality_two_choice
from .registry import register_scheme

__all__: list = []


# ----------------------------------------------------------------------
# The paper's process family
# ----------------------------------------------------------------------
# Every ball-stream scheme passes kernel=KERNELS[name]: its vectorized
# engine, online stepper and engine guards are derived from that single
# registration in repro.core.kernels.table (the parity lint
# ``repro schemes --check`` keeps the two tables in sync).  Only the
# substrate simulators at the bottom of this module wire their engines
# explicitly.
register_scheme(
    "kd_choice",
    summary="The paper's (k, d)-choice process (k balls per round, d probes).",
    aliases=("kd",),
    tags=("paper", "process"),
    kernel=KERNELS["kd_choice"],
)(run_kd_choice)

register_scheme(
    "serialized_kd_choice",
    summary="Ball-at-a-time serialization A_sigma of (k, d)-choice (Definition 1).",
    tags=("paper", "process"),
    kernel=KERNELS["serialized_kd_choice"],
)(run_serialized_kd_choice)

register_scheme(
    "weighted_kd_choice",
    summary="(k, d)-choice with weighted balls (constant/exponential/Pareto).",
    tags=("extension", "process"),
    kernel=KERNELS["weighted_kd_choice"],
)(run_weighted_kd_choice)

register_scheme(
    "stale_kd_choice",
    summary="(k, d)-choice probing stale load snapshots (parallel epochs).",
    tags=("extension", "process"),
    kernel=KERNELS["stale_kd_choice"],
)(run_stale_kd_choice)


@register_scheme(
    "greedy_kd_choice",
    summary="(k, d)-choice with the Section 7 greedy (uncapped) policy.",
    tags=("extension", "process"),
    kernel=KERNELS["greedy_kd_choice"],
)
def _run_greedy_kd_choice(
    n_bins: int,
    k: int,
    d: int,
    n_balls: Optional[int] = None,
    seed: "int | np.random.SeedSequence | None" = None,
    rng: Optional[np.random.Generator] = None,
) -> AllocationResult:
    """(k, d)-choice under the greedy water-filling relaxation."""
    return run_kd_choice(
        n_bins=n_bins, k=k, d=d, n_balls=n_balls, policy="greedy", seed=seed, rng=rng
    )


@register_scheme(
    "churn_kd_choice",
    summary="Dynamic insert/delete (k, d)-choice; loads are the steady state.",
    tags=("extension", "process"),
    kernel=KERNELS["churn_kd_choice"],
)
def _run_churn_kd_choice(
    n_bins: int,
    k: int,
    d: int,
    rounds: int,
    departures_per_round: Optional[int] = None,
    policy: str = "strict",
    seed: "int | np.random.SeedSequence | None" = None,
    rng: Optional[np.random.Generator] = None,
) -> AllocationResult:
    """Run the churn process and report its final configuration.

    The full :class:`~repro.core.dynamic.ChurnResult` (snapshots, steady-state
    statistics) rides along in ``extra["churn_result"]``.
    """
    churn = run_churn_kd_choice(
        n_bins=n_bins,
        k=k,
        d=d,
        rounds=rounds,
        departures_per_round=departures_per_round,
        policy=policy,
        seed=seed,
        rng=rng,
    )
    return allocation_from_churn(churn, n_bins, k, d, policy)


# ----------------------------------------------------------------------
# Classic baselines and adaptive comparators
# ----------------------------------------------------------------------
# Single choice (and its batched twin) is one bincount in the scalar path
# already: the scalar runner doubles as its own vectorized engine, so
# engine="vectorized" is accepted and trivially scalar-identical.
register_scheme(
    "single_choice",
    summary="Classic single-choice: every ball to one uniform bin.",
    aliases=("one_choice",),
    tags=("baseline",),
    kernel=KERNELS["single_choice"],
)(run_single_choice)

register_scheme(
    "d_choice",
    summary="Azar et al.'s Greedy[d]: d probes, join the least loaded.",
    aliases=("greedy_d",),
    tags=("baseline",),
    kernel=KERNELS["d_choice"],
)(run_d_choice)


@register_scheme(
    "two_choice",
    summary="Greedy[2], the classic two-choice process.",
    tags=("baseline",),
    kernel=KERNELS["two_choice"],
)
def _run_two_choice(
    n_bins: int,
    n_balls: Optional[int] = None,
    seed: "int | np.random.SeedSequence | None" = None,
    rng: Optional[np.random.Generator] = None,
    capacities: Optional[np.ndarray] = None,
) -> AllocationResult:
    """Two-choice (Greedy[2]) via the d-choice baseline."""
    return run_d_choice(
        n_bins=n_bins, d=2, n_balls=n_balls, seed=seed, rng=rng,
        capacities=capacities,
    )


register_scheme(
    "one_plus_beta",
    summary="Peres-Talwar-Wieder (1+beta)-choice mixture process.",
    tags=("baseline",),
    kernel=KERNELS["one_plus_beta"],
)(run_one_plus_beta)

register_scheme(
    "always_go_left",
    summary="Voecking's asymmetric Always-Go-Left d-choice scheme.",
    tags=("baseline",),
    kernel=KERNELS["always_go_left"],
)(run_always_go_left)

register_scheme(
    "batch_random",
    summary="SA(k, k): k balls per round, each to a uniform bin.",
    tags=("baseline",),
    kernel=KERNELS["batch_random"],
)(run_batch_random)

register_scheme(
    "threshold_adaptive",
    summary="Czumaj-Stemann adaptive threshold probing.",
    tags=("adaptive",),
    kernel=KERNELS["threshold_adaptive"],
)(run_threshold_adaptive)

register_scheme(
    "two_phase_adaptive",
    summary="Simplified Lenzen-Wattenhofer two-phase adaptive scheme.",
    tags=("adaptive",),
    kernel=KERNELS["two_phase_adaptive"],
)(run_two_phase_adaptive)


# ----------------------------------------------------------------------
# Topology-aware variants (rack/zone hierarchies, repro.topology)
# ----------------------------------------------------------------------
register_scheme(
    "hierarchical_always_go_left",
    summary="Always-Go-Left over a topology's racks (go-left per level).",
    aliases=("hgl",),
    tags=("extension", "topology"),
    kernel=KERNELS["hierarchical_always_go_left"],
)(run_hierarchical_go_left)

register_scheme(
    "locality_two_choice",
    summary="Greedy[d] with zone-biased probes and threshold cross-zone spill.",
    aliases=("l2c",),
    tags=("extension", "topology"),
    kernel=KERNELS["locality_two_choice"],
)(run_locality_two_choice)


# ----------------------------------------------------------------------
# Application substrates (Section 1.3), adapted to AllocationResult
# ----------------------------------------------------------------------
# Substrate metric sets: module-level report-backed functions, so trials
# pickle across process pools and their float values cache losslessly.
def _report_of(result: AllocationResult):
    return result.extra["report"]


def _metric_max_load(result: AllocationResult) -> float:
    return float(result.max_load)


def _metric_gap(result: AllocationResult) -> float:
    return float(result.gap)


def _metric_messages(result: AllocationResult) -> float:
    return float(result.messages)


def _metric_mean_response(result: AllocationResult) -> float:
    return float(_report_of(result).mean_response)


def _metric_p95_response(result: AllocationResult) -> float:
    return float(_report_of(result).p95_response)


def _metric_p99_response(result: AllocationResult) -> float:
    return float(_report_of(result).p99_response)


def _metric_mean_task_wait(result: AllocationResult) -> float:
    return float(_report_of(result).mean_task_wait)


def _metric_utilization(result: AllocationResult) -> float:
    return float(_report_of(result).mean_utilization)


def _metric_messages_per_task(result: AllocationResult) -> float:
    return float(_report_of(result).messages_per_task)


CLUSTER_METRICS = {
    "max_load": _metric_max_load,
    "gap": _metric_gap,
    "messages": _metric_messages,
    "mean_response": _metric_mean_response,
    "p95_response": _metric_p95_response,
    "p99_response": _metric_p99_response,
    "mean_task_wait": _metric_mean_task_wait,
    "utilization": _metric_utilization,
    "messages_per_task": _metric_messages_per_task,
}


def _metric_load_stddev(result: AllocationResult) -> float:
    return float(_report_of(result).load_stddev)


def _metric_messages_per_file(result: AllocationResult) -> float:
    return float(_report_of(result).messages_per_file)


def _metric_mean_lookup_cost(result: AllocationResult) -> float:
    return float(_report_of(result).mean_lookup_cost)


def _metric_max_bytes(result: AllocationResult) -> float:
    return float(_report_of(result).max_bytes)


def _metric_availability(result: AllocationResult) -> float:
    return float(result.extra.get("availability", 1.0))


STORAGE_METRICS = {
    "max_load": _metric_max_load,
    "gap": _metric_gap,
    "messages": _metric_messages,
    "load_stddev": _metric_load_stddev,
    "messages_per_file": _metric_messages_per_file,
    "mean_lookup_cost": _metric_mean_lookup_cost,
    "max_bytes": _metric_max_bytes,
    "availability": _metric_availability,
}


def _cluster_allocation_result(
    report, loads: np.ndarray, n_workers: int, n_jobs: int,
    tasks_per_job: int, probe_ratio: float,
) -> AllocationResult:
    return AllocationResult(
        loads=loads,
        scheme=f"cluster-batch-sampling[ratio={probe_ratio:g}]",
        n_bins=n_workers,
        n_balls=int(loads.sum()),
        k=tasks_per_job,
        d=int(np.ceil(probe_ratio * tasks_per_job)),
        messages=report.messages,
        rounds=n_jobs,
        policy="strict",
        extra={"report": report},
    )


def _cluster_speeds(n_workers: int, speed_spread: float, seed: "int | None"):
    from ..simulation.workloads import worker_speeds

    if speed_spread == 0.0:
        return None
    return worker_speeds(
        n_workers, spread=speed_spread, seed=None if seed is None else seed + 2
    )


def _run_cluster_scheduling_fast(
    n_workers: int,
    n_jobs: int = 200,
    tasks_per_job: int = 4,
    probe_ratio: float = 2.0,
    arrival_rate: float = 8.0,
    mean_task_duration: float = 1.0,
    duration_distribution: str = "exponential",
    duration_shape: float = 2.5,
    arrival_process: str = "poisson",
    burstiness: float = 4.0,
    switch_prob: float = 0.1,
    speed_spread: float = 0.0,
    seed: "int | None" = None,
) -> AllocationResult:
    """Fast-event-core engine of ``cluster_scheduling`` (seed-identical)."""
    from ..cluster.schedulers import BatchSamplingScheduler
    from ..cluster.simulator import simulate_cluster_fast
    from ..simulation.workloads import job_trace_arrays

    trace = job_trace_arrays(
        n_jobs=n_jobs,
        arrival_rate=arrival_rate,
        tasks_per_job=tasks_per_job,
        mean_task_duration=mean_task_duration,
        duration_distribution=duration_distribution,
        duration_shape=duration_shape,
        arrival_process=arrival_process,
        burstiness=burstiness,
        switch_prob=switch_prob,
        seed=seed,
    )
    loads = np.zeros(n_workers, dtype=np.int64)
    report = simulate_cluster_fast(
        n_workers=n_workers,
        scheduler=BatchSamplingScheduler(probe_ratio=probe_ratio),
        trace=trace,
        seed=None if seed is None else seed + 1,
        speeds=_cluster_speeds(n_workers, speed_spread, seed),
        placement_counts=loads,
    )
    return _cluster_allocation_result(
        report, loads, n_workers, n_jobs, tasks_per_job, probe_ratio
    )


@register_scheme(
    "cluster_scheduling",
    summary="Sparrow-style cluster: batch (k, d)-choice task placement.",
    tags=("application",),
    vectorized=_run_cluster_scheduling_fast,
    metrics=CLUSTER_METRICS,
)
def _run_cluster_scheduling(
    n_workers: int,
    n_jobs: int = 200,
    tasks_per_job: int = 4,
    probe_ratio: float = 2.0,
    arrival_rate: float = 8.0,
    mean_task_duration: float = 1.0,
    duration_distribution: str = "exponential",
    duration_shape: float = 2.5,
    arrival_process: str = "poisson",
    burstiness: float = 4.0,
    switch_prob: float = 0.1,
    speed_spread: float = 0.0,
    seed: "int | None" = None,
) -> AllocationResult:
    """Run the batch-sampling scheduler; loads are tasks per worker.

    The scenario library rides in through the trace parameters:
    ``duration_distribution`` ("exponential", "uniform", "constant",
    heavy-tailed "pareto"/"lognormal"), ``arrival_process``
    ("poisson"/"mmpp" bursty arrivals) and ``speed_spread`` (worker
    heterogeneity).  The detailed
    :class:`~repro.cluster.metrics.ClusterReport` (response-time
    percentiles, utilization) is attached as ``extra["report"]`` and backs
    the scheme's default metric set.
    """
    from ..cluster.schedulers import BatchSamplingScheduler
    from ..cluster.simulator import ClusterSimulator
    from ..simulation.workloads import poisson_job_trace

    trace = poisson_job_trace(
        n_jobs=n_jobs,
        arrival_rate=arrival_rate,
        tasks_per_job=tasks_per_job,
        mean_task_duration=mean_task_duration,
        duration_distribution=duration_distribution,
        duration_shape=duration_shape,
        arrival_process=arrival_process,
        burstiness=burstiness,
        switch_prob=switch_prob,
        seed=seed,
    )
    simulator = ClusterSimulator(
        n_workers=n_workers,
        scheduler=BatchSamplingScheduler(probe_ratio=probe_ratio),
        seed=None if seed is None else seed + 1,
        speeds=_cluster_speeds(n_workers, speed_spread, seed),
    )
    report = simulator.run(trace)
    loads = np.asarray(
        [worker.tasks_completed for worker in simulator.workers], dtype=np.int64
    )
    return _cluster_allocation_result(
        report, loads, n_workers, n_jobs, tasks_per_job, probe_ratio
    )


def _storage_allocation_result(
    report, loads: np.ndarray, n_servers: int, n_files: int,
    replicas: int, extra_probes: int, messages: int, extra: dict,
) -> AllocationResult:
    return AllocationResult(
        loads=loads,
        scheme=f"storage-(k,k+{extra_probes})-choice",
        n_bins=n_servers,
        n_balls=int(loads.sum()),
        k=replicas,
        d=replicas + extra_probes,
        messages=messages,
        rounds=n_files,
        policy="strict",
        extra=extra,
    )


def _storage_placement_guard(params) -> Optional[str]:
    """Failure/rebuild scenarios mutate server liveness mid-run."""
    if params.get("fail_fraction", 0.0):
        return (
            "the fast storage core places populations on an all-alive "
            "cluster; failure/rebuild scenarios (fail_fraction > 0) run on "
            "the reference StorageSystem"
        )
    return None


def _run_storage_placement_fast(
    n_servers: int,
    n_files: int = 1024,
    replicas: int = 3,
    extra_probes: int = 1,
    mode: str = "replication",
    size_distribution: str = "constant",
    mean_size: float = 1.0,
    popularity_exponent: float = 0.0,
    fail_fraction: float = 0.0,
    rebuild: bool = False,
    seed: "int | None" = None,
) -> AllocationResult:
    """Fast storage-core engine of ``storage_placement`` (seed-identical)."""
    from ..storage.placement import KDChoicePlacement
    from ..storage.system import simulate_storage_fast
    from ..simulation.workloads import file_sizes

    if fail_fraction:
        raise ValueError(_storage_placement_guard({"fail_fraction": fail_fraction}))
    sizes = file_sizes(
        n_files, size_distribution=size_distribution, mean_size=mean_size,
        seed=seed,
    )
    loads, report = simulate_storage_fast(
        n_servers=n_servers,
        sizes=sizes,
        replicas=replicas,
        placement=KDChoicePlacement(extra_probes=extra_probes),
        mode=mode,
        seed=None if seed is None else seed + 1,
    )
    return _storage_allocation_result(
        report, loads, n_servers, n_files, replicas, extra_probes,
        report.placement_messages, {"report": report},
    )


@register_scheme(
    "storage_placement",
    summary="Distributed storage: (k, k+1)-choice replica placement.",
    tags=("application",),
    vectorized=_run_storage_placement_fast,
    vectorized_guard=_storage_placement_guard,
    metrics=STORAGE_METRICS,
)
def _run_storage_placement(
    n_servers: int,
    n_files: int = 1024,
    replicas: int = 3,
    extra_probes: int = 1,
    mode: str = "replication",
    size_distribution: str = "constant",
    mean_size: float = 1.0,
    popularity_exponent: float = 0.0,
    fail_fraction: float = 0.0,
    rebuild: bool = False,
    seed: "int | None" = None,
) -> AllocationResult:
    """Place a file population; loads are replicas per server.

    ``size_distribution``/``popularity_exponent`` select skewed populations;
    ``fail_fraction`` fails that fraction of servers after placement and
    measures availability, and ``rebuild`` re-replicates the lost copies
    through the same placement policy (both run on the reference
    :class:`~repro.storage.system.StorageSystem`).  The
    :class:`~repro.storage.system.StorageReport` rides along in
    ``extra["report"]`` and backs the scheme's default metric set.
    """
    from ..storage.placement import KDChoicePlacement
    from ..storage.system import StorageSystem
    from ..storage.failures import availability, fail_random_servers, re_replicate
    from ..simulation.workloads import file_population

    population = file_population(
        n_files=n_files, replicas=replicas,
        size_distribution=size_distribution, mean_size=mean_size,
        popularity_exponent=popularity_exponent, seed=seed,
    )
    system = StorageSystem(
        n_servers=n_servers,
        placement=KDChoicePlacement(extra_probes=extra_probes),
        mode=mode,
        seed=None if seed is None else seed + 1,
    )
    system.store_population(population)
    extra: dict = {}
    if fail_fraction:
        if not 0.0 < fail_fraction < 1.0:
            raise ValueError(
                f"fail_fraction must be in (0, 1), got {fail_fraction}"
            )
        failed = fail_random_servers(
            system, count=int(fail_fraction * n_servers), rng=system.rng
        )
        failure_report = availability(system)
        extra["availability_report"] = failure_report
        extra["availability"] = failure_report.availability
        extra["failed_servers"] = failed
        if rebuild:
            extra["repaired_replicas"] = re_replicate(system)
    report = system.report()
    extra["report"] = report
    loads = np.asarray(system.load_vector(), dtype=np.int64)
    return _storage_allocation_result(
        report, loads, n_servers, n_files, replicas, extra_probes,
        system.placement_messages, extra,
    )
