"""Registrations: every workload in the repository as a named scheme.

Importing this module (which :mod:`repro.api` does eagerly) populates the
:data:`~repro.api.registry.REGISTRY` with

* the paper's (k, d)-choice process and its serialized, weighted, stale and
  dynamic variants,
* the classic baselines (single choice, Greedy[d], (1+β)-choice,
  Always-Go-Left, batched random) and the adaptive comparators,
* application substrates (cluster scheduling, distributed storage) adapted
  to return the common :class:`~repro.core.types.AllocationResult`.

Every runner takes keyword parameters plus ``seed``/``rng`` and returns an
``AllocationResult``, so one :class:`~repro.api.spec.SchemeSpec` shape
describes all of them.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.adaptive import run_threshold_adaptive, run_two_phase_adaptive
from ..core.baselines import (
    run_always_go_left,
    run_batch_random,
    run_d_choice,
    run_one_plus_beta,
    run_single_choice,
)
from ..core.dynamic import run_churn_kd_choice
from ..core.process import run_kd_choice
from ..core.serialization import run_serialized_kd_choice
from ..core.stale import run_stale_kd_choice
from ..core.types import AllocationResult
from ..core.vectorized import (
    CALLABLE_THRESHOLD_REASON,
    run_always_go_left_vectorized,
    run_churn_kd_choice_vectorized,
    run_d_choice_vectorized,
    run_kd_choice_vectorized,
    run_one_plus_beta_vectorized,
    run_stale_kd_choice_vectorized,
    run_threshold_adaptive_vectorized,
    run_two_phase_adaptive_vectorized,
    run_weighted_kd_choice_vectorized,
)
from ..core.weighted import run_weighted_kd_choice
from .registry import register_scheme

__all__: list = []


# ----------------------------------------------------------------------
# The paper's process family
# ----------------------------------------------------------------------
register_scheme(
    "kd_choice",
    summary="The paper's (k, d)-choice process (k balls per round, d probes).",
    aliases=("kd",),
    tags=("paper", "process"),
    vectorized=run_kd_choice_vectorized,
)(run_kd_choice)

register_scheme(
    "serialized_kd_choice",
    summary="Ball-at-a-time serialization A_sigma of (k, d)-choice (Definition 1).",
    tags=("paper", "process"),
)(run_serialized_kd_choice)

register_scheme(
    "weighted_kd_choice",
    summary="(k, d)-choice with weighted balls (constant/exponential/Pareto).",
    tags=("extension", "process"),
    vectorized=run_weighted_kd_choice_vectorized,
)(run_weighted_kd_choice)

register_scheme(
    "stale_kd_choice",
    summary="(k, d)-choice probing stale load snapshots (parallel epochs).",
    tags=("extension", "process"),
    vectorized=run_stale_kd_choice_vectorized,
)(run_stale_kd_choice)


@register_scheme(
    "greedy_kd_choice",
    summary="(k, d)-choice with the Section 7 greedy (uncapped) policy.",
    tags=("extension", "process"),
)
def _run_greedy_kd_choice(
    n_bins: int,
    k: int,
    d: int,
    n_balls: Optional[int] = None,
    seed: "int | np.random.SeedSequence | None" = None,
    rng: Optional[np.random.Generator] = None,
) -> AllocationResult:
    """(k, d)-choice under the greedy water-filling relaxation."""
    return run_kd_choice(
        n_bins=n_bins, k=k, d=d, n_balls=n_balls, policy="greedy", seed=seed, rng=rng
    )


def _churn_allocation_result(churn, n_bins, k, d, policy) -> AllocationResult:
    """Adapt a :class:`~repro.core.dynamic.ChurnResult` to the common shape."""
    return AllocationResult(
        loads=churn.final_loads,
        scheme=f"churn-({k},{d})-choice",
        n_bins=n_bins,
        n_balls=int(churn.final_loads.sum()),
        k=k,
        d=d,
        messages=churn.messages,
        rounds=churn.rounds,
        policy="strict" if policy == "strict" else str(policy),
        extra={
            "churn_result": churn,
            "steady_state_gap": churn.steady_state_gap(),
            "departures_per_round": churn.departures_per_round,
        },
    )


def _run_churn_kd_choice_vectorized(
    n_bins: int,
    k: int,
    d: int,
    rounds: int,
    departures_per_round: Optional[int] = None,
    policy: str = "strict",
    seed: "int | np.random.SeedSequence | None" = None,
    rng: Optional[np.random.Generator] = None,
) -> AllocationResult:
    """Vectorized counterpart of the ``churn_kd_choice`` runner."""
    churn = run_churn_kd_choice_vectorized(
        n_bins=n_bins,
        k=k,
        d=d,
        rounds=rounds,
        departures_per_round=departures_per_round,
        policy=policy,
        seed=seed,
        rng=rng,
    )
    return _churn_allocation_result(churn, n_bins, k, d, policy)


@register_scheme(
    "churn_kd_choice",
    summary="Dynamic insert/delete (k, d)-choice; loads are the steady state.",
    tags=("extension", "process"),
    vectorized=_run_churn_kd_choice_vectorized,
)
def _run_churn_kd_choice(
    n_bins: int,
    k: int,
    d: int,
    rounds: int,
    departures_per_round: Optional[int] = None,
    policy: str = "strict",
    seed: "int | np.random.SeedSequence | None" = None,
    rng: Optional[np.random.Generator] = None,
) -> AllocationResult:
    """Run the churn process and report its final configuration.

    The full :class:`~repro.core.dynamic.ChurnResult` (snapshots, steady-state
    statistics) rides along in ``extra["churn_result"]``.
    """
    churn = run_churn_kd_choice(
        n_bins=n_bins,
        k=k,
        d=d,
        rounds=rounds,
        departures_per_round=departures_per_round,
        policy=policy,
        seed=seed,
        rng=rng,
    )
    return _churn_allocation_result(churn, n_bins, k, d, policy)


# ----------------------------------------------------------------------
# Classic baselines and adaptive comparators
# ----------------------------------------------------------------------
# Single choice (and its batched twin) is one bincount in the scalar path
# already: the scalar runner doubles as its own vectorized engine, so
# engine="vectorized" is accepted and trivially scalar-identical.
register_scheme(
    "single_choice",
    summary="Classic single-choice: every ball to one uniform bin.",
    aliases=("one_choice",),
    tags=("baseline",),
    vectorized=run_single_choice,
)(run_single_choice)

register_scheme(
    "d_choice",
    summary="Azar et al.'s Greedy[d]: d probes, join the least loaded.",
    aliases=("greedy_d",),
    tags=("baseline",),
    vectorized=run_d_choice_vectorized,
)(run_d_choice)


def _run_two_choice_vectorized(
    n_bins: int,
    n_balls: Optional[int] = None,
    seed: "int | np.random.SeedSequence | None" = None,
    rng: Optional[np.random.Generator] = None,
) -> AllocationResult:
    """Vectorized two-choice via the d-choice batch engine."""
    return run_d_choice_vectorized(
        n_bins=n_bins, d=2, n_balls=n_balls, seed=seed, rng=rng
    )


@register_scheme(
    "two_choice",
    summary="Greedy[2], the classic two-choice process.",
    tags=("baseline",),
    vectorized=_run_two_choice_vectorized,
)
def _run_two_choice(
    n_bins: int,
    n_balls: Optional[int] = None,
    seed: "int | np.random.SeedSequence | None" = None,
    rng: Optional[np.random.Generator] = None,
) -> AllocationResult:
    """Two-choice (Greedy[2]) via the d-choice baseline."""
    return run_d_choice(n_bins=n_bins, d=2, n_balls=n_balls, seed=seed, rng=rng)


register_scheme(
    "one_plus_beta",
    summary="Peres-Talwar-Wieder (1+beta)-choice mixture process.",
    tags=("baseline",),
    vectorized=run_one_plus_beta_vectorized,
)(run_one_plus_beta)

register_scheme(
    "always_go_left",
    summary="Voecking's asymmetric Always-Go-Left d-choice scheme.",
    tags=("baseline",),
    vectorized=run_always_go_left_vectorized,
)(run_always_go_left)

register_scheme(
    "batch_random",
    summary="SA(k, k): k balls per round, each to a uniform bin.",
    tags=("baseline",),
    vectorized=run_batch_random,
)(run_batch_random)


def _threshold_adaptive_guard(params) -> Optional[str]:
    """The vectorized engine evaluates thresholds in bulk, not per ball."""
    if callable(params.get("threshold")):
        return CALLABLE_THRESHOLD_REASON
    return None


register_scheme(
    "threshold_adaptive",
    summary="Czumaj-Stemann adaptive threshold probing.",
    tags=("adaptive",),
    vectorized=run_threshold_adaptive_vectorized,
    vectorized_guard=_threshold_adaptive_guard,
)(run_threshold_adaptive)

register_scheme(
    "two_phase_adaptive",
    summary="Simplified Lenzen-Wattenhofer two-phase adaptive scheme.",
    tags=("adaptive",),
    vectorized=run_two_phase_adaptive_vectorized,
)(run_two_phase_adaptive)


# ----------------------------------------------------------------------
# Application substrates (Section 1.3), adapted to AllocationResult
# ----------------------------------------------------------------------
@register_scheme(
    "cluster_scheduling",
    summary="Sparrow-style cluster: batch (k, d)-choice task placement.",
    tags=("application",),
)
def _run_cluster_scheduling(
    n_workers: int,
    n_jobs: int = 200,
    tasks_per_job: int = 4,
    probe_ratio: float = 2.0,
    arrival_rate: float = 8.0,
    mean_task_duration: float = 1.0,
    seed: "int | None" = None,
) -> AllocationResult:
    """Run the batch-sampling scheduler; loads are tasks per worker.

    The detailed :class:`~repro.cluster.metrics.ClusterReport` (response-time
    percentiles, utilization) is attached as ``extra["report"]``.
    """
    from ..cluster.schedulers import BatchSamplingScheduler
    from ..cluster.simulator import ClusterSimulator
    from ..simulation.workloads import poisson_job_trace

    trace = poisson_job_trace(
        n_jobs=n_jobs,
        arrival_rate=arrival_rate,
        tasks_per_job=tasks_per_job,
        mean_task_duration=mean_task_duration,
        seed=seed,
    )
    simulator = ClusterSimulator(
        n_workers=n_workers,
        scheduler=BatchSamplingScheduler(probe_ratio=probe_ratio),
        seed=None if seed is None else seed + 1,
    )
    report = simulator.run(trace)
    loads = np.asarray(
        [worker.tasks_completed for worker in simulator.workers], dtype=np.int64
    )
    return AllocationResult(
        loads=loads,
        scheme=f"cluster-batch-sampling[ratio={probe_ratio:g}]",
        n_bins=n_workers,
        n_balls=int(loads.sum()),
        k=tasks_per_job,
        d=int(np.ceil(probe_ratio * tasks_per_job)),
        messages=report.messages,
        rounds=n_jobs,
        policy="strict",
        extra={"report": report},
    )


@register_scheme(
    "storage_placement",
    summary="Distributed storage: (k, k+1)-choice replica placement.",
    tags=("application",),
)
def _run_storage_placement(
    n_servers: int,
    n_files: int = 1024,
    replicas: int = 3,
    extra_probes: int = 1,
    mode: str = "replication",
    seed: "int | None" = None,
) -> AllocationResult:
    """Place a file population; loads are replicas per server.

    The :class:`~repro.storage.system.StorageReport` rides along in
    ``extra["report"]``.
    """
    from ..storage.placement import KDChoicePlacement
    from ..storage.system import StorageSystem
    from ..simulation.workloads import file_population

    population = file_population(n_files=n_files, replicas=replicas, seed=seed)
    system = StorageSystem(
        n_servers=n_servers,
        placement=KDChoicePlacement(extra_probes=extra_probes),
        mode=mode,
        seed=None if seed is None else seed + 1,
    )
    system.store_population(population)
    report = system.report()
    loads = np.asarray(system.load_vector(), dtype=np.int64)
    return AllocationResult(
        loads=loads,
        scheme=f"storage-(k,k+{extra_probes})-choice",
        n_bins=n_servers,
        n_balls=int(loads.sum()),
        k=replicas,
        d=replicas + extra_probes,
        messages=system.placement_messages,
        rounds=n_files,
        policy="strict",
        extra={"report": report},
    )
