"""Versioned JSONL traces: capture a workload once, replay it anywhere.

A trace is a JSON-Lines file: one *header* line naming the format, its
version and the spec that should serve the stream, followed by one *event*
line per request::

    {"format":"repro-online-trace","version":1,"scheme":"kd_choice",
     "params":{"d":4,"k":2,"n_bins":64},"policy":null,"seed":7,"events":70}
    {"op":"place","item":0,"t":0.001017...}
    {"op":"remove","item":0,"t":0.013314...}

Serialization is canonical (sorted keys, no whitespace), so recording the
same workload twice produces byte-identical files, and a replay that
re-records its input (``record_out=``) reproduces it byte for byte — the
round-trip the CI golden step locks down.  Placement *destinations* are
deliberately not stored: they are recomputed from the header's seed at
replay, which is what makes one trace replayable across engines (scalar
unit-steps or the vectorized batch kernels) with identical results.

The workload bridge (:func:`generate_workload_events` /
:func:`record_workload`) stamps events with the same Poisson / bursty-MMPP
arrival processes that drive the cluster substrate
(:func:`repro.simulation.workloads.sample_arrival_times`), plus optional
churn (randomized removals of live items), so substrate-grade workloads can
be captured once and replayed deterministically.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, IO, List, Optional, Tuple

from ..api.registry import get_scheme
from ..api.spec import SchemeSpec
from .allocator import OnlineAllocator, write_snapshot
from .telemetry import LoadTelemetry

__all__ = [
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "TraceError",
    "TraceHeader",
    "TraceWriter",
    "read_trace",
    "generate_workload_events",
    "record_workload",
    "ReplaySummary",
    "run_events",
    "replay_trace",
    "stream_workload",
]

TRACE_FORMAT = "repro-online-trace"
TRACE_VERSION = 1

_EVENT_OPS = ("place", "remove")


class TraceError(ValueError):
    """Raised for malformed, unversioned or future-versioned traces."""


def _canonical(obj: Any) -> str:
    """The one serialization every trace line uses (byte-stable)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class TraceHeader:
    """The first line of a trace: which spec serves the stream."""

    scheme: str
    params: Dict[str, Any] = field(default_factory=dict)
    policy: Optional[str] = None
    seed: Optional[int] = None
    events: Optional[int] = None  #: advisory event count (not enforced)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": TRACE_FORMAT,
            "version": TRACE_VERSION,
            "scheme": self.scheme,
            "params": dict(self.params),
            "policy": self.policy,
            "seed": self.seed,
            "events": self.events,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TraceHeader":
        if payload.get("format") != TRACE_FORMAT:
            raise TraceError(
                f"not a {TRACE_FORMAT} file (format={payload.get('format')!r})"
            )
        version = payload.get("version")
        if version != TRACE_VERSION:
            raise TraceError(
                f"trace version {version!r} is not supported (this build "
                f"reads version {TRACE_VERSION}); re-record the trace"
            )
        if not isinstance(payload.get("scheme"), str) or not payload["scheme"]:
            raise TraceError("trace header is missing its scheme name")
        return cls(
            scheme=payload["scheme"],
            params=dict(payload.get("params") or {}),
            policy=payload.get("policy"),
            seed=payload.get("seed"),
            events=payload.get("events"),
        )


def _derive_items(spec: SchemeSpec, items: Optional[int]) -> int:
    """The stream length: explicit, or the spec's ``n_balls``/``n_bins``.

    Presence-checked (not an ``or`` chain) so an explicit ``n_balls=0``
    means an empty stream rather than falling through to ``n_bins``.
    """
    if items is not None:
        return int(items)
    for key in ("n_balls", "n_bins"):
        if spec.params.get(key) is not None:
            return int(spec.params[key])
    raise ValueError(
        "items could not be derived from the spec; pass it explicitly"
    )


def _require_int_seed(seed: Any) -> Optional[int]:
    """Traces persist seeds, so only plain integers (or None) are allowed."""
    if not isinstance(seed, (int, type(None))):
        raise TraceError(
            f"traces require an integer (or None) spec seed, got {seed!r}"
        )
    return seed


def _pin_stream_length(
    scheme: str, params: Dict[str, Any], n_places: int
) -> Dict[str, Any]:
    """Fix the spec's planned stream length to the workload's place count.

    The steppers size their RNG chunks by ``n_balls``, so the serving spec
    must plan exactly the stream it will see; an explicit ``n_balls`` in the
    params wins (the stream is then a prefix of that plan).
    """
    pinned = dict(params)
    if "n_balls" in get_scheme(scheme).parameters and "n_balls" not in pinned:
        pinned["n_balls"] = n_places
    return pinned


def _validate_event(event: Dict[str, Any], line_number: int) -> Dict[str, Any]:
    op = event.get("op")
    if op not in _EVENT_OPS:
        raise TraceError(
            f"line {line_number}: unknown trace op {op!r} "
            f"(expected one of {_EVENT_OPS})"
        )
    if op == "remove" and "item" not in event:
        raise TraceError(f"line {line_number}: remove events need an 'item'")
    return event


class TraceWriter:
    """Stream events into a trace file (header written on open).

    Use as a context manager, or call :meth:`close` explicitly; the file is
    written with ``\\n`` line endings on every platform so traces are
    byte-portable.
    """

    def __init__(self, path: "str | os.PathLike[str]", header: TraceHeader) -> None:
        self.path = Path(path)
        self.header = header
        self._handle: Optional[IO[str]] = open(
            self.path, "w", encoding="utf-8", newline="\n"
        )
        self._handle.write(_canonical(header.to_dict()) + "\n")
        self.events_written = 0

    def write_event(self, event: Dict[str, Any]) -> None:
        if self._handle is None:
            raise TraceError(f"trace writer for {self.path} is closed")
        _validate_event(event, self.events_written + 2)
        self._handle.write(_canonical(event) + "\n")
        self.events_written += 1

    def place(self, item: Any = None, at: Optional[float] = None) -> None:
        event: Dict[str, Any] = {"op": "place"}
        if item is not None:
            event["item"] = item
        if at is not None:
            event["t"] = float(at)
        self.write_event(event)

    def remove(self, item: Any, at: Optional[float] = None) -> None:
        event: Dict[str, Any] = {"op": "remove", "item": item}
        if at is not None:
            event["t"] = float(at)
        self.write_event(event)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def read_trace(
    path: "str | os.PathLike[str]",
) -> Tuple[TraceHeader, List[Dict[str, Any]]]:
    """Parse a trace file into its header and validated event list."""
    events: List[Dict[str, Any]] = []
    header: Optional[TraceHeader] = None
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceError(
                    f"line {line_number}: invalid JSON ({exc.msg})"
                ) from None
            if header is None:
                header = TraceHeader.from_dict(payload)
            else:
                events.append(_validate_event(payload, line_number))
    if header is None:
        raise TraceError(f"{path}: empty trace (no header line)")
    return header, events


# ----------------------------------------------------------------------
# Workload-to-trace bridge
# ----------------------------------------------------------------------
# The bridge is a thin shim over the workload registry
# (:mod:`repro.workloads`): the historical kwargs resolve to the
# ``uniform`` registry entry and stay byte-identical to the pre-registry
# implementation, while ``workload=``/``workload_params=`` select any
# registered scenario.  ``repro schemes --check`` lints that this module
# defines no generator of its own.
from ..workloads import bind_spec_params, generate_workload_events  # noqa: E402


def _bind_workload_spec(
    spec: SchemeSpec,
    workload: Optional[str],
    workload_params: Optional[Dict[str, Any]],
) -> SchemeSpec:
    """Merge the workload's contributed spec params (e.g. capacities)."""
    if workload is None:
        return spec
    extra = bind_spec_params(workload, workload_params, spec.params)
    return spec.with_params(**extra) if extra else spec


def record_workload(
    path: "str | os.PathLike[str]",
    spec: SchemeSpec,
    items: Optional[int] = None,
    arrival_process: str = "none",
    arrival_rate: float = 1000.0,
    burstiness: float = 4.0,
    switch_prob: float = 0.1,
    churn: float = 0.0,
    workload_seed: Optional[int] = None,
    workload: Optional[str] = None,
    workload_params: Optional[Dict[str, Any]] = None,
) -> TraceHeader:
    """Capture a workload against ``spec`` as a replayable trace file.

    ``items`` defaults to the spec's planned stream length (``n_balls``,
    falling back to ``n_bins``).  Returns the written header.
    """
    items = _derive_items(spec, items)
    spec = _bind_workload_spec(spec, workload, workload_params)
    events = generate_workload_events(
        items,
        arrival_process=arrival_process,
        arrival_rate=arrival_rate,
        burstiness=burstiness,
        switch_prob=switch_prob,
        churn=churn,
        seed=workload_seed,
        workload=workload,
        workload_params=workload_params,
    )
    seed = _require_int_seed(spec.seed)
    header = TraceHeader(
        scheme=spec.scheme,
        params=dict(spec.params),
        policy=spec.policy,
        seed=seed,
        events=len(events),
    )
    with TraceWriter(path, header) as writer:
        for event in events:
            writer.write_event(event)
    return header


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
@dataclass
class ReplaySummary:
    """Deterministic outcome of driving an allocator through an event list."""

    spec: SchemeSpec
    engine: str  #: the engine the caller requested (echoed in output)
    events: int
    places: int
    removes: int
    stats: Dict[str, Any]  #: :meth:`OnlineAllocator.summary` of the end state
    snapshots_taken: int = 0
    snapshot_paths: List[str] = field(default_factory=list)

    def format_text(self) -> str:
        lines = [
            f"spec: {self.spec.display_label} "
            f"(engine={self.engine}, seed={self.spec.seed})",
            f"  events: {self.events} "
            f"({self.places} places, {self.removes} removes)",
        ]
        for key in (
            "placed",
            "removed",
            "live_balls",
            "max_load",
            "mean_load",
            "gap",
            "load_p50",
            "load_p95",
            "load_p99",
            "messages",
            "rounds",
            "telemetry_samples",
        ):
            lines.append(f"  {key}: {self.stats[key]}")
        if "tenants" in self.stats:
            fairness = self.stats["tenant_fairness"]
            lines.append(
                f"  tenants: {len(self.stats['tenants'])} "
                f"(fairness={fairness:.4f})"
            )
            for tenant, counters in self.stats["tenants"].items():
                lines.append(
                    f"    tenant {tenant}: placed={counters['placements']}, "
                    f"removed={counters['removals']}, live={counters['live']}, "
                    f"max_load={counters['max_load']}"
                )
        if "topology" in self.stats:
            topo = self.stats["topology"]
            lines.append(
                f"  topology: cross_probe_fraction="
                f"{topo['cross_probe_fraction']:.4f}, "
                f"cross_place_fraction={topo['cross_place_fraction']:.4f}"
            )
            lines.append(
                f"    probes: rack={topo['rack_probes']}, "
                f"zone={topo['zone_probes']}, cross={topo['cross_probes']}; "
                f"places: local={topo['local_places']}, "
                f"cross={topo['cross_places']}"
            )
        if self.snapshots_taken:
            lines.append(f"  snapshots: {self.snapshots_taken}")
        lines.append(f"  loads_sha256: {self.stats['loads_sha256']}")
        return "\n".join(lines)


def _spec_for_stream(
    header: TraceHeader, n_places: int, engine: Optional[str]
) -> SchemeSpec:
    """Build the serving spec, pinning the planned stream length."""
    return SchemeSpec(
        scheme=header.scheme,
        params=_pin_stream_length(header.scheme, dict(header.params), n_places),
        policy=header.policy,
        seed=header.seed,
        engine=engine if engine is not None else "auto",
    )


def run_events(
    spec: SchemeSpec,
    events: List[Dict[str, Any]],
    snapshot_every: Optional[int] = None,
    snapshot_dir: "str | os.PathLike[str] | None" = None,
    telemetry: Optional[LoadTelemetry] = None,
    record_writer: Optional[TraceWriter] = None,
) -> ReplaySummary:
    """Drive a fresh allocator through ``events`` and summarize the end state.

    The engine choice only affects *how* consecutive placements are ingested
    (unit steps vs the batch kernels) — the resulting stream is identical.
    ``snapshot_every`` captures the allocator every that-many events (written
    to ``snapshot_dir`` when given, else kept out of memory — only counted);
    ``record_writer`` re-emits every consumed event (the byte-stable
    re-record path).
    """
    if snapshot_every is not None and snapshot_every < 1:
        raise ValueError(f"snapshot_every must be positive, got {snapshot_every}")
    has_removes = any(event["op"] == "remove" for event in events)
    has_tenants = any("tenant" in event for event in events)
    allocator = OnlineAllocator(
        spec, telemetry=telemetry, track_items=has_removes
    )
    # Tenant attribution lives here, not in the allocator: only the event
    # driver sees the workload's labels together with the chosen bins.
    tenant_place = allocator.telemetry.record_tenant_place
    tenant_remove = allocator.telemetry.record_tenant_remove
    # Zone attribution (topology-aware workloads): placement locality comes
    # from the event's source-zone tag against the destination bin's zone;
    # probe relations come off the stepper's own kernel tallies, diffed per
    # placement run.
    bin_zone = None
    if (
        any("zone" in event for event in events)
        and spec.params.get("topology") is not None
        and spec.params.get("n_bins") is not None
    ):
        from ..topology.records import as_topology

        bin_zone = as_topology(
            spec.params["topology"], int(spec.params["n_bins"])
        ).bin_zone
    zone_place = allocator.telemetry.record_zone_place
    probe_tally = getattr(allocator.stepper, "zone_counters", None)
    probe_base = dict(probe_tally) if probe_tally is not None else None

    def sync_zone_probes() -> None:
        if probe_base is None:
            return
        current = allocator.stepper.zone_counters
        allocator.telemetry.record_zone_probes(
            rack=current["rack_probes"] - probe_base["rack_probes"],
            zone=current["zone_probes"] - probe_base["zone_probes"],
            cross=current["cross_probes"] - probe_base["cross_probes"],
        )
        probe_base.update(current)

    batch_mode = spec.engine != "scalar"
    snapshot_paths: List[str] = []
    snapshots_taken = 0
    places = removes = 0
    consumed = 0
    total = len(events)

    def take_snapshot() -> None:
        nonlocal snapshots_taken
        snapshots_taken += 1
        if snapshot_dir is not None:
            directory = Path(snapshot_dir)
            directory.mkdir(parents=True, exist_ok=True)
            target = directory / f"snapshot-{consumed:08d}.json"
            # Atomic (*.tmp + os.replace): a process killed mid-capture must
            # never leave a torn snapshot behind.
            write_snapshot(target, allocator.snapshot())
            snapshot_paths.append(str(target))
        # Without a directory only the count is observable; building (and
        # discarding) a full state document every interval would be waste.

    index = 0
    while index < total:
        event = events[index]
        if event["op"] == "place":
            run_stop = index
            limit = total
            if snapshot_every is not None:
                limit = min(limit, index + snapshot_every - (consumed % snapshot_every))
            # Chunk at the telemetry cadence too, so a batched replay takes
            # its samples at the same event counts as a per-event one (the
            # summary's telemetry_samples must be engine-independent).
            limit = min(
                limit, index + max(1, allocator.telemetry.events_until_due())
            )
            while run_stop < limit and events[run_stop]["op"] == "place":
                run_stop += 1
            run = events[index:run_stop]
            if batch_mode and len(run) > 1:
                start_sequence = allocator.placed
                keys = None
                if has_removes:
                    keys = [
                        e["item"] if e.get("item") is not None
                        else start_sequence + offset
                        for offset, e in enumerate(run)
                    ]
                destinations = allocator.place_batch(len(run), items=keys)
                if has_tenants:
                    for e, bin_index in zip(run, destinations):
                        if "tenant" in e:
                            tenant_place(e["tenant"], int(bin_index))
                if bin_zone is not None:
                    for e, bin_index in zip(run, destinations):
                        if "zone" in e:
                            zone_place(int(bin_zone[int(bin_index)]) == e["zone"])
            else:
                # Register item ids only when some event will look one up:
                # a churn-free replay must not build an O(n) item map (and
                # its snapshots must match the batch path's, which tracks
                # nothing either).
                for e in run:
                    bin_index = allocator.place(
                        e.get("item") if has_removes else None
                    )
                    if "tenant" in e:
                        tenant_place(e["tenant"], bin_index)
                    if bin_zone is not None and "zone" in e:
                        zone_place(int(bin_zone[int(bin_index)]) == e["zone"])
            sync_zone_probes()
            places += len(run)
            if record_writer is not None:
                for e in run:
                    record_writer.write_event(e)
            consumed += len(run)
            index = run_stop
        else:
            bin_index = allocator.remove(event["item"])
            if "tenant" in event:
                tenant_remove(event["tenant"], bin_index)
            removes += 1
            if record_writer is not None:
                record_writer.write_event(event)
            consumed += 1
            index += 1
        if snapshot_every is not None and consumed % snapshot_every == 0:
            take_snapshot()

    stats = allocator.summary()
    if allocator.telemetry.has_tenants:
        # Additive keys: tenancy-free summaries (and their goldens) are
        # byte-identical with or without this feature.
        stats["tenants"] = allocator.telemetry.tenant_summary()
        stats["tenant_fairness"] = allocator.telemetry.tenant_fairness()
    if allocator.telemetry.has_topology:
        # Additive keys, same contract as tenants above.
        topology_stats = allocator.telemetry.topology_summary()
        stats["topology"] = topology_stats
        stats["cross_zone_probe_fraction"] = topology_stats["cross_probe_fraction"]
        stats["cross_zone_place_fraction"] = topology_stats["cross_place_fraction"]
    return ReplaySummary(
        spec=spec,
        engine=spec.engine,
        events=total,
        places=places,
        removes=removes,
        stats=stats,
        snapshots_taken=snapshots_taken,
        snapshot_paths=snapshot_paths,
    )


def replay_trace(
    path: "str | os.PathLike[str]",
    engine: Optional[str] = None,
    snapshot_every: Optional[int] = None,
    snapshot_dir: "str | os.PathLike[str] | None" = None,
    record_out: "str | os.PathLike[str] | None" = None,
    telemetry: Optional[LoadTelemetry] = None,
) -> ReplaySummary:
    """Replay a recorded trace deterministically; returns the summary.

    ``record_out`` re-records the consumed stream to a new trace file —
    byte-identical to the input for traces produced by this module (the
    format round-trip the CI golden step asserts).
    """
    header, events = read_trace(path)
    n_places = sum(1 for event in events if event["op"] == "place")
    spec = _spec_for_stream(header, n_places, engine)
    writer = (
        TraceWriter(record_out, TraceHeader(
            scheme=header.scheme, params=header.params, policy=header.policy,
            seed=header.seed, events=header.events,
        ))
        if record_out is not None
        else None
    )
    try:
        return run_events(
            spec,
            events,
            snapshot_every=snapshot_every,
            snapshot_dir=snapshot_dir,
            telemetry=telemetry,
            record_writer=writer,
        )
    finally:
        if writer is not None:
            writer.close()


def stream_workload(
    spec: SchemeSpec,
    items: Optional[int] = None,
    arrival_process: str = "none",
    arrival_rate: float = 1000.0,
    burstiness: float = 4.0,
    switch_prob: float = 0.1,
    churn: float = 0.0,
    workload_seed: Optional[int] = None,
    record: "str | os.PathLike[str] | None" = None,
    snapshot_every: Optional[int] = None,
    snapshot_dir: "str | os.PathLike[str] | None" = None,
    telemetry: Optional[LoadTelemetry] = None,
    workload: Optional[str] = None,
    workload_params: Optional[Dict[str, Any]] = None,
) -> ReplaySummary:
    """Generate a workload and serve it live (optionally recording it).

    The driver behind ``repro stream``: builds the event list with
    :func:`generate_workload_events`, pins the spec's ``n_balls`` to the
    placement count, and runs it through :func:`run_events`.  With
    ``record=`` the served stream is captured as a trace whose later
    ``repro replay`` reproduces this run exactly.  ``workload=`` selects a
    registered scenario (any entry of :mod:`repro.workloads`) instead of
    the legacy kwargs, and merges the scenario's contributed spec params
    (e.g. ``hetero_bins`` capacities) before serving.
    """
    items = _derive_items(spec, items)
    spec = _bind_workload_spec(spec, workload, workload_params)
    events = generate_workload_events(
        items,
        arrival_process=arrival_process,
        arrival_rate=arrival_rate,
        burstiness=burstiness,
        switch_prob=switch_prob,
        churn=churn,
        seed=workload_seed,
        workload=workload,
        workload_params=workload_params,
    )
    pinned = _pin_stream_length(spec.scheme, dict(spec.params), items)
    if pinned != dict(spec.params):
        spec = spec.with_params(**pinned)
    seed = _require_int_seed(spec.seed) if record is not None else spec.seed
    writer = (
        TraceWriter(record, TraceHeader(
            scheme=spec.scheme, params=dict(spec.params), policy=spec.policy,
            seed=seed, events=len(events),
        ))
        if record is not None
        else None
    )
    try:
        return run_events(
            spec,
            events,
            snapshot_every=snapshot_every,
            snapshot_dir=snapshot_dir,
            telemetry=telemetry,
            record_writer=writer,
        )
    finally:
        if writer is not None:
            writer.close()
