"""Live load telemetry for the streaming allocator.

The allocator calls :meth:`LoadTelemetry.record_place` /
:meth:`~LoadTelemetry.record_remove` on every event and
:meth:`~LoadTelemetry.record_block` per bulk ingestion; those updates are
O(1) (counter bumps plus an incremental running max).  The expensive
statistics — load percentiles, gap to mean — are computed only when a
*sample* is taken, every ``sample_every`` events, and appended to a
fixed-capacity ring (:class:`collections.deque`), so a stream of millions of
placements carries a bounded, recent window of its own history.

The clock is injectable so tests (and the CLI's deterministic summaries)
can freeze wall time; ``placements_per_sec`` is the only wall-clock-derived
field and is excluded from deterministic output paths.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

__all__ = ["TelemetrySample", "LoadTelemetry"]

#: Percentiles reported by every sample.
DEFAULT_PERCENTILES: Tuple[int, ...] = (50, 95, 99)

#: Zeroed topology counters (probe relations + placement locality).
_TOPOLOGY_ZERO: Dict[str, int] = {
    "rack_probes": 0,
    "zone_probes": 0,
    "cross_probes": 0,
    "local_places": 0,
    "cross_places": 0,
}


@dataclass(frozen=True)
class TelemetrySample:
    """One point-in-time reading of the allocator's load state."""

    index: int  #: sample sequence number (0-based)
    events: int  #: placements + removals seen when the sample was taken
    placements: int
    removals: int
    max_load: int
    mean_load: float
    gap: float  #: max_load - mean_load
    percentiles: Dict[int, float]
    wall_time: float  #: seconds since telemetry start (clock-dependent)
    placements_per_sec: float  #: realized rate since the previous sample

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "events": self.events,
            "placements": self.placements,
            "removals": self.removals,
            "max_load": self.max_load,
            "mean_load": self.mean_load,
            "gap": self.gap,
            "percentiles": {str(p): v for p, v in self.percentiles.items()},
            "wall_time": self.wall_time,
            "placements_per_sec": self.placements_per_sec,
        }


class LoadTelemetry:
    """O(1)-update metrics with a bounded ring of periodic samples.

    Parameters
    ----------
    sample_every:
        Events (placements + removals) between automatic samples; the
        allocator triggers them via :meth:`maybe_sample`.
    capacity:
        Ring size — only the most recent ``capacity`` samples are kept.
    percentiles:
        Load percentiles computed per sample.
    clock:
        Wall-clock source (``time.perf_counter`` by default); injectable
        for deterministic tests.
    """

    def __init__(
        self,
        sample_every: int = 4096,
        capacity: int = 256,
        percentiles: Tuple[int, ...] = DEFAULT_PERCENTILES,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be positive, got {sample_every}")
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sample_every = sample_every
        self.percentiles = tuple(percentiles)
        self.samples: Deque[TelemetrySample] = deque(maxlen=capacity)
        self._clock = clock
        self._start = clock()
        self._last_sample_time = self._start
        self._last_sample_placements = 0
        self.placements = 0
        self.removals = 0
        self._max = 0
        self._max_dirty = False  # removals/bulk ingestion invalidate the max
        self._events_since_sample = 0
        self._samples_taken = 0
        # Per-tenant counters (multi-tenant workloads only): tenant label ->
        # {"placements", "removals", "bins": {bin -> live count}}.  Labels
        # are normalized to strings so the counters survive a JSON snapshot
        # round-trip unchanged.
        self._tenants: Dict[str, Dict[str, object]] = {}
        # Topology counters (topology-aware streams only): probe relations
        # come off the stepper's kernel tallies, placement locality from the
        # drivers' zone attribution.  All zero ⇒ absent from snapshots.
        self._topology: Dict[str, int] = dict(_TOPOLOGY_ZERO)

    # ------------------------------------------------------------------
    # O(1) event updates
    # ------------------------------------------------------------------
    def record_place(self, bin_index: int, new_load: int) -> None:
        self.placements += 1
        if new_load > self._max:
            self._max = int(new_load)
        self._events_since_sample += 1

    def record_remove(self, bin_index: int, old_load: int) -> None:
        self.removals += 1
        if old_load >= self._max:
            # The removed ball may have been (one of) the maximum; recompute
            # lazily at the next read instead of scanning per event.
            self._max_dirty = True
        self._events_since_sample += 1

    def record_block(self, count: int) -> None:
        """Account ``count`` placements ingested through a batch kernel."""
        self.placements += count
        self._max_dirty = True
        self._events_since_sample += count

    # ------------------------------------------------------------------
    # Per-tenant attribution (multi-tenant workloads)
    # ------------------------------------------------------------------
    def record_tenant_place(self, tenant: object, bin_index: int) -> None:
        """Attribute one placement to ``tenant`` landing in ``bin_index``.

        Called by the event drivers (which see the workload's tenant
        labels and the chosen destinations), not by the allocator — the
        global counters above stay tenancy-agnostic.
        """
        stats = self._tenants.get(str(tenant))
        if stats is None:
            stats = self._tenants[str(tenant)] = {
                "placements": 0, "removals": 0, "bins": {},
            }
        stats["placements"] = int(stats["placements"]) + 1
        bins = stats["bins"]
        bins[int(bin_index)] = bins.get(int(bin_index), 0) + 1  # type: ignore[union-attr]

    def record_tenant_remove(self, tenant: object, bin_index: int) -> None:
        """Attribute one removal from ``bin_index`` to ``tenant``."""
        stats = self._tenants.get(str(tenant))
        if stats is None:
            stats = self._tenants[str(tenant)] = {
                "placements": 0, "removals": 0, "bins": {},
            }
        stats["removals"] = int(stats["removals"]) + 1
        bins = stats["bins"]
        key = int(bin_index)
        remaining = bins.get(key, 0) - 1  # type: ignore[union-attr]
        if remaining > 0:
            bins[key] = remaining  # type: ignore[index]
        else:
            bins.pop(key, None)  # type: ignore[union-attr]

    @property
    def has_tenants(self) -> bool:
        return bool(self._tenants)

    # ------------------------------------------------------------------
    # Topology attribution (topology-aware workloads)
    # ------------------------------------------------------------------
    def record_zone_probes(
        self, rack: int = 0, zone: int = 0, cross: int = 0
    ) -> None:
        """Accumulate probe-relation deltas (same rack / same zone / cross).

        Called by the event drivers with the difference of the stepper's
        kernel tallies across a run of placements — the telemetry layer
        never re-derives probe relations itself.
        """
        self._topology["rack_probes"] += int(rack)
        self._topology["zone_probes"] += int(zone)
        self._topology["cross_probes"] += int(cross)

    def record_zone_place(self, local: bool) -> None:
        """Attribute one placement as same-zone (``local``) or cross-zone."""
        if local:
            self._topology["local_places"] += 1
        else:
            self._topology["cross_places"] += 1

    @property
    def has_topology(self) -> bool:
        return any(self._topology.values())

    def topology_summary(self) -> "Dict[str, int | float]":
        """Topology counters plus cross-zone fractions."""
        counters = dict(self._topology)
        probes = (
            counters["rack_probes"]
            + counters["zone_probes"]
            + counters["cross_probes"]
        )
        places = counters["local_places"] + counters["cross_places"]
        counters["cross_probe_fraction"] = (
            counters["cross_probes"] / probes if probes else 0.0
        )
        counters["cross_place_fraction"] = (
            counters["cross_places"] / places if places else 0.0
        )
        return counters  # type: ignore[return-value]

    def tenant_summary(self) -> "Dict[str, Dict[str, int]]":
        """Per-tenant counters, sorted by label: placements, removals,
        live balls, and the tenant's own max load over the bins."""
        summary: Dict[str, Dict[str, int]] = {}
        for tenant in sorted(self._tenants):
            stats = self._tenants[tenant]
            bins: Dict[int, int] = stats["bins"]  # type: ignore[assignment]
            summary[tenant] = {
                "placements": int(stats["placements"]),
                "removals": int(stats["removals"]),
                "live": int(stats["placements"]) - int(stats["removals"]),
                "max_load": max(bins.values()) if bins else 0,
            }
        return summary

    def tenant_fairness(self) -> float:
        """Jain's fairness index over per-tenant live ball counts.

        1.0 means every tenant holds the same number of live balls; the
        lower bound ``1/len(tenants)`` means one tenant holds everything.
        An empty system is vacuously fair.
        """
        lives = [
            int(stats["placements"]) - int(stats["removals"])
            for stats in self._tenants.values()
        ]
        total = sum(lives)
        if not lives or total == 0:
            return 1.0
        return (total * total) / (len(lives) * sum(x * x for x in lives))

    # ------------------------------------------------------------------
    # Reads and sampling
    # ------------------------------------------------------------------
    def max_load(self, loads: np.ndarray) -> int:
        if self._max_dirty:
            self._max = int(loads.max()) if loads.size else 0
            self._max_dirty = False
        return self._max

    def due(self) -> bool:
        return self._events_since_sample >= self.sample_every

    def events_until_due(self) -> int:
        """Events until the next sample is due (0 = due now).

        Bulk ingestion drivers chunk their event runs at this boundary so a
        batched replay takes samples at exactly the same event counts as a
        per-event one (a single bulk call samples at most once).
        """
        return max(0, self.sample_every - self._events_since_sample)

    def maybe_sample(self, loads: np.ndarray) -> Optional[TelemetrySample]:
        """Take a sample when one is due; returns it (or ``None``)."""
        if not self.due():
            return None
        return self.sample_now(loads)

    def sample_now(self, loads: np.ndarray) -> TelemetrySample:
        """Compute a full sample (O(n) percentiles) and append it."""
        now = self._clock()
        elapsed = max(now - self._last_sample_time, 1e-12)
        rate = (self.placements - self._last_sample_placements) / elapsed
        mean = float(loads.mean()) if loads.size else 0.0
        # Samples are the exported artifact, so read the max straight off
        # the loads (the O(n) is already paid by the percentiles below) —
        # the incremental counter can lag deferred commits (stale epochs)
        # and bulk ingestion, and must not leak into a sample.
        maximum = int(loads.max()) if loads.size else 0
        self._max = maximum
        self._max_dirty = False
        values = (
            np.percentile(loads, self.percentiles) if loads.size else
            np.zeros(len(self.percentiles))
        )
        sample = TelemetrySample(
            index=self._samples_taken,
            events=self.placements + self.removals,
            placements=self.placements,
            removals=self.removals,
            max_load=maximum,
            mean_load=mean,
            gap=maximum - mean,
            percentiles={
                int(p): float(v) for p, v in zip(self.percentiles, values)
            },
            wall_time=now - self._start,
            placements_per_sec=rate,
        )
        self.samples.append(sample)
        self._samples_taken += 1
        self._events_since_sample = 0
        self._last_sample_time = now
        self._last_sample_placements = self.placements
        return sample

    @property
    def samples_taken(self) -> int:
        return self._samples_taken

    def latest(self) -> Optional[TelemetrySample]:
        return self.samples[-1] if self.samples else None

    def history(self) -> List[TelemetrySample]:
        return list(self.samples)

    # ------------------------------------------------------------------
    # Snapshot support (counters only; the sample ring is not persisted)
    # ------------------------------------------------------------------
    def counters(self) -> "Dict[str, int | float]":
        data: Dict[str, object] = {
            "placements": self.placements,
            "removals": self.removals,
            "samples_taken": self._samples_taken,
            # The sampling phase: without it a restored stream would reset
            # its cadence and take samples at different event counts than
            # the unbroken one.
            "events_since_sample": self._events_since_sample,
            # Elapsed stream time at snapshot, so a restored stream's
            # sample ``wall_time`` continues from where the original left
            # off instead of restarting at zero.
            "wall_time": self._clock() - self._start,
        }
        if self._tenants:
            # Only present for multi-tenant streams: tenancy-free snapshots
            # (and their digests) are unchanged by the feature's existence.
            data["tenants"] = {
                tenant: {
                    "placements": int(stats["placements"]),
                    "removals": int(stats["removals"]),
                    "bins": {
                        str(b): int(c)
                        for b, c in stats["bins"].items()  # type: ignore[union-attr]
                    },
                }
                for tenant, stats in self._tenants.items()
            }
        if self.has_topology:
            # Only present for topology-aware streams: topology-free
            # snapshots (and their digests) are unchanged by the feature's
            # existence.
            data["topology"] = dict(self._topology)
        return data  # type: ignore[return-value]

    def restore_counters(self, counters: "Dict[str, int | float]") -> None:
        self.placements = int(counters.get("placements", 0))
        self.removals = int(counters.get("removals", 0))
        self._samples_taken = int(counters.get("samples_taken", 0))
        self._events_since_sample = int(counters.get("events_since_sample", 0))
        # Re-anchor the clocks: back-date the start so elapsed time resumes
        # at the snapshot's wall_time, and reset the rate window to "now"
        # (the downtime between snapshot and restore must not be billed to
        # the next sample's placements_per_sec).
        now = self._clock()
        self._start = now - float(counters.get("wall_time", 0.0))
        self._last_sample_time = now
        self._last_sample_placements = self.placements
        self._max_dirty = True
        self._tenants = {
            str(tenant): {
                "placements": int(stats.get("placements", 0)),
                "removals": int(stats.get("removals", 0)),
                "bins": {
                    int(b): int(c)
                    for b, c in (stats.get("bins") or {}).items()
                },
            }
            for tenant, stats in (counters.get("tenants") or {}).items()
        }
        restored = counters.get("topology") or {}
        self._topology = {
            key: int(restored.get(key, 0)) for key in _TOPOLOGY_ZERO
        }
