"""Streaming steppers — compatibility shim over :mod:`repro.core.kernels`.

Historically this module hand-implemented a stepper per scheme, mirroring
the batch engines in ``repro.core.vectorized`` draw for draw.  Both engine
families are now derived from each scheme's single kernel registration in
:mod:`repro.core.kernels.table`, and the stepper classes live with their
kernels; this module re-exports them under their long-standing names so
existing imports keep working.  It defines nothing itself — the registry
parity lint (``repro schemes --check``) enforces that.

See :class:`repro.core.kernels.base.OnlineStepper` for the stepper contract
(RNG-block fidelity, units, snapshots).  Steppers are registered as the
``online=`` capability of their schemes via the kernel table; user code
reaches them through :class:`repro.online.OnlineAllocator`, which adds item
tracking, telemetry and churn on top.
"""

from ..core.kernels.adaptive import ThresholdAdaptiveStepper, TwoPhaseAdaptiveStepper
from ..core.kernels.balls import AlwaysGoLeftStepper, OnePlusBetaStepper
from ..core.kernels.base import OnlineStepper, StreamExhausted
from ..core.kernels.kd import KDChoiceStepper
from ..core.kernels.serialized import SerializedKDChoiceStepper
from ..core.kernels.single import SingleChoiceStepper
from ..core.kernels.stale import StaleKDChoiceStepper
from ..core.kernels.weighted import WeightedKDChoiceStepper

__all__ = [
    "StreamExhausted",
    "OnlineStepper",
    "KDChoiceStepper",
    "SerializedKDChoiceStepper",
    "SingleChoiceStepper",
    "WeightedKDChoiceStepper",
    "StaleKDChoiceStepper",
    "OnePlusBetaStepper",
    "AlwaysGoLeftStepper",
    "ThresholdAdaptiveStepper",
    "TwoPhaseAdaptiveStepper",
]
