"""Streaming steppers: one-item-at-a-time engines for every online scheme.

A *stepper* is the core-level streaming counterpart of a scalar runner: it
owns the bin state and the generator, and produces destination bins one
*unit* (round, ball or epoch-portion) at a time instead of running to
completion.  The contract every stepper implements:

**RNG-block fidelity.**  Randomness is drawn in exactly the blocks (shape
and order) the scalar reference engine draws, buffered, and consumed
incrementally.  After a stepper has emitted its full planned stream, its
loads, message/round accounting *and generator state* are bit-for-bit what
the batch runner produces for the same seed — the property the equivalence
suite in ``tests/online`` locks down.  This is why every stepper needs the
planned stream length up front (``n_balls``, defaulting like the runners to
``n_bins``): the reference engines size their final chunk by the number of
rounds remaining, so an open-ended stream could not reproduce their stream.

**Units.**  ``step()`` executes the next atomic unit and returns its
destination bins in ball order (the exact order the scalar kernel assigns
them).  ``step_block(max_balls)`` optionally executes many whole units at
once through the vectorized kernels of :mod:`repro.core.batched` /
:mod:`repro.core.vectorized` — bit-identical to repeated ``step()`` calls,
only faster — returning a flat destination array, or ``None`` when no fast
path applies (the caller falls back to ``step()``).

**Snapshots.**  ``state_dict()`` captures the complete mutable state
(loads, buffered RNG blocks, counters, the generator state itself) as a
JSON-serializable dict; ``load_state()`` restores it, so a resumed stream
continues bit-identically.

Steppers are registered as the ``online=`` capability of their schemes in
:mod:`repro.api.schemes`; user code reaches them through
:class:`repro.online.OnlineAllocator`, which adds item tracking, telemetry
and churn on top.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..core.adaptive import threshold_place, two_phase_place
from ..core.baselines import _CHUNK as _BALL_CHUNK
from ..core.baselines import _make_rng, least_loaded_probe
from ..core.batched import (
    ConflictScratch,
    clean_segments,
    prefix_conflicts,
    strict_select_rows,
)
from ..core.policies import get_policy, strict_select
from ..core.process import _DEFAULT_CHUNK_ROUNDS
from ..core.types import ProcessParams
from ..core.vectorized import (
    _select_batch,
    _weighted_batch,
    independent_batch_rounds,
    speculative_batch_rows,
)
from ..core.weighted import WeightSpec, make_weights, weighted_round_apply

__all__ = [
    "StreamExhausted",
    "OnlineStepper",
    "KDChoiceStepper",
    "SingleChoiceStepper",
    "WeightedKDChoiceStepper",
    "StaleKDChoiceStepper",
    "OnePlusBetaStepper",
    "AlwaysGoLeftStepper",
    "ThresholdAdaptiveStepper",
    "TwoPhaseAdaptiveStepper",
]


class StreamExhausted(RuntimeError):
    """Raised when a stepper is asked for more balls than its spec plans.

    The reference engines draw their final RNG chunk sized by the rounds
    remaining, so a stream cannot be extended past its planned ``n_balls``
    without diverging from the batch random stream; ask for a larger
    ``n_balls`` in the spec instead.
    """


def _rng_from_state(state: Dict[str, Any]) -> np.random.Generator:
    """Reconstruct a generator from a ``bit_generator.state`` dict."""
    name = state.get("bit_generator")
    bit_generator_cls = getattr(np.random, str(name), None)
    if bit_generator_cls is None:
        raise ValueError(f"unknown bit generator {name!r} in snapshot")
    bit_generator = bit_generator_cls()
    bit_generator.state = state
    return np.random.Generator(bit_generator)


def _encode_array(array: Optional[np.ndarray]) -> Optional[Dict[str, Any]]:
    if array is None:
        return None
    return {
        "dtype": array.dtype.str,
        "shape": list(array.shape),
        "data": array.ravel().tolist(),
    }


def _decode_array(encoded: Optional[Dict[str, Any]]) -> Optional[np.ndarray]:
    if encoded is None:
        return None
    return np.asarray(encoded["data"], dtype=np.dtype(encoded["dtype"])).reshape(
        encoded["shape"]
    )


class OnlineStepper:
    """Base class: planned-stream bookkeeping and snapshot plumbing.

    Subclasses list their mutable attributes in ``_STATE_SCALARS`` (plain
    ints/floats/bools/None), ``_STATE_ARRAYS`` (numpy arrays or ``None``)
    and ``_STATE_LISTS`` (lists of ints); everything else — parameters,
    derived constants, scratch buffers — is reconstructed by ``__init__``.
    """

    _STATE_SCALARS: Tuple[str, ...] = ("messages", "rounds", "balls_emitted")
    _STATE_ARRAYS: Tuple[str, ...] = ("loads",)
    _STATE_LISTS: Tuple[str, ...] = ()

    n_bins: int
    planned_balls: int
    loads: np.ndarray
    rng: np.random.Generator
    messages: int
    rounds: int
    balls_emitted: int

    # ------------------------------------------------------------------
    # Stream protocol
    # ------------------------------------------------------------------
    @property
    def exhausted(self) -> bool:
        return self.balls_emitted >= self.planned_balls

    def _require_more(self) -> int:
        remaining = self.planned_balls - self.balls_emitted
        if remaining <= 0:
            raise StreamExhausted(
                f"the stream planned n_balls={self.planned_balls} and all of "
                f"them have been placed; build the allocator with a larger "
                f"n_balls to stream further"
            )
        return remaining

    def step(self) -> List[int]:
        """Execute the next unit; return its destinations in ball order."""
        raise NotImplementedError

    def step_block(self, max_balls: int) -> Optional[np.ndarray]:
        """Fast path: execute whole units totalling at most ``max_balls``.

        Returns the flat destination array (ball order), or ``None`` when no
        vectorized progress is possible (tail rounds, non-strict policies,
        ``max_balls`` below one unit) — callers then fall back to ``step``.
        """
        return None

    def remove_ball(self, bin_index: int, ball_index: Optional[int] = None) -> None:
        """Take one ball out of ``bin_index`` (churn support)."""
        if not 0 <= bin_index < self.n_bins:
            raise ValueError(f"bin index {bin_index} out of range")
        if self.loads[bin_index] <= 0:
            raise ValueError(f"cannot remove from empty bin {bin_index}")
        self.loads[bin_index] -= 1

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """The complete mutable state, JSON-serializable."""
        state: Dict[str, Any] = {
            "rng": self.rng.bit_generator.state,
            "scalars": {name: getattr(self, name) for name in self._STATE_SCALARS},
            "arrays": {
                name: _encode_array(getattr(self, name))
                for name in self._STATE_ARRAYS
            },
            "lists": {
                name: list(getattr(self, name)) for name in self._STATE_LISTS
            },
        }
        state.update(self._extra_state())
        return state

    def load_state(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`state_dict` capture (replaces the generator)."""
        self.rng = _rng_from_state(state["rng"])
        for name in self._STATE_SCALARS:
            setattr(self, name, state["scalars"][name])
        for name in self._STATE_ARRAYS:
            setattr(self, name, _decode_array(state["arrays"][name]))
        for name in self._STATE_LISTS:
            setattr(self, name, list(state["lists"][name]))
        self._load_extra_state(state)

    def _extra_state(self) -> Dict[str, Any]:
        return {}

    def _load_extra_state(self, state: Dict[str, Any]) -> None:
        pass


# ----------------------------------------------------------------------
# The paper's (k, d)-choice process (also Greedy[d] / two-choice via k=1)
# ----------------------------------------------------------------------
class KDChoiceStepper(OnlineStepper):
    """Streaming (k, d)-choice, unit = one round of ``k`` balls.

    Mirrors :class:`~repro.core.process.KDChoiceProcess` draw for draw:
    round samples come from ``(chunk, d)`` integer blocks of
    ``min(rounds remaining, chunk_rounds)`` rounds, and the policy draws its
    tie-breaks round by round from the shared generator.  ``step_block``
    rides the batch kernel of :mod:`repro.core.vectorized` (strict policy,
    full rounds only) and is bit-identical to repeated ``step()`` calls.
    """

    _STATE_SCALARS = OnlineStepper._STATE_SCALARS + (
        "_rounds_drawn",
        "_buffer_pos",
        "_tail_done",
    )
    _STATE_ARRAYS = OnlineStepper._STATE_ARRAYS + ("_buffer",)

    def __init__(
        self,
        n_bins: int,
        k: int,
        d: int,
        n_balls: Optional[int] = None,
        policy: str = "strict",
        seed: "int | np.random.SeedSequence | None" = None,
        rng: Optional[np.random.Generator] = None,
        chunk_rounds: Optional[int] = None,
    ) -> None:
        ProcessParams(n_bins=n_bins, n_balls=n_balls, k=k, d=d)
        chunk_rounds = _DEFAULT_CHUNK_ROUNDS if chunk_rounds is None else chunk_rounds
        if chunk_rounds <= 0:
            raise ValueError(f"chunk_rounds must be positive, got {chunk_rounds}")
        self.n_bins = n_bins
        self.k = k
        self.d = d
        self.policy = get_policy(policy)
        self.chunk_rounds = chunk_rounds
        self.rng = _make_rng(seed, rng)
        self.planned_balls = n_bins if n_balls is None else n_balls
        self.full_rounds, self.tail_balls = divmod(self.planned_balls, k)
        self.loads = np.zeros(n_bins, dtype=np.int64)
        self.messages = 0
        self.rounds = 0
        self.balls_emitted = 0
        self._rounds_drawn = 0
        self._buffer: Optional[np.ndarray] = None
        self._buffer_pos = 0
        self._tail_done = False
        self._batch_rounds = min(chunk_rounds, independent_batch_rounds(n_bins, d))

    def _refill(self) -> None:
        chunk = min(self.full_rounds - self._rounds_drawn, self.chunk_rounds)
        self._buffer = self.rng.integers(0, self.n_bins, size=(chunk, self.d))
        self._buffer_pos = 0
        self._rounds_drawn += chunk

    def _buffered_rounds(self) -> int:
        if self._buffer is None:
            return 0
        return len(self._buffer) - self._buffer_pos

    def step(self) -> List[int]:
        self._require_more()
        if self.rounds < self.full_rounds:
            if self._buffered_rounds() == 0:
                self._refill()
            row = self._buffer[self._buffer_pos].tolist()
            self._buffer_pos += 1
            destinations = self.policy.select(self.loads, row, self.k, self.rng)
            for bin_index in destinations:
                self.loads[bin_index] += 1
            self.rounds += 1
            self.messages += self.d
            self.balls_emitted += self.k
            return [int(b) for b in destinations]
        # The partial tail round (n_balls % k balls, still d probes).
        samples = self.rng.integers(0, self.n_bins, size=self.d).tolist()
        destinations = self.policy.select(
            self.loads, samples, self.tail_balls, self.rng
        )
        for bin_index in destinations:
            self.loads[bin_index] += 1
        self.rounds += 1
        self.messages += self.d
        self.balls_emitted += self.tail_balls
        self._tail_done = True
        return [int(b) for b in destinations]

    def step_block(self, max_balls: int) -> Optional[np.ndarray]:
        if self.policy.name != "strict":
            return None
        rounds_wanted = min(max_balls // self.k, self.full_rounds - self.rounds)
        if rounds_wanted <= 0:
            return None
        if self._buffered_rounds() == 0:
            self._refill()
        r = min(rounds_wanted, self._buffered_rounds())
        samples = self._buffer[self._buffer_pos : self._buffer_pos + r]
        self._buffer_pos += r
        if self.k == self.d:
            # Degenerate rounds: every sampled bin keeps its ball, and the
            # strict policy draws no tie-breaks.
            destinations = samples.reshape(-1).astype(np.int64, copy=True)
            self.loads += np.bincount(destinations, minlength=self.n_bins)
        else:
            ties = self.rng.random((r, self.d))
            destinations = np.empty((r, self.k), dtype=np.int64)
            for start in range(0, r, self._batch_rounds):
                stop = start + self._batch_rounds
                _select_batch(
                    self.loads,
                    samples[start:stop],
                    ties[start:stop],
                    self.k,
                    out=destinations[start:stop],
                )
            destinations = destinations.reshape(-1)
        self.rounds += r
        self.messages += r * self.d
        self.balls_emitted += r * self.k
        return destinations


# ----------------------------------------------------------------------
# Single choice (and SA(k, k) batched random via round_size)
# ----------------------------------------------------------------------
class SingleChoiceStepper(OnlineStepper):
    """Streaming single choice, unit = one ball.

    The scalar runner draws every destination in one ``size=n_balls`` block;
    the stepper does the same at construction and pops destinations off the
    pre-drawn array.  ``round_size`` only affects round accounting (the
    ``batch_random`` scheme reports ``ceil(n / k)`` rounds).
    """

    _STATE_SCALARS = ("messages", "balls_emitted", "_pos")
    _STATE_ARRAYS = OnlineStepper._STATE_ARRAYS + ("_choices",)

    def __init__(
        self,
        n_bins: int,
        n_balls: Optional[int] = None,
        seed: "int | np.random.SeedSequence | None" = None,
        rng: Optional[np.random.Generator] = None,
        round_size: int = 1,
    ) -> None:
        if n_bins <= 0:
            raise ValueError(f"n_bins must be positive, got {n_bins}")
        if n_balls is None:
            n_balls = n_bins
        if n_balls < 0:
            raise ValueError(f"n_balls must be non-negative, got {n_balls}")
        if round_size < 1:
            raise ValueError(f"round_size must be at least 1, got {round_size}")
        self.n_bins = n_bins
        self.planned_balls = n_balls
        self.round_size = round_size
        self.rng = _make_rng(seed, rng)
        self._choices = self.rng.integers(0, n_bins, size=n_balls)
        self.loads = np.zeros(n_bins, dtype=np.int64)
        self.messages = 0
        self.balls_emitted = 0
        self._pos = 0

    @property
    def rounds(self) -> int:
        return -(-self.balls_emitted // self.round_size)

    def step(self) -> List[int]:
        self._require_more()
        bin_index = int(self._choices[self._pos])
        self._pos += 1
        self.loads[bin_index] += 1
        self.messages += 1
        self.balls_emitted += 1
        return [bin_index]

    def step_block(self, max_balls: int) -> Optional[np.ndarray]:
        take = min(max_balls, self.planned_balls - self.balls_emitted)
        if take <= 0:
            return None
        destinations = self._choices[self._pos : self._pos + take].astype(
            np.int64, copy=True
        )
        self._pos += take
        self.loads += np.bincount(destinations, minlength=self.n_bins)
        self.messages += take
        self.balls_emitted += take
        return destinations


# ----------------------------------------------------------------------
# Weighted (k, d)-choice
# ----------------------------------------------------------------------
class WeightedKDChoiceStepper(OnlineStepper):
    """Streaming weighted (k, d)-choice, unit = one round.

    The ball weights are materialized up front (the reference engines call
    :func:`~repro.core.weighted.make_weights` before placing anything), so
    streamed items carry the spec's weights, not caller-supplied ones.
    Samples and tie-breaks are drawn in the scalar engine's paired
    ``(chunk, d)`` blocks; ``step_block`` rides the speculate-verify weighted
    batch kernel.  ``loads`` exposes ball counts (the unit-invariant view);
    ``weighted_loads`` the per-bin total weight.
    """

    _STATE_SCALARS = OnlineStepper._STATE_SCALARS + (
        "_rounds_drawn",
        "_buffer_pos",
        "_tail_done",
        "_weight_pos",
    )
    _STATE_ARRAYS = (
        "loads",
        "weighted_loads",
        "_weights",
        "_buffer_samples",
        "_buffer_ties",
    )

    def __init__(
        self,
        n_bins: int,
        k: int,
        d: int,
        weights: WeightSpec = "exponential",
        n_balls: Optional[int] = None,
        mean_weight: float = 1.0,
        seed: "int | np.random.SeedSequence | None" = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        ProcessParams(n_bins=n_bins, n_balls=None, k=k, d=d)
        self.n_bins = n_bins
        self.k = k
        self.d = d
        self.rng = _make_rng(seed, rng)
        self.planned_balls = n_bins if n_balls is None else n_balls
        self._weights = make_weights(
            weights, self.planned_balls, self.rng, mean_weight=mean_weight
        )
        self.full_rounds, self.tail_balls = divmod(self.planned_balls, k)
        self.weighted_loads = np.zeros(n_bins, dtype=float)
        self.loads = np.zeros(n_bins, dtype=np.int64)  # ball counts
        self.messages = 0
        self.rounds = 0
        self.balls_emitted = 0
        self._rounds_drawn = 0
        self._buffer_samples: Optional[np.ndarray] = None
        self._buffer_ties: Optional[np.ndarray] = None
        self._buffer_pos = 0
        self._weight_pos = 0
        self._tail_done = False
        self._batch_rounds = speculative_batch_rows(n_bins, k * d)
        self._scratch = ConflictScratch(n_bins)

    def ball_weight(self, ball_index: int) -> float:
        """The weight the stream's ``ball_index``-th ball carries."""
        round_index, position = divmod(ball_index, self.k)
        if round_index < self.full_rounds:
            start = round_index * self.k
            ordered = np.sort(self._weights[start : start + self.k])[::-1]
        else:
            ordered = np.sort(self._weights[self.full_rounds * self.k :])[::-1]
        return float(ordered[position])

    def _refill(self) -> None:
        chunk = min(
            self.full_rounds - self._rounds_drawn, _DEFAULT_CHUNK_ROUNDS
        )
        self._buffer_samples = self.rng.integers(
            0, self.n_bins, size=(chunk, self.d)
        )
        self._buffer_ties = self.rng.random((chunk, self.d))
        self._buffer_pos = 0
        self._rounds_drawn += chunk

    def _buffered_rounds(self) -> int:
        if self._buffer_samples is None:
            return 0
        return len(self._buffer_samples) - self._buffer_pos

    def step(self) -> List[int]:
        self._require_more()
        if self.rounds < self.full_rounds:
            if self._buffered_rounds() == 0:
                self._refill()
            row = self._buffer_samples[self._buffer_pos].tolist()
            ties = self._buffer_ties[self._buffer_pos]
            self._buffer_pos += 1
            batch_weights = np.sort(
                self._weights[self._weight_pos : self._weight_pos + self.k]
            )[::-1]
            destinations = weighted_round_apply(
                self.weighted_loads,
                self.loads,
                row,
                ties,
                batch_weights,
                float(batch_weights.mean()),
            )
            self._weight_pos += self.k
            self.rounds += 1
            self.messages += self.d
            self.balls_emitted += self.k
            return [int(b) for b in destinations]
        batch_weights = np.sort(self._weights[self.full_rounds * self.k :])[::-1]
        samples = self.rng.integers(0, self.n_bins, size=self.d)
        ties = self.rng.random(self.d)
        destinations = weighted_round_apply(
            self.weighted_loads,
            self.loads,
            samples.tolist(),
            ties,
            batch_weights,
            float(batch_weights.mean()),
        )
        self.rounds += 1
        self.messages += self.d
        self.balls_emitted += self.tail_balls
        self._tail_done = True
        return [int(b) for b in destinations]

    def step_block(self, max_balls: int) -> Optional[np.ndarray]:
        rounds_wanted = min(max_balls // self.k, self.full_rounds - self.rounds)
        if rounds_wanted <= 0:
            return None
        if self._buffered_rounds() == 0:
            self._refill()
        r = min(rounds_wanted, self._buffered_rounds())
        samples = self._buffer_samples[self._buffer_pos : self._buffer_pos + r]
        ties = self._buffer_ties[self._buffer_pos : self._buffer_pos + r]
        self._buffer_pos += r
        block_weights = np.sort(
            self._weights[self._weight_pos : self._weight_pos + r * self.k].reshape(
                r, self.k
            ),
            axis=1,
        )[:, ::-1]
        increments = block_weights.mean(axis=1)
        destinations = np.empty((r, self.k), dtype=np.int64)
        for start in range(0, r, self._batch_rounds):
            stop = min(start + self._batch_rounds, r)
            _weighted_batch(
                self.weighted_loads,
                self.loads,
                samples[start:stop],
                ties[start:stop],
                block_weights[start:stop],
                increments[start:stop],
                self.k,
                self._scratch,
                out=destinations[start:stop],
            )
        self._weight_pos += r * self.k
        self.rounds += r
        self.messages += r * self.d
        self.balls_emitted += r * self.k
        return destinations.reshape(-1)

    def remove_ball(self, bin_index: int, ball_index: Optional[int] = None) -> None:
        if ball_index is None:
            raise ValueError(
                "removing a weighted ball requires its ball index (track "
                "items through the allocator) so its weight can be returned"
            )
        super().remove_ball(bin_index)
        self.weighted_loads[bin_index] -= self.ball_weight(ball_index)


# ----------------------------------------------------------------------
# Stale load information (parallel epochs)
# ----------------------------------------------------------------------
class StaleKDChoiceStepper(OnlineStepper):
    """Streaming stale (k, d)-choice, unit = one round of an epoch.

    Probes of an epoch see the loads as of the epoch start; placements apply
    when the epoch's last round has been emitted — exactly the scalar
    process, so committed ``loads`` lag the emitted stream by design.
    """

    _STATE_SCALARS = OnlineStepper._STATE_SCALARS + ("_epoch_pos",)
    _STATE_ARRAYS = OnlineStepper._STATE_ARRAYS + (
        "_epoch_rows",
        "_epoch_ties",
        "_snapshot",
    )
    _STATE_LISTS = ("_epoch_pending",)

    def __init__(
        self,
        n_bins: int,
        k: int,
        d: int,
        stale_rounds: int = 1,
        n_balls: Optional[int] = None,
        policy: str = "strict",
        seed: "int | np.random.SeedSequence | None" = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        ProcessParams(n_bins=n_bins, n_balls=None, k=k, d=d)
        if stale_rounds < 1:
            raise ValueError(f"stale_rounds must be at least 1, got {stale_rounds}")
        self.n_bins = n_bins
        self.k = k
        self.d = d
        self.stale_rounds = stale_rounds
        self.policy = get_policy(policy)
        self.rng = _make_rng(seed, rng)
        self.planned_balls = n_bins if n_balls is None else n_balls
        self.loads = np.zeros(n_bins, dtype=np.int64)
        self.messages = 0
        self.rounds = 0
        self.balls_emitted = 0
        self._epoch_rows: Optional[np.ndarray] = None
        self._epoch_ties: Optional[np.ndarray] = None
        self._snapshot: Optional[np.ndarray] = None
        self._epoch_pos = 0
        self._epoch_pending: List[int] = []

    def _begin_epoch(self) -> None:
        remaining = self.planned_balls - self.balls_emitted
        epoch_rounds = min(self.stale_rounds, -(-remaining // self.k))
        self._epoch_rows = self.rng.integers(
            0, self.n_bins, size=(epoch_rounds, self.d)
        )
        strict = self.policy.name == "strict"
        self._epoch_ties = (
            self.rng.random((epoch_rounds, self.d))
            if strict and self.k < self.d
            else None
        )
        self._snapshot = self.loads.copy()
        self._epoch_pos = 0
        self._epoch_pending = []

    def _finish_round(self, destinations: List[int], batch: int) -> List[int]:
        self._epoch_pending.extend(int(b) for b in destinations)
        self._epoch_pos += 1
        self.rounds += 1
        self.messages += self.d
        self.balls_emitted += batch
        if self._epoch_pos == len(self._epoch_rows):
            np.add.at(
                self.loads, np.asarray(self._epoch_pending, dtype=np.int64), 1
            )
            self._epoch_rows = None
            self._epoch_ties = None
            self._snapshot = None
            self._epoch_pending = []
        return [int(b) for b in destinations]

    def remove_ball(self, bin_index: int, ball_index: Optional[int] = None) -> None:
        """Take one ball out of ``bin_index``, committed or epoch-pending.

        A churned item may have been placed in the *current* epoch, whose
        placements have not been applied to ``loads`` yet; such a removal
        cancels the pending placement instead (the eventual loads are the
        same either way, and the epoch's probes keep seeing the epoch-start
        snapshot by definition).
        """
        if not 0 <= bin_index < self.n_bins:
            raise ValueError(f"bin index {bin_index} out of range")
        if self.loads[bin_index] > 0:
            self.loads[bin_index] -= 1
        elif bin_index in self._epoch_pending:
            self._epoch_pending.remove(bin_index)
        else:
            raise ValueError(f"cannot remove from empty bin {bin_index}")

    def step(self) -> List[int]:
        remaining = self._require_more()
        if self._epoch_rows is None:
            self._begin_epoch()
        row = self._epoch_rows[self._epoch_pos].tolist()
        batch = min(self.k, remaining)
        strict = self.policy.name == "strict"
        if not strict:
            destinations = self.policy.select(self._snapshot, row, batch, self.rng)
        elif batch == self.d:
            destinations = row
        elif self._epoch_ties is not None:
            destinations = strict_select(
                self._snapshot, row, batch, self._epoch_ties[self._epoch_pos]
            )
        else:  # k == d but a partial final round
            destinations = strict_select(
                self._snapshot, row, batch, self.rng.random(self.d)
            )
        return self._finish_round(destinations, batch)

    def step_block(self, max_balls: int) -> Optional[np.ndarray]:
        if self.policy.name != "strict" or self.k == self.d:
            return None
        if self._epoch_rows is None:
            if max_balls < min(self.k, self.planned_balls - self.balls_emitted):
                return None
            self._begin_epoch()
        # Whole full rounds still pending in this epoch; the partial tail
        # round (if this epoch carries one) falls back to step().
        full_left = len(self._epoch_rows) - self._epoch_pos
        if (
            self.balls_emitted + full_left * self.k > self.planned_balls
        ):  # epoch ends with a partial round
            full_left -= 1
        r = min(max_balls // self.k, full_left)
        if r <= 0:
            return None
        rows = self._epoch_rows[self._epoch_pos : self._epoch_pos + r]
        ties = self._epoch_ties[self._epoch_pos : self._epoch_pos + r]
        destinations = strict_select_rows(
            self._snapshot, rows, ties, self.k, ordered=True
        )
        flat = destinations.reshape(-1)
        self._epoch_pending.extend(int(b) for b in flat)
        self._epoch_pos += r
        self.rounds += r
        self.messages += r * self.d
        self.balls_emitted += r * self.k
        if self._epoch_pos == len(self._epoch_rows):
            np.add.at(
                self.loads, np.asarray(self._epoch_pending, dtype=np.int64), 1
            )
            self._epoch_rows = None
            self._epoch_ties = None
            self._snapshot = None
            self._epoch_pending = []
        return flat.copy()


# ----------------------------------------------------------------------
# (1 + beta)-choice
# ----------------------------------------------------------------------
class OnePlusBetaStepper(OnlineStepper):
    """Streaming (1 + β)-choice, unit = one ball.

    Blocks mirror the scalar runner: per ``min(remaining, 8192)`` balls, one
    coin block (β-thresholded doubles), then the two probe blocks.
    """

    _STATE_SCALARS = ("messages", "balls_emitted", "_pos", "_balls_drawn")
    _STATE_ARRAYS = OnlineStepper._STATE_ARRAYS + ("_coins", "_first", "_second")

    def __init__(
        self,
        n_bins: int,
        beta: float,
        n_balls: Optional[int] = None,
        seed: "int | np.random.SeedSequence | None" = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not 0.0 <= beta <= 1.0:
            raise ValueError(f"beta must lie in [0, 1], got {beta}")
        if n_bins <= 0:
            raise ValueError(f"n_bins must be positive, got {n_bins}")
        self.n_bins = n_bins
        self.beta = beta
        self.rng = _make_rng(seed, rng)
        self.planned_balls = n_bins if n_balls is None else n_balls
        self.loads = np.zeros(n_bins, dtype=np.int64)
        self.messages = 0
        self.balls_emitted = 0
        self._coins: Optional[np.ndarray] = None
        self._first: Optional[np.ndarray] = None
        self._second: Optional[np.ndarray] = None
        self._pos = 0
        self._balls_drawn = 0
        self._scratch = ConflictScratch(n_bins)
        self._sub_rows = speculative_batch_rows(n_bins, 2)

    @property
    def rounds(self) -> int:
        return self.balls_emitted

    def _refill(self) -> None:
        batch = min(self.planned_balls - self._balls_drawn, _BALL_CHUNK)
        self._coins = self.rng.random(batch) < self.beta
        self._first = self.rng.integers(0, self.n_bins, size=batch)
        self._second = self.rng.integers(0, self.n_bins, size=batch)
        self._pos = 0
        self._balls_drawn += batch

    def _buffered(self) -> int:
        if self._coins is None:
            return 0
        return len(self._coins) - self._pos

    def step(self) -> List[int]:
        self._require_more()
        if self._buffered() == 0:
            self._refill()
        position = self._pos
        self._pos += 1
        a = int(self._first[position])
        if self._coins[position]:
            b = int(self._second[position])
            target = a if self.loads[a] <= self.loads[b] else b
            self.messages += 2
        else:
            target = a
            self.messages += 1
        self.loads[target] += 1
        self.balls_emitted += 1
        return [target]

    def step_block(self, max_balls: int) -> Optional[np.ndarray]:
        if max_balls <= 0 or self.exhausted:
            return None
        if self._buffered() == 0:
            self._refill()
        take = min(max_balls, self._buffered())
        out = np.empty(take, dtype=np.int64)
        done = 0
        while done < take:
            stop = min(done + self._sub_rows, take)
            a = self._first[self._pos + done : self._pos + stop]
            b = self._second[self._pos + done : self._pos + stop]
            two = self._coins[self._pos + done : self._pos + stop]
            destinations = np.where(
                two, np.where(self.loads[a] <= self.loads[b], a, b), a
            )
            reads = np.stack([a, np.where(two, b, a)], axis=1)
            suspect = prefix_conflicts(reads, destinations, self._scratch)
            for seg_start, seg_stop, suspect_index in clean_segments(suspect):
                self.loads[destinations[seg_start:seg_stop]] += 1
                if suspect_index >= 0:
                    if two[suspect_index]:
                        x, y = int(a[suspect_index]), int(b[suspect_index])
                        chosen = x if self.loads[x] <= self.loads[y] else y
                    else:
                        chosen = int(a[suspect_index])
                    self.loads[chosen] += 1
                    destinations[suspect_index] = chosen
            out[done:stop] = destinations
            self.messages += len(two) + int(two.sum())
            done = stop
        self._pos += take
        self.balls_emitted += take
        return out


# ----------------------------------------------------------------------
# Always-Go-Left
# ----------------------------------------------------------------------
class AlwaysGoLeftStepper(OnlineStepper):
    """Streaming Always-Go-Left, unit = one ball.

    One ``(batch, d)`` uniform block per ``min(remaining, 8192)`` balls,
    scaled into the ``d`` group ranges exactly like the scalar runner.
    """

    _STATE_SCALARS = ("messages", "balls_emitted", "_pos", "_balls_drawn")
    _STATE_ARRAYS = OnlineStepper._STATE_ARRAYS + ("_probes",)

    def __init__(
        self,
        n_bins: int,
        d: int,
        n_balls: Optional[int] = None,
        seed: "int | np.random.SeedSequence | None" = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if d < 1:
            raise ValueError(f"d must be at least 1, got {d}")
        if n_bins < d:
            raise ValueError(f"need n_bins >= d groups, got n_bins={n_bins}, d={d}")
        self.n_bins = n_bins
        self.d = d
        self.rng = _make_rng(seed, rng)
        self.planned_balls = n_bins if n_balls is None else n_balls
        self._boundaries = np.linspace(0, n_bins, d + 1).astype(np.int64)
        self._group_sizes = np.diff(self._boundaries)
        if np.any(self._group_sizes == 0):
            raise ValueError("every group must contain at least one bin")
        self.loads = np.zeros(n_bins, dtype=np.int64)
        self.messages = 0
        self.balls_emitted = 0
        self._probes: Optional[np.ndarray] = None
        self._pos = 0
        self._balls_drawn = 0
        self._scratch = ConflictScratch(n_bins)
        self._sub_rows = speculative_batch_rows(n_bins, d, replays=6)

    @property
    def rounds(self) -> int:
        return self.balls_emitted

    def _refill(self) -> None:
        batch = min(self.planned_balls - self._balls_drawn, _BALL_CHUNK)
        uniform = self.rng.random(size=(batch, self.d))
        self._probes = (
            self._boundaries[:-1] + uniform * self._group_sizes
        ).astype(np.int64)
        self._pos = 0
        self._balls_drawn += batch

    def _buffered(self) -> int:
        if self._probes is None:
            return 0
        return len(self._probes) - self._pos

    def step(self) -> List[int]:
        self._require_more()
        if self._buffered() == 0:
            self._refill()
        row = self._probes[self._pos].tolist()
        self._pos += 1
        target = least_loaded_probe(self.loads, row)
        self.loads[target] += 1
        self.messages += self.d
        self.balls_emitted += 1
        return [int(target)]

    def step_block(self, max_balls: int) -> Optional[np.ndarray]:
        if max_balls <= 0 or self.exhausted:
            return None
        if self._buffered() == 0:
            self._refill()
        take = min(max_balls, self._buffered())
        out = np.empty(take, dtype=np.int64)
        done = 0
        while done < take:
            stop = min(done + self._sub_rows, take)
            rows = self._probes[self._pos + done : self._pos + stop]
            columns = np.argmin(self.loads[rows], axis=1)  # earliest min = left
            destinations = rows[np.arange(len(rows)), columns]
            suspect = prefix_conflicts(rows, destinations, self._scratch)
            for seg_start, seg_stop, suspect_index in clean_segments(suspect):
                self.loads[destinations[seg_start:seg_stop]] += 1
                if suspect_index >= 0:
                    chosen = least_loaded_probe(
                        self.loads, rows[suspect_index].tolist()
                    )
                    self.loads[chosen] += 1
                    destinations[suspect_index] = chosen
            out[done:stop] = destinations
            done = stop
        self._pos += take
        self.messages += take * self.d
        self.balls_emitted += take
        return out


# ----------------------------------------------------------------------
# Adaptive comparators
# ----------------------------------------------------------------------
class ThresholdAdaptiveStepper(OnlineStepper):
    """Streaming threshold probing, unit = one ball.

    Mirrors the scalar runner including its per-ball threshold evaluation,
    so callable thresholds stream too (they stay scalar-only in the batch
    engine).  No vectorized block path: the probe budget is data-dependent.
    """

    _STATE_SCALARS = ("messages", "balls_emitted", "_pos", "_balls_drawn")
    _STATE_ARRAYS = OnlineStepper._STATE_ARRAYS + ("_probes",)

    def __init__(
        self,
        n_bins: int,
        n_balls: Optional[int] = None,
        threshold: "int | None" = None,
        max_probes: Optional[int] = None,
        seed: "int | np.random.SeedSequence | None" = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if n_bins <= 0:
            raise ValueError(f"n_bins must be positive, got {n_bins}")
        self.n_bins = n_bins
        self.planned_balls = n_bins if n_balls is None else n_balls
        if max_probes is None:
            max_probes = max(2, int(np.ceil(np.log2(max(n_bins, 2)))))
        if max_probes < 1:
            raise ValueError(f"max_probes must be at least 1, got {max_probes}")
        self.max_probes = max_probes
        if threshold is None:
            self._threshold_fn = lambda average: int(np.ceil(average)) + 1
        elif callable(threshold):
            self._threshold_fn = threshold
        else:
            fixed = int(threshold)
            self._threshold_fn = lambda average: fixed
        self.rng = _make_rng(seed, rng)
        self.loads = np.zeros(n_bins, dtype=np.int64)
        self.messages = 0
        self.balls_emitted = 0
        self.probe_histogram: Dict[int, int] = {}
        self._probes: Optional[np.ndarray] = None
        self._pos = 0
        self._balls_drawn = 0

    @property
    def rounds(self) -> int:
        return self.balls_emitted

    def _refill(self) -> None:
        batch = min(self.planned_balls - self._balls_drawn, _BALL_CHUNK)
        self._probes = self.rng.integers(
            0, self.n_bins, size=(batch, self.max_probes)
        )
        self._pos = 0
        self._balls_drawn += batch

    def step(self) -> List[int]:
        self._require_more()
        if self._probes is None or self._pos >= len(self._probes):
            self._refill()
        row = self._probes[self._pos].tolist()
        self._pos += 1
        limit = self._threshold_fn(self.balls_emitted / self.n_bins)
        best_bin, used = threshold_place(self.loads, row, limit)
        self.loads[best_bin] += 1
        self.messages += used
        self.probe_histogram[used] = self.probe_histogram.get(used, 0) + 1
        self.balls_emitted += 1
        return [int(best_bin)]

    def _extra_state(self) -> Dict[str, Any]:
        return {
            "probe_histogram": sorted(self.probe_histogram.items()),
        }

    def _load_extra_state(self, state: Dict[str, Any]) -> None:
        self.probe_histogram = {
            int(used): int(count) for used, count in state["probe_histogram"]
        }


class TwoPhaseAdaptiveStepper(OnlineStepper):
    """Streaming two-phase adaptive allocation, unit = one ball."""

    _STATE_SCALARS = (
        "messages",
        "balls_emitted",
        "retries",
        "_pos",
        "_balls_drawn",
    )
    _STATE_ARRAYS = OnlineStepper._STATE_ARRAYS + ("_first", "_fallback")

    def __init__(
        self,
        n_bins: int,
        n_balls: Optional[int] = None,
        cap: Optional[int] = None,
        retry_probes: int = 4,
        seed: "int | np.random.SeedSequence | None" = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if n_bins <= 0:
            raise ValueError(f"n_bins must be positive, got {n_bins}")
        if retry_probes < 1:
            raise ValueError(f"retry_probes must be at least 1, got {retry_probes}")
        self.n_bins = n_bins
        self.planned_balls = n_bins if n_balls is None else n_balls
        self.retry_probes = retry_probes
        self.cap = (
            int(np.ceil(self.planned_balls / n_bins)) + 2 if cap is None else cap
        )
        self.rng = _make_rng(seed, rng)
        self.loads = np.zeros(n_bins, dtype=np.int64)
        self.messages = 0
        self.balls_emitted = 0
        self.retries = 0
        self._first: Optional[np.ndarray] = None
        self._fallback: Optional[np.ndarray] = None
        self._pos = 0
        self._balls_drawn = 0

    @property
    def rounds(self) -> int:
        return self.balls_emitted

    def _refill(self) -> None:
        batch = min(self.planned_balls - self._balls_drawn, _BALL_CHUNK)
        self._first = self.rng.integers(0, self.n_bins, size=batch)
        self._fallback = self.rng.integers(
            0, self.n_bins, size=(batch, self.retry_probes)
        )
        self._pos = 0
        self._balls_drawn += batch

    def step(self) -> List[int]:
        self._require_more()
        if self._first is None or self._pos >= len(self._first):
            self._refill()
        primary = int(self._first[self._pos])
        row = self._fallback[self._pos].tolist()
        self._pos += 1
        self.messages += 1
        best_bin, retried = two_phase_place(self.loads, primary, row, self.cap)
        if retried:
            self.retries += 1
            self.messages += self.retry_probes
        self.loads[best_bin] += 1
        self.balls_emitted += 1
        return [int(best_bin)]
