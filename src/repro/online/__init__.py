"""repro.online — the streaming allocation service.

Where :func:`repro.api.simulate` answers "throw n balls and show me the end
state", this package serves the opposite, production-shaped question: a
long-lived allocator that places (and retires) items one request at a time,
exposes live telemetry, persists its state, and can be driven by recorded
traces — while staying **bit-for-bit identical** to the batch engines for
the same spec and seed.

Key pieces
----------
:class:`OnlineAllocator`
    ``place()`` / ``place_batch()`` / ``remove()`` over any scheme
    registered ``online=``; ``snapshot()`` / ``restore()`` for persistence.
:class:`~repro.online.telemetry.LoadTelemetry`
    O(1)-update counters plus a bounded ring of periodic percentile samples.
:mod:`~repro.online.trace`
    Versioned JSONL traces: :func:`~repro.online.trace.record_workload`
    captures a workload (substrate arrival processes, churn) once;
    :func:`~repro.online.trace.replay_trace` replays it deterministically
    across engines.  CLI: ``repro stream`` / ``repro replay``.
:mod:`~repro.online.steppers`
    The per-scheme streaming engines underneath, mirroring each scalar
    runner's RNG blocks exactly.
"""

from .allocator import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    OnlineAllocator,
    OnlineAllocatorError,
    load_snapshot,
    snapshot_digest,
    write_snapshot,
)
from .steppers import OnlineStepper, StreamExhausted
from .telemetry import LoadTelemetry, TelemetrySample
from .trace import (
    TRACE_FORMAT,
    TRACE_VERSION,
    ReplaySummary,
    TraceError,
    TraceHeader,
    TraceWriter,
    generate_workload_events,
    read_trace,
    record_workload,
    replay_trace,
    run_events,
    stream_workload,
)

__all__ = [
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "LoadTelemetry",
    "OnlineAllocator",
    "OnlineAllocatorError",
    "OnlineStepper",
    "ReplaySummary",
    "StreamExhausted",
    "TelemetrySample",
    "TraceError",
    "TraceHeader",
    "TraceWriter",
    "generate_workload_events",
    "load_snapshot",
    "read_trace",
    "record_workload",
    "replay_trace",
    "run_events",
    "snapshot_digest",
    "stream_workload",
    "write_snapshot",
]
