"""The streaming allocation service: place items one request at a time.

An :class:`OnlineAllocator` is the long-lived, stateful counterpart of
:func:`repro.api.simulate`: built from the same :class:`~repro.api.SchemeSpec`,
it places (and retires) items incrementally while exposing live telemetry —
the shape a load balancer in front of real traffic needs, rather than the
batch "throw n balls, read the result" shape.

The central guarantee is **batch parity**: for any scheme registered with an
``online=`` stepper, streaming the spec's ``n_balls`` items through
:meth:`place` (or :meth:`place_batch`, or any mix) produces a load vector,
message/round accounting *and generator state* bit-for-bit identical to
``simulate(spec)``.  Removals (:meth:`remove`) deliberately leave that
envelope — they mutate state no batch run has — but stay deterministic:
the same event sequence always produces the same placements, regardless of
how the events were grouped into batches.

:meth:`snapshot` captures the complete allocator state (bin loads, buffered
RNG blocks, the generator itself, item tracking) as one JSON-serializable
document; :meth:`restore` resumes it bit-identically — the persistence story
for long-lived services and for the trace tooling's ``--snapshot-every``.

Examples
--------
>>> from repro.api import SchemeSpec
>>> from repro.online import OnlineAllocator
>>> spec = SchemeSpec(scheme="kd_choice",
...                   params={"n_bins": 256, "k": 2, "d": 4}, seed=7)
>>> allocator = OnlineAllocator(spec)
>>> first_bin = allocator.place()
>>> rest = allocator.place_batch(255)
>>> allocator.loads.sum() == 256
True
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import deque
from typing import Any, Deque, Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from ..api.engine import build_runner_kwargs
from ..api.registry import (
    compiled_fastpath_reason,
    compiled_unsupported_reason,
    get_scheme,
    online_unsupported_reason,
)
from ..api.spec import SchemeSpec
from .steppers import OnlineStepper, StreamExhausted
from .telemetry import LoadTelemetry

__all__ = [
    "OnlineAllocatorError",
    "OnlineAllocator",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "snapshot_digest",
    "load_snapshot",
    "write_snapshot",
]

SNAPSHOT_FORMAT = "repro-online-snapshot"
SNAPSHOT_VERSION = 1

_UNSET = object()


class OnlineAllocatorError(ValueError):
    """Raised for unsupported schemes, exhausted streams and bad requests."""


def snapshot_digest(snapshot: Dict[str, Any]) -> str:
    """SHA-256 of a snapshot document's canonical JSON serialization.

    The integrity hook for anything that stores snapshots outside this
    process: the cross-shard manifests of :mod:`repro.serve` record one
    digest per shard so a restore can verify every shard document before
    any allocator state is rebuilt.

    The telemetry ``wall_time`` anchor is excluded: it advances with the
    wall clock between otherwise-identical snapshots, and the digest
    identifies *stream state* — two snapshots of the same allocator state
    must hash the same no matter when they were taken.
    """
    telemetry = snapshot.get("telemetry")
    if isinstance(telemetry, dict) and "wall_time" in telemetry:
        snapshot = dict(snapshot)
        snapshot["telemetry"] = {
            key: value for key, value in telemetry.items() if key != "wall_time"
        }
    payload = json.dumps(snapshot, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def write_snapshot(path: Any, snapshot: Dict[str, Any]) -> None:
    """Write a snapshot document to ``path`` atomically.

    The document lands under a ``*.tmp`` sibling first and is moved into
    place with :func:`os.replace`, so a process killed mid-write can never
    leave a torn snapshot at the target path — at worst a stale ``.tmp``
    file next to an intact (old or absent) snapshot.
    """
    target = os.fspath(path)
    tmp = f"{target}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle)
    os.replace(tmp, target)


def load_snapshot(path: Any) -> Dict[str, Any]:
    """Read a snapshot document from disk, rejecting torn/corrupt files.

    A truncated or otherwise non-JSON file raises a clean
    :class:`OnlineAllocatorError` naming the path (instead of a raw
    ``json.JSONDecodeError`` from deep inside a restore).
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            snapshot = json.load(handle)
        except json.JSONDecodeError as exc:
            raise OnlineAllocatorError(
                f"snapshot file {os.fspath(path)!r} is truncated or corrupt "
                f"(invalid JSON at line {exc.lineno}, column {exc.colno}); "
                f"it cannot be restored"
            ) from None
    if not isinstance(snapshot, dict):
        raise OnlineAllocatorError(
            f"snapshot file {os.fspath(path)!r} does not contain a snapshot "
            f"document (got {type(snapshot).__name__})"
        )
    return snapshot


class OnlineAllocator:
    """Stateful per-request allocator over any ``online=``-capable scheme.

    Parameters
    ----------
    spec:
        The scheme configuration.  ``spec.engine`` selects the ingestion
        mode for :meth:`place_batch`: ``"scalar"`` steps unit by unit,
        ``"auto"``/``"vectorized"`` ride the batch kernels (bit-identical,
        only faster).  The spec's ``n_balls`` (default ``n_bins``) fixes the
        planned stream length — the reference engines size their RNG chunks
        by it, so it is part of the reproducibility contract.
    seed:
        Optional override of ``spec.seed`` (e.g. a SeedTree-derived trial
        seed), leaving the spec untouched.
    telemetry:
        A :class:`~repro.online.telemetry.LoadTelemetry` to use; a default
        one is created otherwise.
    track_items:
        Track every placement's item id (auto-assigned sequence numbers when
        :meth:`place` is called without one) so :meth:`remove` can find it.
        Off by default — a million-item stream should not pay for a dict it
        never reads.
    """

    def __init__(
        self,
        spec: SchemeSpec,
        *,
        seed: Any = _UNSET,
        telemetry: Optional[LoadTelemetry] = None,
        track_items: bool = False,
    ) -> None:
        if not isinstance(spec, SchemeSpec):
            raise OnlineAllocatorError(
                f"spec must be a SchemeSpec, got {type(spec).__name__}"
            )
        info = get_scheme(spec.scheme)
        reason = online_unsupported_reason(info, spec.policy, spec.params)
        if reason is not None:
            raise OnlineAllocatorError(reason)
        self.spec = spec
        kwargs = build_runner_kwargs(
            spec, info, spec.seed if seed is _UNSET else seed
        )
        stepper = info.online(**kwargs)
        if not isinstance(stepper, OnlineStepper):
            raise TypeError(
                f"scheme {info.name!r} registered an online factory that "
                f"returned {type(stepper).__name__}, expected an OnlineStepper"
            )
        self._stepper = stepper
        # Kernel-mode resolution mirrors the batch engine's resolve_engine:
        # a forced engine="compiled" must run compiled or fail loudly, while
        # the REPRO_KERNEL=compiled preference under "auto" upgrades the
        # block ingestion path only when the full fast path (scheme
        # coverage, parameters, backend) applies.  The mode is a speed
        # choice, not state — restore() re-resolves it for the restoring
        # host, so a snapshot taken on a compiled host replays bit-
        # identically on a pure-Python one.
        if spec.engine == "compiled":
            reason = compiled_unsupported_reason(
                info, spec.policy, spec.params, probe_backend=True
            )
            if reason is not None:
                raise OnlineAllocatorError(reason)
            stepper.set_kernel_mode("compiled")
        elif spec.engine == "auto":
            preference = os.environ.get("REPRO_KERNEL", "").strip().lower()
            if preference == "compiled":
                reason = compiled_fastpath_reason(
                    info, spec.policy, spec.params, probe_backend=True
                )
                if reason is None:
                    stepper.set_kernel_mode("compiled")
        self.telemetry = telemetry if telemetry is not None else LoadTelemetry()
        self._pending: Deque[int] = deque()
        self._track_items = bool(track_items)
        self._items: Dict[Any, Tuple[int, int]] = {}  # item -> (seq, bin)
        self.placed = 0
        self.removed = 0
        self._use_blocks = spec.engine != "scalar"

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def stepper(self) -> OnlineStepper:
        """The underlying scheme stepper (loads, messages, rounds)."""
        return self._stepper

    @property
    def n_bins(self) -> int:
        return self._stepper.n_bins

    @property
    def loads(self) -> np.ndarray:
        """Committed per-bin loads (stale epochs commit at epoch end)."""
        return self._stepper.loads

    @property
    def capacity(self) -> int:
        """The planned stream length (the spec's ``n_balls``)."""
        return self._stepper.planned_balls

    @property
    def remaining(self) -> int:
        """Items that can still be placed before the stream is exhausted."""
        return self.capacity - self.placed

    @property
    def max_load(self) -> int:
        loads = self._stepper.loads
        return int(loads.max()) if loads.size else 0

    @property
    def gap(self) -> float:
        loads = self._stepper.loads
        return float(self.max_load - loads.sum() / self.n_bins)

    def items(self) -> Dict[Any, int]:
        """Tracked live items mapped to their bins."""
        return {item: bin_index for item, (_, bin_index) in self._items.items()}

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def place(self, item: Any = None) -> int:
        """Place the next item; returns its destination bin.

        ``item`` (any hashable id) registers the placement for later
        :meth:`remove`; without one, placements are tracked only when the
        allocator was built with ``track_items=True`` (under their sequence
        number).
        """
        # Validate before the stepper consumes a ball: a rejected request
        # must not leave a phantom placement behind.  Auto-assigned sequence
        # keys are checked too — an explicit integer id that collides with a
        # later sequence number must fail loudly, not be silently overwritten
        # (remove() would then retire the wrong ball).
        tracking = item is not None or self._track_items
        key = item if item is not None else self.placed
        if tracking and key in self._items:
            raise OnlineAllocatorError(f"item {key!r} is already placed")
        if not self._pending:
            try:
                self._pending.extend(self._stepper.step())
            except StreamExhausted as exc:
                raise OnlineAllocatorError(str(exc)) from None
        bin_index = self._pending.popleft()
        sequence = self.placed
        self.placed += 1
        if tracking:
            self._items[key] = (sequence, bin_index)
        self.telemetry.record_place(
            bin_index, int(self._stepper.loads[bin_index])
        )
        self.telemetry.maybe_sample(self._stepper.loads)
        return bin_index

    def place_batch(
        self, count: int, items: Optional[Sequence[Any]] = None
    ) -> np.ndarray:
        """Place ``count`` items through the chunked ingestion path.

        Returns the destination bins in placement order — identical to
        ``count`` successive :meth:`place` calls; with the spec's engine at
        ``"auto"``/``"vectorized"`` the work runs through the batch kernels
        instead of the per-unit loop.  ``items`` optionally registers an id
        per placement (for later removal).
        """
        count = int(count)
        if count < 0:
            raise OnlineAllocatorError(f"count must be non-negative, got {count}")
        if items is not None:
            if len(items) != count:
                raise OnlineAllocatorError(
                    f"items has {len(items)} entries for {count} placements"
                )
            # Validate the whole batch before any ball is consumed, so a
            # duplicate id cannot leave partially registered placements.
            seen = set(items)
            if len(seen) != count:
                raise OnlineAllocatorError("items contains duplicate ids")
            collisions = seen & self._items.keys()
            if collisions:
                raise OnlineAllocatorError(
                    f"item {sorted(collisions, key=repr)[0]!r} is already placed"
                )
        elif self._track_items:
            collision = next(
                (
                    key
                    for key in range(self.placed, self.placed + count)
                    if key in self._items
                ),
                None,
            )
            if collision is not None:
                raise OnlineAllocatorError(
                    f"item {collision!r} is already placed (an explicit id "
                    f"collides with this batch's auto-assigned sequence keys)"
                )
        if count > self.remaining:
            raise OnlineAllocatorError(
                f"cannot place {count} items: only {self.remaining} of the "
                f"planned n_balls={self.capacity} remain; build the "
                f"allocator with a larger n_balls to stream further"
            )
        destinations = np.empty(count, dtype=np.int64)
        filled = 0
        while filled < count and self._pending:
            destinations[filled] = self._pending.popleft()
            filled += 1
        while filled < count:
            need = count - filled
            if self._use_blocks:
                block = self._stepper.step_block(need)
                if block is not None and len(block) > 0:
                    destinations[filled : filled + len(block)] = block
                    filled += len(block)
                    continue
            unit = self._stepper.step()
            take = min(len(unit), need)
            destinations[filled : filled + take] = unit[:take]
            self._pending.extend(unit[take:])
            filled += take
        start = self.placed
        self.placed += count
        if items is not None or self._track_items:
            keys: Iterable[Any] = (
                items if items is not None else range(start, start + count)
            )
            for offset, key in enumerate(keys):
                self._items[key] = (start + offset, int(destinations[offset]))
        self.telemetry.record_block(count)
        self.telemetry.maybe_sample(self._stepper.loads)
        return destinations

    # ------------------------------------------------------------------
    # Churn
    # ------------------------------------------------------------------
    def remove(self, item: Any) -> int:
        """Retire a tracked item; returns the bin it occupied.

        Removals leave the batch-parity envelope (no batch run removes), but
        the stream stays deterministic: subsequent placements read the
        decremented loads.
        """
        try:
            sequence, bin_index = self._items.pop(item)
        except KeyError:
            raise OnlineAllocatorError(
                f"unknown item {item!r}; place it with an item id (or build "
                f"the allocator with track_items=True) before removing it"
            ) from None
        old_load = int(self._stepper.loads[bin_index])
        try:
            self._stepper.remove_ball(bin_index, ball_index=sequence)
        except ValueError as exc:
            self._items[item] = (sequence, bin_index)  # undo the pop
            raise OnlineAllocatorError(str(exc)) from None
        self.removed += 1
        self.telemetry.record_remove(bin_index, old_load)
        self.telemetry.maybe_sample(self._stepper.loads)
        return bin_index

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """The complete allocator state as one JSON-serializable document.

        Size note: steppers that pre-draw their whole stream at
        construction (``single_choice``/``batch_random`` destinations,
        weighted ball weights) serialize those O(n_balls) arrays, so their
        snapshots scale with the planned stream — size a
        ``--snapshot-every`` cadence accordingly for very large streams.
        The round-based steppers carry only O(chunk_rounds * d) buffers.
        """
        spec_dict = self.spec.to_dict()
        if not isinstance(spec_dict["seed"], (int, type(None))):
            raise OnlineAllocatorError(
                "snapshots require an integer (or None) spec seed; "
                f"got {self.spec.seed!r}"
            )
        try:
            json.dumps(spec_dict["params"])
        except TypeError:
            raise OnlineAllocatorError(
                "snapshots require JSON-serializable spec params (callable "
                "or array parameters cannot be persisted)"
            ) from None
        return {
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            "spec": spec_dict,
            "placed": self.placed,
            "removed": self.removed,
            "pending": [int(b) for b in self._pending],
            "track_items": self._track_items,
            "items": [
                [item, sequence, bin_index]
                for item, (sequence, bin_index) in self._items.items()
            ],
            "telemetry": self.telemetry.counters(),
            "stepper": self._stepper.state_dict(),
        }

    def digest(self) -> str:
        """Canonical SHA-256 of :meth:`snapshot` (see :func:`snapshot_digest`)."""
        return snapshot_digest(self.snapshot())

    @classmethod
    def restore(
        cls,
        snapshot: Dict[str, Any],
        *,
        telemetry: Optional[LoadTelemetry] = None,
    ) -> "OnlineAllocator":
        """Rebuild an allocator from a :meth:`snapshot` document.

        The restored allocator continues the stream bit-identically: the
        stepper's buffered RNG blocks and generator state are reinstated
        wholesale (the construction-time draws are discarded).
        """
        if snapshot.get("format") != SNAPSHOT_FORMAT:
            raise OnlineAllocatorError(
                f"not an online-allocator snapshot: format="
                f"{snapshot.get('format')!r}"
            )
        if snapshot.get("version") != SNAPSHOT_VERSION:
            raise OnlineAllocatorError(
                f"unsupported snapshot version {snapshot.get('version')!r} "
                f"(this build reads version {SNAPSHOT_VERSION})"
            )
        spec_dict = snapshot["spec"]
        spec = SchemeSpec(
            scheme=spec_dict["scheme"],
            params=spec_dict["params"],
            policy=spec_dict.get("policy"),
            seed=spec_dict.get("seed"),
            trials=spec_dict.get("trials", 1),
            engine=spec_dict.get("engine", "auto"),
            label=spec_dict.get("label"),
        )
        allocator = cls(
            spec,
            telemetry=telemetry,
            track_items=snapshot.get("track_items", False),
        )
        allocator._stepper.load_state(snapshot["stepper"])
        allocator.placed = int(snapshot["placed"])
        allocator.removed = int(snapshot["removed"])
        allocator._pending = deque(int(b) for b in snapshot["pending"])
        allocator._items = {
            item: (int(sequence), int(bin_index))
            for item, sequence, bin_index in snapshot["items"]
        }
        allocator.telemetry.restore_counters(snapshot["telemetry"])
        return allocator

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """Deterministic end-of-stream statistics (CLI/golden friendly)."""
        loads = self._stepper.loads
        total = int(loads.sum())
        maximum = int(loads.max()) if loads.size else 0
        mean = total / self.n_bins if self.n_bins else 0.0
        p50, p95, p99 = (
            np.percentile(loads, (50, 95, 99)) if loads.size else (0.0, 0.0, 0.0)
        )
        return {
            "scheme": self.spec.scheme,
            "n_bins": self.n_bins,
            "placed": self.placed,
            "removed": self.removed,
            "live_balls": total,
            "max_load": maximum,
            "mean_load": mean,
            "gap": maximum - mean,
            "load_p50": float(p50),
            "load_p95": float(p95),
            "load_p99": float(p99),
            "messages": int(self._stepper.messages),
            "rounds": int(self._stepper.rounds),
            "telemetry_samples": self.telemetry.samples_taken,
            "loads_sha256": hashlib.sha256(
                np.ascontiguousarray(loads).tobytes()
            ).hexdigest(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"OnlineAllocator({self.spec.display_label!r}, "
            f"placed={self.placed}/{self.capacity}, removed={self.removed})"
        )
