"""Layered-induction recurrences from the upper- and lower-bound proofs.

The proof of Theorem 4 controls the number of bins above each height with the
sequence (equation 16)::

    β_0     = n / (6 d_k)
    β_{i+1} = 6 (n/k) C(d, d-k+1) (β_i / n)^{d-k+1}

and stops at the largest ``i*`` with ``β_{i*} ≥ 6 ln n``; the maximum load is
then at most ``y_0 + i* + 2``.  The lower-bound proof of Theorem 7 uses the
analogous sequence ``γ_i`` (equations 27–28).

These recurrences are implemented here both because they are directly
testable predictions (the measured ``ν_{y_0+i}`` should fall below ``β_i``)
and because the Figure 1 / Figure 2 reproduction annotates the sorted load
profile with the landmarks ``β_0``, ``γ_0 = n/d`` and ``γ* = 4n/d_k``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from .asymptotics import d_k, log_binomial

__all__ = [
    "LayeredInduction",
    "beta_sequence",
    "gamma_sequence",
    "predicted_i_star",
    "beta_zero",
    "gamma_zero",
    "gamma_star",
]


def beta_zero(k: int, d: int, n: int) -> float:
    """``β_0 = n / (6 d_k)`` — the Figure 1 landmark."""
    dk = d_k(k, d)
    if math.isinf(dk):
        return 0.0
    return n / (6.0 * dk)


def gamma_zero(d: int, n: int) -> float:
    """``γ_0 = n / d`` — the Figure 2 landmark for the gap lower bound."""
    if d < 1:
        raise ValueError(f"d must be at least 1, got {d}")
    return n / d


def gamma_star(k: int, d: int, n: int) -> float:
    """``γ* = 4 n / d_k`` — the Figure 2 landmark for the ``B_{γ*}`` bound."""
    dk = d_k(k, d)
    if math.isinf(dk):
        return 0.0
    return 4.0 * n / dk


def predicted_i_star(k: int, d: int, n: int) -> float:
    """The proof's bound on the number of induction layers:
    ``i* ≤ ln ln n / ln(d - k + 1)``."""
    if d - k + 1 <= 1:
        return float("inf")
    if n <= math.e:
        return 0.0
    inner = math.log(n)
    if inner <= 1.0:
        return 0.0
    return math.log(inner) / math.log(d - k + 1)


def beta_sequence(k: int, d: int, n: int, max_terms: int = 200) -> List[float]:
    """The ``β_i`` sequence of equation (16), truncated at ``β_i < 6 ln n``.

    Returned values are in *bins* (not fractions); computation is done in log
    space so huge binomial coefficients never overflow.
    """
    if not 1 <= k < d:
        raise ValueError(f"requires 1 <= k < d, got k={k}, d={d}")
    if n <= 1:
        raise ValueError(f"n must exceed 1, got {n}")
    exponent = d - k + 1
    log_n = math.log(n)
    # log of the multiplier 6 (n/k) C(d, d-k+1) / n^{d-k+1}
    log_multiplier = (
        math.log(6.0) + log_n - math.log(k) + log_binomial(d, exponent) - exponent * log_n
    )
    stop = 6.0 * log_n  # the proof's 6 ln n cut-off

    sequence: List[float] = []
    log_beta = math.log(beta_zero(k, d, n)) if beta_zero(k, d, n) > 0 else -math.inf
    for _ in range(max_terms):
        beta = math.exp(log_beta) if log_beta > -700 else 0.0
        sequence.append(beta)
        if beta < stop:
            break
        log_beta = log_multiplier + exponent * log_beta
    return sequence


def gamma_sequence(k: int, d: int, n: int, max_terms: int = 200) -> List[float]:
    """The ``γ_i`` sequence of equations (27)–(28), truncated at ``γ_i < 9 ln n``."""
    if not 1 <= k < d:
        raise ValueError(f"requires 1 <= k < d, got k={k}, d={d}")
    if n <= 1:
        raise ValueError(f"n must exceed 1, got {n}")
    exponent = d - k + 1
    log_n = math.log(n)
    stop = 9.0 * log_n  # the proof's 9 ln n cut-off (equation 32)

    sequence: List[float] = []
    log_gamma = math.log(gamma_zero(d, n))
    for i in range(max_terms):
        gamma = math.exp(log_gamma) if log_gamma > -700 else 0.0
        sequence.append(gamma)
        if gamma < stop:
            break
        # γ_{i+1} = (1 / 2^{i+6}) (n/k) C(d, d-k+1) (γ_i / n)^{d-k+1}
        log_gamma = (
            -(i + 6) * math.log(2.0)
            + log_n
            - math.log(k)
            + log_binomial(d, exponent)
            + exponent * (log_gamma - log_n)
        )
    return sequence


@dataclass(frozen=True)
class LayeredInduction:
    """All landmarks of the layered-induction argument for one (k, d, n).

    Attributes
    ----------
    beta:   the β_i sequence (upper bound, equation 16).
    gamma:  the γ_i sequence (lower bound, equations 27–28).
    i_star_upper: number of useful β layers (index of first β_i < 6 ln n).
    i_star_predicted: the closed-form bound ``ln ln n / ln(d-k+1)``.
    beta0, gamma0, gamma_star: the Figure 1/2 landmarks.
    """

    k: int
    d: int
    n: int
    beta: List[float]
    gamma: List[float]
    i_star_upper: int
    i_star_predicted: float
    beta0: float
    gamma0: float
    gamma_star: float

    @classmethod
    def compute(cls, k: int, d: int, n: int) -> "LayeredInduction":
        """Evaluate every landmark for the given parameters."""
        beta = beta_sequence(k, d, n)
        gamma = gamma_sequence(k, d, n)
        return cls(
            k=k,
            d=d,
            n=n,
            beta=beta,
            gamma=gamma,
            i_star_upper=max(len(beta) - 1, 0),
            i_star_predicted=predicted_i_star(k, d, n),
            beta0=beta_zero(k, d, n),
            gamma0=gamma_zero(d, n),
            gamma_star=gamma_star(k, d, n),
        )
