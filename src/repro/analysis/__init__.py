"""Analytical companions to the simulations: bounds, regimes, recurrences.

This subpackage evaluates the paper's closed-form predictions (Theorem 1,
Theorem 2, Corollary 1, the layered-induction sequences) and provides the
empirical stochastic-order checks used to validate the Section 3 properties.
"""

from .asymptotics import (
    d_k,
    delta,
    inverse_factorial,
    ln_ln,
    log_binomial,
    log_ratio,
    polylog,
    stirling_inverse_factorial,
)
from .exact import (
    empirical_max_load_distribution,
    exact_kd_choice_distribution,
    exact_single_choice_distribution,
    expected_max_load,
    max_load_distribution,
    total_variation_distance,
)
from .bounds import (
    Regime,
    classify_regime,
    corollary1_term,
    d_choice_max_load,
    heavy_case_gap_prediction,
    message_cost,
    predicted_max_load,
    single_choice_max_load,
    theorem1_bounds,
    theorem1_leading_term,
    theorem2_bounds,
)
from .majorization import (
    MajorizationReport,
    compare_processes,
    empirical_majorization_fraction,
    mean_prefix_profile,
    prefix_sum_profile,
)
from .recurrences import (
    LayeredInduction,
    beta_sequence,
    beta_zero,
    gamma_sequence,
    gamma_star,
    gamma_zero,
    predicted_i_star,
)
from .statistics import (
    TrialStatistics,
    confidence_interval,
    empirical_cdf,
    format_value_set,
    observed_value_set,
    stochastic_dominance_fraction,
    trial_statistics,
)

__all__ = [
    # asymptotics
    "d_k",
    "delta",
    "ln_ln",
    "log_ratio",
    "inverse_factorial",
    "stirling_inverse_factorial",
    "log_binomial",
    "polylog",
    # bounds
    "Regime",
    "classify_regime",
    "theorem1_leading_term",
    "theorem1_bounds",
    "corollary1_term",
    "theorem2_bounds",
    "single_choice_max_load",
    "d_choice_max_load",
    "message_cost",
    "predicted_max_load",
    "heavy_case_gap_prediction",
    # recurrences
    "LayeredInduction",
    "beta_sequence",
    "gamma_sequence",
    "predicted_i_star",
    "beta_zero",
    "gamma_zero",
    "gamma_star",
    # majorization
    "MajorizationReport",
    "compare_processes",
    "empirical_majorization_fraction",
    "mean_prefix_profile",
    "prefix_sum_profile",
    # exact distributions
    "exact_kd_choice_distribution",
    "exact_single_choice_distribution",
    "max_load_distribution",
    "expected_max_load",
    "total_variation_distance",
    "empirical_max_load_distribution",
    # statistics
    "TrialStatistics",
    "trial_statistics",
    "observed_value_set",
    "format_value_set",
    "confidence_interval",
    "empirical_cdf",
    "stochastic_dominance_fraction",
]
