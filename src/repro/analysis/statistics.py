"""Trial aggregation and simple statistics for repeated experiments.

Table 1 of the paper reports, for each (k, d) cell, the *set* of maximum
loads observed over ten independent runs (e.g. "2, 3" when both values
occurred).  :func:`observed_value_set` reproduces that presentation;
:func:`trial_statistics` provides the usual mean / spread summary used by the
other experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

__all__ = [
    "TrialStatistics",
    "trial_statistics",
    "observed_value_set",
    "format_value_set",
    "confidence_interval",
    "empirical_cdf",
    "stochastic_dominance_fraction",
]


@dataclass(frozen=True)
class TrialStatistics:
    """Summary statistics of a collection of scalar trial outcomes."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "median": self.median,
        }


def trial_statistics(values: Iterable[float]) -> TrialStatistics:
    """Compute summary statistics over trial outcomes."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty collection of trials")
    # Clamp the mean into [min, max]: floating-point summation can drift a
    # few ulp outside the mathematically guaranteed range (e.g. three equal
    # values whose sum is not exactly divisible by 3).
    mean = min(max(float(arr.mean()), float(arr.min())), float(arr.max()))
    return TrialStatistics(
        count=int(arr.size),
        mean=mean,
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        median=float(np.median(arr)),
    )


def observed_value_set(values: Iterable[float]) -> List[int]:
    """Sorted list of distinct integer outcomes, Table-1 style."""
    return sorted({int(v) for v in values})


def format_value_set(values: Iterable[float]) -> str:
    """Render distinct outcomes the way Table 1 prints them ("2, 3")."""
    return ", ".join(str(v) for v in observed_value_set(values))


def confidence_interval(
    values: Iterable[float], confidence: float = 0.95
) -> tuple[float, float]:
    """Normal-approximation confidence interval for the mean of the trials."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot build a confidence interval from no trials")
    mean = float(arr.mean())
    if arr.size == 1:
        return mean, mean
    std_error = float(arr.std(ddof=1)) / math.sqrt(arr.size)
    # Two-sided normal quantile via the inverse error function.
    z = math.sqrt(2.0) * _erfinv(confidence)
    return mean - z * std_error, mean + z * std_error


def _erfinv(x: float) -> float:
    """Inverse error function (Winitzki's approximation, ~1e-3 accurate)."""
    if not -1.0 < x < 1.0:
        raise ValueError("erfinv is defined on (-1, 1)")
    a = 0.147
    ln_term = math.log(1.0 - x * x)
    first = 2.0 / (math.pi * a) + ln_term / 2.0
    return math.copysign(
        math.sqrt(math.sqrt(first * first - ln_term / a) - first), x
    )


def empirical_cdf(values: Sequence[float]) -> "tuple[np.ndarray, np.ndarray]":
    """Empirical CDF of the given values: returns (sorted values, F(values))."""
    arr = np.sort(np.asarray(list(values), dtype=float))
    if arr.size == 0:
        raise ValueError("cannot build a CDF from no values")
    cdf = np.arange(1, arr.size + 1, dtype=float) / arr.size
    return arr, cdf


def stochastic_dominance_fraction(
    smaller: Sequence[float], larger: Sequence[float]
) -> float:
    """Fraction of thresholds at which ``smaller`` is stochastically below ``larger``.

    For every threshold ``t`` in the union of observed values, checks
    ``P(X >= t) <= P(Y >= t)`` where ``X`` are the ``smaller`` samples and
    ``Y`` the ``larger`` ones.  A value of 1.0 means the empirical
    distributions are consistent with ``X`` being stochastically dominated by
    ``Y`` (Definition 2(iii) evaluated empirically).
    """
    x = np.asarray(list(smaller), dtype=float)
    y = np.asarray(list(larger), dtype=float)
    if x.size == 0 or y.size == 0:
        raise ValueError("both samples must be non-empty")
    thresholds = np.union1d(x, y)
    satisfied = 0
    for t in thresholds:
        p_x = np.mean(x >= t)
        p_y = np.mean(y >= t)
        if p_x <= p_y + 1e-12:
            satisfied += 1
    return satisfied / thresholds.size
