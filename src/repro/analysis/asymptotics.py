"""Asymptotic helper functions used throughout the paper's analysis.

These small numeric helpers implement the quantities the theorems are stated
in terms of: the ratio ``d_k = d/(d-k)``, the slack term ``δ(n)``, iterated
logarithms, and the Stirling-style inversion of ``y! ≤ c`` that appears in the
proofs of Theorem 3 and Theorem 6.
"""

from __future__ import annotations

import math
from typing import Optional

__all__ = [
    "d_k",
    "delta",
    "ln_ln",
    "log_ratio",
    "inverse_factorial",
    "stirling_inverse_factorial",
    "log_binomial",
    "polylog",
]


def d_k(k: int, d: int) -> float:
    """The paper's ``d_k = d / (d - k)``; infinity when ``k == d``."""
    if not 1 <= k <= d:
        raise ValueError(f"requires 1 <= k <= d, got k={k}, d={d}")
    if k == d:
        return math.inf
    return d / (d - k)


def delta(n: int) -> float:
    """``δ(n) = ln ln ln n / ln ln n`` (Section 2.1), defined for large n.

    For small ``n`` where the iterated logarithms are not positive the
    function returns 0.0, which keeps downstream formulas finite.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    lnln_n = ln_ln(n)
    if lnln_n <= 1.0:
        # ln ln ln n is undefined or non-positive; the slack term vanishes.
        return 0.0
    return math.log(lnln_n) / lnln_n


def ln_ln(n: float) -> float:
    """``ln ln n`` clamped to 0 for arguments where it would be undefined."""
    if n <= 1.0:
        return 0.0
    inner = math.log(n)
    if inner <= 1.0:
        return 0.0
    return math.log(inner)


def log_ratio(x: float) -> float:
    """``ln x / ln ln x``, the max-load rate of single choice.

    Clamped to 0 for ``x`` small enough that the expression is undefined.
    """
    if x <= 1.0:
        return 0.0
    numerator = math.log(x)
    denominator = ln_ln(x)
    if denominator <= 0.0:
        return 0.0
    return numerator / denominator


def inverse_factorial(bound: float) -> int:
    """Largest integer ``y`` with ``y! <= bound`` (exact, by iteration).

    The proofs of Theorem 3 and Lemma 11 solve ``y_1! <= 48 d_k`` and
    ``n / (8 y!) >= (ln d_k) n / d_k``; this helper performs those inversions
    exactly.
    """
    if bound < 1.0:
        return 0
    y = 0
    factorial = 1.0
    while factorial * (y + 1) <= bound:
        y += 1
        factorial *= y
    return y


def stirling_inverse_factorial(bound: float) -> float:
    """Asymptotic solution of ``y! = bound``: ``y ≈ ln bound / ln ln bound``.

    This is the closed form the paper substitutes after applying Stirling's
    formula; useful for comparing the exact and asymptotic inversions.
    """
    return log_ratio(bound)


def log_binomial(n: int, r: int) -> float:
    """Natural log of ``C(n, r)``; ``-inf`` when the coefficient is zero."""
    if r < 0 or r > n:
        return -math.inf
    return (
        math.lgamma(n + 1) - math.lgamma(r + 1) - math.lgamma(n - r + 1)
    )


def polylog(n: int, exponent: float = 1.0) -> float:
    """``(ln n)^exponent`` — the paper's ``polylog n`` with a chosen power."""
    if n <= 1:
        return 0.0
    return math.log(n) ** exponent
