"""Empirical checks of the majorization / domination relations (Definition 2).

Section 3 of the paper proves a chain of stochastic-order relations between
allocation processes, most importantly (used in the proof of Theorem 2)::

    A(1, d-k+1)  ≤_mj  A(k, d)  ≤_mj  A(1, ⌊d/k⌋)

Majorization (``≤_mj``) compares the distribution of prefix sums of the
sorted load vector; domination (``≤_dm``) compares per-rank loads.  Neither
can be verified exactly from finitely many samples, so this module provides
*empirical* comparisons: averaged prefix-sum profiles, stochastic-dominance
checks on the maximum load, and a combined report that experiments and tests
consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from ..core.types import AllocationResult
from .statistics import stochastic_dominance_fraction

__all__ = [
    "prefix_sum_profile",
    "mean_prefix_profile",
    "empirical_majorization_fraction",
    "MajorizationReport",
    "compare_processes",
]

ProcessRunner = Callable[[int], AllocationResult]
"""A callable ``seed -> AllocationResult`` representing one process."""


def prefix_sum_profile(result: "AllocationResult | np.ndarray") -> np.ndarray:
    """Prefix sums of the sorted load vector: ``B_{≤x}`` for x = 1..n."""
    loads = result.loads if isinstance(result, AllocationResult) else np.asarray(result)
    return np.cumsum(np.sort(loads)[::-1])


def mean_prefix_profile(results: Sequence["AllocationResult | np.ndarray"]) -> np.ndarray:
    """Average prefix-sum profile over repeated trials."""
    if not results:
        raise ValueError("need at least one trial")
    profiles = np.stack([prefix_sum_profile(r) for r in results])
    return profiles.mean(axis=0)


def empirical_majorization_fraction(
    smaller: Sequence["AllocationResult | np.ndarray"],
    larger: Sequence["AllocationResult | np.ndarray"],
    tolerance: float = 0.0,
) -> float:
    """Fraction of ranks ``x`` at which the mean ``B_{≤x}`` ordering holds.

    If process ``smaller`` is majorized by ``larger`` then for every ``x`` the
    expected prefix sum of ``smaller`` is at most that of ``larger``; this
    function measures how often that holds for the empirical means, allowing
    a small ``tolerance`` (in balls) for sampling noise.
    """
    mean_small = mean_prefix_profile(smaller)
    mean_large = mean_prefix_profile(larger)
    if mean_small.shape != mean_large.shape:
        raise ValueError("both processes must use the same number of bins")
    holds = mean_small <= mean_large + tolerance
    return float(np.mean(holds))


@dataclass(frozen=True)
class MajorizationReport:
    """Outcome of an empirical comparison between two processes.

    Attributes
    ----------
    label_small, label_large:
        Names of the compared processes (the relation claims
        ``small ≤_mj large``).
    trials:
        Number of independent runs per process.
    prefix_fraction:
        Fraction of ranks where the mean prefix-sum ordering holds.
    max_load_dominance:
        Fraction of thresholds where the max-load distribution of the small
        process is stochastically below the large one.
    mean_max_small, mean_max_large:
        Mean maximum loads of the two processes.
    """

    label_small: str
    label_large: str
    trials: int
    prefix_fraction: float
    max_load_dominance: float
    mean_max_small: float
    mean_max_large: float

    @property
    def consistent(self) -> bool:
        """Whether the samples are consistent with the claimed ordering.

        The criterion is deliberately tolerant: both empirical fractions must
        be high, and the mean maximum loads must not contradict the order by
        more than half a ball.
        """
        return (
            self.prefix_fraction >= 0.9
            and self.max_load_dominance >= 0.75
            and self.mean_max_small <= self.mean_max_large + 0.5
        )

    def as_dict(self) -> dict:
        return {
            "small": self.label_small,
            "large": self.label_large,
            "trials": self.trials,
            "prefix_fraction": round(self.prefix_fraction, 4),
            "max_load_dominance": round(self.max_load_dominance, 4),
            "mean_max_small": round(self.mean_max_small, 4),
            "mean_max_large": round(self.mean_max_large, 4),
            "consistent": self.consistent,
        }


def compare_processes(
    run_small: ProcessRunner,
    run_large: ProcessRunner,
    trials: int,
    seeds: Sequence[int],
    label_small: str = "small",
    label_large: str = "large",
    tolerance: float = 0.0,
) -> MajorizationReport:
    """Run both processes ``trials`` times and compare them empirically.

    Parameters
    ----------
    run_small, run_large:
        Callables mapping a seed to an :class:`AllocationResult`.  The claim
        under test is ``run_small ≤_mj run_large``.
    trials:
        Number of runs per process.
    seeds:
        At least ``2 * trials`` integer seeds; the first ``trials`` feed the
        small process, the next ``trials`` the large one (independent runs,
        as Definition 2 compares distributions, not couplings).
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if len(seeds) < 2 * trials:
        raise ValueError(
            f"need at least {2 * trials} seeds, got {len(seeds)}"
        )
    results_small: List[AllocationResult] = [
        run_small(int(seeds[i])) for i in range(trials)
    ]
    results_large: List[AllocationResult] = [
        run_large(int(seeds[trials + i])) for i in range(trials)
    ]

    prefix_fraction = empirical_majorization_fraction(
        results_small, results_large, tolerance=tolerance
    )
    max_small = [r.max_load for r in results_small]
    max_large = [r.max_load for r in results_large]
    dominance = stochastic_dominance_fraction(max_small, max_large)

    return MajorizationReport(
        label_small=label_small,
        label_large=label_large,
        trials=trials,
        prefix_fraction=prefix_fraction,
        max_load_dominance=dominance,
        mean_max_small=float(np.mean(max_small)),
        mean_max_large=float(np.mean(max_large)),
    )
