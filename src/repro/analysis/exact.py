"""Exact distributions for tiny instances, used to validate the simulator.

For very small ``n`` the (k, d)-choice process can be solved exactly: its
state is the sorted load vector, each round draws one of ``n^d`` equally
likely sample tuples, and — because the multiset of final loads does not
depend on how ties between equal ball heights are broken (swapping two tied
kept slots swaps a pair of final loads, leaving the sorted vector unchanged)
— the round transition is a deterministic function of the sample tuple.

These exact distributions give the reproduction a ground truth to test the
Monte-Carlo simulator against: the empirical max-load frequencies must
converge to the exact ones (see ``tests/analysis/test_analysis_exact.py`` and
``tests/integration``).
"""

from __future__ import annotations

import itertools
from collections import Counter
from typing import Dict, Mapping, Tuple

import numpy as np

__all__ = [
    "exact_kd_choice_distribution",
    "exact_single_choice_distribution",
    "max_load_distribution",
    "expected_max_load",
    "total_variation_distance",
    "empirical_max_load_distribution",
]

State = Tuple[int, ...]

# Enumerating a round costs n_bins^d transitions; keep it honest.
_MAX_ENUMERATION = 2_000_000


def _apply_round(state: State, samples: Tuple[int, ...], k: int) -> State:
    """Apply one (k, d)-choice round to a sorted state, deterministically.

    ``samples`` are indices into the sorted state.  Ties between equal
    heights are broken towards the earlier sample, which does not affect the
    resulting sorted vector (see the module docstring).
    """
    loads = list(state)
    # Heights of the d virtual placements.
    extra: Dict[int, int] = {}
    heights = []
    for position, bin_index in enumerate(samples):
        placed = extra.get(bin_index, 0)
        heights.append((loads[bin_index] + placed + 1, position, bin_index))
        extra[bin_index] = placed + 1
    heights.sort()
    for _, _, bin_index in heights[:k]:
        loads[bin_index] += 1
    return tuple(sorted(loads, reverse=True))


def exact_kd_choice_distribution(
    n_bins: int, k: int, d: int, n_balls: int | None = None
) -> Dict[State, float]:
    """Exact distribution over sorted load vectors after the process ends.

    Parameters
    ----------
    n_bins, k, d:
        Process parameters with ``1 <= k <= d <= n_bins``.
    n_balls:
        Number of balls (default ``n_bins``); must be a multiple of ``k``.

    Raises
    ------
    ValueError
        If the enumeration would exceed roughly two million transitions per
        round (this tool is for *tiny* instances).
    """
    if not 1 <= k <= d <= n_bins:
        raise ValueError(f"requires 1 <= k <= d <= n_bins, got k={k}, d={d}, n={n_bins}")
    if n_balls is None:
        n_balls = n_bins
    if n_balls % k != 0:
        raise ValueError(f"n_balls={n_balls} must be a multiple of k={k}")
    transitions_per_round = n_bins ** d
    if transitions_per_round > _MAX_ENUMERATION:
        raise ValueError(
            f"enumeration of {n_bins}^{d} sample tuples per round is too large; "
            "exact distributions are meant for tiny instances"
        )

    rounds = n_balls // k
    probability = 1.0 / transitions_per_round
    distribution: Dict[State, float] = {tuple([0] * n_bins): 1.0}
    sample_space = list(itertools.product(range(n_bins), repeat=d))

    for _ in range(rounds):
        next_distribution: Dict[State, float] = {}
        for state, mass in distribution.items():
            share = mass * probability
            for samples in sample_space:
                new_state = _apply_round(state, samples, k)
                next_distribution[new_state] = next_distribution.get(new_state, 0.0) + share
        distribution = next_distribution
    return distribution


def exact_single_choice_distribution(n_bins: int, n_balls: int | None = None) -> Dict[State, float]:
    """Exact sorted-load distribution for the classic single-choice process."""
    return exact_kd_choice_distribution(n_bins, k=1, d=1, n_balls=n_balls)


def max_load_distribution(distribution: Mapping[State, float]) -> Dict[int, float]:
    """Collapse a sorted-state distribution to the distribution of the max load."""
    result: Dict[int, float] = {}
    for state, mass in distribution.items():
        top = state[0] if state else 0
        result[top] = result.get(top, 0.0) + mass
    return result


def expected_max_load(distribution: Mapping[State, float]) -> float:
    """Expected maximum load under a sorted-state distribution."""
    return sum((state[0] if state else 0) * mass for state, mass in distribution.items())


def total_variation_distance(
    p: Mapping[int, float], q: Mapping[int, float]
) -> float:
    """Total variation distance between two distributions over integers."""
    support = set(p) | set(q)
    return 0.5 * sum(abs(p.get(value, 0.0) - q.get(value, 0.0)) for value in support)


def empirical_max_load_distribution(
    n_bins: int,
    k: int,
    d: int,
    trials: int,
    seed: "int | None" = 0,
    n_balls: int | None = None,
) -> Dict[int, float]:
    """Monte-Carlo estimate of the max-load distribution (for validation)."""
    from ..core.process import run_kd_choice  # local import to avoid a cycle

    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    rng = np.random.default_rng(seed)
    counts: Counter[int] = Counter()
    for _ in range(trials):
        result = run_kd_choice(
            n_bins=n_bins, k=k, d=d, n_balls=n_balls, seed=int(rng.integers(0, 2 ** 31))
        )
        counts[result.max_load] += 1
    return {value: count / trials for value, count in counts.items()}
