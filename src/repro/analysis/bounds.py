"""Closed-form bounds from Theorem 1, Theorem 2 and Corollary 1.

The theorems bound the maximum load ``M(k, d, n)`` up to additive ``O(1)`` or
multiplicative ``1 ± o(1)`` terms.  The functions below evaluate the *leading*
terms of those bounds so experiments can plot measured maximum loads against
the predicted growth rates.  Because the hidden constants are not specified by
the paper, callers compare *shapes* (growth in ``n``, crossovers in ``k`` and
``d``) rather than absolute values; see EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .asymptotics import d_k, delta, ln_ln, log_ratio

__all__ = [
    "Regime",
    "classify_regime",
    "theorem1_leading_term",
    "theorem1_bounds",
    "corollary1_term",
    "theorem2_bounds",
    "single_choice_max_load",
    "d_choice_max_load",
    "message_cost",
    "predicted_max_load",
]

# ``d_k`` growing past this value is treated as the "d_k -> infinity" regime
# when classifying finite instances.  The paper's dichotomy is asymptotic; for
# finite n we follow Corollary 1's trigger ``d_k >= e^{(ln ln n)^3}`` for the
# extreme regime and use a mild threshold for the intermediate one.
_DK_GROWING_THRESHOLD = 8.0


@dataclass(frozen=True)
class Regime:
    """Classification of a finite (k, d, n) instance.

    Attributes
    ----------
    name:
        "dk_constant"  — ``d_k = O(1)``: Theorem 1(i) applies.
        "dk_growing"   — ``d_k`` large but below Corollary 1's trigger:
        Theorem 1(ii) applies and both terms matter.
        "single_choice_like" — ``d_k ≥ e^{(ln ln n)^3}``: Corollary 1 applies
        and the process behaves like single choice.
    dk:
        The value of ``d_k = d/(d-k)``.
    """

    name: str
    dk: float


def classify_regime(k: int, d: int, n: int) -> Regime:
    """Classify (k, d, n) into the regime used by Theorem 1 / Corollary 1."""
    dk = d_k(k, d)
    if math.isinf(dk):
        return Regime("single_choice_like", dk)
    trigger = math.exp(ln_ln(n) ** 3) if n > 15 else math.inf
    if dk >= trigger:
        return Regime("single_choice_like", dk)
    if dk >= _DK_GROWING_THRESHOLD:
        return Regime("dk_growing", dk)
    return Regime("dk_constant", dk)


def theorem1_leading_term(k: int, d: int, n: int) -> float:
    """Leading term of Theorem 1's bound on ``M(k, d, n)``.

    * ``ln ln n / ln(d - k + 1)`` always contributes;
    * ``ln d_k / ln ln d_k`` contributes when ``d_k`` is large (Theorem 1(ii)).
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    dk = d_k(k, d)
    base = ln_ln(n) / math.log(d - k + 1) if d - k + 1 > 1 else float("inf")
    if math.isinf(dk):
        # k == d degenerates to single choice: ln n / ln ln n.
        return single_choice_max_load(n)
    regime = classify_regime(k, d, n)
    if regime.name == "dk_constant":
        return base
    second = log_ratio(dk)
    if regime.name == "single_choice_like":
        return second
    return base + second


def theorem1_bounds(
    k: int, d: int, n: int, additive_constant: float = 2.0
) -> tuple[float, float]:
    """Lower and upper bound estimates from Theorem 1.

    ``additive_constant`` stands in for the unspecified ``O(1)``; the default
    of 2 matches the explicit "+2" slack appearing in the upper-bound proof
    (``M ≤ y_0 + i* + 2``).
    """
    leading = theorem1_leading_term(k, d, n)
    return max(leading - additive_constant, 1.0), leading + additive_constant


def corollary1_term(k: int, d: int, n: int) -> float:
    """Corollary 1: ``(1 ± o(1)) ln d_k / ln ln d_k`` for very large ``d_k``."""
    dk = d_k(k, d)
    if math.isinf(dk):
        return single_choice_max_load(n)
    return log_ratio(dk)


def theorem2_bounds(
    k: int, d: int, m: int, n: int, additive_constant: float = 2.0
) -> tuple[float, float]:
    """Theorem 2: bounds on the max load *gap* for ``m > n`` balls, ``d ≥ 2k``.

    Returns ``(lower, upper)`` estimates for ``M(k, d, m, n) - m/n`` built
    from the majorization sandwich
    ``A(1, d-k+1) ≤ A(k, d) ≤ A(1, ⌊d/k⌋)`` and the heavily loaded d-choice
    result of Berenbrink et al. (gap = ``ln ln n / ln d + O(1)``).
    """
    if d < 2 * k:
        raise ValueError(
            f"Theorem 2 requires d >= 2k, got k={k}, d={d} "
            "(the case d < 2k is open, Section 7)"
        )
    if m <= 0 or n <= 0:
        raise ValueError("m and n must be positive")
    lower = ln_ln(n) / math.log(d - k + 1) - additive_constant
    floor_ratio = d // k
    upper = ln_ln(n) / math.log(floor_ratio) + additive_constant if floor_ratio > 1 else math.inf
    return max(lower, 0.0), upper


def single_choice_max_load(n: int) -> float:
    """``(1 + o(1)) ln n / ln ln n`` — classic single-choice maximum load."""
    return log_ratio(n)


def d_choice_max_load(n: int, d: int) -> float:
    """``ln ln n / ln d + Θ(1)`` — Azar et al.'s Greedy[d] maximum load.

    Returns the leading term only.
    """
    if d < 2:
        return single_choice_max_load(n)
    return ln_ln(n) / math.log(d)


def message_cost(k: int, d: int, n_balls: int) -> int:
    """Total probe messages of (k, d)-choice: ``d`` per round, ``n/k`` rounds."""
    if k < 1 or d < k:
        raise ValueError(f"requires 1 <= k <= d, got k={k}, d={d}")
    rounds = -(-n_balls // k)
    return rounds * d


def predicted_max_load(k: int, d: int, n: int) -> float:
    """Point prediction for the maximum load (leading term of Theorem 1).

    Convenience alias used by the experiment recipes when annotating measured
    values with the theory's prediction.
    """
    return theorem1_leading_term(k, d, n)


def heavy_case_gap_prediction(k: int, d: int, n: int) -> float:
    """Midpoint of the Theorem 2 sandwich, used as a point prediction."""
    lower, upper = theorem2_bounds(k, d, m=2 * n, n=n, additive_constant=0.0)
    if math.isinf(upper):
        return lower
    return 0.5 * (lower + upper)


__all__.append("heavy_case_gap_prediction")

# ``delta`` is re-exported for callers that want the paper's slack term
# together with the bounds.
__all__.append("delta")
