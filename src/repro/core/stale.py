"""(k, d)-choice with stale load information (parallel-round extension).

The paper positions (k, d)-choice as a *semi-parallel* process: the k balls
of a round share one probe wave, but rounds are still sequential and every
probe sees fresh loads.  Fully parallel balanced allocations (Adler et al.;
Berenbrink et al., RANDOM 2012 — both cited) must cope with *stale* load
information: many balls commit based on the same snapshot before any of them
lands.

This module implements that extension: rounds are grouped into *epochs* of
``stale_rounds`` rounds; every probe within an epoch sees the bin loads as
they were at the start of the epoch, and all placements of the epoch are
applied at its end.  ``stale_rounds = 1`` recovers the paper's process
exactly; larger values quantify how much the guarantee degrades as the
synchrony assumption weakens — the question the parallel-allocation line of
work answers analytically.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .policies import AllocationPolicy, get_policy, strict_select
from .types import AllocationResult, ProcessParams

__all__ = ["StaleKDChoiceProcess", "run_stale_kd_choice"]


class StaleKDChoiceProcess:
    """(k, d)-choice where probes within an epoch see a stale load snapshot.

    Parameters
    ----------
    n_bins, k, d, policy, seed, rng:
        As for :class:`~repro.core.process.KDChoiceProcess`.
    stale_rounds:
        Number of rounds per epoch.  All rounds of an epoch probe the bin
        loads as of the epoch start; their placements are applied together at
        the epoch end.  ``1`` = the paper's sequential-round process.
    """

    def __init__(
        self,
        n_bins: int,
        k: int,
        d: int,
        stale_rounds: int = 1,
        policy: "str | AllocationPolicy" = "strict",
        seed: "int | np.random.SeedSequence | None" = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        ProcessParams(n_bins=n_bins, n_balls=None, k=k, d=d)
        if stale_rounds < 1:
            raise ValueError(f"stale_rounds must be at least 1, got {stale_rounds}")
        self.n_bins = n_bins
        self.k = k
        self.d = d
        self.stale_rounds = stale_rounds
        self.policy = get_policy(policy)
        self.rng = rng if rng is not None else np.random.default_rng(seed)

    def run(self, n_balls: Optional[int] = None) -> AllocationResult:
        """Place ``n_balls`` balls (default ``n_bins``) and return the result."""
        if n_balls is None:
            n_balls = self.n_bins
        loads = [0] * self.n_bins
        messages = 0
        rounds = 0
        placed = 0
        rng = self.rng
        strict = self.policy.name == "strict"
        select = self.policy.select

        while placed < n_balls:
            # Snapshot at epoch start: probes in this epoch see these loads.
            snapshot = list(loads)
            pending: list[int] = []
            # The whole epoch's samples are one RNG block (then, for the
            # strict policy, one matching tie-break block); NumPy fills both
            # element-sequentially, so the vectorized engine can draw the
            # same blocks and stay stream-identical.  With k == d the strict
            # policy draws no tie-breaks for full rounds, mirroring the
            # plain process.  Non-strict policies draw through the policy
            # object round by round (they stay scalar-only).
            epoch_rounds = min(
                self.stale_rounds, -(-(n_balls - placed) // self.k)
            )
            samples_block = rng.integers(
                0, self.n_bins, size=(epoch_rounds, self.d)
            )
            ties_block = (
                rng.random((epoch_rounds, self.d))
                if strict and self.k < self.d
                else None
            )
            for row in range(epoch_rounds):
                batch = min(self.k, n_balls - placed)
                samples = samples_block[row].tolist()
                messages += self.d
                rounds += 1
                if not strict:
                    destinations = select(snapshot, samples, batch, rng)
                elif batch == self.d:
                    destinations = samples
                elif ties_block is not None:
                    destinations = strict_select(
                        snapshot, samples, batch, ties_block[row]
                    )
                else:  # k == d but a partial final round
                    destinations = strict_select(
                        snapshot, samples, batch, rng.random(self.d)
                    )
                pending.extend(destinations)
                placed += batch
            for bin_index in pending:
                loads[bin_index] += 1

        return AllocationResult(
            loads=np.asarray(loads, dtype=np.int64),
            scheme=(
                f"stale-({self.k},{self.d})-choice"
                f"[epoch={self.stale_rounds} rounds]"
            ),
            n_bins=self.n_bins,
            n_balls=n_balls,
            k=self.k,
            d=self.d,
            messages=messages,
            rounds=rounds,
            policy=self.policy.name,
            extra={"stale_rounds": self.stale_rounds},
        )


def run_stale_kd_choice(
    n_bins: int,
    k: int,
    d: int,
    stale_rounds: int = 1,
    n_balls: Optional[int] = None,
    policy: "str | AllocationPolicy" = "strict",
    seed: "int | np.random.SeedSequence | None" = None,
    rng: Optional[np.random.Generator] = None,
) -> AllocationResult:
    """One-call wrapper around :class:`StaleKDChoiceProcess`."""
    process = StaleKDChoiceProcess(
        n_bins=n_bins,
        k=k,
        d=d,
        stale_rounds=stale_rounds,
        policy=policy,
        seed=seed,
        rng=rng,
    )
    return process.run(n_balls=n_balls)
