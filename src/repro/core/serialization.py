"""Serialized (k, d)-choice process ``A_σ`` (Definition 1 of the paper).

The round-based process places its ``k`` balls "simultaneously".  For the
analysis (and for the coupling arguments of Section 3), the paper serializes
each round: a permutation ``σ_r`` of ``{1, ..., k}`` fixes the order in which
the ``k`` balls of round ``r`` claim the ``k`` destination slots, so the bin
state is defined at every *ball time* ``t ∈ {1, ..., m}``, not only at round
boundaries.

Property (i) of Section 3 states that every serialization ``A_σ`` is
equivalent to the round process ``A`` — the end-of-round states coincide
under the natural coupling.  The implementation below realizes exactly that
coupling: a round's destination slots are computed once with the strict
policy, and ``σ_r`` only determines which ball (i.e. which time step) claims
which slot.  This gives per-ball heights and placement times for tests and
for the lower-bound experiments, while guaranteeing Property (i) by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from .policies import StrictPolicy
from .state import BinState
from .types import AllocationResult, ProcessParams

__all__ = ["BallPlacement", "SerializedKDChoice", "run_serialized_kd_choice"]


@dataclass(frozen=True)
class BallPlacement:
    """Record of a single ball placement in the serialized process.

    Attributes
    ----------
    time:
        Ball time ``t`` (1-based), i.e. this was the ``t``-th ball placed.
    round_index:
        Round the ball belongs to (1-based).
    position_in_round:
        The ball's index ``s`` within its round (1-based), i.e. ``σ_r`` maps
        this position to a destination slot.
    bin_index:
        Physical bin that received the ball.
    height:
        Number of balls in the bin immediately after this placement.
    """

    time: int
    round_index: int
    position_in_round: int
    bin_index: int
    height: int


SigmaFactory = Callable[[int, int, np.random.Generator], Sequence[int]]
"""A callable ``(round_index, k, rng) -> permutation of range(k)``."""


def _identity_sigma(round_index: int, k: int, rng: np.random.Generator) -> Sequence[int]:
    return tuple(range(k))


def _reversed_sigma(round_index: int, k: int, rng: np.random.Generator) -> Sequence[int]:
    return tuple(reversed(range(k)))


def _random_sigma(round_index: int, k: int, rng: np.random.Generator) -> Sequence[int]:
    return tuple(int(x) for x in rng.permutation(k))


_NAMED_SIGMAS = {
    "identity": _identity_sigma,
    "reversed": _reversed_sigma,
    "random": _random_sigma,
}


class SerializedKDChoice:
    """Ball-at-a-time serialization ``A_σ`` of the (k, d)-choice process.

    Parameters
    ----------
    n_bins, k, d:
        As in :class:`~repro.core.process.KDChoiceProcess`.
    sigma:
        Either a named strategy ("identity", "reversed", "random") or a
        callable ``(round_index, k, rng) -> permutation of range(k)``.
    seed, rng:
        Source of randomness.
    """

    def __init__(
        self,
        n_bins: int,
        k: int,
        d: int,
        sigma: "str | SigmaFactory" = "identity",
        seed: "int | np.random.SeedSequence | None" = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        ProcessParams(n_bins=n_bins, n_balls=None, k=k, d=d)
        self.n_bins = n_bins
        self.k = k
        self.d = d
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        if isinstance(sigma, str):
            try:
                self.sigma: SigmaFactory = _NAMED_SIGMAS[sigma]
            except KeyError as exc:
                raise ValueError(
                    f"unknown sigma strategy {sigma!r}; "
                    f"choose from {sorted(_NAMED_SIGMAS)}"
                ) from exc
        else:
            self.sigma = sigma
        self.sigma_name = sigma if isinstance(sigma, str) else getattr(
            sigma, "__name__", "custom"
        )
        self.state = BinState(n_bins)
        self.placements: List[BallPlacement] = []
        self.messages = 0
        self._policy = StrictPolicy()

    def run(self, n_balls: Optional[int] = None) -> AllocationResult:
        """Place ``n_balls`` balls (default ``n_bins``) and return the result.

        ``result.extra['placements']`` holds the full placement history.
        """
        if n_balls is None:
            n_balls = self.n_bins
        if n_balls % self.k != 0:
            raise ValueError(
                "the serialized process requires n_balls to be a multiple of k "
                f"(got n_balls={n_balls}, k={self.k}); the paper assumes k | n"
            )
        rounds = n_balls // self.k
        time = 0
        loads = self.state._loads

        for round_index in range(1, rounds + 1):
            samples = [
                int(s) for s in self.rng.integers(0, self.n_bins, size=self.d)
            ]
            self.messages += self.d
            # Destination slots for the round, least-loaded-first, exactly as
            # the strict policy computes them.
            slots = self._policy.select(loads, samples, self.k, self.rng)
            permutation = list(self.sigma(round_index, self.k, self.rng))
            if sorted(permutation) != list(range(self.k)):
                raise ValueError(
                    f"sigma produced {permutation!r}, not a permutation of "
                    f"range({self.k})"
                )
            for position, slot_index in enumerate(permutation, start=1):
                bin_index = slots[slot_index]
                time += 1
                height = self.state.place(bin_index)
                self.placements.append(
                    BallPlacement(
                        time=time,
                        round_index=round_index,
                        position_in_round=position,
                        bin_index=bin_index,
                        height=height,
                    )
                )

        return AllocationResult(
            loads=self.state.as_array(),
            scheme=f"serialized-({self.k},{self.d})-choice[{self.sigma_name}]",
            n_bins=self.n_bins,
            n_balls=self.state.total_balls,
            k=self.k,
            d=self.d,
            messages=self.messages,
            rounds=rounds,
            policy="strict",
            extra={"placements": self.placements},
        )

    # ------------------------------------------------------------------
    # Per-time accounting used by tests of Definition 1 quantities
    # ------------------------------------------------------------------
    def loads_at_time(self, t: int) -> np.ndarray:
        """Reconstruct the unsorted load vector right after ball ``t``.

        This is ``B^{A_σ}(t)`` from Definition 1 (before sorting).  ``t = 0``
        gives the empty configuration.
        """
        if not 0 <= t <= len(self.placements):
            raise ValueError(
                f"t must be in [0, {len(self.placements)}], got {t}"
            )
        loads = np.zeros(self.n_bins, dtype=np.int64)
        for placement in self.placements[:t]:
            loads[placement.bin_index] += 1
        return loads

    def sorted_loads_at_time(self, t: int) -> np.ndarray:
        """Sorted load vector ``B^{A_σ}_x(t)`` (descending in x)."""
        return np.sort(self.loads_at_time(t))[::-1]

    def height_of_ball(self, t: int) -> int:
        """Height of the ``t``-th ball (1-based)."""
        return self.placements[t - 1].height


def run_serialized_kd_choice(
    n_bins: int,
    k: int,
    d: int,
    n_balls: Optional[int] = None,
    sigma: "str | SigmaFactory" = "identity",
    seed: "int | np.random.SeedSequence | None" = None,
    rng: Optional[np.random.Generator] = None,
) -> AllocationResult:
    """Convenience wrapper: run ``A_σ`` once and return its result."""
    process = SerializedKDChoice(
        n_bins=n_bins, k=k, d=d, sigma=sigma, seed=seed, rng=rng
    )
    return process.run(n_balls=n_balls)
