"""Shared batched-selection kernel for the vectorized engines.

Every fast path in :mod:`repro.core.vectorized` faces the same problem: the
scalar reference processes place balls *sequentially* (each placement changes
the loads the next ball reads), while NumPy wants to evaluate many balls at
once.  Two primitives make batching exact:

``strict_select_rows``
    Row-wise strict (k, d)-choice selection where every row sees the *same*
    load snapshot (rows are independent by construction — stale epochs, or
    conflict-free batches).  Rows that sample a bin twice fall back to the
    scalar kernel :func:`~repro.core.policies.strict_select`, so the result
    is bit-for-bit what the scalar policy would produce.

``prefix_conflicts``
    The speculate-verify primitive for genuinely sequential processes.  The
    engine first computes every row's *provisional* outcome against the
    batch-start loads, then asks which rows might have read a bin written by
    an **earlier** row of the batch.  Rows marked clean are guaranteed to
    have the same outcome as in the sequential replay; the (rare) suspect
    rows are re-executed through the scalar kernel in row order.

    Soundness rests on two facts that hold for every engine in this
    repository: a row's destination bins are always a subset of its sampled
    bins, and placements only ever *add* load.  The detector therefore uses
    each clean row's provisional destinations and each suspect row's full
    sample set as its (conservative) write set, and iterates to a fixpoint.

    A useful corollary: the destinations of the clean rows of a batch are
    pairwise distinct (a later clean row reading an earlier clean row's
    destination would have been marked suspect), so clean placements can be
    applied with one fancy-indexed add — no ``np.add.at`` needed.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from .policies import strict_select

__all__ = [
    "stable_tiebreak_ranks",
    "ball_order_kept",
    "strict_select_rows",
    "ConflictScratch",
    "prefix_conflicts",
    "clean_segments",
]


def ball_order_kept(keys: np.ndarray, kept: np.ndarray) -> np.ndarray:
    """Sort each row's kept columns into *ball order* (ascending key).

    ``kept`` holds per-row column indices selected by ``argpartition`` (the
    k smallest keys, in arbitrary order); the scalar kernel hands
    destinations out sorted by ``(height, tiebreak)``.  Keys are unique
    within a row (they embed the distinct tie-break ranks mod d), so a
    stable sort of the kept keys reproduces the scalar lexsort order
    exactly.  Shared by every batch kernel that captures destinations for
    the streaming allocator.
    """
    kept_keys = np.take_along_axis(keys, kept, axis=1)
    order = np.argsort(kept_keys, axis=1, kind="stable")
    return np.take_along_axis(kept, order, axis=1)


def stable_tiebreak_ranks(tiebreaks: np.ndarray) -> np.ndarray:
    """Per-row ranks of the tie-break variates, ``kind="stable"``.

    The rank (an integer < d) replaces the float tie-break in composite sort
    keys: within a row the lexicographic order of ``(height, rank)`` equals
    the order of ``(height, tiebreak)``, and bit-equal tie-break doubles
    (astronomically rare, but possible at paper scale) resolve by sample
    index exactly as ``np.lexsort`` does in the scalar kernel.
    """
    batch, d = tiebreaks.shape
    order = np.argsort(tiebreaks, axis=1, kind="stable")
    ranks = np.empty_like(order)
    np.put_along_axis(
        ranks, order, np.broadcast_to(np.arange(d), (batch, d)), axis=1
    )
    return ranks


def strict_select_rows(
    loads: np.ndarray,
    samples: np.ndarray,
    tiebreaks: np.ndarray,
    k: int,
    ordered: bool = False,
) -> np.ndarray:
    """Strict (k, d) selection of every row against one load snapshot.

    Rows are independent: each sees ``loads`` exactly as passed (no
    placements are applied here).  Returns the ``(B, k)`` destination bins;
    their order within a row is unspecified (callers apply them with
    ``bincount``-style adds, which are order-insensitive) unless
    ``ordered=True``, which sorts each row into *ball order* — the exact
    order the scalar :func:`~repro.core.policies.strict_select` kernel
    returns — for callers that hand destinations out one ball at a time
    (the streaming allocator).
    """
    batch, d = samples.shape
    destinations = np.empty((batch, k), dtype=np.int64)

    # Rows that sample some bin twice need the multiplicity-capped heights;
    # send them to the scalar kernel (a ~d^2/n fraction).
    row_sorted = np.sort(samples, axis=1)
    duplicated = (row_sorted[:, 1:] == row_sorted[:, :-1]).any(axis=1)
    clean = ~duplicated

    if clean.any():
        rows = samples[clean]
        heights = loads[rows] + 1
        ranks = stable_tiebreak_ranks(tiebreaks[clean])
        keys = heights * np.int64(d) + ranks
        kept = np.argpartition(keys, k - 1, axis=1)[:, :k]
        if ordered:
            kept = ball_order_kept(keys, kept)
        destinations[clean] = np.take_along_axis(rows, kept, axis=1)

    for index in np.flatnonzero(duplicated):
        destinations[index] = strict_select(
            loads, samples[index].tolist(), k, tiebreaks[index]
        )
    return destinations


class ConflictScratch:
    """Reusable first-writer-position buffer for :func:`prefix_conflicts`.

    Allocating (and clearing) an ``n_bins``-sized array per batch would cost
    O(n) per call; the scratch instead remembers which entries it touched and
    resets only those, so a batch costs O(batch * width).  The row-position
    arange is cached too, so steady-state batches allocate nothing fixed.
    """

    _SENTINEL = np.iinfo(np.int64).max

    def __init__(self, n_bins: int) -> None:
        self.positions = np.full(n_bins, self._SENTINEL, dtype=np.int64)
        self._arange = np.arange(0, dtype=np.int64)

    def row_positions(self, batch: int) -> np.ndarray:
        if len(self._arange) < batch:
            self._arange = np.arange(batch, dtype=np.int64)
        return self._arange[:batch]

    def reset(self, touched: np.ndarray) -> None:
        self.positions[touched] = self._SENTINEL


def prefix_conflicts(
    reads: np.ndarray,
    writes: np.ndarray,
    scratch: ConflictScratch,
    expanded: "np.ndarray | None" = None,
    forced: "np.ndarray | None" = None,
) -> np.ndarray:
    """Mark rows whose reads may see a bin written by an earlier row.

    Parameters
    ----------
    reads:
        ``(B, W)`` read sets — every bin row ``i`` examines *given its
        provisional outcome*.  Slots a row does not actually read should be
        padded with the row's own destination (a self-read can never mark a
        row suspect, and an earlier write to the destination marks it suspect
        through the real read that chose it).
    writes:
        ``(B,)`` or ``(B, k)`` provisional destinations computed against the
        batch-start loads.  They are each row's true writes *while the row is
        clean*.
    scratch:
        A :class:`ConflictScratch` sized to the bin count.
    expanded:
        ``(B, P)`` conservative read sets used to widen a *suspect* row's
        write set: once a row replays, it may examine (and land in) any of
        these bins.  Defaults to ``reads`` — pass the full sample rows
        whenever ``reads`` is a trimmed prefix.
    forced:
        Optional mask of rows that must replay regardless of conflicts
        (e.g. rows whose provisional outcome could not be computed, such as
        weighted rounds sampling a bin twice).  Forced rows participate in
        the fixpoint like any other suspect.

    Returns the boolean suspect mask.  Rows left unmarked provably read no
    bin that any earlier row writes, so their provisional outcome equals the
    sequential one (induction over row index).
    """
    batch = reads.shape[0]
    positions = scratch.row_positions(batch)
    write_positions = scratch.positions

    # First writer per bin: scatter in reverse row order, so the earliest
    # row's assignment lands last and wins.
    if writes.ndim == 1:
        write_positions[writes[::-1]] = positions[::-1]
    else:
        write_positions[writes[::-1].ravel()] = np.repeat(
            positions[::-1], writes.shape[1]
        )
    suspect = (write_positions[reads] < positions[:, None]).any(axis=1)
    if forced is not None:
        suspect |= forced

    widen = reads if expanded is None else expanded
    if suspect.any():
        # Fixpoint: a suspect row's replay may land anywhere in its widened
        # read set, so widen its write set and re-check until no new suspects
        # appear.  The mask only grows, so this terminates (usually in one
        # extra pass).
        while True:
            np.minimum.at(
                write_positions, widen[suspect], positions[suspect, None]
            )
            grown = (write_positions[reads] < positions[:, None]).any(axis=1)
            if forced is not None:
                grown |= forced
            if (grown == suspect).all():
                break
            suspect = grown
        scratch.reset(widen[suspect])
    scratch.reset(writes)
    return suspect


def clean_segments(suspect: np.ndarray) -> Iterator[Tuple[int, int, int]]:
    """Iterate ``(segment_start, segment_stop, suspect_index)`` in row order.

    Yields one triple per suspect row: the half-open range of clean rows
    preceding it, then its own index; a final triple with ``suspect_index ==
    -1`` covers the trailing clean rows.  Callers apply the clean segment
    vectorized, then replay the suspect row through the scalar kernel —
    which together reproduces the exact sequential application order.
    """
    previous = 0
    for index in np.flatnonzero(suspect):
        yield previous, int(index), int(index)
        previous = int(index) + 1
    yield previous, len(suspect), -1
