"""Common result and parameter types shared by every allocation process.

Every process in :mod:`repro.core` — the (k, d)-choice process, the classic
baselines and the adaptive comparators — returns an :class:`AllocationResult`,
so downstream code (metrics, experiment recipes, benches) can treat them
uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

__all__ = ["ProcessParams", "AllocationResult"]


@dataclass(frozen=True)
class ProcessParams:
    """Parameters of a (k, d)-choice run.

    Attributes
    ----------
    n_bins:
        Number of bins ``n``.
    n_balls:
        Number of balls ``m`` placed in total (``m = n`` in the lightly
        loaded case, ``m > n`` for Theorem 2's heavily loaded case).
        ``None`` means "not known yet": a process object validates its
        ``(n, k, d)`` geometry at construction time but only learns the ball
        count when ``run()`` is called.  Quantities that need ``m``
        (:attr:`rounds`, :attr:`message_cost`) raise until it is known.
    k:
        Number of balls placed per round.
    d:
        Number of bins probed per round.  Must satisfy ``1 <= k <= d``.
    policy:
        Name of the allocation policy ("strict" for the paper's rule,
        "greedy" for the Section 7 relaxation).
    """

    n_bins: int
    n_balls: Optional[int] = None
    k: int = 1
    d: int = 1
    policy: str = "strict"

    def __post_init__(self) -> None:
        if self.n_bins <= 0:
            raise ValueError(f"n_bins must be positive, got {self.n_bins}")
        if self.n_balls is not None and self.n_balls < 0:
            raise ValueError(f"n_balls must be non-negative, got {self.n_balls}")
        if not 1 <= self.k <= self.d:
            raise ValueError(
                f"requires 1 <= k <= d, got k={self.k}, d={self.d}"
            )
        if self.d > self.n_bins:
            raise ValueError(
                f"d must not exceed n_bins, got d={self.d}, n_bins={self.n_bins}"
            )

    @property
    def d_k(self) -> float:
        """The paper's ``d_k = d / (d - k)`` (infinity when ``k == d``)."""
        if self.d == self.k:
            return float("inf")
        return self.d / (self.d - self.k)

    def _known_balls(self) -> int:
        if self.n_balls is None:
            raise ValueError(
                "n_balls is not known yet; construct the params with an "
                "explicit ball count before asking for round quantities"
            )
        return self.n_balls

    @property
    def rounds(self) -> int:
        """Number of full rounds required to place ``n_balls`` balls."""
        return -(-self._known_balls() // self.k)  # ceiling division

    @property
    def message_cost(self) -> int:
        """Total probe messages: ``d`` probes per round (footnote 1)."""
        return self.rounds * self.d


@dataclass
class AllocationResult:
    """Outcome of an allocation process.

    Attributes
    ----------
    loads:
        Final unsorted load vector (``loads[i]`` = balls in physical bin i).
    scheme:
        Human-readable scheme name ("(k,d)-choice", "single-choice", ...).
    n_bins, n_balls:
        Problem size.
    k, d:
        Round size and probe count where applicable (``k = d = 1`` for the
        classic single-choice process).
    messages:
        Total number of bin probes issued by the process.
    rounds:
        Number of rounds executed (equals ``n_balls`` for serial processes).
    policy:
        Allocation policy name, where applicable.
    extra:
        Scheme-specific extras (e.g. probe histogram for adaptive schemes).
    """

    loads: np.ndarray
    scheme: str
    n_bins: int
    n_balls: int
    k: int = 1
    d: int = 1
    messages: int = 0
    rounds: int = 0
    policy: str = "strict"
    extra: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.loads = np.asarray(self.loads, dtype=np.int64)
        if self.loads.ndim != 1:
            raise ValueError("loads must be a one-dimensional vector")
        if self.loads.shape[0] != self.n_bins:
            raise ValueError(
                f"loads has length {self.loads.shape[0]}, expected {self.n_bins}"
            )

    # ------------------------------------------------------------------
    # Convenience metrics (full metric suite lives in repro.core.metrics)
    # ------------------------------------------------------------------
    @property
    def max_load(self) -> int:
        """Maximum bin load ``M``."""
        return int(self.loads.max()) if self.loads.size else 0

    @property
    def average_load(self) -> float:
        """Average load ``m / n``."""
        return float(self.n_balls) / float(self.n_bins)

    @property
    def gap(self) -> float:
        """Max load minus average load."""
        return self.max_load - self.average_load

    @property
    def messages_per_ball(self) -> float:
        """Average number of probes per ball."""
        if self.n_balls == 0:
            return 0.0
        return self.messages / self.n_balls

    def sorted_loads(self) -> np.ndarray:
        """Sorted load vector ``B_1 >= B_2 >= ... >= B_n``."""
        return np.sort(self.loads)[::-1]

    def nu(self, y: int) -> int:
        """Number of bins with at least ``y`` balls."""
        if y <= 0:
            return self.n_bins
        return int(np.count_nonzero(self.loads >= y))

    def total_balls_check(self) -> bool:
        """True when the load vector sums to ``n_balls`` (conservation)."""
        return int(self.loads.sum()) == self.n_balls

    def summary(self) -> Dict[str, object]:
        """Compact dictionary summary used by result tables."""
        return {
            "scheme": self.scheme,
            "n_bins": self.n_bins,
            "n_balls": self.n_balls,
            "k": self.k,
            "d": self.d,
            "policy": self.policy,
            "max_load": self.max_load,
            "gap": round(self.gap, 4),
            "messages": self.messages,
            "messages_per_ball": round(self.messages_per_ball, 4),
        }
