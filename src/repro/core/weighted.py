"""Weighted (k, d)-choice: balls carry weights instead of unit loads.

The balanced-allocations literature the paper builds on also studies weighted
balls (Talwar & Wieder, STOC 2007; Peres, Talwar & Wieder, SODA 2010 — both
cited by the paper).  The natural weighted generalization of (k, d)-choice
assigns, per round, ``k`` weighted balls to the ``k`` least *weighted-loaded*
of ``d`` sampled bins, under the same multiplicity cap.  The paper itself
analyses only unit weights; this module is an extension point used by the
ablation/extension experiments, and reduces exactly to the unit process when
every weight is 1.

Weight distributions supported out of the box: constant, exponential, Pareto
(heavy-tailed) and user-supplied arrays.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

import numpy as np

from .process import _DEFAULT_CHUNK_ROUNDS
from .types import AllocationResult, ProcessParams

__all__ = [
    "WeightedKDChoiceProcess",
    "run_weighted_kd_choice",
    "make_weights",
    "weighted_round_apply",
]

WeightSpec = Union[str, Sequence[float], Callable[[np.random.Generator, int], np.ndarray]]


def make_weights(
    spec: WeightSpec,
    n_balls: int,
    rng: np.random.Generator,
    mean_weight: float = 1.0,
    pareto_shape: float = 2.5,
) -> np.ndarray:
    """Materialize a weight specification into an array of ``n_balls`` weights.

    Parameters
    ----------
    spec:
        "constant", "exponential", "pareto", an explicit sequence of weights
        (length ``n_balls``), or a callable ``(rng, n_balls) -> array``.
    mean_weight:
        Target mean for the named distributions.
    pareto_shape:
        Tail index for the Pareto distribution (must exceed 1 so the mean is
        finite).
    """
    if callable(spec):
        weights = np.asarray(spec(rng, n_balls), dtype=float)
    elif isinstance(spec, str):
        if spec == "constant":
            weights = np.full(n_balls, mean_weight)
        elif spec == "exponential":
            weights = rng.exponential(mean_weight, size=n_balls)
        elif spec == "pareto":
            if pareto_shape <= 1.0:
                raise ValueError(
                    f"pareto_shape must exceed 1 for a finite mean, got {pareto_shape}"
                )
            scale = mean_weight * (pareto_shape - 1.0) / pareto_shape
            weights = scale * (1.0 + rng.pareto(pareto_shape, size=n_balls))
        else:
            raise ValueError(
                "weight spec must be 'constant', 'exponential', 'pareto', a sequence "
                f"or a callable, got {spec!r}"
            )
    else:
        weights = np.asarray(list(spec), dtype=float)
        if weights.shape[0] != n_balls:
            raise ValueError(
                f"explicit weights have length {weights.shape[0]}, expected {n_balls}"
            )
    if np.any(weights < 0):
        raise ValueError("ball weights must be non-negative")
    return weights


def weighted_round_apply(
    loads: np.ndarray,
    counts: np.ndarray,
    samples: Sequence[int],
    tiebreaks: Sequence[float],
    batch_weights: np.ndarray,
    increment: float,
    inv_capacity: Optional[np.ndarray] = None,
) -> "list[int]":
    """Apply one weighted round in place (the scalar round kernel).

    The ``d`` virtual unit placements are ranked by weighted height (with
    the multiplicity stacking of the strict rule), the ``len(batch_weights)``
    lowest slots are kept, and the balls are matched heaviest-first to the
    least-loaded kept slots.  ``tiebreaks`` is the round's explicit tie-break
    vector, pre-drawn by the caller so the scalar process and the vectorized
    engine (:mod:`repro.core.vectorized`) consume the random stream in the
    same order.

    Returns the destination bins in ball order (heaviest ball first), which
    is how the streaming allocator (:mod:`repro.online`) hands them out.

    ``inv_capacity`` (the ``hetero_bins`` extension) switches both rankings
    from raw weighted load to fractional fill — heights and the final slot
    order are scaled by each bin's inverse capacity; ``None`` leaves the
    arithmetic exactly as before.
    """
    extra: dict[int, int] = {}
    slot_heights = []
    for j, bin_index in enumerate(samples):
        placed_before = extra.get(bin_index, 0)
        height = loads[bin_index] + increment * (placed_before + 1)
        if inv_capacity is not None:
            height = height * inv_capacity[bin_index]
        slot_heights.append((height, tiebreaks[j], bin_index))
        extra[bin_index] = placed_before + 1
    slot_heights.sort()
    kept_bins = [bin_index for _, _, bin_index in slot_heights[: len(batch_weights)]]

    # Heaviest ball to the least-loaded (least-filled) kept slot.
    if inv_capacity is None:
        kept_bins.sort(key=lambda b: loads[b])
    else:
        kept_bins.sort(key=lambda b: loads[b] * inv_capacity[b])
    for weight, bin_index in zip(batch_weights, kept_bins):
        loads[bin_index] += weight
        counts[bin_index] += 1
    return kept_bins


class WeightedKDChoiceProcess:
    """(k, d)-choice with weighted balls.

    Each round samples ``d`` bins and must place ``k`` weighted balls.  The
    weighted analogue of the strict policy is used: the round's ``d`` virtual
    placements are ranked by the *weighted height* (weighted load of the bin
    right after the virtual placement) and the ``d − k`` heaviest-height
    placements are removed.  Remaining balls are matched to kept slots in
    decreasing weight order (heaviest ball to the least-loaded slot), the
    standard greedy rule for weighted balanced allocations.
    """

    def __init__(
        self,
        n_bins: int,
        k: int,
        d: int,
        weights: WeightSpec = "constant",
        mean_weight: float = 1.0,
        seed: "int | np.random.SeedSequence | None" = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        ProcessParams(n_bins=n_bins, n_balls=None, k=k, d=d)
        self.n_bins = n_bins
        self.k = k
        self.d = d
        self.weights_spec = weights
        self.mean_weight = mean_weight
        self.rng = rng if rng is not None else np.random.default_rng(seed)

    def run(self, n_balls: Optional[int] = None) -> AllocationResult:
        """Place ``n_balls`` weighted balls (default ``n_bins``)."""
        if n_balls is None:
            n_balls = self.n_bins
        weights = make_weights(
            self.weights_spec, n_balls, self.rng, mean_weight=self.mean_weight
        )
        loads = np.zeros(self.n_bins, dtype=float)
        counts = np.zeros(self.n_bins, dtype=np.int64)
        messages = 0
        rounds = 0
        full_rounds, tail_balls = divmod(n_balls, self.k)

        # Samples and tie-breaks are drawn in chunked blocks, mirroring the
        # plain process (`KDChoiceProcess._sample_chunks`): a block of round
        # samples, then the matching block of tie-break doubles.  NumPy fills
        # both element-sequentially, so the vectorized engine can draw the
        # same blocks and stay stream-identical.
        position = 0
        done = 0
        while done < full_rounds:
            chunk = min(full_rounds - done, _DEFAULT_CHUNK_ROUNDS)
            samples_block = self.rng.integers(0, self.n_bins, size=(chunk, self.d))
            ties_block = self.rng.random((chunk, self.d))
            for row in range(chunk):
                batch_weights = np.sort(weights[position : position + self.k])[::-1]
                # Weighted heights of the d virtual unit placements (the cap
                # is about *how many* balls a bin may take, so the virtual
                # placement uses the mean batch weight as a tie-neutral
                # increment).
                increment = float(batch_weights.mean())
                weighted_round_apply(
                    loads,
                    counts,
                    samples_block[row].tolist(),
                    ties_block[row],
                    batch_weights,
                    increment,
                )
                position += self.k
            messages += chunk * self.d
            rounds += chunk
            done += chunk

        if tail_balls:
            batch_weights = np.sort(weights[position:])[::-1]
            samples = self.rng.integers(0, self.n_bins, size=self.d)
            tiebreaks = self.rng.random(self.d)
            weighted_round_apply(
                loads,
                counts,
                samples.tolist(),
                tiebreaks,
                batch_weights,
                float(batch_weights.mean()),
            )
            messages += self.d
            rounds += 1

        total_weight = float(weights.sum())
        return AllocationResult(
            loads=counts,
            scheme=f"weighted-({self.k},{self.d})-choice[{self._spec_name()}]",
            n_bins=self.n_bins,
            n_balls=n_balls,
            k=self.k,
            d=self.d,
            messages=messages,
            rounds=rounds,
            policy="weighted-strict",
            extra={
                "weighted_loads": loads,
                "total_weight": total_weight,
                "max_weighted_load": float(loads.max()) if loads.size else 0.0,
                "weighted_gap": float(loads.max() - total_weight / self.n_bins)
                if loads.size
                else 0.0,
            },
        )

    def _spec_name(self) -> str:
        if isinstance(self.weights_spec, str):
            return self.weights_spec
        if callable(self.weights_spec):
            return getattr(self.weights_spec, "__name__", "custom")
        return "explicit"


def run_weighted_kd_choice(
    n_bins: int,
    k: int,
    d: int,
    weights: WeightSpec = "exponential",
    n_balls: Optional[int] = None,
    mean_weight: float = 1.0,
    seed: "int | np.random.SeedSequence | None" = None,
    rng: Optional[np.random.Generator] = None,
    capacities: Optional[np.ndarray] = None,
) -> AllocationResult:
    """One-call wrapper around :class:`WeightedKDChoiceProcess`.

    ``result.extra['weighted_loads']`` holds the per-bin total weight;
    ``result.loads`` holds ball counts, so the unit-weight invariants still
    apply to it.  ``capacities`` (the ``hetero_bins`` workload) ranks the
    round's virtual placements by fractional fill instead of raw weighted
    load.
    """
    if capacities is not None:
        # The fill-aware variant is defined by the streaming kernel
        # (WeightedKDChoiceStepper.step); the batch drive loop declines its
        # batched apply under capacities, so this runs the per-round
        # reference path with the identical draw blocks.
        from .kernels.table import run_weighted_kd_choice_vectorized

        result = run_weighted_kd_choice_vectorized(
            n_bins=n_bins, k=k, d=d, weights=weights, n_balls=n_balls,
            mean_weight=mean_weight, seed=seed, rng=rng,
            capacities=capacities,
        )
        result.extra.pop("engine", None)
        return result
    process = WeightedKDChoiceProcess(
        n_bins=n_bins,
        k=k,
        d=d,
        weights=weights,
        mean_weight=mean_weight,
        seed=seed,
        rng=rng,
    )
    return process.run(n_balls=n_balls)
