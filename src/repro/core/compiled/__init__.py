"""NumPy-facing wrappers over the bundled C replay kernels.

Each wrapper takes the same arrays the scalar/NumPy code paths already hold,
handles dtype/contiguity coercion for the *read-only* inputs, and calls the
matching C function.  Mutated arrays (``loads``, ``counts``) must be C-
contiguous with the exact dtype — they are the steppers' own state vectors,
which always are; the wrappers assert rather than copy so an accidental
view can never silently desynchronise the in-place update.

Availability is a separate concern: callers gate on
:func:`backend_unavailable_reason` (or catch :class:`CompiledUnavailable`)
before reaching any wrapper here.
"""

from __future__ import annotations

import numpy as np

from repro.core.compiled._backend import (
    CompiledUnavailable,
    backend_unavailable_reason,
    describe_backend,
    load_backend,
)

__all__ = [
    "CompiledUnavailable",
    "backend_unavailable_reason",
    "describe_backend",
    "load_backend",
    "kd_rounds",
    "select_rows",
    "weighted_rounds",
    "one_plus_beta",
    "always_go_left",
    "threshold",
    "two_phase",
]


def _in_i64(arr: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(arr, dtype=np.int64)


def _in_f64(arr: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(arr, dtype=np.float64)


def _mutable(arr: np.ndarray, dtype: type) -> np.ndarray:
    if arr.dtype != np.dtype(dtype) or not arr.flags["C_CONTIGUOUS"]:
        raise TypeError(
            f"compiled kernels mutate {np.dtype(dtype)} C-contiguous arrays "
            f"in place; got dtype={arr.dtype} contiguous={arr.flags['C_CONTIGUOUS']}"
        )
    return arr


def _ptr(ffi, ctype: str, arr: np.ndarray):
    return ffi.cast(ctype, ffi.from_buffer(arr))


def kd_rounds(
    loads: np.ndarray, samples: np.ndarray, ties: np.ndarray, k: int
) -> np.ndarray:
    """Sequential strict (k,d)-choice rounds; mutates ``loads`` in place.

    Returns the ``(r, k)`` destination matrix in ball order, identical to
    ``r`` successive ``strict_select`` calls.
    """
    ffi, lib = load_backend()
    loads = _mutable(loads, np.int64)
    samples = _in_i64(samples)
    ties = _in_f64(ties)
    r, d = samples.shape
    out = np.empty((r, k), dtype=np.int64)
    lib.repro_kd_rounds(
        _ptr(ffi, "int64_t *", loads),
        _ptr(ffi, "const int64_t *", samples),
        _ptr(ffi, "const double *", ties),
        r, d, k,
        _ptr(ffi, "int64_t *", out),
    )
    return out


def select_rows(
    snapshot: np.ndarray, samples: np.ndarray, ties: np.ndarray, k: int
) -> np.ndarray:
    """Strict selection of every row against one frozen snapshot (stale
    epochs).  No mutation; returns ``(r, k)`` in ball order."""
    ffi, lib = load_backend()
    snapshot = _in_i64(snapshot)
    samples = _in_i64(samples)
    ties = _in_f64(ties)
    r, d = samples.shape
    out = np.empty((r, k), dtype=np.int64)
    lib.repro_select_rows(
        _ptr(ffi, "const int64_t *", snapshot),
        _ptr(ffi, "const int64_t *", samples),
        _ptr(ffi, "const double *", ties),
        r, d, k,
        _ptr(ffi, "int64_t *", out),
    )
    return out


def weighted_rounds(
    loads: np.ndarray,
    counts: np.ndarray,
    samples: np.ndarray,
    ties: np.ndarray,
    weights: np.ndarray,
    increments: np.ndarray,
) -> np.ndarray:
    """Sequential weighted rounds; mutates ``loads`` (float weighted loads)
    and ``counts`` (int ball counts) in place.  ``weights`` rows must be
    sorted descending; returns ``(r, k)`` kept bins, heaviest ball first."""
    ffi, lib = load_backend()
    loads = _mutable(loads, np.float64)
    counts = _mutable(counts, np.int64)
    samples = _in_i64(samples)
    ties = _in_f64(ties)
    weights = _in_f64(weights)
    increments = _in_f64(increments)
    r, d = samples.shape
    k = weights.shape[1]
    out = np.empty((r, k), dtype=np.int64)
    lib.repro_weighted_rounds(
        _ptr(ffi, "double *", loads),
        _ptr(ffi, "int64_t *", counts),
        _ptr(ffi, "const int64_t *", samples),
        _ptr(ffi, "const double *", ties),
        _ptr(ffi, "const double *", weights),
        _ptr(ffi, "const double *", increments),
        r, d, k,
        _ptr(ffi, "int64_t *", out),
    )
    return out


def one_plus_beta(
    loads: np.ndarray,
    coins: np.ndarray,
    first: np.ndarray,
    second: np.ndarray,
) -> np.ndarray:
    """Sequential (1+beta)-choice balls; mutates ``loads`` in place."""
    ffi, lib = load_backend()
    loads = _mutable(loads, np.int64)
    coins = np.ascontiguousarray(coins, dtype=np.bool_).view(np.uint8)
    first = _in_i64(first)
    second = _in_i64(second)
    n = first.shape[0]
    out = np.empty(n, dtype=np.int64)
    lib.repro_one_plus_beta(
        _ptr(ffi, "int64_t *", loads),
        _ptr(ffi, "const uint8_t *", coins),
        _ptr(ffi, "const int64_t *", first),
        _ptr(ffi, "const int64_t *", second),
        n,
        _ptr(ffi, "int64_t *", out),
    )
    return out


def always_go_left(loads: np.ndarray, probes: np.ndarray) -> np.ndarray:
    """Sequential Always-Go-Left balls; mutates ``loads`` in place."""
    ffi, lib = load_backend()
    loads = _mutable(loads, np.int64)
    probes = _in_i64(probes)
    n, d = probes.shape
    out = np.empty(n, dtype=np.int64)
    lib.repro_always_go_left(
        _ptr(ffi, "int64_t *", loads),
        _ptr(ffi, "const int64_t *", probes),
        n, d,
        _ptr(ffi, "int64_t *", out),
    )
    return out


def threshold(
    loads: np.ndarray, probes: np.ndarray, limits: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Sequential threshold-probing balls; mutates ``loads`` in place.

    Returns ``(bins, probes_used)`` per ball."""
    ffi, lib = load_backend()
    loads = _mutable(loads, np.int64)
    probes = _in_i64(probes)
    limits = _in_i64(limits)
    n, max_probes = probes.shape
    out_bins = np.empty(n, dtype=np.int64)
    out_used = np.empty(n, dtype=np.int64)
    lib.repro_threshold(
        _ptr(ffi, "int64_t *", loads),
        _ptr(ffi, "const int64_t *", probes),
        _ptr(ffi, "const int64_t *", limits),
        n, max_probes,
        _ptr(ffi, "int64_t *", out_bins),
        _ptr(ffi, "int64_t *", out_used),
    )
    return out_bins, out_used


def two_phase(
    loads: np.ndarray,
    primary: np.ndarray,
    fallback: np.ndarray,
    cap: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Sequential two-phase adaptive balls; mutates ``loads`` in place.

    Returns ``(bins, retried)`` per ball, ``retried`` as a bool array."""
    ffi, lib = load_backend()
    loads = _mutable(loads, np.int64)
    primary = _in_i64(primary)
    fallback = _in_i64(fallback)
    n = primary.shape[0]
    retry_probes = fallback.shape[1]
    out_bins = np.empty(n, dtype=np.int64)
    out_retried = np.empty(n, dtype=np.uint8)
    lib.repro_two_phase(
        _ptr(ffi, "int64_t *", loads),
        _ptr(ffi, "const int64_t *", primary),
        _ptr(ffi, "const int64_t *", fallback),
        n, retry_probes, int(cap),
        _ptr(ffi, "int64_t *", out_bins),
        _ptr(ffi, "uint8_t *", out_retried),
    )
    return out_bins, out_retried.view(np.bool_)
