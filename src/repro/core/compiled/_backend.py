"""Build/load machinery for the bundled C kernels.

The compiled tier ships ``_kernels.c`` and compiles it on first use with the
system C compiler, loading the result through cffi's ABI mode.  Nothing here
is required for correctness: every caller first asks
:func:`backend_unavailable_reason` and falls back to the NumPy/scalar path
when it returns a reason string.  The guard contract is that a missing
compiler, missing cffi, or failed build produces a *reason*, never an
exception, so a clean pure-python environment behaves exactly as before this
tier existed.

Environment knobs:

``REPRO_COMPILED_DISABLE``
    Any non-empty value short-circuits availability (used by tests and as an
    operator escape hatch).  Re-checked on every call so monkeypatching works.
``REPRO_COMPILED_CACHE``
    Directory for the built shared object (default: XDG cache).
``REPRO_CC``
    C compiler to use (default: first of ``cc``, ``gcc``, ``clang`` on PATH).
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
import threading
from pathlib import Path

__all__ = [
    "CompiledUnavailable",
    "backend_unavailable_reason",
    "describe_backend",
    "load_backend",
]

_SOURCE = Path(__file__).with_name("_kernels.c")

_CDEF = """
void repro_kd_rounds(int64_t *loads, const int64_t *samples,
                     const double *ties, int64_t r, int64_t d, int64_t k,
                     int64_t *out);
void repro_select_rows(const int64_t *snapshot, const int64_t *samples,
                       const double *ties, int64_t r, int64_t d, int64_t k,
                       int64_t *out);
void repro_weighted_rounds(double *loads, int64_t *counts,
                           const int64_t *samples, const double *ties,
                           const double *weights, const double *increments,
                           int64_t r, int64_t d, int64_t k, int64_t *out);
void repro_one_plus_beta(int64_t *loads, const uint8_t *coins,
                         const int64_t *first, const int64_t *second,
                         int64_t n, int64_t *out);
void repro_always_go_left(int64_t *loads, const int64_t *probes,
                          int64_t n, int64_t d, int64_t *out);
void repro_threshold(int64_t *loads, const int64_t *probes,
                     const int64_t *limits, int64_t n, int64_t max_probes,
                     int64_t *out_bins, int64_t *out_used);
void repro_two_phase(int64_t *loads, const int64_t *primary,
                     const int64_t *fallback, int64_t n,
                     int64_t retry_probes, int64_t cap,
                     int64_t *out_bins, uint8_t *out_retried);
"""


class CompiledUnavailable(RuntimeError):
    """The compiled backend cannot be built or loaded in this environment."""


_lock = threading.Lock()
# (ffi, lib) once loaded, or a reason string once a build/load attempt
# failed.  REPRO_COMPILED_DISABLE is deliberately NOT cached — it is checked
# on every call so tests can toggle it.
_loaded: tuple[object, object] | None = None
_failed_reason: str | None = None


def _find_compiler() -> str | None:
    override = os.environ.get("REPRO_CC")
    if override:
        return override if shutil.which(override) else None
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_COMPILED_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-compiled"


def _source_tag(source: str) -> str:
    payload = f"{sys.implementation.cache_tag}\n{source}".encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def _build(compiler: str, source_path: Path, out_path: Path) -> None:
    out_path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(suffix=".so", dir=str(out_path.parent))
    os.close(fd)
    try:
        cmd = [compiler, "-O3", "-shared", "-fPIC", "-o", tmp, str(source_path)]
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=120
        )
        if proc.returncode != 0:
            detail = (proc.stderr or proc.stdout or "").strip()
            raise CompiledUnavailable(
                f"compiler failed ({compiler}): {detail[:500]}"
            )
        os.replace(tmp, out_path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def _load_locked() -> tuple[object, object]:
    global _loaded, _failed_reason
    if _loaded is not None:
        return _loaded
    if _failed_reason is not None:
        raise CompiledUnavailable(_failed_reason)
    try:
        try:
            import cffi
        except ImportError:
            raise CompiledUnavailable(
                "cffi is not installed (pip install repro[compiled])"
            )
        if not _SOURCE.exists():
            raise CompiledUnavailable(f"bundled source missing: {_SOURCE}")
        compiler = _find_compiler()
        if compiler is None:
            raise CompiledUnavailable(
                "no C compiler found (set REPRO_CC or install cc/gcc/clang)"
            )
        source = _SOURCE.read_text(encoding="utf-8")
        lib_path = _cache_dir() / f"repro_kernels_{_source_tag(source)}.so"
        if not lib_path.exists():
            _build(compiler, _SOURCE, lib_path)
        ffi = cffi.FFI()
        ffi.cdef(_CDEF)
        try:
            lib = ffi.dlopen(str(lib_path))
        except OSError as exc:
            raise CompiledUnavailable(f"cannot load {lib_path}: {exc}")
        _loaded = (ffi, lib)
        return _loaded
    except CompiledUnavailable as exc:
        _failed_reason = str(exc)
        raise


def load_backend() -> tuple[object, object]:
    """Return ``(ffi, lib)``, building the shared object on first use.

    Raises :class:`CompiledUnavailable` with an actionable reason when the
    backend cannot be provided.  The failure is cached (the environment will
    not grow a compiler mid-process) but the ``REPRO_COMPILED_DISABLE``
    switch is honoured fresh on every call.
    """
    if os.environ.get("REPRO_COMPILED_DISABLE"):
        raise CompiledUnavailable("disabled via REPRO_COMPILED_DISABLE")
    with _lock:
        return _load_locked()


def backend_unavailable_reason() -> str | None:
    """Why the compiled backend cannot run here, or ``None`` if it can."""
    try:
        load_backend()
    except CompiledUnavailable as exc:
        return str(exc)
    return None


def describe_backend() -> dict:
    """Diagnostic summary for ``repro schemes --check`` and humans."""
    reason = backend_unavailable_reason()
    info: dict = {
        "available": reason is None,
        "compiler": _find_compiler(),
        "cache_dir": str(_cache_dir()),
    }
    if reason is not None:
        info["reason"] = reason
    return info


def _reset_for_tests() -> None:
    """Drop the cached load/failure state (test hook)."""
    global _loaded, _failed_reason
    with _lock:
        _loaded = None
        _failed_reason = None
