/* Sequential C replay kernels for the compiled engine tier.
 *
 * Every function here is a straight transliteration of one scalar Python
 * kernel (see the matching file under src/repro/core/): the randomness is
 * still drawn by NumPy in the exact scalar block order, so these loops only
 * *apply* placements, sequentially, one unit at a time.  That is what makes
 * the compiled engine seed-for-seed identical to the scalar reference by
 * construction — there is no speculation, no conflict detection and no
 * reordering to verify, just the interpreter overhead removed.
 *
 * Sort comparators mirror the Python sorts bit for bit:
 *   - strict selection sorts round slots by (height, tiebreak) with a
 *     stable insertion sort, matching np.lexsort((tie, heights)) including
 *     its index-order stability on full ties;
 *   - the weighted round sorts (height, tiebreak, bin) tuples and then
 *     stable-sorts the kept slots by their pre-placement loads, matching
 *     list.sort() / sort(key=...) in core/weighted.py.
 *
 * Widths (d, max_probes, retry_probes) are bounded by the Python callers
 * (REPRO registry guard, 1024) so the per-round VLA scratch stays small.
 */

#include <stdint.h>

/* Stable insertion sort of the round's slot indices by (height, tie).
 * Equal (height, tie) pairs keep their index order — the same stability
 * np.lexsort provides. */
static void sort_slots(const int64_t *heights, const double *ties,
                       int64_t d, int64_t *order)
{
    for (int64_t j = 0; j < d; j++) {
        order[j] = j;
    }
    for (int64_t i = 1; i < d; i++) {
        int64_t idx = order[i];
        int64_t h = heights[idx];
        double t = ties[idx];
        int64_t m = i - 1;
        while (m >= 0) {
            int64_t other = order[m];
            if (heights[other] > h ||
                (heights[other] == h && ties[other] > t)) {
                order[m + 1] = other;
                m--;
            } else {
                break;
            }
        }
        order[m + 1] = idx;
    }
}

/* One strict (k, d)-choice selection of `row` against `loads`, destinations
 * written to `dest` in ball order.  Matches core/policies.py strict_select:
 * heights carry the within-round multiplicity stacking. */
static void strict_round(const int64_t *loads, const int64_t *row,
                         const double *ties, int64_t d, int64_t k,
                         int64_t *heights, int64_t *order, int64_t *dest)
{
    for (int64_t j = 0; j < d; j++) {
        int64_t placed_before = 0;
        for (int64_t m = 0; m < j; m++) {
            if (row[m] == row[j]) {
                placed_before++;
            }
        }
        heights[j] = loads[row[j]] + placed_before + 1;
    }
    sort_slots(heights, ties, d, order);
    for (int64_t j = 0; j < k; j++) {
        dest[j] = row[order[j]];
    }
}

/* Sequential strict (k, d)-choice rounds, mutating `loads` between rounds
 * exactly like repeated strict_select calls.  `out` is (r, k), ball order. */
void repro_kd_rounds(int64_t *loads, const int64_t *samples,
                     const double *ties, int64_t r, int64_t d, int64_t k,
                     int64_t *out)
{
    int64_t heights[1024];
    int64_t order[1024];
    for (int64_t row = 0; row < r; row++) {
        int64_t *dest = out + row * k;
        strict_round(loads, samples + row * d, ties + row * d, d, k,
                     heights, order, dest);
        for (int64_t j = 0; j < k; j++) {
            loads[dest[j]] += 1;
        }
    }
}

/* Strict selection of every row against one immutable load snapshot (the
 * stale-information epochs): no placements are applied here.  `out` is
 * (r, k) in ball order. */
void repro_select_rows(const int64_t *snapshot, const int64_t *samples,
                       const double *ties, int64_t r, int64_t d, int64_t k,
                       int64_t *out)
{
    int64_t heights[1024];
    int64_t order[1024];
    for (int64_t row = 0; row < r; row++) {
        strict_round(snapshot, samples + row * d, ties + row * d, d, k,
                     heights, order, out + row * k);
    }
}

/* Sequential weighted (k, d)-choice rounds; see weighted_round_apply in
 * core/weighted.py.  `weights` is (r, k) with each row sorted descending
 * (heaviest ball first); `increments` is each row's mean weight.  `loads`
 * is the float weighted-load vector, `counts` the integer ball counts.
 * `out` is (r, k), ball order (heaviest ball first). */
void repro_weighted_rounds(double *loads, int64_t *counts,
                           const int64_t *samples, const double *ties,
                           const double *weights, const double *increments,
                           int64_t r, int64_t d, int64_t k, int64_t *out)
{
    double heights[1024];
    int64_t order[1024];
    int64_t kept[1024];
    double keys[1024];
    for (int64_t row = 0; row < r; row++) {
        const int64_t *s = samples + row * d;
        const double *t = ties + row * d;
        const double *w = weights + row * k;
        double increment = increments[row];

        for (int64_t j = 0; j < d; j++) {
            int64_t placed_before = 0;
            for (int64_t m = 0; m < j; m++) {
                if (s[m] == s[j]) {
                    placed_before++;
                }
            }
            heights[j] = loads[s[j]] + increment * (double)(placed_before + 1);
        }
        /* Sort slots by the (height, tie, bin) tuple, ascending; stability
         * on fully equal tuples matches Python's list.sort(). */
        for (int64_t j = 0; j < d; j++) {
            order[j] = j;
        }
        for (int64_t i = 1; i < d; i++) {
            int64_t idx = order[i];
            double h = heights[idx];
            double tv = t[idx];
            int64_t b = s[idx];
            int64_t m = i - 1;
            while (m >= 0) {
                int64_t other = order[m];
                double oh = heights[other];
                double ot = t[other];
                int64_t ob = s[other];
                if (oh > h || (oh == h && (ot > tv || (ot == tv && ob > b)))) {
                    order[m + 1] = other;
                    m--;
                } else {
                    break;
                }
            }
            order[m + 1] = idx;
        }
        for (int64_t j = 0; j < k; j++) {
            kept[j] = s[order[j]];
        }
        /* Heaviest ball to the least-loaded kept slot: stable sort of the
         * kept bins by their pre-placement loads (keys snapshot first, as
         * Python's sort(key=...) evaluates keys before sorting). */
        for (int64_t j = 0; j < k; j++) {
            keys[j] = loads[kept[j]];
        }
        for (int64_t i = 1; i < k; i++) {
            double key = keys[i];
            int64_t b = kept[i];
            int64_t m = i - 1;
            while (m >= 0 && keys[m] > key) {
                keys[m + 1] = keys[m];
                kept[m + 1] = kept[m];
                m--;
            }
            keys[m + 1] = key;
            kept[m + 1] = b;
        }
        int64_t *dest = out + row * k;
        for (int64_t j = 0; j < k; j++) {
            int64_t b = kept[j];
            loads[b] += w[j];
            counts[b] += 1;
            dest[j] = b;
        }
    }
}

/* Sequential (1 + beta)-choice balls; see OnePlusBetaStepper.step. */
void repro_one_plus_beta(int64_t *loads, const uint8_t *coins,
                         const int64_t *first, const int64_t *second,
                         int64_t n, int64_t *out)
{
    for (int64_t i = 0; i < n; i++) {
        int64_t target = first[i];
        if (coins[i]) {
            int64_t b = second[i];
            if (loads[b] < loads[target]) {
                target = b;
            }
        }
        loads[target] += 1;
        out[i] = target;
    }
}

/* Sequential Always-Go-Left balls: first least-loaded probe of each row
 * (strict < scan, earliest minimum wins = "go left"). */
void repro_always_go_left(int64_t *loads, const int64_t *probes,
                          int64_t n, int64_t d, int64_t *out)
{
    for (int64_t i = 0; i < n; i++) {
        const int64_t *row = probes + i * d;
        int64_t best = row[0];
        int64_t best_load = loads[best];
        for (int64_t j = 1; j < d; j++) {
            int64_t b = row[j];
            int64_t load = loads[b];
            if (load < best_load) {
                best_load = load;
                best = b;
            }
        }
        loads[best] += 1;
        out[i] = best;
    }
}

/* Sequential threshold-probing balls; see threshold_place in
 * core/adaptive.py.  `limits` carries each ball's threshold (the default
 * average rule and fixed thresholds are pure functions of the ball index,
 * precomputed by the caller). */
void repro_threshold(int64_t *loads, const int64_t *probes,
                     const int64_t *limits, int64_t n, int64_t max_probes,
                     int64_t *out_bins, int64_t *out_used)
{
    for (int64_t i = 0; i < n; i++) {
        const int64_t *row = probes + i * max_probes;
        int64_t limit = limits[i];
        int64_t best = row[0];
        int64_t best_load = loads[best];
        int64_t used = 1;
        if (best_load > limit) {
            for (int64_t j = 1; j < max_probes; j++) {
                used++;
                int64_t b = row[j];
                int64_t load = loads[b];
                if (load < best_load) {
                    best_load = load;
                    best = b;
                }
                if (load <= limit) {
                    break;
                }
            }
        }
        loads[best] += 1;
        out_bins[i] = best;
        out_used[i] = used;
    }
}

/* Sequential two-phase adaptive balls; see two_phase_place in
 * core/adaptive.py. */
void repro_two_phase(int64_t *loads, const int64_t *primary,
                     const int64_t *fallback, int64_t n,
                     int64_t retry_probes, int64_t cap,
                     int64_t *out_bins, uint8_t *out_retried)
{
    for (int64_t i = 0; i < n; i++) {
        int64_t p = primary[i];
        if (loads[p] < cap) {
            loads[p] += 1;
            out_bins[i] = p;
            out_retried[i] = 0;
            continue;
        }
        const int64_t *row = fallback + i * retry_probes;
        int64_t best = row[0];
        int64_t best_load = loads[best];
        for (int64_t j = 1; j < retry_probes; j++) {
            int64_t b = row[j];
            int64_t load = loads[b];
            if (load < best_load) {
                best_load = load;
                best = b;
            }
        }
        loads[best] += 1;
        out_bins[i] = best;
        out_retried[i] = 1;
    }
}
