"""Baseline allocation processes the paper compares (k, d)-choice against.

Implemented schemes
-------------------
``run_single_choice``
    The classic single-choice process: each ball goes to one uniformly random
    bin.  Maximum load ``(1 + o(1)) ln n / ln ln n`` w.h.p. [Raab & Steger].
``run_d_choice``
    Azar et al.'s Greedy[d]: each ball probes ``d`` random bins and joins the
    least loaded.  Maximum load ``ln ln n / ln d + O(1)`` w.h.p.
``run_one_plus_beta``
    Peres, Talwar & Wieder's (1 + β)-choice: each ball uses two-choice with
    probability β and single-choice otherwise.  Included because the paper
    positions (k, d)-choice as a different single/multi-choice mix.
``run_always_go_left``
    Vöcking's asymmetric Always-Go-Left scheme with ``d`` groups, the best
    known non-adaptive d-probe scheme (``ln ln n / (d ln φ_d) + O(1)``).
``run_batch_random``
    ``SA(k, k)``: ``k`` balls per round, each to a uniformly random bin.
    Distribution-identical to single choice; used by the analysis (Lemma 3)
    and by tests of the majorization chain.

Every function returns an :class:`~repro.core.types.AllocationResult` whose
``messages`` field counts bin probes, so the trade-off experiments can compare
message cost across schemes on an equal footing.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .process import run_kd_choice
from .types import AllocationResult

__all__ = [
    "run_single_choice",
    "run_d_choice",
    "run_one_plus_beta",
    "run_always_go_left",
    "run_batch_random",
    "least_loaded_probe",
]

#: Balls per RNG block for the per-ball schemes.  Shared (by import) with
#: :mod:`repro.core.adaptive` and the vectorized engines: bit-for-bit engine
#: equivalence depends on both sides drawing identical blocks.
_CHUNK = 8192


def _make_rng(
    seed: "int | np.random.SeedSequence | None",
    rng: Optional[np.random.Generator],
) -> np.random.Generator:
    return rng if rng is not None else np.random.default_rng(seed)


def least_loaded_probe(loads, row) -> int:
    """First least-loaded bin of ``row`` (strict ``<`` scan, earliest wins).

    The per-ball kernel shared by the scalar Always-Go-Left loop and the
    vectorized engine's conflict replay; the earliest-minimum rule is what
    makes ties "go left".
    """
    best_bin = row[0]
    best_load = loads[best_bin]
    for bin_index in row[1:]:
        load = loads[bin_index]
        if load < best_load:
            best_load = load
            best_bin = bin_index
    return best_bin


def run_single_choice(
    n_bins: int,
    n_balls: Optional[int] = None,
    seed: "int | np.random.SeedSequence | None" = None,
    rng: Optional[np.random.Generator] = None,
) -> AllocationResult:
    """Classic single-choice balls-into-bins.

    Fully vectorized: the destination of every ball is independent, so the
    final load vector is a single multinomial draw realized via ``bincount``.
    """
    if n_bins <= 0:
        raise ValueError(f"n_bins must be positive, got {n_bins}")
    if n_balls is None:
        n_balls = n_bins
    if n_balls < 0:
        raise ValueError(f"n_balls must be non-negative, got {n_balls}")
    generator = _make_rng(seed, rng)
    choices = generator.integers(0, n_bins, size=n_balls)
    loads = np.bincount(choices, minlength=n_bins)
    return AllocationResult(
        loads=loads,
        scheme="single-choice",
        n_bins=n_bins,
        n_balls=n_balls,
        k=1,
        d=1,
        messages=n_balls,
        rounds=n_balls,
        policy="uniform",
    )


def run_d_choice(
    n_bins: int,
    d: int,
    n_balls: Optional[int] = None,
    seed: "int | np.random.SeedSequence | None" = None,
    rng: Optional[np.random.Generator] = None,
    capacities: Optional[np.ndarray] = None,
) -> AllocationResult:
    """Azar et al.'s Greedy[d] (the standard multiple-choice process).

    This is exactly the (1, d)-choice special case of the library's main
    process; the wrapper exists so baseline comparisons read naturally and
    report the conventional scheme name.
    """
    if d < 1:
        raise ValueError(f"d must be at least 1, got {d}")
    result = run_kd_choice(
        n_bins=n_bins, k=1, d=d, n_balls=n_balls, seed=seed, rng=rng,
        capacities=capacities,
    )
    result.scheme = f"greedy[{d}]"
    return result


def run_one_plus_beta(
    n_bins: int,
    beta: float,
    n_balls: Optional[int] = None,
    seed: "int | np.random.SeedSequence | None" = None,
    rng: Optional[np.random.Generator] = None,
) -> AllocationResult:
    """The (1 + β)-choice process of Peres, Talwar and Wieder (SODA 2010).

    Each ball flips a β-coin: with probability β it performs two-choice
    (probe two bins, join the lesser loaded), otherwise it joins a single
    uniformly random bin.
    """
    if not 0.0 <= beta <= 1.0:
        raise ValueError(f"beta must lie in [0, 1], got {beta}")
    if n_bins <= 0:
        raise ValueError(f"n_bins must be positive, got {n_bins}")
    if n_balls is None:
        n_balls = n_bins
    generator = _make_rng(seed, rng)

    loads = [0] * n_bins
    messages = 0
    remaining = n_balls
    while remaining > 0:
        batch = min(remaining, _CHUNK)
        coins = generator.random(batch) < beta
        first = generator.integers(0, n_bins, size=batch)
        second = generator.integers(0, n_bins, size=batch)
        for use_two, a, b in zip(coins.tolist(), first.tolist(), second.tolist()):
            if use_two:
                messages += 2
                target = a if loads[a] <= loads[b] else b
            else:
                messages += 1
                target = a
            loads[target] += 1
        remaining -= batch

    return AllocationResult(
        loads=np.asarray(loads, dtype=np.int64),
        scheme=f"(1+{beta:g})-choice",
        n_bins=n_bins,
        n_balls=n_balls,
        k=1,
        d=2,
        messages=messages,
        rounds=n_balls,
        policy="mixed",
        extra={"beta": beta},
    )


def run_always_go_left(
    n_bins: int,
    d: int,
    n_balls: Optional[int] = None,
    seed: "int | np.random.SeedSequence | None" = None,
    rng: Optional[np.random.Generator] = None,
    capacities: Optional[np.ndarray] = None,
) -> AllocationResult:
    """Vöcking's Always-Go-Left asymmetric d-choice scheme.

    The bins are split into ``d`` contiguous groups of (almost) equal size;
    each ball probes one uniformly random bin per group and joins a least
    loaded probed bin, breaking ties towards the leftmost (lowest index)
    group.  ``capacities`` (the ``hetero_bins`` workload) switches the
    comparison to fractional fill ``(load + 1) / capacity``.
    """
    if d < 1:
        raise ValueError(f"d must be at least 1, got {d}")
    if n_bins < d:
        raise ValueError(f"need n_bins >= d groups, got n_bins={n_bins}, d={d}")
    if capacities is not None:
        # The fill-aware variant is defined by the streaming kernel
        # (AlwaysGoLeftStepper.step); the batch drive loop declines its
        # batched apply under capacities, so this runs the per-ball
        # reference path with the identical draw blocks.
        from .kernels.table import run_always_go_left_vectorized

        result = run_always_go_left_vectorized(
            n_bins=n_bins, d=d, n_balls=n_balls, seed=seed, rng=rng,
            capacities=capacities,
        )
        result.extra.pop("engine", None)
        return result
    if n_balls is None:
        n_balls = n_bins
    generator = _make_rng(seed, rng)

    # Group g covers bins [boundaries[g], boundaries[g+1]).
    boundaries = np.linspace(0, n_bins, d + 1).astype(np.int64)
    group_sizes = np.diff(boundaries)
    if np.any(group_sizes == 0):
        raise ValueError("every group must contain at least one bin")

    loads = [0] * n_bins
    messages = 0
    remaining = n_balls
    while remaining > 0:
        batch = min(remaining, _CHUNK)
        # One uniform draw per (ball, group), scaled into each group's range.
        uniform = generator.random(size=(batch, d))
        probes = (boundaries[:-1] + uniform * group_sizes).astype(np.int64)
        for row in probes.tolist():
            messages += d
            loads[least_loaded_probe(loads, row)] += 1
        remaining -= batch

    return AllocationResult(
        loads=np.asarray(loads, dtype=np.int64),
        scheme=f"always-go-left[{d}]",
        n_bins=n_bins,
        n_balls=n_balls,
        k=1,
        d=d,
        messages=messages,
        rounds=n_balls,
        policy="asymmetric",
    )


def run_batch_random(
    n_bins: int,
    k: int,
    n_balls: Optional[int] = None,
    seed: "int | np.random.SeedSequence | None" = None,
    rng: Optional[np.random.Generator] = None,
) -> AllocationResult:
    """The paper's ``SA(k, k)``: per round, ``k`` balls each to a random bin.

    The end state is distribution-identical to single choice with the same
    number of balls; the scheme exists as a separate entry point because the
    analysis (Lemma 3 and the lower bound of Section 5) compares (k, d)-choice
    against exactly this process.
    """
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    result = run_single_choice(n_bins=n_bins, n_balls=n_balls, seed=seed, rng=rng)
    result.scheme = f"batch-random[k={k}]"
    result.k = k
    result.d = k
    result.rounds = -(-result.n_balls // k)
    return result
