"""Bin state and load accounting for balls-into-bins processes.

The :class:`BinState` class is the mutable substrate on which every allocation
process in this library operates.  It stores the unsorted load vector (bin
``i`` keeps its identity for the whole run, matching a physical machine or
storage server) and exposes the sorted views and counting functions used in
the paper's analysis:

* ``nu(y)``  — the number of bins with at least ``y`` balls (paper's ``ν_y``),
* ``mu(y)``  — the number of balls with height at least ``y`` (paper's ``µ_y``),
* ``sorted_loads()`` — the sorted bin-load vector ``B_1 ≥ B_2 ≥ ... ≥ B_n``
  used throughout Sections 4 and 5.

The *height* of a ball is the number of balls in its bin immediately after it
is placed (Section 2.1 of the paper).  ``BinState.place`` returns that height
so processes can implement the removal rule of the (k, d)-choice policy.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

__all__ = ["BinState"]


class BinState:
    """Mutable load vector for ``n`` bins.

    Parameters
    ----------
    n_bins:
        Number of bins.  Must be a positive integer.
    loads:
        Optional initial loads.  When omitted, every bin starts empty.

    Notes
    -----
    The class intentionally keeps the load vector as a plain Python list of
    integers: allocation processes touch a handful of bins per round, and
    element access on a list is faster than single-element access on a NumPy
    array.  Whole-vector analytics (``nu``, ``sorted_loads`` ...) convert to
    NumPy on demand.
    """

    def __init__(self, n_bins: int, loads: Sequence[int] | None = None) -> None:
        if n_bins <= 0:
            raise ValueError(f"n_bins must be positive, got {n_bins}")
        if loads is None:
            self._loads: List[int] = [0] * n_bins
        else:
            if len(loads) != n_bins:
                raise ValueError(
                    f"loads has length {len(loads)}, expected n_bins={n_bins}"
                )
            if any(load < 0 for load in loads):
                raise ValueError("bin loads must be non-negative")
            self._loads = [int(load) for load in loads]
        self._n_bins = n_bins
        self._total = sum(self._loads)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n_bins(self) -> int:
        """Number of bins."""
        return self._n_bins

    @property
    def total_balls(self) -> int:
        """Total number of balls currently placed."""
        return self._total

    @property
    def loads(self) -> List[int]:
        """A copy of the unsorted load vector (index = bin identity)."""
        return list(self._loads)

    def load_of(self, bin_index: int) -> int:
        """Load of a specific bin."""
        return self._loads[bin_index]

    def __len__(self) -> int:
        return self._n_bins

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BinState(n_bins={self._n_bins}, total_balls={self._total}, "
            f"max_load={self.max_load()})"
        )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def place(self, bin_index: int) -> int:
        """Place one ball into ``bin_index`` and return the ball's height.

        The height is the load of the bin *including* the new ball, which is
        the paper's definition of ball height.
        """
        self._loads[bin_index] += 1
        self._total += 1
        return self._loads[bin_index]

    def remove(self, bin_index: int) -> None:
        """Remove one ball from ``bin_index``.

        Used by the (k, d)-choice policy that places all ``d`` balls and then
        removes the ``d - k`` with maximal heights.
        """
        if self._loads[bin_index] <= 0:
            raise ValueError(f"bin {bin_index} is empty; cannot remove a ball")
        self._loads[bin_index] -= 1
        self._total -= 1

    def place_many(self, bin_indices: Iterable[int]) -> List[int]:
        """Place one ball into each listed bin (with multiplicity).

        Returns the heights of the placed balls, in placement order.
        """
        return [self.place(index) for index in bin_indices]

    def copy(self) -> "BinState":
        """Return an independent copy of this state."""
        clone = BinState.__new__(BinState)
        clone._loads = list(self._loads)
        clone._n_bins = self._n_bins
        clone._total = self._total
        return clone

    # ------------------------------------------------------------------
    # Sorted views and counters from the paper
    # ------------------------------------------------------------------
    def as_array(self) -> np.ndarray:
        """The unsorted load vector as a NumPy array."""
        return np.asarray(self._loads, dtype=np.int64)

    def sorted_loads(self) -> np.ndarray:
        """The sorted load vector ``B_1 ≥ B_2 ≥ ... ≥ B_n`` (descending)."""
        arr = self.as_array()
        arr[::-1].sort()  # in-place ascending sort of the reversed view
        return arr

    def max_load(self) -> int:
        """Maximum bin load (``B_1`` in the paper's notation)."""
        return max(self._loads) if self._loads else 0

    def min_load(self) -> int:
        """Minimum bin load (``B_n``)."""
        return min(self._loads) if self._loads else 0

    def average_load(self) -> float:
        """Average load ``m / n``."""
        return self._total / self._n_bins

    def gap(self) -> float:
        """Gap between the maximum and the average load.

        This is the quantity tracked by the heavily-loaded analysis
        (Theorem 2 and [Berenbrink et al. 2006]).
        """
        return self.max_load() - self.average_load()

    def nu(self, y: int) -> int:
        """Number of bins with at least ``y`` balls (paper's ``ν_y``)."""
        if y <= 0:
            return self._n_bins
        return sum(1 for load in self._loads if load >= y)

    def mu(self, y: int) -> int:
        """Number of balls with height at least ``y`` (paper's ``µ_y``).

        A bin with load ``B`` holds exactly ``max(B - y + 1, 0)`` balls of
        height at least ``y``, so ``µ_y = Σ_i [B_i - y + 1]^+``.
        """
        if y <= 1:
            # Every ball has height at least 1.
            return self._total
        return sum(load - y + 1 for load in self._loads if load >= y)

    def nu_vector(self, max_height: int | None = None) -> np.ndarray:
        """``ν_y`` for every ``y`` from 0 to ``max_height`` (inclusive)."""
        top = self.max_load() if max_height is None else max_height
        counts = np.bincount(self.as_array(), minlength=top + 1)
        # ν_y = number of bins with load >= y = n - #bins with load < y
        cumulative = np.cumsum(counts)
        nu = np.empty(top + 1, dtype=np.int64)
        nu[0] = self._n_bins
        if top >= 1:
            nu[1:] = self._n_bins - cumulative[:top]
        return nu

    def load_histogram(self) -> Dict[int, int]:
        """Mapping from load value to the number of bins with that load."""
        histogram: Dict[int, int] = {}
        for load in self._loads:
            histogram[load] = histogram.get(load, 0) + 1
        return histogram

    def fraction_empty(self) -> float:
        """Fraction of bins holding zero balls."""
        return sum(1 for load in self._loads if load == 0) / self._n_bins

    # ------------------------------------------------------------------
    # Comparison helpers
    # ------------------------------------------------------------------
    def prefix_sums(self) -> np.ndarray:
        """Prefix sums of the sorted load vector: ``B_{≤x}`` for x=1..n.

        ``B_{≤x}`` is the number of balls in the ``x`` most loaded bins, the
        quantity used by the paper's majorization order (Definition 2).
        """
        return np.cumsum(self.sorted_loads())

    def majorizes(self, other: "BinState") -> bool:
        """True if this state majorizes ``other`` sample-wise.

        Sample-wise majorization means ``B_{≤x}(self) ≥ B_{≤x}(other)`` for
        every prefix ``x``.  This is the coupling-level statement behind the
        distributional majorization of Definition 2(ii).
        """
        if other.n_bins != self._n_bins:
            raise ValueError("states must have the same number of bins")
        return bool(np.all(self.prefix_sums() >= other.prefix_sums()))
