"""Kernel-contract foundations shared by every scheme kernel.

A *kernel* is the single registration a scheme makes (see
:mod:`repro.core.kernels.table`): a draw-block spec, a per-unit apply and an
optional batched apply.  This module holds the pieces every kernel builds
on:

* :class:`OnlineStepper` — the per-unit apply surface.  A stepper owns the
  bin state and the generator and produces destination bins one *unit*
  (round, ball or epoch-portion) at a time.  Its contract:

  **RNG-block fidelity.**  Randomness is drawn in exactly the blocks
  (shape and order) the scalar reference engine draws, buffered, and
  consumed incrementally.  After a stepper has emitted its full planned
  stream, its loads, message/round accounting *and generator state* are
  bit-for-bit what the batch runner produces for the same seed — the
  property the equivalence suite in ``tests/online`` locks down.  This is
  why every stepper needs the planned stream length up front (``n_balls``,
  defaulting like the runners to ``n_bins``): the reference engines size
  their final chunk by the number of rounds remaining, so an open-ended
  stream could not reproduce their stream.

  **Units.**  ``step()`` executes the next atomic unit and returns its
  destination bins in ball order (the exact order the scalar kernel
  assigns them).  ``step_block(max_balls)`` optionally executes many whole
  units at once through the vectorized kernels of
  :mod:`repro.core.batched` — bit-identical to repeated ``step()`` calls,
  only faster — returning a flat destination array, or ``None`` when no
  fast path applies (the caller falls back to ``step()``).

  **Snapshots.**  ``state_dict()`` captures the complete mutable state
  (loads, buffered RNG blocks, counters, the generator state itself) as a
  JSON-serializable dict; ``load_state()`` restores it, so a resumed
  stream continues bit-identically.

* :func:`run_to_completion` — the derivation driver.  The vectorized batch
  engines in :mod:`repro.core.kernels.table` are nothing but "drive the
  stepper to the end of its planned stream"; because the stepper consumes
  the same RNG blocks as the historical hand-written batch engine, the
  derived runner is seed-for-seed identical to it.

* The batch-sizing heuristics (:func:`independent_batch_rounds`,
  :func:`speculative_batch_rows`) shared by every batched apply.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..baselines import _CHUNK as _BALL_CHUNK
from ..process import _DEFAULT_CHUNK_ROUNDS as _CHUNK_ROUNDS

__all__ = [
    "StreamExhausted",
    "OnlineStepper",
    "run_to_completion",
    "independent_batch_rounds",
    "speculative_batch_rows",
    "normalize_capacities",
    "CALLABLE_THRESHOLD_REASON",
]

#: Why callable thresholds stay off the batched fast path.  The registry's
#: fast-path guard returns this same string, so engine auto-selection and
#: the kernel's own check cannot drift apart.
CALLABLE_THRESHOLD_REASON = (
    "the vectorized engine supports only integer (or default) thresholds, "
    "got a callable; use the scalar engine instead"
)


def _require_strict(policy: "str | object") -> None:
    policy_name = policy if isinstance(policy, str) else getattr(policy, "name", "?")
    if policy_name != "strict":
        raise ValueError(
            f"the vectorized engine implements only the strict policy, "
            f"got {policy_name!r}; use the scalar engine instead"
        )


def independent_batch_rounds(n_bins: int, d: int) -> int:
    """Batch size that keeps the expected conflict fraction small.

    A round conflicts when one of its ``d`` samples collides with any of the
    other ``(B - 1) d`` samples of its batch (or repeats within the round),
    which happens with probability ~``B d^2 / n``.  The batch size balances
    that Python-fallback cost against the fixed per-batch NumPy overhead.
    """
    return max(8, min(_CHUNK_ROUNDS, int(n_bins // (12 * d * d)) or 8))


def speculative_batch_rows(n_bins: int, width: int, replays: int = 12) -> int:
    """Row count for the speculate-verify kernels.

    A row of ``width`` read bins conflicts with one of the ~``B/2`` earlier
    writes with probability ~``B * width / (2 n)``, so a batch replays
    ~``B^2 width / (2 n)`` rows through the scalar kernel.  Solving for a
    target number of ``replays`` per batch (each costs a couple of
    microseconds, traded against the batch's fixed NumPy overhead) gives
    ``B = sqrt(2 * replays * n / width)``.
    """
    return max(32, min(_BALL_CHUNK, int((2 * replays * n_bins / width) ** 0.5)))


def normalize_capacities(
    capacities: "Optional[object]", n_bins: int
) -> Optional[np.ndarray]:
    """Validate a heterogeneous bin-capacity vector (``None`` passes through).

    Capacities are *parameters*, not state: steppers keep the validated
    array on the instance but reconstruct it from the spec on restore, so
    snapshots stay free of redundant per-bin floats.  Every capacity must
    be a finite positive number; the scale is arbitrary (only ratios
    matter for the fill comparison).
    """
    if capacities is None:
        return None
    array = np.asarray(capacities, dtype=np.float64)
    if array.shape != (n_bins,):
        raise ValueError(
            f"capacities must have one entry per bin ({n_bins}), got shape "
            f"{array.shape}"
        )
    if not np.all(np.isfinite(array)) or (array.size and float(array.min()) <= 0.0):
        raise ValueError(
            "every bin capacity must be a finite positive number"
        )
    return array


class StreamExhausted(RuntimeError):
    """Raised when a stepper is asked for more balls than its spec plans.

    The reference engines draw their final RNG chunk sized by the rounds
    remaining, so a stream cannot be extended past its planned ``n_balls``
    without diverging from the batch random stream; ask for a larger
    ``n_balls`` in the spec instead.
    """


def _rng_from_state(state: Dict[str, Any]) -> np.random.Generator:
    """Reconstruct a generator from a ``bit_generator.state`` dict."""
    name = state.get("bit_generator")
    bit_generator_cls = getattr(np.random, str(name), None)
    if bit_generator_cls is None:
        raise ValueError(f"unknown bit generator {name!r} in snapshot")
    bit_generator = bit_generator_cls()
    bit_generator.state = state
    return np.random.Generator(bit_generator)


def _encode_array(array: Optional[np.ndarray]) -> Optional[Dict[str, Any]]:
    if array is None:
        return None
    return {
        "dtype": array.dtype.str,
        "shape": list(array.shape),
        "data": array.ravel().tolist(),
    }


def _decode_array(encoded: Optional[Dict[str, Any]]) -> Optional[np.ndarray]:
    if encoded is None:
        return None
    return np.asarray(encoded["data"], dtype=np.dtype(encoded["dtype"])).reshape(
        encoded["shape"]
    )


#: Sentinel a ``step_block`` returns instead of a destination array while a
#: kernel runs in drive mode (``_capture = False``): placement happened, but
#: nobody will read the per-ball order, so the kernel may skip building it.
_PLACED = np.empty(0, dtype=np.int64)


class OnlineStepper:
    """Base class: planned-stream bookkeeping and snapshot plumbing.

    Subclasses list their mutable attributes in ``_STATE_SCALARS`` (plain
    ints/floats/bools/None), ``_STATE_ARRAYS`` (numpy arrays or ``None``)
    and ``_STATE_LISTS`` (lists of ints); everything else — parameters,
    derived constants, scratch buffers — is reconstructed by ``__init__``.
    """

    _STATE_SCALARS: Tuple[str, ...] = ("messages", "rounds", "balls_emitted")
    _STATE_ARRAYS: Tuple[str, ...] = ("loads",)
    _STATE_LISTS: Tuple[str, ...] = ()

    #: How ``step_block`` applies placements: ``"numpy"`` (the vectorized
    #: batch kernels) or ``"compiled"`` (the sequential C replay loops of
    #: :mod:`repro.core.compiled`).  Both consume the identical RNG blocks
    #: and produce identical state — this is a *speed* mode, not state, so
    #: it is deliberately absent from ``state_dict`` and re-resolved from
    #: the spec/environment whenever a stepper is (re)constructed.
    kernel_mode: str = "numpy"

    #: Whether ``step_block`` must return destinations in exact ball order.
    #: The streaming allocator always captures; :func:`run_to_completion`
    #: turns capture off so the derived batch engines skip the per-ball
    #: ordering work (the loads, counters and RNG stream are unaffected).
    _capture: bool = True

    n_bins: int
    planned_balls: int
    loads: np.ndarray
    rng: np.random.Generator
    messages: int
    rounds: int
    balls_emitted: int

    # ------------------------------------------------------------------
    # Stream protocol
    # ------------------------------------------------------------------
    @property
    def exhausted(self) -> bool:
        return self.balls_emitted >= self.planned_balls

    def _require_more(self) -> int:
        remaining = self.planned_balls - self.balls_emitted
        if remaining <= 0:
            raise StreamExhausted(
                f"the stream planned n_balls={self.planned_balls} and all of "
                f"them have been placed; build the allocator with a larger "
                f"n_balls to stream further"
            )
        return remaining

    def step(self) -> List[int]:
        """Execute the next unit; return its destinations in ball order."""
        raise NotImplementedError

    def step_block(self, max_balls: int) -> Optional[np.ndarray]:
        """Fast path: execute whole units totalling at most ``max_balls``.

        Returns the flat destination array (ball order), or ``None`` when no
        vectorized progress is possible (tail rounds, non-strict policies,
        ``max_balls`` below one unit) — callers then fall back to ``step``.
        """
        return None

    def set_kernel_mode(self, mode: str) -> None:
        """Select the block-apply backend (``"numpy"`` or ``"compiled"``).

        ``"compiled"`` requires the C backend; raises
        :class:`~repro.core.compiled.CompiledUnavailable` with the guard
        reason when it cannot load — callers decide whether to degrade.
        """
        if mode not in ("numpy", "compiled"):
            raise ValueError(
                f"kernel_mode must be 'numpy' or 'compiled', got {mode!r}"
            )
        if mode == "compiled":
            from repro.core.compiled import load_backend

            load_backend()
        self.kernel_mode = mode

    def remove_ball(self, bin_index: int, ball_index: Optional[int] = None) -> None:
        """Take one ball out of ``bin_index`` (churn support)."""
        if not 0 <= bin_index < self.n_bins:
            raise ValueError(f"bin index {bin_index} out of range")
        if self.loads[bin_index] <= 0:
            raise ValueError(f"cannot remove from empty bin {bin_index}")
        self.loads[bin_index] -= 1

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """The complete mutable state, JSON-serializable."""
        state: Dict[str, Any] = {
            "rng": self.rng.bit_generator.state,
            "scalars": {name: getattr(self, name) for name in self._STATE_SCALARS},
            "arrays": {
                name: _encode_array(getattr(self, name))
                for name in self._STATE_ARRAYS
            },
            "lists": {
                name: list(getattr(self, name)) for name in self._STATE_LISTS
            },
        }
        state.update(self._extra_state())
        return state

    def load_state(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`state_dict` capture (replaces the generator)."""
        self.rng = _rng_from_state(state["rng"])
        for name in self._STATE_SCALARS:
            setattr(self, name, state["scalars"][name])
        for name in self._STATE_ARRAYS:
            setattr(self, name, _decode_array(state["arrays"][name]))
        for name in self._STATE_LISTS:
            setattr(self, name, list(state["lists"][name]))
        self._load_extra_state(state)

    def _extra_state(self) -> Dict[str, Any]:
        return {}

    def _load_extra_state(self, state: Dict[str, Any]) -> None:
        pass


def run_to_completion(
    stepper: OnlineStepper, kernel_mode: Optional[str] = None
) -> OnlineStepper:
    """Drive a stepper to the end of its planned stream (in drive mode).

    This is how the vectorized batch engines are derived from the kernel
    table: the stepper consumes the same RNG blocks as the historical
    hand-written batch engine, so driving it to exhaustion yields loads,
    message/round counts and a final generator state that are bit-for-bit
    identical.  ``_capture`` is cleared for the duration so block kernels
    can skip per-ball destination ordering nobody will read.

    ``kernel_mode`` optionally selects the block-apply backend first
    (``"compiled"`` derives the compiled batch engine from the same
    stepper).
    """
    if kernel_mode is not None:
        stepper.set_kernel_mode(kernel_mode)
    stepper._capture = False
    try:
        while not stepper.exhausted:
            before = stepper.balls_emitted
            block = stepper.step_block(stepper.planned_balls - stepper.balls_emitted)
            if block is None or stepper.balls_emitted == before:
                stepper.step()
    finally:
        stepper._capture = True
    return stepper
