"""Topology-aware kernels: hierarchical go-left and locality two-choice.

Draw blocks (identical to the scalar runners in
:mod:`repro.topology.schemes`): hierarchical go-left draws one
``(batch, n_racks)`` uniform block per ``min(remaining, 8192)`` balls,
scaled into the rack ranges; locality two-choice draws
``(min(rounds remaining, chunk_rounds), d)`` integer blocks plus one
``size=d`` tie-break block per ball — the exact blocks flat
``two_choice`` draws, because the Bresenham locality remap consumes no
randomness.

Per-unit apply: one ball.  Batched apply: speculate-verify sub-batches
(hierarchical, via :func:`~repro.core.batched.prefix_conflicts`) and
independent-round batches (locality, mirroring the (k, d) kernel's
clean/dirty split).  Both steppers additionally tally local/zone/cross
probe and placement counters (:attr:`zone_counters`), which are part of
the snapshot state and feed the telemetry layer; the tallies are purely
observational and never touch the random stream.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ...topology.records import Topology, as_topology
from ...topology.schemes import local_probe_slots, locality_select
from ..baselines import _CHUNK as _BALL_CHUNK
from ..baselines import _make_rng, least_loaded_probe
from ..batched import (
    ConflictScratch,
    clean_segments,
    prefix_conflicts,
    stable_tiebreak_ranks,
)
from ..process import _DEFAULT_CHUNK_ROUNDS
from .base import (
    _PLACED,
    OnlineStepper,
    independent_batch_rounds,
    speculative_batch_rows,
)

__all__ = ["HierarchicalGoLeftStepper", "LocalityTwoChoiceStepper"]

_ZONE_COUNTER_ATTRS = (
    "_rack_probes", "_zone_probes", "_cross_probes",
    "_rack_places", "_zone_places", "_cross_places",
)


class _ZoneCounterMixin:
    """Snapshot-able local/zone/cross tallies shared by both steppers."""

    def _init_zone_counters(self) -> None:
        for attr in _ZONE_COUNTER_ATTRS:
            setattr(self, attr, 0)

    @property
    def zone_counters(self) -> Dict[str, int]:
        """Counter names match :func:`repro.topology.records.zone_counter_extra`."""
        return {attr[1:]: int(getattr(self, attr)) for attr in _ZONE_COUNTER_ATTRS}

    def _count_probe_block(
        self,
        probes: np.ndarray,
        home_zones: np.ndarray,
        home_racks: np.ndarray,
    ) -> None:
        topo = self.topology
        same_zone = topo.bin_zone[probes] == home_zones[:, None]
        same_rack = topo.bin_rack[probes] == home_racks[:, None]
        self._rack_probes += int(np.count_nonzero(same_zone & same_rack))
        self._zone_probes += int(np.count_nonzero(same_zone & ~same_rack))
        self._cross_probes += int(np.count_nonzero(~same_zone))

    def _count_place_block(
        self,
        destinations: np.ndarray,
        home_zones: np.ndarray,
        home_racks: np.ndarray,
    ) -> None:
        topo = self.topology
        same_zone = topo.bin_zone[destinations] == home_zones
        same_rack = topo.bin_rack[destinations] == home_racks
        self._rack_places += int(np.count_nonzero(same_zone & same_rack))
        self._zone_places += int(np.count_nonzero(same_zone & ~same_rack))
        self._cross_places += int(np.count_nonzero(~same_zone))

    def _count_place(self, destination: int, hz: int, hr: int) -> None:
        topo = self.topology
        if int(topo.bin_zone[destination]) != hz:
            self._cross_places += 1
        elif int(topo.bin_rack[destination]) != hr:
            self._zone_places += 1
        else:
            self._rack_places += 1


class HierarchicalGoLeftStepper(_ZoneCounterMixin, OnlineStepper):
    """Streaming hierarchical go-left, unit = one ball.

    One ``(batch, n_racks)`` uniform block per ``min(remaining, 8192)``
    balls, scaled into the topology's rack ranges.  A regular grid with
    ``d`` total racks draws the exact blocks of
    :class:`~repro.core.kernels.balls.AlwaysGoLeftStepper`.
    """

    _STATE_SCALARS = (
        "messages", "balls_emitted", "_pos", "_balls_drawn",
    ) + _ZONE_COUNTER_ATTRS
    _STATE_ARRAYS = OnlineStepper._STATE_ARRAYS + ("_probes",)

    def __init__(
        self,
        n_bins: int,
        d: Optional[int] = None,
        topology: Optional[object] = None,
        n_balls: Optional[int] = None,
        seed: "int | np.random.SeedSequence | None" = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if n_bins <= 0:
            raise ValueError(f"n_bins must be positive, got {n_bins}")
        if topology is None:
            groups = 4 if d is None else int(d)
            topo = Topology.grid(n_bins, zones=groups, racks_per_zone=1)
        else:
            topo = as_topology(topology, n_bins)
            if d is not None and int(d) != topo.n_racks:
                raise ValueError(
                    f"hierarchical go-left probes one bin per rack; topology "
                    f"{topo.name!r} has {topo.n_racks} racks but d={d} was "
                    f"given"
                )
        self.n_bins = n_bins
        self.topology = topo
        self.d = topo.n_racks
        self.rng = _make_rng(seed, rng)
        self.planned_balls = n_bins if n_balls is None else n_balls
        self._boundaries = topo.rack_starts
        self._group_sizes = topo.rack_sizes
        self.loads = np.zeros(n_bins, dtype=np.int64)
        self.messages = 0
        self.balls_emitted = 0
        self._probes: Optional[np.ndarray] = None
        self._pos = 0
        self._balls_drawn = 0
        self._init_zone_counters()
        self._scratch = ConflictScratch(n_bins)
        self._sub_rows = speculative_batch_rows(n_bins, self.d, replays=6)

    @property
    def rounds(self) -> int:
        return self.balls_emitted

    def _refill(self) -> None:
        batch = min(self.planned_balls - self._balls_drawn, _BALL_CHUNK)
        uniform = self.rng.random(size=(batch, self.d))
        self._probes = (
            self._boundaries[:-1] + uniform * self._group_sizes
        ).astype(np.int64)
        self._pos = 0
        self._balls_drawn += batch

    def _buffered(self) -> int:
        if self._probes is None:
            return 0
        return len(self._probes) - self._pos

    def step(self) -> List[int]:
        self._require_more()
        if self._buffered() == 0:
            self._refill()
        row = self._probes[self._pos]
        self._pos += 1
        index = self.balls_emitted
        hz = self.topology.home_zone(index)
        hr = self.topology.home_rack(index)
        self._count_probe_block(
            row[None, :],
            np.asarray([hz], dtype=np.int64),
            np.asarray([hr], dtype=np.int64),
        )
        target = least_loaded_probe(self.loads, row.tolist())
        self.loads[target] += 1
        self._count_place(int(target), hz, hr)
        self.messages += self.d
        self.balls_emitted += 1
        return [int(target)]

    def step_block(self, max_balls: int) -> Optional[np.ndarray]:
        if max_balls <= 0 or self.exhausted:
            return None
        if self._buffered() == 0:
            self._refill()
        take = min(max_balls, self._buffered())
        rows_block = self._probes[self._pos : self._pos + take]
        indices = np.arange(
            self.balls_emitted, self.balls_emitted + take, dtype=np.int64
        )
        home_zones = self.topology.home_zones(indices)
        home_racks = self.topology.home_racks(indices)
        self._count_probe_block(rows_block, home_zones, home_racks)
        out = np.empty(take, dtype=np.int64)
        done = 0
        while done < take:
            stop = min(done + self._sub_rows, take)
            rows = rows_block[done:stop]
            columns = np.argmin(self.loads[rows], axis=1)  # earliest min = left
            destinations = rows[np.arange(len(rows)), columns]
            suspect = prefix_conflicts(rows, destinations, self._scratch)
            for seg_start, seg_stop, suspect_index in clean_segments(suspect):
                self.loads[destinations[seg_start:seg_stop]] += 1
                if suspect_index >= 0:
                    chosen = least_loaded_probe(
                        self.loads, rows[suspect_index].tolist()
                    )
                    self.loads[chosen] += 1
                    destinations[suspect_index] = chosen
            out[done:stop] = destinations
            done = stop
        self._count_place_block(out, home_zones, home_racks)
        self._pos += take
        self.messages += take * self.d
        self.balls_emitted += take
        return out


class LocalityTwoChoiceStepper(_ZoneCounterMixin, OnlineStepper):
    """Streaming locality two-choice, unit = one ball (a 1-ball round).

    Draw blocks mirror :class:`~repro.core.kernels.kd.KDChoiceStepper`
    with ``k = 1``: ``(chunk, d)`` integer sample blocks plus ``size=d``
    tie-break doubles per ball.  The Bresenham remap and the threshold
    spill rule are deterministic, so under a flat topology the stepper is
    bit-identical to flat two-choice for every bias.
    """

    _STATE_SCALARS = OnlineStepper._STATE_SCALARS + (
        "_rounds_drawn", "_buffer_pos",
    ) + _ZONE_COUNTER_ATTRS
    _STATE_ARRAYS = OnlineStepper._STATE_ARRAYS + ("_buffer",)

    def __init__(
        self,
        n_bins: int,
        d: int = 2,
        bias: float = 0.0,
        threshold: int = 0,
        topology: Optional[object] = None,
        n_balls: Optional[int] = None,
        seed: "int | np.random.SeedSequence | None" = None,
        rng: Optional[np.random.Generator] = None,
        chunk_rounds: Optional[int] = None,
    ) -> None:
        if n_bins <= 0:
            raise ValueError(f"n_bins must be positive, got {n_bins}")
        if d < 1:
            raise ValueError(f"d must be at least 1, got {d}")
        if d > n_bins:
            raise ValueError(
                f"d must not exceed n_bins, got d={d}, n_bins={n_bins}"
            )
        if not 0.0 <= bias <= 1.0:
            raise ValueError(f"bias must lie in [0, 1], got {bias}")
        threshold = int(threshold)
        if threshold < 0:
            raise ValueError(f"threshold must be non-negative, got {threshold}")
        chunk_rounds = (
            _DEFAULT_CHUNK_ROUNDS if chunk_rounds is None else chunk_rounds
        )
        if chunk_rounds <= 0:
            raise ValueError(f"chunk_rounds must be positive, got {chunk_rounds}")
        self.n_bins = n_bins
        self.d = d
        self.bias = float(bias)
        self.threshold = threshold
        self.topology = as_topology(topology, n_bins)
        self.chunk_rounds = chunk_rounds
        self.rng = _make_rng(seed, rng)
        self.planned_balls = n_bins if n_balls is None else n_balls
        self.full_rounds = self.planned_balls  # 1-ball rounds: no tail
        self.loads = np.zeros(n_bins, dtype=np.int64)
        self.messages = 0
        self.rounds = 0
        self.balls_emitted = 0
        self._rounds_drawn = 0
        self._buffer: Optional[np.ndarray] = None
        self._buffer_pos = 0
        self._init_zone_counters()
        self._batch_rounds = min(chunk_rounds, independent_batch_rounds(n_bins, d))

    def _refill(self) -> None:
        chunk = min(self.full_rounds - self._rounds_drawn, self.chunk_rounds)
        self._buffer = self.rng.integers(0, self.n_bins, size=(chunk, self.d))
        self._buffer_pos = 0
        self._rounds_drawn += chunk

    def _buffered_rounds(self) -> int:
        if self._buffer is None:
            return 0
        return len(self._buffer) - self._buffer_pos

    def _remap(
        self, raw: np.ndarray, indices: np.ndarray, home_zones: np.ndarray
    ) -> np.ndarray:
        """Apply the Bresenham local remap to a ``(balls, d)`` raw block."""
        topo = self.topology
        local = local_probe_slots(indices, self.d, self.bias)
        return np.where(
            local,
            topo.zone_starts[home_zones][:, None]
            + raw % topo.zone_sizes[home_zones][:, None],
            raw,
        ).astype(np.int64)

    def step(self) -> List[int]:
        self._require_more()
        if self._buffered_rounds() == 0:
            self._refill()
        raw = self._buffer[self._buffer_pos]
        self._buffer_pos += 1
        ties = self.rng.random(self.d)
        index = self.balls_emitted
        hz = self.topology.home_zone(index)
        hr = self.topology.home_rack(index)
        indices = np.asarray([index], dtype=np.int64)
        mapped = self._remap(raw[None, :], indices, np.asarray([hz]))[0]
        self._count_probe_block(
            mapped[None, :],
            np.asarray([hz], dtype=np.int64),
            np.asarray([hr], dtype=np.int64),
        )
        local_mask = self.topology.bin_zone[mapped] == hz
        destination = locality_select(
            self.loads, mapped, local_mask, self.threshold, ties
        )
        self.loads[destination] += 1
        self._count_place(destination, hz, hr)
        self.rounds += 1
        self.messages += self.d
        self.balls_emitted += 1
        return [int(destination)]

    def step_block(self, max_balls: int) -> Optional[np.ndarray]:
        rounds_wanted = min(max_balls, self.full_rounds - self.rounds)
        if rounds_wanted <= 0:
            return None
        if self._buffered_rounds() == 0:
            self._refill()
        r = min(rounds_wanted, self._buffered_rounds())
        raw = self._buffer[self._buffer_pos : self._buffer_pos + r]
        self._buffer_pos += r
        ties = self.rng.random((r, self.d))
        indices = np.arange(
            self.balls_emitted, self.balls_emitted + r, dtype=np.int64
        )
        home_zones = self.topology.home_zones(indices)
        home_racks = self.topology.home_racks(indices)
        mapped = self._remap(raw, indices, home_zones)
        self._count_probe_block(mapped, home_zones, home_racks)
        out = np.empty(r, dtype=np.int64) if self._capture else None
        destinations = np.empty(r, dtype=np.int64)
        for start in range(0, r, self._batch_rounds):
            stop = min(start + self._batch_rounds, r)
            self._locality_batch(
                mapped[start:stop],
                ties[start:stop],
                home_zones[start:stop],
                destinations[start:stop],
            )
        self._count_place_block(destinations, home_zones, home_racks)
        if out is not None:
            out[:] = destinations
        self.rounds += r
        self.messages += r * self.d
        self.balls_emitted += r
        return out if self._capture else _PLACED

    def _locality_batch(
        self,
        samples: np.ndarray,
        ties: np.ndarray,
        home_zones: np.ndarray,
        destinations: np.ndarray,
    ) -> None:
        """One independent-round batch, mirroring ``kd._select_batch``.

        Rounds whose bins are untouched by every other round in the batch
        resolve vectorized (the threshold rule needs only each row's best
        local and best remote key); the rest replay sequentially through
        :func:`~repro.topology.schemes.locality_select`.  Clean bins
        appear in no other row, so the two groups commute.
        """
        topo = self.topology
        batch, d = samples.shape

        flat = np.sort(samples, axis=None)
        shared = flat[1:][flat[1:] == flat[:-1]]
        if shared.size:
            dirty = np.isin(samples, shared).any(axis=1)
        else:
            dirty = np.zeros(batch, dtype=bool)
        clean = ~dirty

        clean_rows = samples[clean]
        if clean_rows.size:
            heights = self.loads[clean_rows] + 1
            ranks = stable_tiebreak_ranks(ties[clean])
            keys = heights * np.int64(d) + ranks
            local = topo.bin_zone[clean_rows] == home_zones[clean][:, None]
            n_local = local.sum(axis=1)
            choice = np.argmin(keys, axis=1)
            mixed = (n_local > 0) & (n_local < d)
            if mixed.any():
                big = np.iinfo(np.int64).max
                local_keys = np.where(local, keys, big)
                remote_keys = np.where(local, big, keys)
                best_local = np.argmin(local_keys, axis=1)
                best_remote = np.argmin(remote_keys, axis=1)
                local_height = np.take_along_axis(
                    heights, best_local[:, None], axis=1
                )[:, 0]
                remote_height = np.take_along_axis(
                    heights, best_remote[:, None], axis=1
                )[:, 0]
                pick_local = local_height <= remote_height + self.threshold
                choice = np.where(
                    mixed, np.where(pick_local, best_local, best_remote), choice
                )
            picked = clean_rows[np.arange(len(clean_rows)), choice]
            destinations[clean] = picked
            self.loads[picked] += 1  # all picked bins are distinct

        for row_index in np.flatnonzero(dirty):
            row = samples[row_index]
            local_mask = topo.bin_zone[row] == home_zones[row_index]
            chosen = locality_select(
                self.loads, row, local_mask, self.threshold, ties[row_index]
            )
            destinations[row_index] = chosen
            self.loads[chosen] += 1
