"""Per-scheme kernel contract: draw blocks, per-unit apply, batched apply.

Each scheme makes exactly one registration in :data:`~repro.core.kernels.table.KERNELS`;
the online steppers, the vectorized batch engines and the registry's
``vectorized=``/``online=``/guard wiring are all derived from it.  See
:mod:`repro.core.kernels.base` for the contract and
:mod:`repro.core.kernels.table` for the table and the derived engines.
"""

from .adaptive import ThresholdAdaptiveStepper, TwoPhaseAdaptiveStepper
from .balls import AlwaysGoLeftStepper, OnePlusBetaStepper
from .base import (
    CALLABLE_THRESHOLD_REASON,
    OnlineStepper,
    StreamExhausted,
    independent_batch_rounds,
    run_to_completion,
    speculative_batch_rows,
)
from .kd import KDChoiceStepper
from .serialized import SerializedKDChoiceStepper
from .single import SingleChoiceStepper
from .stale import StaleKDChoiceStepper
from .table import (
    EXEMPT_SCHEMES,
    KERNELS,
    Kernel,
    run_always_go_left_vectorized,
    run_churn_allocation_vectorized,
    run_churn_kd_choice_vectorized,
    run_d_choice_vectorized,
    run_greedy_kd_choice_vectorized,
    run_hierarchical_go_left_vectorized,
    run_kd_choice_vectorized,
    run_locality_two_choice_vectorized,
    run_one_plus_beta_vectorized,
    run_serialized_kd_choice_vectorized,
    run_stale_kd_choice_vectorized,
    run_threshold_adaptive_vectorized,
    run_two_choice_vectorized,
    run_two_phase_adaptive_vectorized,
    run_weighted_kd_choice_vectorized,
)
from .topology import HierarchicalGoLeftStepper, LocalityTwoChoiceStepper
from .weighted import WeightedKDChoiceStepper

__all__ = [
    "Kernel",
    "KERNELS",
    "EXEMPT_SCHEMES",
    "OnlineStepper",
    "StreamExhausted",
    "run_to_completion",
    "independent_batch_rounds",
    "speculative_batch_rows",
    "CALLABLE_THRESHOLD_REASON",
    "KDChoiceStepper",
    "SerializedKDChoiceStepper",
    "SingleChoiceStepper",
    "WeightedKDChoiceStepper",
    "StaleKDChoiceStepper",
    "OnePlusBetaStepper",
    "AlwaysGoLeftStepper",
    "HierarchicalGoLeftStepper",
    "LocalityTwoChoiceStepper",
    "ThresholdAdaptiveStepper",
    "TwoPhaseAdaptiveStepper",
    "run_kd_choice_vectorized",
    "run_serialized_kd_choice_vectorized",
    "run_greedy_kd_choice_vectorized",
    "run_weighted_kd_choice_vectorized",
    "run_stale_kd_choice_vectorized",
    "run_churn_kd_choice_vectorized",
    "run_churn_allocation_vectorized",
    "run_d_choice_vectorized",
    "run_two_choice_vectorized",
    "run_one_plus_beta_vectorized",
    "run_always_go_left_vectorized",
    "run_threshold_adaptive_vectorized",
    "run_two_phase_adaptive_vectorized",
    "run_hierarchical_go_left_vectorized",
    "run_locality_two_choice_vectorized",
]
