"""The stale-information (k, d)-choice kernel (parallel epochs).

Draw blocks (identical to :func:`~repro.core.stale.run_stale_kd_choice`):
per epoch, one ``(epoch_rounds, d)`` sample block, then — for the strict
policy with ``k < d`` — the matching ``(epoch_rounds, d)`` tie-break block.
A partial final round in a ``k == d`` epoch draws its own ``size=d``
tie-break block when it is selected.

Per-unit apply: one round probing the epoch-start snapshot; placements
commit when the epoch's last round has been emitted.  Batched apply: whole
epochs are the kernel's best case — every round probes the same snapshot,
so an epoch's full rounds resolve in one
:func:`~repro.core.batched.strict_select_rows` call.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..baselines import _make_rng
from ..batched import strict_select_rows
from ..policies import get_policy, strict_select
from ..types import ProcessParams
from .base import _PLACED, OnlineStepper

__all__ = ["StaleKDChoiceStepper"]


class StaleKDChoiceStepper(OnlineStepper):
    """Streaming stale (k, d)-choice, unit = one round of an epoch.

    Probes of an epoch see the loads as of the epoch start; placements apply
    when the epoch's last round has been emitted — exactly the scalar
    process, so committed ``loads`` lag the emitted stream by design.
    """

    _STATE_SCALARS = OnlineStepper._STATE_SCALARS + ("_epoch_pos",)
    _STATE_ARRAYS = OnlineStepper._STATE_ARRAYS + (
        "_epoch_rows",
        "_epoch_ties",
        "_snapshot",
    )
    _STATE_LISTS = ("_epoch_pending",)

    def __init__(
        self,
        n_bins: int,
        k: int,
        d: int,
        stale_rounds: int = 1,
        n_balls: Optional[int] = None,
        policy: str = "strict",
        seed: "int | np.random.SeedSequence | None" = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        ProcessParams(n_bins=n_bins, n_balls=None, k=k, d=d)
        if stale_rounds < 1:
            raise ValueError(f"stale_rounds must be at least 1, got {stale_rounds}")
        self.n_bins = n_bins
        self.k = k
        self.d = d
        self.stale_rounds = stale_rounds
        self.policy = get_policy(policy)
        self.rng = _make_rng(seed, rng)
        self.planned_balls = n_bins if n_balls is None else n_balls
        self.loads = np.zeros(n_bins, dtype=np.int64)
        self.messages = 0
        self.rounds = 0
        self.balls_emitted = 0
        self._epoch_rows: Optional[np.ndarray] = None
        self._epoch_ties: Optional[np.ndarray] = None
        self._snapshot: Optional[np.ndarray] = None
        self._epoch_pos = 0
        self._epoch_pending: List[int] = []

    def _begin_epoch(self) -> None:
        remaining = self.planned_balls - self.balls_emitted
        epoch_rounds = min(self.stale_rounds, -(-remaining // self.k))
        self._epoch_rows = self.rng.integers(
            0, self.n_bins, size=(epoch_rounds, self.d)
        )
        strict = self.policy.name == "strict"
        self._epoch_ties = (
            self.rng.random((epoch_rounds, self.d))
            if strict and self.k < self.d
            else None
        )
        self._snapshot = self.loads.copy()
        self._epoch_pos = 0
        self._epoch_pending = []

    def _end_epoch_if_done(self) -> None:
        if self._epoch_pos == len(self._epoch_rows):
            np.add.at(
                self.loads, np.asarray(self._epoch_pending, dtype=np.int64), 1
            )
            self._epoch_rows = None
            self._epoch_ties = None
            self._snapshot = None
            self._epoch_pending = []

    def _finish_round(self, destinations: List[int], batch: int) -> List[int]:
        self._epoch_pending.extend(int(b) for b in destinations)
        self._epoch_pos += 1
        self.rounds += 1
        self.messages += self.d
        self.balls_emitted += batch
        self._end_epoch_if_done()
        return [int(b) for b in destinations]

    def remove_ball(self, bin_index: int, ball_index: Optional[int] = None) -> None:
        """Take one ball out of ``bin_index``, committed or epoch-pending.

        A churned item may have been placed in the *current* epoch, whose
        placements have not been applied to ``loads`` yet; such a removal
        cancels the pending placement instead (the eventual loads are the
        same either way, and the epoch's probes keep seeing the epoch-start
        snapshot by definition).
        """
        if not 0 <= bin_index < self.n_bins:
            raise ValueError(f"bin index {bin_index} out of range")
        if self.loads[bin_index] > 0:
            self.loads[bin_index] -= 1
        elif bin_index in self._epoch_pending:
            self._epoch_pending.remove(bin_index)
        else:
            raise ValueError(f"cannot remove from empty bin {bin_index}")

    def step(self) -> List[int]:
        remaining = self._require_more()
        if self._epoch_rows is None:
            self._begin_epoch()
        row = self._epoch_rows[self._epoch_pos].tolist()
        batch = min(self.k, remaining)
        strict = self.policy.name == "strict"
        if not strict:
            destinations = self.policy.select(self._snapshot, row, batch, self.rng)
        elif batch == self.d:
            destinations = row
        elif self._epoch_ties is not None:
            destinations = strict_select(
                self._snapshot, row, batch, self._epoch_ties[self._epoch_pos]
            )
        else:  # k == d but a partial final round
            destinations = strict_select(
                self._snapshot, row, batch, self.rng.random(self.d)
            )
        return self._finish_round(destinations, batch)

    def step_block(self, max_balls: int) -> Optional[np.ndarray]:
        if self.policy.name != "strict":
            return None
        if self._epoch_rows is None:
            if max_balls < min(self.k, self.planned_balls - self.balls_emitted):
                return None
            self._begin_epoch()
        # Whole full rounds still pending in this epoch; the partial tail
        # round (if this epoch carries one) falls back to step().
        full_left = len(self._epoch_rows) - self._epoch_pos
        if (
            self.balls_emitted + full_left * self.k > self.planned_balls
        ):  # epoch ends with a partial round
            full_left -= 1
        r = min(max_balls // self.k, full_left)
        if r <= 0:
            return None
        rows = self._epoch_rows[self._epoch_pos : self._epoch_pos + r]
        if self.k == self.d:
            # Degenerate rounds: every sampled bin keeps its ball, no
            # tie-break draws — the rows themselves are the ball order.
            flat = rows.reshape(-1)
        else:
            ties = self._epoch_ties[self._epoch_pos : self._epoch_pos + r]
            if self.kernel_mode == "compiled":
                from repro.core import compiled

                # The C kernel is always ball-ordered; drive mode commits
                # via np.add.at, which is order-insensitive, so the same
                # multiset gives identical loads either way.
                destinations = compiled.select_rows(
                    self._snapshot, rows, ties, self.k
                )
            else:
                destinations = strict_select_rows(
                    self._snapshot, rows, ties, self.k, ordered=self._capture
                )
            flat = destinations.reshape(-1)
        self._epoch_pending.extend(flat.tolist())
        self._epoch_pos += r
        self.rounds += r
        self.messages += r * self.d
        self.balls_emitted += r * self.k
        self._end_epoch_if_done()
        return flat.copy() if self._capture else _PLACED
