"""The serialized (k, d)-choice kernel ``A_sigma`` (Definition 1).

Draw blocks (identical to :class:`~repro.core.serialization.SerializedKDChoice`):
per round, one ``size=d`` sample block, the strict policy's ``size=d``
tie-break block (``k < d`` only), then — for the "random" sigma — one
``permutation(k)`` draw.

Per-unit apply: one round of ``k`` balls; the round's destination slots are
computed once with the strict policy and ``sigma_r`` fixes which ball (time
step) claims which slot, so the returned ball order *is* the serialization
order.  There is no batched apply — the process is defined ball-at-a-time —
so the derived batch engine simply drives this kernel (and skips the
per-ball placement record the scalar reference keeps).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..baselines import _make_rng
from ..policies import StrictPolicy
from ..serialization import _NAMED_SIGMAS, SigmaFactory
from ..types import ProcessParams
from .base import OnlineStepper

__all__ = ["SerializedKDChoiceStepper"]


class SerializedKDChoiceStepper(OnlineStepper):
    """Streaming serialized (k, d)-choice, unit = one round of ``k`` balls.

    Mirrors :class:`~repro.core.serialization.SerializedKDChoice` draw for
    draw; the planned stream must be a multiple of ``k`` (the paper assumes
    ``k | n``), checked at construction.
    """

    def __init__(
        self,
        n_bins: int,
        k: int,
        d: int,
        n_balls: Optional[int] = None,
        sigma: "str | SigmaFactory" = "identity",
        seed: "int | np.random.SeedSequence | None" = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        ProcessParams(n_bins=n_bins, n_balls=None, k=k, d=d)
        if isinstance(sigma, str):
            try:
                self.sigma: SigmaFactory = _NAMED_SIGMAS[sigma]
            except KeyError as exc:
                raise ValueError(
                    f"unknown sigma strategy {sigma!r}; "
                    f"choose from {sorted(_NAMED_SIGMAS)}"
                ) from exc
        else:
            self.sigma = sigma
        self.sigma_name = sigma if isinstance(sigma, str) else getattr(
            sigma, "__name__", "custom"
        )
        planned = n_bins if n_balls is None else n_balls
        if planned % k != 0:
            raise ValueError(
                "the serialized process requires n_balls to be a multiple of k "
                f"(got n_balls={planned}, k={k}); the paper assumes k | n"
            )
        self.n_bins = n_bins
        self.k = k
        self.d = d
        self.rng = _make_rng(seed, rng)
        self.planned_balls = planned
        self.loads = np.zeros(n_bins, dtype=np.int64)
        self.messages = 0
        self.rounds = 0
        self.balls_emitted = 0
        self._policy = StrictPolicy()

    def step(self) -> List[int]:
        self._require_more()
        samples = [int(s) for s in self.rng.integers(0, self.n_bins, size=self.d)]
        self.messages += self.d
        # Destination slots for the round, least-loaded-first, exactly as
        # the strict policy computes them; sigma_r then fixes which ball
        # claims which slot.
        slots = self._policy.select(self.loads, samples, self.k, self.rng)
        permutation = list(self.sigma(self.rounds + 1, self.k, self.rng))
        if sorted(permutation) != list(range(self.k)):
            raise ValueError(
                f"sigma produced {permutation!r}, not a permutation of "
                f"range({self.k})"
            )
        destinations = [int(slots[slot_index]) for slot_index in permutation]
        for bin_index in destinations:
            self.loads[bin_index] += 1
        self.rounds += 1
        self.balls_emitted += self.k
        return destinations
