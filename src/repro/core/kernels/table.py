"""The kernel table: one registration per scheme, engines derived from it.

Every allocation scheme registers a :class:`Kernel` here — its draw-block
spec (the exact RNG blocks the scheme consumes, in order), its per-unit
apply (an :class:`~repro.core.kernels.base.OnlineStepper` factory) and an
optional batched apply riding :mod:`repro.core.batched`.  Both engine
surfaces are *derived* from that single registration:

* the **online** surface is the stepper factory itself;
* the **vectorized** surface is :func:`~repro.core.kernels.base.run_to_completion`
  over a fresh stepper plus a result builder — bit-for-bit identical to the
  historical hand-written batch engines because the stepper consumes the
  same RNG blocks (``tests/core/test_engine_equivalence.py`` and
  ``tests/online`` lock this down).

The registry (:mod:`repro.api.schemes`) passes ``kernel=KERNELS[name]`` to
``register`` and gets its ``vectorized=``/``online=``/guard wiring from the
kernel's capabilities; ``repro schemes --check`` verifies the two never
drift apart.

Two capability levels keep auto-selection honest:

* ``vectorized_guard`` (hard): the parameters cannot run on the batch
  engine at all — forcing ``engine="vectorized"`` raises.
* ``fastpath_guard`` (soft): the batch engine works (it drives the
  per-unit kernel) but offers no speedup, so ``engine="auto"`` stays on
  the scalar reference; forcing ``engine="vectorized"`` is honoured.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from ...topology.records import zone_counter_extra
from ..baselines import run_batch_random, run_single_choice
from ..dynamic import allocation_from_churn
from ..types import AllocationResult, ProcessParams
from .adaptive import ThresholdAdaptiveStepper, TwoPhaseAdaptiveStepper
from .balls import AlwaysGoLeftStepper, OnePlusBetaStepper
from .base import (
    CALLABLE_THRESHOLD_REASON,
    OnlineStepper,
    _require_strict,
    run_to_completion,
)
from .churn import run_churn_kd_choice_vectorized
from .kd import KDChoiceStepper
from .serialized import SerializedKDChoiceStepper
from .single import SingleChoiceStepper
from .stale import StaleKDChoiceStepper
from .topology import HierarchicalGoLeftStepper, LocalityTwoChoiceStepper
from .weighted import WeightedKDChoiceStepper

__all__ = [
    "Kernel",
    "KERNELS",
    "EXEMPT_SCHEMES",
    "run_kd_choice_vectorized",
    "run_serialized_kd_choice_vectorized",
    "run_greedy_kd_choice_vectorized",
    "run_weighted_kd_choice_vectorized",
    "run_stale_kd_choice_vectorized",
    "run_churn_kd_choice_vectorized",
    "run_churn_allocation_vectorized",
    "run_d_choice_vectorized",
    "run_two_choice_vectorized",
    "run_one_plus_beta_vectorized",
    "run_always_go_left_vectorized",
    "run_threshold_adaptive_vectorized",
    "run_two_phase_adaptive_vectorized",
    "run_hierarchical_go_left_vectorized",
    "run_locality_two_choice_vectorized",
    "run_kd_choice_compiled",
    "run_weighted_kd_choice_compiled",
    "run_stale_kd_choice_compiled",
    "run_d_choice_compiled",
    "run_two_choice_compiled",
    "run_one_plus_beta_compiled",
    "run_always_go_left_compiled",
    "run_threshold_adaptive_compiled",
    "run_two_phase_adaptive_compiled",
]

#: Why the serialized scheme's batch engine is opt-in only.
SERIALIZED_FASTPATH_REASON = (
    "the serialized process is defined ball-at-a-time, so its batch engine "
    "drives the per-round kernel with no speedup (and omits the per-ball "
    "'placements' record); engine='auto' keeps the scalar reference"
)

#: Why the greedy relaxation's batch engine is opt-in only.
GREEDY_FASTPATH_REASON = (
    "the greedy policy re-reads the loads after every placement, so its "
    "batch engine drives the per-round kernel with no speedup; "
    "engine='auto' keeps the scalar reference"
)


# ----------------------------------------------------------------------
# Derived batch engines: run_to_completion + a result builder
# ----------------------------------------------------------------------
def _engine_label(kernel_mode: str) -> str:
    """The result's ``extra["engine"]`` tag for a block-apply mode."""
    return "compiled" if kernel_mode == "compiled" else "vectorized"


def _compiled_variant(runner: Callable[..., Any]) -> Callable[..., Any]:
    """Derive a ``run_*_compiled`` engine from a ``run_*_vectorized`` runner.

    The compiled engine is the identical drive loop with the stepper's
    block-apply switched to the C backend — same signature, same RNG
    stream, same result, different inner loop.  ``functools.wraps`` keeps
    the public signature so the engine layer's kwargs validation treats
    both runners identically.
    """

    @functools.wraps(runner)
    def run_compiled(*args: Any, **kwargs: Any) -> AllocationResult:
        kwargs["_kernel_mode"] = "compiled"
        return runner(*args, **kwargs)

    run_compiled.__name__ = runner.__name__.replace("_vectorized", "_compiled")
    run_compiled.__qualname__ = run_compiled.__name__
    run_compiled.__doc__ = (
        f"Compiled-backend variant of :func:`{runner.__name__}` "
        f"(same RNG stream and result, C inner loop)."
    )
    return run_compiled


#: Probe widths above this cannot run on the C kernels (their per-round
#: scratch is statically sized).  Far beyond any meaningful configuration —
#: d is O(log n) in every scheme the paper studies.
_COMPILED_WIDTH_LIMIT = 1024


def _compiled_width_guard(
    *names: str,
) -> Callable[[Mapping[str, Any]], Optional[str]]:
    """Hard guard: named width parameters must stay within the C scratch."""

    def guard(params: Mapping[str, Any]) -> Optional[str]:
        for name in names:
            value = params.get(name)
            if isinstance(value, int) and value > _COMPILED_WIDTH_LIMIT:
                return (
                    f"the compiled kernels support {name} <= "
                    f"{_COMPILED_WIDTH_LIMIT}, got {value}; use the "
                    f"vectorized or scalar engine instead"
                )
        return None

    return guard


def _kd_result(
    stepper: KDChoiceStepper,
    scheme: str,
    policy: str = "strict",
    engine: str = "vectorized",
) -> AllocationResult:
    params = ProcessParams(
        n_bins=stepper.n_bins,
        n_balls=stepper.planned_balls,
        k=stepper.k,
        d=stepper.d,
    )
    return AllocationResult(
        loads=stepper.loads,
        scheme=scheme,
        n_bins=stepper.n_bins,
        n_balls=stepper.planned_balls,
        k=stepper.k,
        d=stepper.d,
        messages=stepper.messages,
        rounds=stepper.rounds,
        policy=policy,
        extra={"expected_messages": params.message_cost, "engine": engine},
    )


def run_kd_choice_vectorized(
    n_bins: int,
    k: int,
    d: int,
    n_balls: Optional[int] = None,
    policy: str = "strict",
    seed: "int | Any" = None,
    rng: Optional[Any] = None,
    chunk_rounds: Optional[int] = None,
    capacities: Optional[Any] = None,
    _kernel_mode: str = "numpy",
) -> AllocationResult:
    """Run (k, d)-choice with the batch-vectorized engine.

    Seed-for-seed, the returned load vector is identical to
    :func:`~repro.core.process.run_kd_choice` at the same ``chunk_rounds``;
    only the wall-clock time differs.  ``chunk_rounds`` (default 4096) is the
    streaming knob: samples are drawn and processed in blocks of that many
    rounds, bounding peak buffer memory at ``O(chunk_rounds * d)``.

    ``capacities`` (the ``hetero_bins`` workload) switches the strict rule to
    fractional fills; the stepper then declines its batched apply, so this
    engine drives the per-round reference path at scalar speed.
    """
    _require_strict(policy)
    stepper = run_to_completion(
        KDChoiceStepper(
            n_bins=n_bins,
            k=k,
            d=d,
            n_balls=n_balls,
            seed=seed,
            rng=rng,
            chunk_rounds=chunk_rounds,
            capacities=capacities,
        ),
        kernel_mode=_kernel_mode,
    )
    return _kd_result(
        stepper, scheme=f"({k},{d})-choice", engine=_engine_label(_kernel_mode)
    )


def run_greedy_kd_choice_vectorized(
    n_bins: int,
    k: int,
    d: int,
    n_balls: Optional[int] = None,
    seed: "int | Any" = None,
    rng: Optional[Any] = None,
) -> AllocationResult:
    """(k, d)-choice under the greedy water-filling relaxation, batch surface.

    The greedy policy re-reads the loads after every single placement, so
    there is no batched apply: this engine drives the per-round kernel and
    matches :func:`~repro.core.process.run_kd_choice` with
    ``policy="greedy"`` seed for seed at scalar speed (the registry's
    fast-path guard keeps ``engine="auto"`` on the scalar reference).
    """
    stepper = run_to_completion(
        KDChoiceStepper(
            n_bins=n_bins, k=k, d=d, n_balls=n_balls, policy="greedy",
            seed=seed, rng=rng,
        )
    )
    return _kd_result(stepper, scheme=f"({k},{d})-choice", policy="greedy")


def run_serialized_kd_choice_vectorized(
    n_bins: int,
    k: int,
    d: int,
    n_balls: Optional[int] = None,
    sigma: "str | Callable[..., Any]" = "identity",
    seed: "int | Any" = None,
    rng: Optional[Any] = None,
) -> AllocationResult:
    """The serialization ``A_sigma``, batch surface.

    Drives the per-round serialized kernel — the process is defined
    ball-at-a-time, so there is nothing to batch and no speedup; loads,
    messages, rounds and the generator stream match
    :func:`~repro.core.serialization.run_serialized_kd_choice` seed for
    seed.  The scalar reference's per-ball ``extra["placements"]`` record is
    omitted (the registry's fast-path guard keeps ``engine="auto"`` on the
    scalar reference for exactly this reason).
    """
    stepper = run_to_completion(
        SerializedKDChoiceStepper(
            n_bins=n_bins, k=k, d=d, n_balls=n_balls, sigma=sigma,
            seed=seed, rng=rng,
        )
    )
    return AllocationResult(
        loads=stepper.loads,
        scheme=f"serialized-({k},{d})-choice[{stepper.sigma_name}]",
        n_bins=n_bins,
        n_balls=stepper.planned_balls,
        k=k,
        d=d,
        messages=stepper.messages,
        rounds=stepper.rounds,
        policy="strict",
        extra={"engine": "vectorized"},
    )


def run_weighted_kd_choice_vectorized(
    n_bins: int,
    k: int,
    d: int,
    weights: Any = "exponential",
    n_balls: Optional[int] = None,
    mean_weight: float = 1.0,
    seed: "int | Any" = None,
    rng: Optional[Any] = None,
    capacities: Optional[Any] = None,
    _kernel_mode: str = "numpy",
) -> AllocationResult:
    """Weighted (k, d)-choice on the batch engine.

    Seed-for-seed identical to :func:`~repro.core.weighted.run_weighted_kd_choice`:
    the weights are materialized by the same :func:`make_weights` call, and
    each round draws its ``d`` samples then its ``d`` tie-break doubles in
    the scalar order.
    """
    stepper = run_to_completion(
        WeightedKDChoiceStepper(
            n_bins=n_bins,
            k=k,
            d=d,
            weights=weights,
            n_balls=n_balls,
            mean_weight=mean_weight,
            seed=seed,
            rng=rng,
            capacities=capacities,
        ),
        kernel_mode=_kernel_mode,
    )
    spec_name = (
        weights if isinstance(weights, str)
        else getattr(weights, "__name__", "custom") if callable(weights)
        else "explicit"
    )
    weighted_loads = stepper.weighted_loads
    total_weight = float(stepper._weights.sum())
    return AllocationResult(
        loads=stepper.loads,
        scheme=f"weighted-({k},{d})-choice[{spec_name}]",
        n_bins=n_bins,
        n_balls=stepper.planned_balls,
        k=k,
        d=d,
        messages=stepper.messages,
        rounds=stepper.rounds,
        policy="weighted-strict",
        extra={
            "weighted_loads": weighted_loads,
            "total_weight": total_weight,
            "max_weighted_load": (
                float(weighted_loads.max()) if weighted_loads.size else 0.0
            ),
            "weighted_gap": (
                float(weighted_loads.max() - total_weight / n_bins)
                if weighted_loads.size
                else 0.0
            ),
            "engine": _engine_label(_kernel_mode),
        },
    )


def run_stale_kd_choice_vectorized(
    n_bins: int,
    k: int,
    d: int,
    stale_rounds: int = 1,
    n_balls: Optional[int] = None,
    policy: str = "strict",
    seed: "int | Any" = None,
    rng: Optional[Any] = None,
    _kernel_mode: str = "numpy",
) -> AllocationResult:
    """Stale-information (k, d)-choice on the batch engine.

    The stale process is the engine's best case: every round of an epoch
    probes the same load snapshot by definition, so a whole epoch is one
    independent row-selection batch — no conflict detection needed.
    """
    _require_strict(policy)
    stepper = run_to_completion(
        StaleKDChoiceStepper(
            n_bins=n_bins,
            k=k,
            d=d,
            stale_rounds=stale_rounds,
            n_balls=n_balls,
            seed=seed,
            rng=rng,
        ),
        kernel_mode=_kernel_mode,
    )
    return AllocationResult(
        loads=stepper.loads,
        scheme=f"stale-({k},{d})-choice[epoch={stale_rounds} rounds]",
        n_bins=n_bins,
        n_balls=stepper.planned_balls,
        k=k,
        d=d,
        messages=stepper.messages,
        rounds=stepper.rounds,
        policy="strict",
        extra={"stale_rounds": stale_rounds, "engine": _engine_label(_kernel_mode)},
    )


def run_d_choice_vectorized(
    n_bins: int,
    d: int,
    n_balls: Optional[int] = None,
    seed: "int | Any" = None,
    rng: Optional[Any] = None,
    capacities: Optional[Any] = None,
    _kernel_mode: str = "numpy",
) -> AllocationResult:
    """Greedy[d] on the batch engine (the (1, d)-choice special case)."""
    if d < 1:
        raise ValueError(f"d must be at least 1, got {d}")
    result = run_kd_choice_vectorized(
        n_bins=n_bins, k=1, d=d, n_balls=n_balls, seed=seed, rng=rng,
        capacities=capacities, _kernel_mode=_kernel_mode,
    )
    result.scheme = f"greedy[{d}]"
    return result


def run_two_choice_vectorized(
    n_bins: int,
    n_balls: Optional[int] = None,
    seed: "int | Any" = None,
    rng: Optional[Any] = None,
    capacities: Optional[Any] = None,
    _kernel_mode: str = "numpy",
) -> AllocationResult:
    """Two-choice (Greedy[2]) on the batch engine."""
    return run_d_choice_vectorized(
        n_bins=n_bins, d=2, n_balls=n_balls, seed=seed, rng=rng,
        capacities=capacities, _kernel_mode=_kernel_mode,
    )


def run_one_plus_beta_vectorized(
    n_bins: int,
    beta: float,
    n_balls: Optional[int] = None,
    seed: "int | Any" = None,
    rng: Optional[Any] = None,
    _kernel_mode: str = "numpy",
) -> AllocationResult:
    """(1 + β)-choice on the speculate-verify batch engine."""
    stepper = run_to_completion(
        OnePlusBetaStepper(
            n_bins=n_bins, beta=beta, n_balls=n_balls, seed=seed, rng=rng
        ),
        kernel_mode=_kernel_mode,
    )
    return AllocationResult(
        loads=stepper.loads,
        scheme=f"(1+{beta:g})-choice",
        n_bins=n_bins,
        n_balls=stepper.planned_balls,
        k=1,
        d=2,
        messages=stepper.messages,
        rounds=stepper.planned_balls,
        policy="mixed",
        extra={"beta": beta, "engine": _engine_label(_kernel_mode)},
    )


def run_always_go_left_vectorized(
    n_bins: int,
    d: int,
    n_balls: Optional[int] = None,
    seed: "int | Any" = None,
    rng: Optional[Any] = None,
    capacities: Optional[Any] = None,
    _kernel_mode: str = "numpy",
) -> AllocationResult:
    """Vöcking's Always-Go-Left scheme on the speculate-verify engine."""
    stepper = run_to_completion(
        AlwaysGoLeftStepper(
            n_bins=n_bins, d=d, n_balls=n_balls, seed=seed, rng=rng,
            capacities=capacities,
        ),
        kernel_mode=_kernel_mode,
    )
    return AllocationResult(
        loads=stepper.loads,
        scheme=f"always-go-left[{d}]",
        n_bins=n_bins,
        n_balls=stepper.planned_balls,
        k=1,
        d=d,
        messages=stepper.messages,
        rounds=stepper.planned_balls,
        policy="asymmetric",
        extra={"engine": _engine_label(_kernel_mode)},
    )


def run_threshold_adaptive_vectorized(
    n_bins: int,
    n_balls: Optional[int] = None,
    threshold: "int | Callable[[float], int] | None" = None,
    max_probes: Optional[int] = None,
    seed: "int | Any" = None,
    rng: Optional[Any] = None,
    _kernel_mode: str = "numpy",
) -> AllocationResult:
    """Threshold probing on the speculate-verify engine.

    The default average-based rule and fixed integer thresholds ride the
    batched apply; a callable threshold has no batched form (its evaluation
    order is inherently per-ball) and is served by the per-unit drive path
    at scalar speed — the registry's fast-path guard keeps ``engine="auto"``
    on the scalar reference for callables.
    """
    stepper = run_to_completion(
        ThresholdAdaptiveStepper(
            n_bins=n_bins,
            n_balls=n_balls,
            threshold=threshold,
            max_probes=max_probes,
            seed=seed,
            rng=rng,
        ),
        kernel_mode=_kernel_mode,
    )
    probe_histogram = {
        int(count): int(balls)
        for count, balls in sorted(stepper.probe_histogram.items())
    }
    return AllocationResult(
        loads=stepper.loads,
        scheme="adaptive-threshold",
        n_bins=n_bins,
        n_balls=stepper.planned_balls,
        k=1,
        d=stepper.max_probes,
        messages=stepper.messages,
        rounds=stepper.planned_balls,
        policy="adaptive",
        extra={
            "probe_histogram": probe_histogram,
            "average_probes": stepper.messages / max(stepper.planned_balls, 1),
            "max_probes": stepper.max_probes,
            "engine": _engine_label(_kernel_mode),
        },
    )


def run_two_phase_adaptive_vectorized(
    n_bins: int,
    n_balls: Optional[int] = None,
    cap: Optional[int] = None,
    retry_probes: int = 4,
    seed: "int | Any" = None,
    rng: Optional[Any] = None,
    _kernel_mode: str = "numpy",
) -> AllocationResult:
    """Two-phase adaptive allocation on the speculate-verify engine."""
    stepper = run_to_completion(
        TwoPhaseAdaptiveStepper(
            n_bins=n_bins,
            n_balls=n_balls,
            cap=cap,
            retry_probes=retry_probes,
            seed=seed,
            rng=rng,
        ),
        kernel_mode=_kernel_mode,
    )
    return AllocationResult(
        loads=stepper.loads,
        scheme="adaptive-two-phase",
        n_bins=n_bins,
        n_balls=stepper.planned_balls,
        k=1,
        d=retry_probes,
        messages=stepper.messages,
        rounds=stepper.planned_balls,
        policy="adaptive",
        extra={
            "cap": stepper.cap,
            "retries": stepper.retries,
            "retry_fraction": stepper.retries / max(stepper.planned_balls, 1),
            "average_probes": stepper.messages / max(stepper.planned_balls, 1),
            "engine": _engine_label(_kernel_mode),
        },
    )


def run_hierarchical_go_left_vectorized(
    n_bins: int,
    d: Optional[int] = None,
    topology: Optional[Any] = None,
    n_balls: Optional[int] = None,
    seed: "int | Any" = None,
    rng: Optional[Any] = None,
) -> AllocationResult:
    """Hierarchical go-left on the speculate-verify engine.

    Same drive loop as Always-Go-Left with the topology's racks as the
    probe groups; the zone counters come off the stepper after the run.
    """
    stepper = run_to_completion(
        HierarchicalGoLeftStepper(
            n_bins=n_bins, d=d, topology=topology, n_balls=n_balls,
            seed=seed, rng=rng,
        )
    )
    topo = stepper.topology
    return AllocationResult(
        loads=stepper.loads,
        scheme=f"hierarchical-go-left[{topo.name}]",
        n_bins=n_bins,
        n_balls=stepper.planned_balls,
        k=1,
        d=stepper.d,
        messages=stepper.messages,
        rounds=stepper.planned_balls,
        policy="hierarchical",
        extra={
            **zone_counter_extra(topo, stepper.zone_counters),
            "engine": "vectorized",
        },
    )


def run_locality_two_choice_vectorized(
    n_bins: int,
    d: int = 2,
    bias: float = 0.0,
    threshold: int = 0,
    topology: Optional[Any] = None,
    n_balls: Optional[int] = None,
    seed: "int | Any" = None,
    rng: Optional[Any] = None,
    chunk_rounds: Optional[int] = None,
) -> AllocationResult:
    """Locality two-choice on the independent-round batch engine."""
    stepper = run_to_completion(
        LocalityTwoChoiceStepper(
            n_bins=n_bins, d=d, bias=bias, threshold=threshold,
            topology=topology, n_balls=n_balls, seed=seed, rng=rng,
            chunk_rounds=chunk_rounds,
        )
    )
    topo = stepper.topology
    return AllocationResult(
        loads=stepper.loads,
        scheme=f"locality-two-choice[{topo.name}]",
        n_bins=n_bins,
        n_balls=stepper.planned_balls,
        k=1,
        d=d,
        messages=stepper.messages,
        rounds=stepper.planned_balls,
        policy="locality",
        extra={
            **zone_counter_extra(topo, stepper.zone_counters),
            "bias": float(bias),
            "threshold": int(threshold),
            "engine": "vectorized",
        },
    )


# ----------------------------------------------------------------------
# Stepper factories for the schemes that re-parameterize a shared kernel
# ----------------------------------------------------------------------
def greedy_kd_choice_stepper(
    n_bins: int,
    k: int,
    d: int,
    n_balls: Optional[int] = None,
    seed: "int | Any" = None,
    rng: Optional[Any] = None,
) -> KDChoiceStepper:
    """Stream (k, d)-choice under the greedy water-filling relaxation."""
    return KDChoiceStepper(
        n_bins=n_bins, k=k, d=d, n_balls=n_balls, policy="greedy",
        seed=seed, rng=rng,
    )


def d_choice_stepper(
    n_bins: int,
    d: int,
    n_balls: Optional[int] = None,
    seed: "int | Any" = None,
    rng: Optional[Any] = None,
    capacities: Optional[Any] = None,
) -> KDChoiceStepper:
    """Stream Greedy[d] (the (1, d)-choice special case)."""
    return KDChoiceStepper(
        n_bins=n_bins, k=1, d=d, n_balls=n_balls, seed=seed, rng=rng,
        capacities=capacities,
    )


def two_choice_stepper(
    n_bins: int,
    n_balls: Optional[int] = None,
    seed: "int | Any" = None,
    rng: Optional[Any] = None,
    capacities: Optional[Any] = None,
) -> KDChoiceStepper:
    """Stream classic two-choice (Greedy[2])."""
    return KDChoiceStepper(
        n_bins=n_bins, k=1, d=2, n_balls=n_balls, seed=seed, rng=rng,
        capacities=capacities,
    )


def batch_random_stepper(
    n_bins: int,
    k: int,
    n_balls: Optional[int] = None,
    seed: "int | Any" = None,
    rng: Optional[Any] = None,
) -> SingleChoiceStepper:
    """Stream SA(k, k): uniform bins, rounds of ``k`` balls."""
    return SingleChoiceStepper(
        n_bins=n_bins, n_balls=n_balls, seed=seed, rng=rng, round_size=k
    )


def run_churn_allocation_vectorized(
    n_bins: int,
    k: int,
    d: int,
    rounds: int,
    departures_per_round: Optional[int] = None,
    policy: str = "strict",
    seed: "int | Any" = None,
    rng: Optional[Any] = None,
) -> AllocationResult:
    """Vectorized churn run adapted to the common :class:`AllocationResult`.

    The registry's batch engine must return an ``AllocationResult``; the raw
    :class:`~repro.core.dynamic.ChurnResult` (snapshots, steady-state
    statistics) rides along in ``extra["churn_result"]``, exactly as the
    scalar runner reports it.
    """
    churn = run_churn_kd_choice_vectorized(
        n_bins=n_bins,
        k=k,
        d=d,
        rounds=rounds,
        departures_per_round=departures_per_round,
        policy=policy,
        seed=seed,
        rng=rng,
    )
    return allocation_from_churn(churn, n_bins, k, d, policy)


# ----------------------------------------------------------------------
# Derived compiled engines: the same drive loop, C block-apply
# ----------------------------------------------------------------------
run_kd_choice_compiled = _compiled_variant(run_kd_choice_vectorized)
run_weighted_kd_choice_compiled = _compiled_variant(run_weighted_kd_choice_vectorized)
run_stale_kd_choice_compiled = _compiled_variant(run_stale_kd_choice_vectorized)
run_d_choice_compiled = _compiled_variant(run_d_choice_vectorized)
run_two_choice_compiled = _compiled_variant(run_two_choice_vectorized)
run_one_plus_beta_compiled = _compiled_variant(run_one_plus_beta_vectorized)
run_always_go_left_compiled = _compiled_variant(run_always_go_left_vectorized)
run_threshold_adaptive_compiled = _compiled_variant(
    run_threshold_adaptive_vectorized
)
run_two_phase_adaptive_compiled = _compiled_variant(
    run_two_phase_adaptive_vectorized
)


def _threshold_fastpath_guard(params: Mapping[str, Any]) -> Optional[str]:
    if callable(params.get("threshold")):
        return CALLABLE_THRESHOLD_REASON
    return None


def _serialized_fastpath_guard(params: Mapping[str, Any]) -> Optional[str]:
    return SERIALIZED_FASTPATH_REASON


def _greedy_fastpath_guard(params: Mapping[str, Any]) -> Optional[str]:
    return GREEDY_FASTPATH_REASON


# ----------------------------------------------------------------------
# The table
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Kernel:
    """A scheme's single engine registration.

    ``draw_blocks`` documents the exact RNG blocks the kernel consumes per
    unit/chunk/epoch — the contract that makes the scalar reference, the
    stepper and the derived batch engine bit-identical.  ``batched`` names
    the batched apply (``None`` when the batch engine is pure per-unit
    drive).  The guards mirror the registry's two capability levels: a
    ``vectorized_guard`` failure means the batch engine cannot run those
    parameters at all; a ``fastpath_guard`` reason means it runs but brings
    no speedup, so engine auto-selection prefers the scalar reference.

    ``compiled`` names the scheme's C-backend engine (derived from the
    vectorized runner via :func:`_compiled_variant`), with the same two
    guard levels: ``compiled_guard`` (hard — the parameters cannot run on
    the C kernels) and ``compiled_fastpath_guard`` (soft — the compiled
    engine works but degenerates to the per-unit drive path, so the
    ``REPRO_KERNEL=compiled`` auto-preference skips it).  Whether the C
    backend itself is buildable in the current environment is a separate,
    per-process question answered by
    :func:`repro.core.compiled.backend_unavailable_reason`.
    """

    name: str
    unit: str
    draw_blocks: Tuple[str, ...]
    stepper: Optional[Callable[..., OnlineStepper]]
    vectorized: Optional[Callable[..., Any]]
    batched: Optional[str] = None
    vectorized_guard: Optional[Callable[[Mapping[str, Any]], Optional[str]]] = None
    fastpath_guard: Optional[Callable[[Mapping[str, Any]], Optional[str]]] = None
    compiled: Optional[Callable[..., Any]] = None
    compiled_guard: Optional[Callable[[Mapping[str, Any]], Optional[str]]] = None
    compiled_fastpath_guard: Optional[
        Callable[[Mapping[str, Any]], Optional[str]]
    ] = None


#: Schemes outside the kernel contract: their engines are bespoke substrate
#: simulators (event cores), not ball-stream kernels.  The registry parity
#: lint (``repro schemes --check``) requires every other scheme to be
#: kernel-derived.
EXEMPT_SCHEMES = frozenset({"cluster_scheduling", "storage_placement"})


KERNELS: Dict[str, Kernel] = {
    "kd_choice": Kernel(
        name="kd_choice",
        unit="round (k balls)",
        draw_blocks=(
            "samples int(chunk, d) per <=chunk_rounds rounds",
            "ties float(chunk, d) [strict, k < d]",
            "tail: samples int(d), ties float(d)",
        ),
        stepper=KDChoiceStepper,
        vectorized=run_kd_choice_vectorized,
        batched="independent-round batches (_select_batch)",
        compiled=run_kd_choice_compiled,
        compiled_guard=_compiled_width_guard("d"),
    ),
    "serialized_kd_choice": Kernel(
        name="serialized_kd_choice",
        unit="round (k balls, serialized by sigma)",
        draw_blocks=(
            "per round: samples int(d)",
            "ties float(d) [k < d]",
            "sigma draws [random sigma: permutation(k)]",
        ),
        stepper=SerializedKDChoiceStepper,
        vectorized=run_serialized_kd_choice_vectorized,
        fastpath_guard=_serialized_fastpath_guard,
    ),
    "weighted_kd_choice": Kernel(
        name="weighted_kd_choice",
        unit="round (k weighted balls)",
        draw_blocks=(
            "weights float(n_balls) up front (make_weights)",
            "samples int(chunk, d) + ties float(chunk, d) per <=4096 rounds",
            "tail: samples int(d), ties float(d)",
        ),
        stepper=WeightedKDChoiceStepper,
        vectorized=run_weighted_kd_choice_vectorized,
        batched="speculate-verify rounds (_weighted_batch)",
        compiled=run_weighted_kd_choice_compiled,
        compiled_guard=_compiled_width_guard("d"),
    ),
    "stale_kd_choice": Kernel(
        name="stale_kd_choice",
        unit="round (k balls, epoch-snapshot probes)",
        draw_blocks=(
            "per epoch: samples int(epoch_rounds, d)",
            "ties float(epoch_rounds, d) [strict, k < d]",
            "partial k == d tail: ties float(d)",
        ),
        stepper=StaleKDChoiceStepper,
        vectorized=run_stale_kd_choice_vectorized,
        batched="whole epochs (strict_select_rows)",
        compiled=run_stale_kd_choice_compiled,
        compiled_guard=_compiled_width_guard("d"),
    ),
    "greedy_kd_choice": Kernel(
        name="greedy_kd_choice",
        unit="round (k balls)",
        draw_blocks=(
            "samples int(chunk, d) per <=chunk_rounds rounds",
            "greedy heap ties per round",
            "tail: samples int(d) + policy draws",
        ),
        stepper=greedy_kd_choice_stepper,
        vectorized=run_greedy_kd_choice_vectorized,
        fastpath_guard=_greedy_fastpath_guard,
    ),
    "churn_kd_choice": Kernel(
        name="churn_kd_choice",
        unit="round (k arrivals + departures); batch-only",
        draw_blocks=(
            "warmup int(warmup_balls)",
            "per round: samples int(d), ties float(d) [k < d], "
            "one int per departure",
        ),
        stepper=None,  # departures are global events, not a per-item stream
        vectorized=run_churn_allocation_vectorized,
        batched="cumsum/searchsorted departures",
    ),
    "single_choice": Kernel(
        name="single_choice",
        unit="ball",
        draw_blocks=("destinations int(n_balls) up front",),
        stepper=SingleChoiceStepper,
        vectorized=run_single_choice,  # the scalar runner is already batched
        batched="bincount over the pre-drawn block",
    ),
    "d_choice": Kernel(
        name="d_choice",
        unit="ball (a 1-ball round)",
        draw_blocks=("the kd_choice blocks with k = 1",),
        stepper=d_choice_stepper,
        vectorized=run_d_choice_vectorized,
        batched="independent-round batches (_select_batch)",
        compiled=run_d_choice_compiled,
        compiled_guard=_compiled_width_guard("d"),
    ),
    "two_choice": Kernel(
        name="two_choice",
        unit="ball (a 1-ball round)",
        draw_blocks=("the kd_choice blocks with k = 1, d = 2",),
        stepper=two_choice_stepper,
        vectorized=run_two_choice_vectorized,
        batched="independent-round batches (_select_batch)",
        compiled=run_two_choice_compiled,
    ),
    "one_plus_beta": Kernel(
        name="one_plus_beta",
        unit="ball",
        draw_blocks=(
            "per <=8192 balls: coins float(batch), first int(batch), "
            "second int(batch)",
        ),
        stepper=OnePlusBetaStepper,
        vectorized=run_one_plus_beta_vectorized,
        batched="speculate-verify balls (prefix_conflicts)",
        compiled=run_one_plus_beta_compiled,
    ),
    "always_go_left": Kernel(
        name="always_go_left",
        unit="ball",
        draw_blocks=("per <=8192 balls: uniforms float(batch, d)",),
        stepper=AlwaysGoLeftStepper,
        vectorized=run_always_go_left_vectorized,
        batched="speculate-verify balls (prefix_conflicts)",
        compiled=run_always_go_left_compiled,
        compiled_guard=_compiled_width_guard("d"),
    ),
    "batch_random": Kernel(
        name="batch_random",
        unit="ball (rounds of k for accounting)",
        draw_blocks=("destinations int(n_balls) up front",),
        stepper=batch_random_stepper,
        vectorized=run_batch_random,  # the scalar runner is already batched
        batched="bincount over the pre-drawn block",
    ),
    "threshold_adaptive": Kernel(
        name="threshold_adaptive",
        unit="ball",
        draw_blocks=("per <=8192 balls: probes int(batch, max_probes)",),
        stepper=ThresholdAdaptiveStepper,
        vectorized=run_threshold_adaptive_vectorized,
        batched="speculate-verify balls; callable thresholds drive per-unit",
        fastpath_guard=_threshold_fastpath_guard,
        compiled=run_threshold_adaptive_compiled,
        compiled_guard=_compiled_width_guard("max_probes"),
        compiled_fastpath_guard=_threshold_fastpath_guard,
    ),
    "two_phase_adaptive": Kernel(
        name="two_phase_adaptive",
        unit="ball",
        draw_blocks=(
            "per <=8192 balls: primary int(batch), "
            "fallback int(batch, retry_probes)",
        ),
        stepper=TwoPhaseAdaptiveStepper,
        vectorized=run_two_phase_adaptive_vectorized,
        batched="speculate-verify balls (prefix_conflicts)",
        compiled=run_two_phase_adaptive_compiled,
        compiled_guard=_compiled_width_guard("retry_probes"),
    ),
    "hierarchical_always_go_left": Kernel(
        name="hierarchical_always_go_left",
        unit="ball",
        draw_blocks=(
            "per <=8192 balls: uniforms float(batch, n_racks) scaled into "
            "the topology's rack ranges",
        ),
        stepper=HierarchicalGoLeftStepper,
        vectorized=run_hierarchical_go_left_vectorized,
        batched="speculate-verify balls (prefix_conflicts)",
    ),
    "locality_two_choice": Kernel(
        name="locality_two_choice",
        unit="ball (a 1-ball round)",
        draw_blocks=(
            "samples int(chunk, d) per <=chunk_rounds rounds",
            "ties float(d) per ball (the Bresenham remap draws nothing)",
        ),
        stepper=LocalityTwoChoiceStepper,
        vectorized=run_locality_two_choice_vectorized,
        batched="independent-round batches (_locality_batch)",
    ),
}
