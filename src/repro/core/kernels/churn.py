"""The dynamic insert/delete churn kernel (batch-only).

Churn has no per-item streaming form — departures are global events over
the whole allocation, so the scheme exposes no stepper.  Its kernel is the
batch runner alone, kept here so the registry still derives the scheme's
``vectorized=`` surface from the kernel table.

Draw blocks (identical to :func:`~repro.core.dynamic.run_churn_kd_choice`):
one ``size=warmup_balls`` integer block, then per round a ``size=d`` sample
block, the strict tie-break doubles (``k < d`` only), and one integer per
departure.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..baselines import _make_rng
from ..dynamic import ChurnResult, ChurnSnapshot
from ..policies import strict_select
from ..types import ProcessParams
from .base import _require_strict

__all__ = ["run_churn_kd_choice_vectorized"]


def run_churn_kd_choice_vectorized(
    n_bins: int,
    k: int,
    d: int,
    rounds: int,
    departures_per_round: Optional[int] = None,
    policy: str = "strict",
    seed: "int | np.random.SeedSequence | None" = None,
    rng: Optional[np.random.Generator] = None,
    warmup_balls: Optional[int] = None,
    snapshot_every: int = 16,
) -> ChurnResult:
    """Dynamic (k, d)-choice churn on the batch engine.

    Seed-for-seed identical to :func:`~repro.core.dynamic.run_churn_kd_choice`.
    The scalar process spends almost all its time scanning the load vector
    ball by ball to find each departing ball's bin; here that scan is one
    ``cumsum``/``searchsorted`` pair per departure.
    """
    _require_strict(policy)
    ProcessParams(n_bins=n_bins, n_balls=None, k=k, d=d)
    departures_per_round = k if departures_per_round is None else departures_per_round
    if departures_per_round < 0:
        raise ValueError(
            f"departures_per_round must be non-negative, got {departures_per_round}"
        )
    if rounds < 0:
        raise ValueError(f"rounds must be non-negative, got {rounds}")
    if snapshot_every < 1:
        raise ValueError(f"snapshot_every must be positive, got {snapshot_every}")
    generator = _make_rng(seed, rng)
    if warmup_balls is None:
        warmup_balls = n_bins

    loads = np.bincount(
        generator.integers(0, n_bins, size=warmup_balls), minlength=n_bins
    ).astype(np.int64)
    total = warmup_balls
    messages = 0
    snapshots: List[ChurnSnapshot] = []

    for round_index in range(1, rounds + 1):
        # Arrivals: one (k, d)-choice round.
        samples = generator.integers(0, n_bins, size=d).tolist()
        messages += d
        if k == d:
            destinations = samples
        else:
            destinations = strict_select(loads, samples, k, generator.random(d))
        for bin_index in destinations:
            loads[bin_index] += 1
        total += k

        # Departures: remove balls uniformly at random (by ball).  The
        # scalar scan "first bin with target < cumulative load" is exactly a
        # right-bisect into the cumulative sum.
        departures = min(departures_per_round, total)
        for _ in range(departures):
            target = int(generator.integers(0, total))
            cumulative = np.cumsum(loads)
            bin_index = int(np.searchsorted(cumulative, target, side="right"))
            loads[bin_index] -= 1
            total -= 1

        if round_index % snapshot_every == 0 or round_index == rounds:
            snapshots.append(
                ChurnSnapshot(
                    round_index=round_index,
                    total_balls=total,
                    max_load=int(loads.max()),
                    average_load=total / n_bins,
                )
            )

    return ChurnResult(
        n_bins=n_bins,
        k=k,
        d=d,
        rounds=rounds,
        departures_per_round=departures_per_round,
        messages=messages,
        final_loads=np.asarray(loads, dtype=np.int64),
        snapshots=snapshots,
    )
