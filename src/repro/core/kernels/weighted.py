"""The weighted (k, d)-choice kernel.

Draw blocks (identical to :func:`~repro.core.weighted.run_weighted_kd_choice`):
the full weight vector first (via :func:`~repro.core.weighted.make_weights`),
then paired ``(chunk, d)`` sample and tie-break blocks per
``min(rounds remaining, 4096)`` rounds; the partial tail round draws its own
``size=d`` pair.

Per-unit apply: one round through the scalar
:func:`~repro.core.weighted.weighted_round_apply` kernel.  Batched apply:
speculate-verify rounds through :func:`_weighted_batch`.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..baselines import _make_rng
from ..batched import ConflictScratch, clean_segments, prefix_conflicts
from ..process import _DEFAULT_CHUNK_ROUNDS
from ..types import ProcessParams
from ..weighted import WeightSpec, make_weights, weighted_round_apply
from .base import (
    _PLACED,
    OnlineStepper,
    normalize_capacities,
    speculative_batch_rows,
)

__all__ = ["WeightedKDChoiceStepper", "_weighted_batch"]


def _weighted_batch(
    loads: np.ndarray,
    counts: np.ndarray,
    samples: np.ndarray,
    tiebreaks: np.ndarray,
    batch_weights: np.ndarray,
    increments: np.ndarray,
    k: int,
    scratch: ConflictScratch,
    out: Optional[np.ndarray] = None,
) -> None:
    """Apply one batch of full weighted rounds to ``loads``/``counts``.

    Provisional selections are computed row-wise against the batch-start
    loads — one ``(height, tiebreak, bin)`` lexsort plus a stable by-load
    sort of the kept slots (the scalar round kernel's two list sorts) — and
    validated with the prefix-conflict kernel; suspect rounds replay through
    the scalar round kernel in order.  Rounds that sample a bin twice need
    the multiplicity-stacked heights and are forced straight to the replay.

    ``out`` (a ``(B, k)`` int64 array) optionally receives each round's
    destination bins in ball order (heaviest ball first — the order the
    scalar kernel places them), for the streaming allocator.
    """
    row_sorted = np.sort(samples, axis=1)
    internal_dup = (row_sorted[:, 1:] == row_sorted[:, :-1]).any(axis=1)

    # Provisional selection (exact for duplicate-free rounds: every virtual
    # ball has height loads[bin] + increment, a per-row constant shift that
    # the lexsort ignores-by-including).
    heights = loads[samples] + increments[:, None]
    order = np.lexsort((samples, tiebreaks, heights), axis=-1)
    kept = np.take_along_axis(samples, order[:, :k], axis=1)
    # Heaviest ball to the least-loaded kept slot: a stable by-load sort of
    # the slots, matched against the descending weights.
    slot_order = np.argsort(loads[kept], axis=1, kind="stable")
    slots = np.take_along_axis(kept, slot_order, axis=1)

    suspect = prefix_conflicts(
        samples, slots, scratch, expanded=samples, forced=internal_dup
    )
    if out is not None:
        out[:] = slots  # clean rows only; suspect rows overwritten below
    for seg_start, seg_stop, suspect_index in clean_segments(suspect):
        seg_slots = slots[seg_start:seg_stop].ravel()
        loads[seg_slots] += batch_weights[seg_start:seg_stop].ravel()
        counts[seg_slots] += 1
        if suspect_index >= 0:
            replayed = weighted_round_apply(
                loads,
                counts,
                samples[suspect_index].tolist(),
                tiebreaks[suspect_index],
                batch_weights[suspect_index],
                float(increments[suspect_index]),
            )
            if out is not None:
                out[suspect_index] = replayed


class WeightedKDChoiceStepper(OnlineStepper):
    """Streaming weighted (k, d)-choice, unit = one round.

    The ball weights are materialized up front (the reference engines call
    :func:`~repro.core.weighted.make_weights` before placing anything), so
    streamed items carry the spec's weights, not caller-supplied ones.
    Samples and tie-breaks are drawn in the scalar engine's paired
    ``(chunk, d)`` blocks; ``step_block`` rides the speculate-verify weighted
    batch kernel.  ``loads`` exposes ball counts (the unit-invariant view);
    ``weighted_loads`` the per-bin total weight.
    """

    _STATE_SCALARS = OnlineStepper._STATE_SCALARS + (
        "_rounds_drawn",
        "_buffer_pos",
        "_tail_done",
        "_weight_pos",
    )
    _STATE_ARRAYS = (
        "loads",
        "weighted_loads",
        "_weights",
        "_buffer_samples",
        "_buffer_ties",
    )

    def __init__(
        self,
        n_bins: int,
        k: int,
        d: int,
        weights: WeightSpec = "exponential",
        n_balls: Optional[int] = None,
        mean_weight: float = 1.0,
        seed: "int | np.random.SeedSequence | None" = None,
        rng: Optional[np.random.Generator] = None,
        capacities: Optional[object] = None,
    ) -> None:
        ProcessParams(n_bins=n_bins, n_balls=None, k=k, d=d)
        self.n_bins = n_bins
        self.k = k
        self.d = d
        self.capacities = normalize_capacities(capacities, n_bins)
        self._inv_capacity = (
            None if self.capacities is None else 1.0 / self.capacities
        )
        self.rng = _make_rng(seed, rng)
        self.planned_balls = n_bins if n_balls is None else n_balls
        self._weights = make_weights(
            weights, self.planned_balls, self.rng, mean_weight=mean_weight
        )
        self.full_rounds, self.tail_balls = divmod(self.planned_balls, k)
        self.weighted_loads = np.zeros(n_bins, dtype=float)
        self.loads = np.zeros(n_bins, dtype=np.int64)  # ball counts
        self.messages = 0
        self.rounds = 0
        self.balls_emitted = 0
        self._rounds_drawn = 0
        self._buffer_samples: Optional[np.ndarray] = None
        self._buffer_ties: Optional[np.ndarray] = None
        self._buffer_pos = 0
        self._weight_pos = 0
        self._tail_done = False
        self._batch_rounds = speculative_batch_rows(n_bins, k * d)
        self._scratch = ConflictScratch(n_bins)

    def ball_weight(self, ball_index: int) -> float:
        """The weight the stream's ``ball_index``-th ball carries."""
        round_index, position = divmod(ball_index, self.k)
        if round_index < self.full_rounds:
            start = round_index * self.k
            ordered = np.sort(self._weights[start : start + self.k])[::-1]
        else:
            ordered = np.sort(self._weights[self.full_rounds * self.k :])[::-1]
        return float(ordered[position])

    def _refill(self) -> None:
        chunk = min(
            self.full_rounds - self._rounds_drawn, _DEFAULT_CHUNK_ROUNDS
        )
        self._buffer_samples = self.rng.integers(
            0, self.n_bins, size=(chunk, self.d)
        )
        self._buffer_ties = self.rng.random((chunk, self.d))
        self._buffer_pos = 0
        self._rounds_drawn += chunk

    def _buffered_rounds(self) -> int:
        if self._buffer_samples is None:
            return 0
        return len(self._buffer_samples) - self._buffer_pos

    def step(self) -> List[int]:
        self._require_more()
        if self.rounds < self.full_rounds:
            if self._buffered_rounds() == 0:
                self._refill()
            row = self._buffer_samples[self._buffer_pos].tolist()
            ties = self._buffer_ties[self._buffer_pos]
            self._buffer_pos += 1
            batch_weights = np.sort(
                self._weights[self._weight_pos : self._weight_pos + self.k]
            )[::-1]
            destinations = weighted_round_apply(
                self.weighted_loads,
                self.loads,
                row,
                ties,
                batch_weights,
                float(batch_weights.mean()),
                inv_capacity=self._inv_capacity,
            )
            self._weight_pos += self.k
            self.rounds += 1
            self.messages += self.d
            self.balls_emitted += self.k
            return [int(b) for b in destinations]
        batch_weights = np.sort(self._weights[self.full_rounds * self.k :])[::-1]
        samples = self.rng.integers(0, self.n_bins, size=self.d)
        ties = self.rng.random(self.d)
        destinations = weighted_round_apply(
            self.weighted_loads,
            self.loads,
            samples.tolist(),
            ties,
            batch_weights,
            float(batch_weights.mean()),
            inv_capacity=self._inv_capacity,
        )
        self.rounds += 1
        self.messages += self.d
        self.balls_emitted += self.tail_balls
        self._tail_done = True
        return [int(b) for b in destinations]

    def step_block(self, max_balls: int) -> Optional[np.ndarray]:
        if self._inv_capacity is not None:
            # Fill-aware rounds are not modelled by the speculate-verify or
            # compiled batch kernels; every engine takes the per-round path.
            return None
        rounds_wanted = min(max_balls // self.k, self.full_rounds - self.rounds)
        if rounds_wanted <= 0:
            return None
        if self._buffered_rounds() == 0:
            self._refill()
        r = min(rounds_wanted, self._buffered_rounds())
        samples = self._buffer_samples[self._buffer_pos : self._buffer_pos + r]
        ties = self._buffer_ties[self._buffer_pos : self._buffer_pos + r]
        self._buffer_pos += r
        block_weights = np.sort(
            self._weights[self._weight_pos : self._weight_pos + r * self.k].reshape(
                r, self.k
            ),
            axis=1,
        )[:, ::-1]
        increments = block_weights.mean(axis=1)
        if self.kernel_mode == "compiled":
            from repro.core import compiled

            out = compiled.weighted_rounds(
                self.weighted_loads,
                self.loads,
                samples,
                ties,
                block_weights,
                increments,
            )
        else:
            out = np.empty((r, self.k), dtype=np.int64) if self._capture else None
            for start in range(0, r, self._batch_rounds):
                stop = min(start + self._batch_rounds, r)
                _weighted_batch(
                    self.weighted_loads,
                    self.loads,
                    samples[start:stop],
                    ties[start:stop],
                    block_weights[start:stop],
                    increments[start:stop],
                    self.k,
                    self._scratch,
                    out=None if out is None else out[start:stop],
                )
        self._weight_pos += r * self.k
        self.rounds += r
        self.messages += r * self.d
        self.balls_emitted += r * self.k
        return out.reshape(-1) if self._capture else _PLACED

    def remove_ball(self, bin_index: int, ball_index: Optional[int] = None) -> None:
        if ball_index is None:
            raise ValueError(
                "removing a weighted ball requires its ball index (track "
                "items through the allocator) so its weight can be returned"
            )
        super().remove_ball(bin_index)
        self.weighted_loads[bin_index] -= self.ball_weight(ball_index)
