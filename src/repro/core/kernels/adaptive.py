"""Adaptive comparator kernels: threshold probing and two-phase allocation.

Draw blocks (identical to the scalar runners in
:mod:`repro.core.adaptive`): per ``min(remaining, 8192)`` balls, threshold
probing draws one ``(batch, max_probes)`` probe block; two-phase draws the
primary-probe block then the ``(batch, retry_probes)`` fallback block.

Per-unit apply: one ball through the scalar
:func:`~repro.core.adaptive.threshold_place` /
:func:`~repro.core.adaptive.two_phase_place` kernels (callable thresholds
evaluate per ball here).  Batched apply: speculate-verify sub-batches; a
callable threshold has no batched apply (its evaluation order is inherently
per-ball), so only the per-unit path serves it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from ..adaptive import threshold_place, two_phase_place
from ..baselines import _CHUNK as _BALL_CHUNK
from ..baselines import _make_rng
from ..batched import ConflictScratch, clean_segments, prefix_conflicts
from .base import OnlineStepper, speculative_batch_rows

__all__ = ["ThresholdAdaptiveStepper", "TwoPhaseAdaptiveStepper"]


class ThresholdAdaptiveStepper(OnlineStepper):
    """Streaming threshold probing, unit = one ball.

    Mirrors the scalar runner including its per-ball threshold evaluation,
    so callable thresholds stream too (and reach the batch engine through
    the per-unit drive path).  ``step_block`` serves the default
    average-based rule and fixed integer thresholds — their limits are a
    pure function of the ball index, so a whole sub-batch shares one limit
    vector.
    """

    _STATE_SCALARS = ("messages", "balls_emitted", "_pos", "_balls_drawn")
    _STATE_ARRAYS = OnlineStepper._STATE_ARRAYS + ("_probes",)

    def __init__(
        self,
        n_bins: int,
        n_balls: Optional[int] = None,
        threshold: "int | None" = None,
        max_probes: Optional[int] = None,
        seed: "int | np.random.SeedSequence | None" = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if n_bins <= 0:
            raise ValueError(f"n_bins must be positive, got {n_bins}")
        self.n_bins = n_bins
        self.planned_balls = n_bins if n_balls is None else n_balls
        if max_probes is None:
            max_probes = max(2, int(np.ceil(np.log2(max(n_bins, 2)))))
        if max_probes < 1:
            raise ValueError(f"max_probes must be at least 1, got {max_probes}")
        self.max_probes = max_probes
        if threshold is None:
            self._threshold_mode = "default"
            self._fixed_limit: Optional[int] = None
            self._threshold_fn = lambda average: int(np.ceil(average)) + 1
        elif callable(threshold):
            self._threshold_mode = "callable"
            self._fixed_limit = None
            self._threshold_fn = threshold
        else:
            self._threshold_mode = "fixed"
            self._fixed_limit = int(threshold)
            self._threshold_fn = lambda average, fixed=self._fixed_limit: fixed
        self.rng = _make_rng(seed, rng)
        self.loads = np.zeros(n_bins, dtype=np.int64)
        self.messages = 0
        self.balls_emitted = 0
        self.probe_histogram: Dict[int, int] = {}
        self._probes: Optional[np.ndarray] = None
        self._pos = 0
        self._balls_drawn = 0
        self._scratch = ConflictScratch(n_bins)
        self._sub_rows = speculative_batch_rows(n_bins, max_probes)
        self._probe_columns = np.arange(max_probes)

    @property
    def rounds(self) -> int:
        return self.balls_emitted

    def _refill(self) -> None:
        batch = min(self.planned_balls - self._balls_drawn, _BALL_CHUNK)
        self._probes = self.rng.integers(
            0, self.n_bins, size=(batch, self.max_probes)
        )
        self._pos = 0
        self._balls_drawn += batch

    def step(self) -> List[int]:
        self._require_more()
        if self._probes is None or self._pos >= len(self._probes):
            self._refill()
        row = self._probes[self._pos].tolist()
        self._pos += 1
        limit = self._threshold_fn(self.balls_emitted / self.n_bins)
        best_bin, used = threshold_place(self.loads, row, limit)
        self.loads[best_bin] += 1
        self.messages += used
        self.probe_histogram[used] = self.probe_histogram.get(used, 0) + 1
        self.balls_emitted += 1
        return [int(best_bin)]

    def step_block(self, max_balls: int) -> Optional[np.ndarray]:
        if self._threshold_mode == "callable" or max_balls <= 0 or self.exhausted:
            return None
        if self._probes is None or self._pos >= len(self._probes):
            self._refill()
        take = min(max_balls, len(self._probes) - self._pos)
        if self.kernel_mode == "compiled":
            from repro.core import compiled

            rows = self._probes[self._pos : self._pos + take]
            if self._threshold_mode == "fixed":
                limits = np.full(take, self._fixed_limit, dtype=np.int64)
            else:
                ball_index = self.balls_emitted + np.arange(take)
                limits = np.ceil(ball_index / self.n_bins).astype(np.int64) + 1
            out, used = compiled.threshold(self.loads, rows, limits)
            for count, balls in zip(*np.unique(used, return_counts=True)):
                count = int(count)
                self.probe_histogram[count] = (
                    self.probe_histogram.get(count, 0) + int(balls)
                )
            self.messages += int(used.sum())
            self._pos += take
            self.balls_emitted += take
            return out
        out = np.empty(take, dtype=np.int64)
        done = 0
        while done < take:
            stop = min(done + self._sub_rows, take)
            rows = self._probes[self._pos + done : self._pos + stop]
            size = len(rows)
            if self._threshold_mode == "fixed":
                limits = np.full(size, self._fixed_limit, dtype=np.int64)
            else:
                ball_index = self.balls_emitted + done + np.arange(size)
                limits = np.ceil(ball_index / self.n_bins).astype(np.int64) + 1
            # Fast path: most balls commit on their first probe, so the deep
            # (full-width) computation runs only on the rows that miss.
            first_loads = self.loads[rows[:, 0]]
            destinations = rows[:, 0].copy()
            used = np.ones(size, dtype=np.int64)
            deep = np.flatnonzero(first_loads > limits)
            if deep.size:
                deep_rows = rows[deep]
                deep_loads = self.loads[deep_rows]
                meets = deep_loads <= limits[deep][:, None]
                any_hit = meets.any(axis=1)
                deep_used = np.where(
                    any_hit, np.argmax(meets, axis=1) + 1, self.max_probes
                )
                # Destination: earliest minimum among the probes examined.
                masked = np.where(
                    self._probe_columns < deep_used[:, None],
                    deep_loads,
                    np.iinfo(np.int64).max,
                )
                columns = np.argmin(masked, axis=1)
                used[deep] = deep_used
                destinations[deep] = deep_rows[np.arange(deep.size), columns]
            # Reads: the examined prefix, padded with the row's destination.
            width = int(used.max())
            reads = np.where(
                self._probe_columns[:width] < used[:, None],
                rows[:, :width],
                destinations[:, None],
            )
            suspect = prefix_conflicts(
                reads, destinations, self._scratch, expanded=rows
            )
            for seg_start, seg_stop, suspect_index in clean_segments(suspect):
                self.loads[destinations[seg_start:seg_stop]] += 1
                if suspect_index >= 0:
                    best_bin, used_replay = threshold_place(
                        self.loads,
                        rows[suspect_index].tolist(),
                        int(limits[suspect_index]),
                    )
                    self.loads[best_bin] += 1
                    used[suspect_index] = used_replay
                    destinations[suspect_index] = best_bin
            for count, balls in zip(*np.unique(used, return_counts=True)):
                count = int(count)
                self.probe_histogram[count] = (
                    self.probe_histogram.get(count, 0) + int(balls)
                )
            self.messages += int(used.sum())
            out[done:stop] = destinations
            done = stop
        self._pos += take
        self.balls_emitted += take
        return out

    def _extra_state(self) -> Dict[str, Any]:
        return {
            "probe_histogram": sorted(self.probe_histogram.items()),
        }

    def _load_extra_state(self, state: Dict[str, Any]) -> None:
        self.probe_histogram = {
            int(used): int(count) for used, count in state["probe_histogram"]
        }


class TwoPhaseAdaptiveStepper(OnlineStepper):
    """Streaming two-phase adaptive allocation, unit = one ball."""

    _STATE_SCALARS = (
        "messages",
        "balls_emitted",
        "retries",
        "_pos",
        "_balls_drawn",
    )
    _STATE_ARRAYS = OnlineStepper._STATE_ARRAYS + ("_first", "_fallback")

    def __init__(
        self,
        n_bins: int,
        n_balls: Optional[int] = None,
        cap: Optional[int] = None,
        retry_probes: int = 4,
        seed: "int | np.random.SeedSequence | None" = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if n_bins <= 0:
            raise ValueError(f"n_bins must be positive, got {n_bins}")
        if retry_probes < 1:
            raise ValueError(f"retry_probes must be at least 1, got {retry_probes}")
        self.n_bins = n_bins
        self.planned_balls = n_bins if n_balls is None else n_balls
        self.retry_probes = retry_probes
        self.cap = (
            int(np.ceil(self.planned_balls / n_bins)) + 2 if cap is None else cap
        )
        self.rng = _make_rng(seed, rng)
        self.loads = np.zeros(n_bins, dtype=np.int64)
        self.messages = 0
        self.balls_emitted = 0
        self.retries = 0
        self._first: Optional[np.ndarray] = None
        self._fallback: Optional[np.ndarray] = None
        self._pos = 0
        self._balls_drawn = 0
        self._scratch = ConflictScratch(n_bins)
        # Committed balls read only their primary probe, so the effective
        # read width is ~1 + retry_fraction * retry_probes, far below the
        # full row.
        self._sub_rows = speculative_batch_rows(n_bins, 2)

    @property
    def rounds(self) -> int:
        return self.balls_emitted

    def _refill(self) -> None:
        batch = min(self.planned_balls - self._balls_drawn, _BALL_CHUNK)
        self._first = self.rng.integers(0, self.n_bins, size=batch)
        self._fallback = self.rng.integers(
            0, self.n_bins, size=(batch, self.retry_probes)
        )
        self._pos = 0
        self._balls_drawn += batch

    def step(self) -> List[int]:
        self._require_more()
        if self._first is None or self._pos >= len(self._first):
            self._refill()
        primary = int(self._first[self._pos])
        row = self._fallback[self._pos].tolist()
        self._pos += 1
        self.messages += 1
        best_bin, retried = two_phase_place(self.loads, primary, row, self.cap)
        if retried:
            self.retries += 1
            self.messages += self.retry_probes
        self.loads[best_bin] += 1
        self.balls_emitted += 1
        return [int(best_bin)]

    def step_block(self, max_balls: int) -> Optional[np.ndarray]:
        if max_balls <= 0 or self.exhausted:
            return None
        if self._first is None or self._pos >= len(self._first):
            self._refill()
        take = min(max_balls, len(self._first) - self._pos)
        if self.kernel_mode == "compiled":
            from repro.core import compiled

            out, retried = compiled.two_phase(
                self.loads,
                self._first[self._pos : self._pos + take],
                self._fallback[self._pos : self._pos + take],
                self.cap,
            )
            retried_count = int(retried.sum())
            self.retries += retried_count
            self.messages += take + retried_count * self.retry_probes
            self._pos += take
            self.balls_emitted += take
            return out
        out = np.empty(take, dtype=np.int64)
        done = 0
        while done < take:
            stop = min(done + self._sub_rows, take)
            primary = self._first[self._pos + done : self._pos + stop]
            rows = self._fallback[self._pos + done : self._pos + stop]
            size = len(primary)
            committed = self.loads[primary] < self.cap
            retried = ~committed
            destinations = primary.copy()
            misses = np.flatnonzero(retried)
            if misses.size:
                miss_rows = rows[misses]
                columns = np.argmin(self.loads[miss_rows], axis=1)
                destinations[misses] = miss_rows[np.arange(misses.size), columns]
            # Reads: the primary probe, plus the fallback row for the balls
            # that (provisionally) retried; committed balls pad with their
            # destination (= the primary itself, so one `where` builds it).
            expanded = np.concatenate([destinations[:, None], rows], axis=1)
            reads = np.where(retried[:, None], expanded, destinations[:, None])
            suspect = prefix_conflicts(
                reads, destinations, self._scratch, expanded=expanded
            )
            for seg_start, seg_stop, suspect_index in clean_segments(suspect):
                self.loads[destinations[seg_start:seg_stop]] += 1
                if suspect_index >= 0:
                    best_bin, did_retry = two_phase_place(
                        self.loads,
                        int(primary[suspect_index]),
                        rows[suspect_index].tolist(),
                        self.cap,
                    )
                    self.loads[best_bin] += 1
                    retried[suspect_index] = did_retry
                    destinations[suspect_index] = best_bin
            retried_count = int(retried.sum())
            self.retries += retried_count
            self.messages += size + retried_count * self.retry_probes
            out[done:stop] = destinations
            done = stop
        self._pos += take
        self.balls_emitted += take
        return out
