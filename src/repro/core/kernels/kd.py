"""The (k, d)-choice kernel: the paper's process, plus Greedy[d]/two-choice.

Draw blocks (identical to :class:`~repro.core.process.KDChoiceProcess`):
``(min(rounds remaining, chunk_rounds), d)`` integer sample blocks, then the
policy's per-round tie-break doubles (``d`` per round, strict policy with
``k < d`` only).  The partial tail round draws its own ``size=d`` sample and
tie-break blocks.

Per-unit apply: one round of ``k`` balls through the policy's ``select``.
Batched apply: independent-round batches through :func:`_select_batch`
(strict policy, full rounds only).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..baselines import _make_rng
from ..batched import ball_order_kept, stable_tiebreak_ranks
from ..policies import capacity_select, get_policy, strict_select
from ..process import _DEFAULT_CHUNK_ROUNDS
from ..types import ProcessParams
from .base import (
    _PLACED,
    OnlineStepper,
    independent_batch_rounds,
    normalize_capacities,
)

__all__ = ["KDChoiceStepper", "_select_batch"]


def _select_batch(
    loads: np.ndarray,
    samples: np.ndarray,
    tiebreaks: np.ndarray,
    k: int,
    out: Optional[np.ndarray] = None,
) -> None:
    """Apply one batch of rounds to ``loads`` in place.

    ``samples`` and ``tiebreaks`` are ``(B, d)`` blocks; rounds whose bins are
    untouched by every other round in the batch are resolved with one
    argpartition, the rest replay sequentially through the scalar kernel.

    ``out`` (a ``(B, k)`` int64 array) optionally receives each round's
    destination bins in *ball order* — the exact order the scalar
    :func:`~repro.core.policies.strict_select` kernel returns them — which is
    what the streaming allocator (:mod:`repro.online`) hands out one ball at
    a time.  The batch path skips that per-row sort when no caller asks.
    """
    batch, d = samples.shape

    # A bin value is "shared" when it occurs more than once in the batch.
    flat = np.sort(samples, axis=None)
    shared = flat[1:][flat[1:] == flat[:-1]]
    if shared.size:
        dirty = np.isin(samples, shared).any(axis=1)
    else:
        dirty = np.zeros(batch, dtype=bool)
    clean = ~dirty

    clean_rows = samples[clean]
    if clean_rows.size:
        # No bin repeats anywhere in these rounds: every virtual ball has
        # height loads[bin] + 1, and placements cannot interact, so the
        # strict rule reduces to "keep the k smallest (height, tiebreak)
        # pairs per round".  Encode the pair as one int64 key: the tie-break
        # rank within the round replaces the float (rank < d, so the
        # lexicographic order is preserved exactly).
        heights = loads[clean_rows] + 1
        ranks = stable_tiebreak_ranks(tiebreaks[clean])
        keys = heights * np.int64(d) + ranks
        kept = np.argpartition(keys, k - 1, axis=1)[:, :k]
        if out is not None:
            kept = ball_order_kept(keys, kept)
        destinations = np.take_along_axis(clean_rows, kept, axis=1)
        if out is not None:
            out[clean] = destinations
        loads[destinations.ravel()] += 1  # all destinations are distinct bins

    for row_index in np.flatnonzero(dirty):
        row = samples[row_index].tolist()
        row_destinations = strict_select(loads, row, k, tiebreaks[row_index])
        if out is not None:
            out[row_index] = row_destinations
        for bin_index in row_destinations:
            loads[bin_index] += 1


class KDChoiceStepper(OnlineStepper):
    """Streaming (k, d)-choice, unit = one round of ``k`` balls.

    Mirrors :class:`~repro.core.process.KDChoiceProcess` draw for draw:
    round samples come from ``(chunk, d)`` integer blocks of
    ``min(rounds remaining, chunk_rounds)`` rounds, and the policy draws its
    tie-breaks round by round from the shared generator.  ``step_block``
    rides the batch kernel (strict policy, full rounds only) and is
    bit-identical to repeated ``step()`` calls.
    """

    _STATE_SCALARS = OnlineStepper._STATE_SCALARS + (
        "_rounds_drawn",
        "_buffer_pos",
        "_tail_done",
    )
    _STATE_ARRAYS = OnlineStepper._STATE_ARRAYS + ("_buffer",)

    def __init__(
        self,
        n_bins: int,
        k: int,
        d: int,
        n_balls: Optional[int] = None,
        policy: str = "strict",
        seed: "int | np.random.SeedSequence | None" = None,
        rng: Optional[np.random.Generator] = None,
        chunk_rounds: Optional[int] = None,
        capacities: Optional[object] = None,
    ) -> None:
        ProcessParams(n_bins=n_bins, n_balls=n_balls, k=k, d=d)
        chunk_rounds = _DEFAULT_CHUNK_ROUNDS if chunk_rounds is None else chunk_rounds
        if chunk_rounds <= 0:
            raise ValueError(f"chunk_rounds must be positive, got {chunk_rounds}")
        self.n_bins = n_bins
        self.k = k
        self.d = d
        self.policy = get_policy(policy)
        self.capacities = normalize_capacities(capacities, n_bins)
        if self.capacities is not None and self.policy.name != "strict":
            raise ValueError(
                f"heterogeneous bin capacities implement only the strict "
                f"policy, got {self.policy.name!r}"
            )
        self._inv_capacity = (
            None if self.capacities is None else 1.0 / self.capacities
        )
        self.chunk_rounds = chunk_rounds
        self.rng = _make_rng(seed, rng)
        self.planned_balls = n_bins if n_balls is None else n_balls
        self.full_rounds, self.tail_balls = divmod(self.planned_balls, k)
        self.loads = np.zeros(n_bins, dtype=np.int64)
        self.messages = 0
        self.rounds = 0
        self.balls_emitted = 0
        self._rounds_drawn = 0
        self._buffer: Optional[np.ndarray] = None
        self._buffer_pos = 0
        self._tail_done = False
        self._batch_rounds = min(chunk_rounds, independent_batch_rounds(n_bins, d))

    def _refill(self) -> None:
        chunk = min(self.full_rounds - self._rounds_drawn, self.chunk_rounds)
        self._buffer = self.rng.integers(0, self.n_bins, size=(chunk, self.d))
        self._buffer_pos = 0
        self._rounds_drawn += chunk

    def _buffered_rounds(self) -> int:
        if self._buffer is None:
            return 0
        return len(self._buffer) - self._buffer_pos

    def _select(self, samples: List[int], count: int) -> List[int]:
        """One round's destinations: the policy, or its fill-aware variant.

        The capacity path mirrors :class:`~repro.core.policies.StrictPolicy`
        draw for draw (no tie-break when every candidate is kept), so a
        homogeneous ``capacities`` vector reproduces the uncapacitated
        stream exactly.
        """
        if self._inv_capacity is None:
            return self.policy.select(self.loads, samples, count, self.rng)
        if count == len(samples):
            return list(samples)
        return capacity_select(
            self.loads, self._inv_capacity, samples, count,
            self.rng.random(len(samples)),
        )

    def step(self) -> List[int]:
        self._require_more()
        if self.rounds < self.full_rounds:
            if self._buffered_rounds() == 0:
                self._refill()
            row = self._buffer[self._buffer_pos].tolist()
            self._buffer_pos += 1
            destinations = self._select(row, self.k)
            for bin_index in destinations:
                self.loads[bin_index] += 1
            self.rounds += 1
            self.messages += self.d
            self.balls_emitted += self.k
            return [int(b) for b in destinations]
        # The partial tail round (n_balls % k balls, still d probes).
        samples = self.rng.integers(0, self.n_bins, size=self.d).tolist()
        destinations = self._select(samples, self.tail_balls)
        for bin_index in destinations:
            self.loads[bin_index] += 1
        self.rounds += 1
        self.messages += self.d
        self.balls_emitted += self.tail_balls
        self._tail_done = True
        return [int(b) for b in destinations]

    def step_block(self, max_balls: int) -> Optional[np.ndarray]:
        if self.policy.name != "strict":
            return None
        if self._inv_capacity is not None and self.k != self.d:
            # Capacity-aware rounds compare fractional fills, which the
            # batch kernels (and the compiled replay loops) do not model;
            # every engine falls back to the per-unit drive path, which is
            # the reference semantics by construction.  (k == d rounds keep
            # every sampled bin regardless of fill, so they may still ride
            # the degenerate bincount path below.)
            return None
        rounds_wanted = min(max_balls // self.k, self.full_rounds - self.rounds)
        if rounds_wanted <= 0:
            return None
        if self._buffered_rounds() == 0:
            self._refill()
        r = min(rounds_wanted, self._buffered_rounds())
        samples = self._buffer[self._buffer_pos : self._buffer_pos + r]
        self._buffer_pos += r
        if self.k == self.d:
            # Degenerate rounds: every sampled bin keeps its ball, and the
            # strict policy draws no tie-breaks.
            flat = samples.reshape(-1)
            self.loads += np.bincount(flat, minlength=self.n_bins)
            destinations = flat.astype(np.int64, copy=True) if self._capture else _PLACED
        else:
            ties = self.rng.random((r, self.d))
            if self.kernel_mode == "compiled":
                from repro.core import compiled

                out = compiled.kd_rounds(self.loads, samples, ties, self.k)
                destinations = out.reshape(-1) if self._capture else _PLACED
            else:
                out = np.empty((r, self.k), dtype=np.int64) if self._capture else None
                for start in range(0, r, self._batch_rounds):
                    stop = start + self._batch_rounds
                    _select_batch(
                        self.loads,
                        samples[start:stop],
                        ties[start:stop],
                        self.k,
                        out=None if out is None else out[start:stop],
                    )
                destinations = out.reshape(-1) if self._capture else _PLACED
        self.rounds += r
        self.messages += r * self.d
        self.balls_emitted += r * self.k
        return destinations
