"""The single-choice kernel (and SA(k, k) batched random via ``round_size``).

Draw blocks: one ``size=n_balls`` integer block at construction — exactly
the scalar :func:`~repro.core.baselines.run_single_choice` draw.  Per-unit
apply: pop the next pre-drawn destination.  Batched apply: a bincount over
the pre-drawn slice.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..baselines import _make_rng
from .base import _PLACED, OnlineStepper

__all__ = ["SingleChoiceStepper"]


class SingleChoiceStepper(OnlineStepper):
    """Streaming single choice, unit = one ball.

    The scalar runner draws every destination in one ``size=n_balls`` block;
    the stepper does the same at construction and pops destinations off the
    pre-drawn array.  ``round_size`` only affects round accounting (the
    ``batch_random`` scheme reports ``ceil(n / k)`` rounds).
    """

    _STATE_SCALARS = ("messages", "balls_emitted", "_pos")
    _STATE_ARRAYS = OnlineStepper._STATE_ARRAYS + ("_choices",)

    def __init__(
        self,
        n_bins: int,
        n_balls: Optional[int] = None,
        seed: "int | np.random.SeedSequence | None" = None,
        rng: Optional[np.random.Generator] = None,
        round_size: int = 1,
    ) -> None:
        if n_bins <= 0:
            raise ValueError(f"n_bins must be positive, got {n_bins}")
        if n_balls is None:
            n_balls = n_bins
        if n_balls < 0:
            raise ValueError(f"n_balls must be non-negative, got {n_balls}")
        if round_size < 1:
            raise ValueError(f"round_size must be at least 1, got {round_size}")
        self.n_bins = n_bins
        self.planned_balls = n_balls
        self.round_size = round_size
        self.rng = _make_rng(seed, rng)
        self._choices = self.rng.integers(0, n_bins, size=n_balls)
        self.loads = np.zeros(n_bins, dtype=np.int64)
        self.messages = 0
        self.balls_emitted = 0
        self._pos = 0

    @property
    def rounds(self) -> int:
        return -(-self.balls_emitted // self.round_size)

    def step(self) -> List[int]:
        self._require_more()
        bin_index = int(self._choices[self._pos])
        self._pos += 1
        self.loads[bin_index] += 1
        self.messages += 1
        self.balls_emitted += 1
        return [bin_index]

    def step_block(self, max_balls: int) -> Optional[np.ndarray]:
        take = min(max_balls, self.planned_balls - self.balls_emitted)
        if take <= 0:
            return None
        chunk = self._choices[self._pos : self._pos + take]
        if self._capture:
            destinations = chunk.astype(np.int64, copy=True)
        else:
            destinations = _PLACED
        self._pos += take
        self.loads += np.bincount(chunk, minlength=self.n_bins)
        self.messages += take
        self.balls_emitted += take
        return destinations
