"""Per-ball mixture kernels: (1 + β)-choice and Always-Go-Left.

Draw blocks (identical to the scalar runners in
:mod:`repro.core.baselines`): per ``min(remaining, 8192)`` balls,
(1 + β)-choice draws one coin block then two probe blocks; Always-Go-Left
draws one ``(batch, d)`` uniform block scaled into the ``d`` group ranges.

Per-unit apply: one ball.  Batched apply: speculate-verify sub-batches over
:func:`~repro.core.batched.prefix_conflicts`.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..baselines import _CHUNK as _BALL_CHUNK
from ..baselines import _make_rng, least_loaded_probe
from ..batched import ConflictScratch, clean_segments, prefix_conflicts
from .base import OnlineStepper, normalize_capacities, speculative_batch_rows

__all__ = ["OnePlusBetaStepper", "AlwaysGoLeftStepper"]


class OnePlusBetaStepper(OnlineStepper):
    """Streaming (1 + β)-choice, unit = one ball.

    Blocks mirror the scalar runner: per ``min(remaining, 8192)`` balls, one
    coin block (β-thresholded doubles), then the two probe blocks.
    """

    _STATE_SCALARS = ("messages", "balls_emitted", "_pos", "_balls_drawn")
    _STATE_ARRAYS = OnlineStepper._STATE_ARRAYS + ("_coins", "_first", "_second")

    def __init__(
        self,
        n_bins: int,
        beta: float,
        n_balls: Optional[int] = None,
        seed: "int | np.random.SeedSequence | None" = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not 0.0 <= beta <= 1.0:
            raise ValueError(f"beta must lie in [0, 1], got {beta}")
        if n_bins <= 0:
            raise ValueError(f"n_bins must be positive, got {n_bins}")
        self.n_bins = n_bins
        self.beta = beta
        self.rng = _make_rng(seed, rng)
        self.planned_balls = n_bins if n_balls is None else n_balls
        self.loads = np.zeros(n_bins, dtype=np.int64)
        self.messages = 0
        self.balls_emitted = 0
        self._coins: Optional[np.ndarray] = None
        self._first: Optional[np.ndarray] = None
        self._second: Optional[np.ndarray] = None
        self._pos = 0
        self._balls_drawn = 0
        self._scratch = ConflictScratch(n_bins)
        self._sub_rows = speculative_batch_rows(n_bins, 2)

    @property
    def rounds(self) -> int:
        return self.balls_emitted

    def _refill(self) -> None:
        batch = min(self.planned_balls - self._balls_drawn, _BALL_CHUNK)
        self._coins = self.rng.random(batch) < self.beta
        self._first = self.rng.integers(0, self.n_bins, size=batch)
        self._second = self.rng.integers(0, self.n_bins, size=batch)
        self._pos = 0
        self._balls_drawn += batch

    def _buffered(self) -> int:
        if self._coins is None:
            return 0
        return len(self._coins) - self._pos

    def step(self) -> List[int]:
        self._require_more()
        if self._buffered() == 0:
            self._refill()
        position = self._pos
        self._pos += 1
        a = int(self._first[position])
        if self._coins[position]:
            b = int(self._second[position])
            target = a if self.loads[a] <= self.loads[b] else b
            self.messages += 2
        else:
            target = a
            self.messages += 1
        self.loads[target] += 1
        self.balls_emitted += 1
        return [target]

    def step_block(self, max_balls: int) -> Optional[np.ndarray]:
        if max_balls <= 0 or self.exhausted:
            return None
        if self._buffered() == 0:
            self._refill()
        take = min(max_balls, self._buffered())
        if self.kernel_mode == "compiled":
            from repro.core import compiled

            coins = self._coins[self._pos : self._pos + take]
            out = compiled.one_plus_beta(
                self.loads,
                coins,
                self._first[self._pos : self._pos + take],
                self._second[self._pos : self._pos + take],
            )
            self.messages += take + int(coins.sum())
            self._pos += take
            self.balls_emitted += take
            return out
        out = np.empty(take, dtype=np.int64)
        done = 0
        while done < take:
            stop = min(done + self._sub_rows, take)
            a = self._first[self._pos + done : self._pos + stop]
            b = self._second[self._pos + done : self._pos + stop]
            two = self._coins[self._pos + done : self._pos + stop]
            destinations = np.where(
                two, np.where(self.loads[a] <= self.loads[b], a, b), a
            )
            # Single-choice balls read nothing, but self-reads are harmless
            # (a row is never "earlier than itself") and keep the read array
            # rectangular.
            reads = np.stack([a, np.where(two, b, a)], axis=1)
            suspect = prefix_conflicts(reads, destinations, self._scratch)
            for seg_start, seg_stop, suspect_index in clean_segments(suspect):
                self.loads[destinations[seg_start:seg_stop]] += 1
                if suspect_index >= 0:
                    if two[suspect_index]:
                        x, y = int(a[suspect_index]), int(b[suspect_index])
                        chosen = x if self.loads[x] <= self.loads[y] else y
                    else:
                        chosen = int(a[suspect_index])
                    self.loads[chosen] += 1
                    destinations[suspect_index] = chosen
            out[done:stop] = destinations
            self.messages += len(two) + int(two.sum())
            done = stop
        self._pos += take
        self.balls_emitted += take
        return out


class AlwaysGoLeftStepper(OnlineStepper):
    """Streaming Always-Go-Left, unit = one ball.

    One ``(batch, d)`` uniform block per ``min(remaining, 8192)`` balls,
    scaled into the ``d`` group ranges exactly like the scalar runner.
    """

    _STATE_SCALARS = ("messages", "balls_emitted", "_pos", "_balls_drawn")
    _STATE_ARRAYS = OnlineStepper._STATE_ARRAYS + ("_probes",)

    def __init__(
        self,
        n_bins: int,
        d: int,
        n_balls: Optional[int] = None,
        seed: "int | np.random.SeedSequence | None" = None,
        rng: Optional[np.random.Generator] = None,
        capacities: Optional[object] = None,
    ) -> None:
        if d < 1:
            raise ValueError(f"d must be at least 1, got {d}")
        if n_bins < d:
            raise ValueError(f"need n_bins >= d groups, got n_bins={n_bins}, d={d}")
        self.n_bins = n_bins
        self.d = d
        self.capacities = normalize_capacities(capacities, n_bins)
        self._inv_capacity = (
            None if self.capacities is None else 1.0 / self.capacities
        )
        self.rng = _make_rng(seed, rng)
        self.planned_balls = n_bins if n_balls is None else n_balls
        self._boundaries = np.linspace(0, n_bins, d + 1).astype(np.int64)
        self._group_sizes = np.diff(self._boundaries)
        if np.any(self._group_sizes == 0):
            raise ValueError("every group must contain at least one bin")
        self.loads = np.zeros(n_bins, dtype=np.int64)
        self.messages = 0
        self.balls_emitted = 0
        self._probes: Optional[np.ndarray] = None
        self._pos = 0
        self._balls_drawn = 0
        self._scratch = ConflictScratch(n_bins)
        self._sub_rows = speculative_batch_rows(n_bins, d, replays=6)

    @property
    def rounds(self) -> int:
        return self.balls_emitted

    def _refill(self) -> None:
        batch = min(self.planned_balls - self._balls_drawn, _BALL_CHUNK)
        uniform = self.rng.random(size=(batch, self.d))
        self._probes = (
            self._boundaries[:-1] + uniform * self._group_sizes
        ).astype(np.int64)
        self._pos = 0
        self._balls_drawn += batch

    def _buffered(self) -> int:
        if self._probes is None:
            return 0
        return len(self._probes) - self._pos

    def step(self) -> List[int]:
        self._require_more()
        if self._buffered() == 0:
            self._refill()
        row = self._probes[self._pos].tolist()
        self._pos += 1
        if self._inv_capacity is None:
            target = least_loaded_probe(self.loads, row)
        else:
            # Fill-aware Always-Go-Left: the ball goes to the least *filled*
            # probed bin, ties to the leftmost group (np.argmin keeps the
            # earliest minimum, same convention as least_loaded_probe).
            fills = (self.loads[row] + 1) * self._inv_capacity[row]
            target = row[int(np.argmin(fills))]
        self.loads[target] += 1
        self.messages += self.d
        self.balls_emitted += 1
        return [int(target)]

    def step_block(self, max_balls: int) -> Optional[np.ndarray]:
        if max_balls <= 0 or self.exhausted:
            return None
        if self._inv_capacity is not None:
            # Fill comparisons are not modelled by the speculate-verify or
            # compiled batch kernels; every engine takes the per-ball path.
            return None
        if self._buffered() == 0:
            self._refill()
        take = min(max_balls, self._buffered())
        if self.kernel_mode == "compiled":
            from repro.core import compiled

            out = compiled.always_go_left(
                self.loads, self._probes[self._pos : self._pos + take]
            )
            self._pos += take
            self.messages += take * self.d
            self.balls_emitted += take
            return out
        out = np.empty(take, dtype=np.int64)
        done = 0
        while done < take:
            stop = min(done + self._sub_rows, take)
            rows = self._probes[self._pos + done : self._pos + stop]
            columns = np.argmin(self.loads[rows], axis=1)  # earliest min = left
            destinations = rows[np.arange(len(rows)), columns]
            suspect = prefix_conflicts(rows, destinations, self._scratch)
            for seg_start, seg_stop, suspect_index in clean_segments(suspect):
                self.loads[destinations[seg_start:seg_stop]] += 1
                if suspect_index >= 0:
                    chosen = least_loaded_probe(
                        self.loads, rows[suspect_index].tolist()
                    )
                    self.loads[chosen] += 1
                    destinations[suspect_index] = chosen
            out[done:stop] = destinations
            done = stop
        self._pos += take
        self.messages += take * self.d
        self.balls_emitted += take
        return out
