"""Core allocation processes: the (k, d)-choice process and its comparators.

The public surface of this subpackage is re-exported at the top level of
:mod:`repro`; importing from either place is equivalent.
"""

from .adaptive import run_threshold_adaptive, run_two_phase_adaptive
from .baselines import (
    run_always_go_left,
    run_batch_random,
    run_d_choice,
    run_one_plus_beta,
    run_single_choice,
)
from .dynamic import (
    ChurnResult,
    ChurnSnapshot,
    DynamicKDChoiceProcess,
    run_churn_kd_choice,
)
from .policies import GreedyPolicy, StrictPolicy, get_policy, strict_select
from .process import KDChoiceProcess, run_kd_choice
from .vectorized import (
    run_always_go_left_vectorized,
    run_churn_kd_choice_vectorized,
    run_d_choice_vectorized,
    run_kd_choice_vectorized,
    run_one_plus_beta_vectorized,
    run_stale_kd_choice_vectorized,
    run_threshold_adaptive_vectorized,
    run_two_phase_adaptive_vectorized,
    run_weighted_kd_choice_vectorized,
)
from .serialization import BallPlacement, SerializedKDChoice, run_serialized_kd_choice
from .stale import StaleKDChoiceProcess, run_stale_kd_choice
from .state import BinState
from .types import AllocationResult, ProcessParams
from .weighted import WeightedKDChoiceProcess, make_weights, run_weighted_kd_choice
from . import metrics

__all__ = [
    "AllocationResult",
    "ProcessParams",
    "BinState",
    "KDChoiceProcess",
    "run_kd_choice",
    "run_kd_choice_vectorized",
    "run_weighted_kd_choice_vectorized",
    "run_stale_kd_choice_vectorized",
    "run_churn_kd_choice_vectorized",
    "run_d_choice_vectorized",
    "run_one_plus_beta_vectorized",
    "run_always_go_left_vectorized",
    "run_threshold_adaptive_vectorized",
    "run_two_phase_adaptive_vectorized",
    "strict_select",
    "SerializedKDChoice",
    "run_serialized_kd_choice",
    "BallPlacement",
    "StrictPolicy",
    "GreedyPolicy",
    "get_policy",
    "run_single_choice",
    "run_d_choice",
    "run_one_plus_beta",
    "run_always_go_left",
    "run_batch_random",
    "run_threshold_adaptive",
    "run_two_phase_adaptive",
    "WeightedKDChoiceProcess",
    "run_weighted_kd_choice",
    "make_weights",
    "StaleKDChoiceProcess",
    "run_stale_kd_choice",
    "DynamicKDChoiceProcess",
    "ChurnResult",
    "ChurnSnapshot",
    "run_churn_kd_choice",
    "metrics",
]
