"""Adaptive allocation comparators.

The paper's introduction compares its non-adaptive (k, d)-choice scheme
against *adaptive* algorithms, where the number of probes per ball is not
fixed:

* Czumaj & Stemann (Random Structures & Algorithms 2001): ``O(ln ln n)``
  maximum load with ``(1 + o(1)) n`` messages in expectation.
* Lenzen & Wattenhofer (STOC 2011) and Berenbrink et al. (SPAA 2013):
  constant maximum load with ``O(1)`` average probes per ball.

These comparators are implemented here so the trade-off bench
(``benchmarks/bench_tradeoff.py``) can place (k, d)-choice on the same
max-load versus message-cost plane the paper argues about in Section 1.1.

Two schemes are provided:

``run_threshold_adaptive``
    Probe random bins one at a time; commit to the first bin whose load is at
    most a threshold, falling back to the best probed bin after ``max_probes``
    probes.  With threshold equal to the current average load this is the
    classical low-message adaptive scheme: most balls stop after one or two
    probes, so the total message cost is ``(1 + o(1)) n``.

``run_two_phase_adaptive``
    A simplified Lenzen–Wattenhofer-style two-phase scheme: every ball first
    probes one random bin and commits if the bin is below a cap; the few balls
    that fail retry with ``d`` probes and join the least loaded.  Constant
    maximum load with ``O(n)`` messages for a suitable cap.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .baselines import _CHUNK, least_loaded_probe
from .types import AllocationResult

__all__ = [
    "run_threshold_adaptive",
    "run_two_phase_adaptive",
    "threshold_place",
    "two_phase_place",
]


def _make_rng(
    seed: "int | np.random.SeedSequence | None",
    rng: Optional[np.random.Generator],
) -> np.random.Generator:
    return rng if rng is not None else np.random.default_rng(seed)


def threshold_place(loads, row, limit) -> "tuple[int, int]":
    """Place one ball by threshold probing; returns ``(bin, probes used)``.

    The per-ball kernel shared by the scalar loop and the vectorized
    engine's conflict replay: probe ``row`` left to right, stop at the first
    bin at or below ``limit``, and commit to the least loaded bin examined
    so far (earliest minimum on ties).
    """
    best_bin = row[0]
    best_load = loads[best_bin]
    used = 1
    if best_load > limit:
        for bin_index in row[1:]:
            used += 1
            load = loads[bin_index]
            if load < best_load:
                best_load = load
                best_bin = bin_index
            if load <= limit:
                break
    return best_bin, used


def two_phase_place(loads, primary, row, cap) -> "tuple[int, bool]":
    """Place one two-phase ball; returns ``(bin, retried)``.

    Commit to ``primary`` when it is below ``cap``; otherwise join the least
    loaded bin of the pre-drawn fallback ``row`` (earliest minimum on ties).
    Shared by the scalar loop and the vectorized engine's conflict replay.
    """
    if loads[primary] < cap:
        return primary, False
    return least_loaded_probe(loads, row), True


def run_threshold_adaptive(
    n_bins: int,
    n_balls: Optional[int] = None,
    threshold: "int | Callable[[float], int] | None" = None,
    max_probes: Optional[int] = None,
    seed: "int | np.random.SeedSequence | None" = None,
    rng: Optional[np.random.Generator] = None,
) -> AllocationResult:
    """Adaptive threshold probing (Czumaj–Stemann style).

    Parameters
    ----------
    threshold:
        Either a fixed integer load threshold, a callable mapping the current
        average load to a threshold, or ``None`` for the default
        ``ceil(average) + 1``.
    max_probes:
        Probe budget per ball; default ``max(2, ceil(log2 n))``.  After the
        budget is exhausted the ball joins the least loaded probed bin.

    Returns
    -------
    AllocationResult
        ``extra['probe_histogram']`` maps number-of-probes to ball count, and
        ``extra['average_probes']`` is the realized mean probes per ball.
    """
    if n_bins <= 0:
        raise ValueError(f"n_bins must be positive, got {n_bins}")
    if n_balls is None:
        n_balls = n_bins
    if max_probes is None:
        max_probes = max(2, int(np.ceil(np.log2(max(n_bins, 2)))))
    if max_probes < 1:
        raise ValueError(f"max_probes must be at least 1, got {max_probes}")
    generator = _make_rng(seed, rng)

    if threshold is None:
        def threshold_fn(average: float) -> int:
            return int(np.ceil(average)) + 1
    elif callable(threshold):
        threshold_fn = threshold
    else:
        fixed = int(threshold)

        def threshold_fn(average: float) -> int:
            return fixed

    loads = [0] * n_bins
    messages = 0
    probe_histogram: dict[int, int] = {}
    placed = 0

    # Pre-draw probes in a (chunk, max_probes) block; unused probes in a row
    # are simply ignored, which keeps the inner loop free of RNG calls.
    remaining = n_balls
    while remaining > 0:
        batch = min(remaining, _CHUNK)
        probes = generator.integers(0, n_bins, size=(batch, max_probes))
        for row in probes.tolist():
            limit = threshold_fn(placed / n_bins)
            best_bin, used = threshold_place(loads, row, limit)
            loads[best_bin] += 1
            placed += 1
            messages += used
            probe_histogram[used] = probe_histogram.get(used, 0) + 1
        remaining -= batch

    return AllocationResult(
        loads=np.asarray(loads, dtype=np.int64),
        scheme="adaptive-threshold",
        n_bins=n_bins,
        n_balls=n_balls,
        k=1,
        d=max_probes,
        messages=messages,
        rounds=n_balls,
        policy="adaptive",
        extra={
            "probe_histogram": probe_histogram,
            "average_probes": messages / max(n_balls, 1),
            "max_probes": max_probes,
        },
    )


def run_two_phase_adaptive(
    n_bins: int,
    n_balls: Optional[int] = None,
    cap: Optional[int] = None,
    retry_probes: int = 4,
    seed: "int | np.random.SeedSequence | None" = None,
    rng: Optional[np.random.Generator] = None,
) -> AllocationResult:
    """Two-phase adaptive allocation (simplified Lenzen–Wattenhofer).

    Phase 1: the ball probes a single random bin and commits if the bin holds
    fewer than ``cap`` balls (default ``ceil(m/n) + 2``).  Phase 2: otherwise
    it probes ``retry_probes`` random bins and joins the least loaded of them
    (unconditionally).
    """
    if n_bins <= 0:
        raise ValueError(f"n_bins must be positive, got {n_bins}")
    if n_balls is None:
        n_balls = n_bins
    if retry_probes < 1:
        raise ValueError(f"retry_probes must be at least 1, got {retry_probes}")
    if cap is None:
        cap = int(np.ceil(n_balls / n_bins)) + 2
    generator = _make_rng(seed, rng)

    loads = [0] * n_bins
    messages = 0
    retries = 0
    remaining = n_balls
    while remaining > 0:
        batch = min(remaining, _CHUNK)
        first = generator.integers(0, n_bins, size=batch)
        fallback = generator.integers(0, n_bins, size=(batch, retry_probes))
        for primary, row in zip(first.tolist(), fallback.tolist()):
            messages += 1
            best_bin, retried = two_phase_place(loads, primary, row, cap)
            if retried:
                retries += 1
                messages += retry_probes
            loads[best_bin] += 1
        remaining -= batch

    return AllocationResult(
        loads=np.asarray(loads, dtype=np.int64),
        scheme="adaptive-two-phase",
        n_bins=n_bins,
        n_balls=n_balls,
        k=1,
        d=retry_probes,
        messages=messages,
        rounds=n_balls,
        policy="adaptive",
        extra={
            "cap": cap,
            "retries": retries,
            "retry_fraction": retries / max(n_balls, 1),
            "average_probes": messages / max(n_balls, 1),
        },
    )
