"""Metrics over allocation outcomes.

All functions accept either an :class:`~repro.core.types.AllocationResult` or
a plain load vector (anything :func:`numpy.asarray` accepts) so they can be
used both on library results and on externally produced load data.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Union

import numpy as np

from .types import AllocationResult

__all__ = [
    "as_loads",
    "max_load",
    "min_load",
    "average_load",
    "gap",
    "load_profile",
    "nu",
    "nu_vector",
    "mu",
    "load_histogram",
    "empty_fraction",
    "message_cost",
    "messages_per_ball",
    "summarize",
    "height_histogram",
]

LoadsLike = Union[AllocationResult, np.ndarray, Iterable[int]]


def as_loads(loads: LoadsLike) -> np.ndarray:
    """Normalize the argument to an integer load vector."""
    if isinstance(loads, AllocationResult):
        return loads.loads
    arr = np.asarray(loads, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError("load vector must be one-dimensional")
    return arr


def max_load(loads: LoadsLike) -> int:
    """Maximum bin load ``M`` (paper's ``B_1``)."""
    arr = as_loads(loads)
    return int(arr.max()) if arr.size else 0


def min_load(loads: LoadsLike) -> int:
    """Minimum bin load (``B_n``)."""
    arr = as_loads(loads)
    return int(arr.min()) if arr.size else 0


def average_load(loads: LoadsLike) -> float:
    """Average number of balls per bin."""
    arr = as_loads(loads)
    return float(arr.mean()) if arr.size else 0.0


def gap(loads: LoadsLike) -> float:
    """Maximum load minus average load (the heavily-loaded-case metric)."""
    arr = as_loads(loads)
    if arr.size == 0:
        return 0.0
    return float(arr.max() - arr.mean())


def load_profile(loads: LoadsLike) -> np.ndarray:
    """Sorted load vector ``B_1 >= B_2 >= ... >= B_n`` (Figures 1 and 2)."""
    return np.sort(as_loads(loads))[::-1]


def nu(loads: LoadsLike, y: int) -> int:
    """``ν_y``: number of bins with at least ``y`` balls."""
    arr = as_loads(loads)
    if y <= 0:
        return int(arr.size)
    return int(np.count_nonzero(arr >= y))


def nu_vector(loads: LoadsLike, max_height: int | None = None) -> np.ndarray:
    """``ν_y`` for ``y = 0 .. max_height`` (default: the maximum load)."""
    arr = as_loads(loads)
    top = int(arr.max()) if max_height is None and arr.size else (max_height or 0)
    counts = np.bincount(arr, minlength=top + 1)
    cumulative = np.cumsum(counts)
    result = np.empty(top + 1, dtype=np.int64)
    result[0] = arr.size
    if top >= 1:
        result[1:] = arr.size - cumulative[:top]
    return result


def mu(loads: LoadsLike, y: int) -> int:
    """``µ_y``: number of balls with height at least ``y``.

    A bin with load ``B`` contributes ``max(B - y + 1, 0)`` balls of height at
    least ``y``.
    """
    arr = as_loads(loads)
    if y <= 1:
        return int(arr.sum())
    excess = arr - (y - 1)
    return int(excess[excess > 0].sum())


def load_histogram(loads: LoadsLike) -> Dict[int, int]:
    """Mapping load value -> number of bins holding exactly that many balls."""
    arr = as_loads(loads)
    values, counts = np.unique(arr, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def empty_fraction(loads: LoadsLike) -> float:
    """Fraction of bins with zero balls."""
    arr = as_loads(loads)
    if arr.size == 0:
        return 0.0
    return float(np.count_nonzero(arr == 0)) / arr.size


def message_cost(result: AllocationResult) -> int:
    """Total number of bin probes issued by the process."""
    return result.messages


def messages_per_ball(result: AllocationResult) -> float:
    """Average probes per ball."""
    return result.messages_per_ball


def height_histogram(loads: LoadsLike) -> Dict[int, int]:
    """Number of balls at each height.

    The ball sitting at position ``h`` from the bottom of its bin has height
    ``h``, so a bin with load ``B`` holds exactly one ball of each height
    ``1 .. B``.  The histogram therefore equals ``{h: ν_h}``.
    """
    arr = as_loads(loads)
    if arr.size == 0:
        return {}
    top = int(arr.max())
    return {h: nu(arr, h) for h in range(1, top + 1)}


def summarize(result: AllocationResult) -> Mapping[str, object]:
    """One-line summary of an allocation outcome.

    Extends :meth:`AllocationResult.summary` with distribution statistics.
    """
    arr = result.loads
    summary = dict(result.summary())
    summary.update(
        {
            "min_load": int(arr.min()) if arr.size else 0,
            "std_load": float(arr.std()) if arr.size else 0.0,
            "empty_fraction": empty_fraction(arr),
        }
    )
    return summary
