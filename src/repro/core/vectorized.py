"""Vectorized engines: batch selection fast paths for every process family.

The scalar reference processes execute one ball (or one round) at a time in
Python; those loops dominate every large experiment in the repository.  This
module provides drop-in fast paths that are **bit-for-bit equivalent** to
their scalar counterparts for a fixed seed:

* Every engine consumes the random stream in exactly the scalar order (NumPy
  fills a ``size=d`` buffer element-sequentially, so block draws equal the
  scalar per-round draws wherever the scalar already draws blocks).
* Sequential dependence is broken with the two kernels from
  :mod:`repro.core.batched`: rows that provably see the batch-start loads are
  resolved together with fancy indexing and ``argpartition``/``argmin``; the
  (rare) conflicting rows replay through the exact scalar per-ball kernels,
  preserving semantics.

Engines provided (scalar counterpart in parentheses):

====================================  =======================================
:func:`run_kd_choice_vectorized`      :func:`~repro.core.process.run_kd_choice`
:func:`run_weighted_kd_choice_vectorized`  :mod:`repro.core.weighted`
:func:`run_stale_kd_choice_vectorized`     :mod:`repro.core.stale`
:func:`run_churn_kd_choice_vectorized`     :mod:`repro.core.dynamic`
:func:`run_d_choice_vectorized`       Greedy[d] (:mod:`repro.core.baselines`)
:func:`run_one_plus_beta_vectorized`  (1+β)-choice
:func:`run_always_go_left_vectorized` Vöcking's Always-Go-Left
:func:`run_threshold_adaptive_vectorized`  :mod:`repro.core.adaptive`
:func:`run_two_phase_adaptive_vectorized`  :mod:`repro.core.adaptive`
====================================  =======================================

All of them are reachable through the unified front door::

    from repro.api import SchemeSpec, simulate
    simulate(SchemeSpec(scheme="weighted_kd_choice",
                        params={"n_bins": 100_000, "k": 4, "d": 8},
                        engine="vectorized", seed=0))

Only the paper's strict policy is supported; requesting any other policy
raises ``ValueError`` (the greedy relaxation stays on the scalar path).

Streaming mode
--------------
:func:`run_kd_choice_vectorized` (and the scalar process) accept
``chunk_rounds``: samples are drawn and processed in blocks of that many
rounds, so peak buffer memory is ``O(chunk_rounds * d + n_bins)`` rather
than ``O(n * d)`` — which is what makes ``n >= 10^7`` runs practical.  The
random stream depends on the block size, so engines are equivalent at equal
``chunk_rounds`` (both default to the same 4096).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .adaptive import threshold_place, two_phase_place
from .baselines import _CHUNK as _BALL_CHUNK
from .baselines import _make_rng, least_loaded_probe
from .batched import (
    ConflictScratch,
    ball_order_kept,
    clean_segments,
    prefix_conflicts,
    stable_tiebreak_ranks,
    strict_select_rows,
)
from .dynamic import ChurnResult, ChurnSnapshot
from .policies import strict_select
from .process import _DEFAULT_CHUNK_ROUNDS as _CHUNK_ROUNDS
from .types import AllocationResult, ProcessParams
from .weighted import WeightSpec, make_weights, weighted_round_apply

__all__ = [
    "run_kd_choice_vectorized",
    "run_weighted_kd_choice_vectorized",
    "run_stale_kd_choice_vectorized",
    "run_churn_kd_choice_vectorized",
    "run_d_choice_vectorized",
    "run_one_plus_beta_vectorized",
    "run_always_go_left_vectorized",
    "run_threshold_adaptive_vectorized",
    "run_two_phase_adaptive_vectorized",
    "independent_batch_rounds",
    "speculative_batch_rows",
]

#: Why callable thresholds stay scalar-only.  The registry's vectorized
#: guard returns this same string, so spec-construction validation and the
#: runner's own check cannot drift apart.
CALLABLE_THRESHOLD_REASON = (
    "the vectorized engine supports only integer (or default) thresholds, "
    "got a callable; use the scalar engine instead"
)


def _require_strict(policy: "str | object") -> None:
    policy_name = policy if isinstance(policy, str) else getattr(policy, "name", "?")
    if policy_name != "strict":
        raise ValueError(
            f"the vectorized engine implements only the strict policy, "
            f"got {policy_name!r}; use the scalar engine instead"
        )


def independent_batch_rounds(n_bins: int, d: int) -> int:
    """Batch size that keeps the expected conflict fraction small.

    A round conflicts when one of its ``d`` samples collides with any of the
    other ``(B - 1) d`` samples of its batch (or repeats within the round),
    which happens with probability ~``B d^2 / n``.  The batch size balances
    that Python-fallback cost against the fixed per-batch NumPy overhead.
    """
    return max(8, min(_CHUNK_ROUNDS, int(n_bins // (12 * d * d)) or 8))


def speculative_batch_rows(n_bins: int, width: int, replays: int = 12) -> int:
    """Row count for the speculate-verify engines.

    A row of ``width`` read bins conflicts with one of the ~``B/2`` earlier
    writes with probability ~``B * width / (2 n)``, so a batch replays
    ~``B^2 width / (2 n)`` rows through the scalar kernel.  Solving for a
    target number of ``replays`` per batch (each costs a couple of
    microseconds, traded against the batch's fixed NumPy overhead) gives
    ``B = sqrt(2 * replays * n / width)``.
    """
    return max(32, min(_BALL_CHUNK, int((2 * replays * n_bins / width) ** 0.5)))


# ----------------------------------------------------------------------
# The paper's (k, d)-choice process
# ----------------------------------------------------------------------
def _select_batch(
    loads: np.ndarray,
    samples: np.ndarray,
    tiebreaks: np.ndarray,
    k: int,
    out: Optional[np.ndarray] = None,
) -> None:
    """Apply one batch of rounds to ``loads`` in place.

    ``samples`` and ``tiebreaks`` are ``(B, d)`` blocks; rounds whose bins are
    untouched by every other round in the batch are resolved with one
    argpartition, the rest replay sequentially through the scalar kernel.

    ``out`` (a ``(B, k)`` int64 array) optionally receives each round's
    destination bins in *ball order* — the exact order the scalar
    :func:`~repro.core.policies.strict_select` kernel returns them — which is
    what the streaming allocator (:mod:`repro.online`) hands out one ball at
    a time.  The batch path skips that per-row sort when no caller asks.
    """
    batch, d = samples.shape

    # A bin value is "shared" when it occurs more than once in the batch.
    flat = np.sort(samples, axis=None)
    shared = flat[1:][flat[1:] == flat[:-1]]
    if shared.size:
        dirty = np.isin(samples, shared).any(axis=1)
    else:
        dirty = np.zeros(batch, dtype=bool)
    clean = ~dirty

    clean_rows = samples[clean]
    if clean_rows.size:
        # No bin repeats anywhere in these rounds: every virtual ball has
        # height loads[bin] + 1, and placements cannot interact, so the
        # strict rule reduces to "keep the k smallest (height, tiebreak)
        # pairs per round".  Encode the pair as one int64 key: the tie-break
        # rank within the round replaces the float (rank < d, so the
        # lexicographic order is preserved exactly).
        heights = loads[clean_rows] + 1
        ranks = stable_tiebreak_ranks(tiebreaks[clean])
        keys = heights * np.int64(d) + ranks
        kept = np.argpartition(keys, k - 1, axis=1)[:, :k]
        if out is not None:
            kept = ball_order_kept(keys, kept)
        destinations = np.take_along_axis(clean_rows, kept, axis=1)
        if out is not None:
            out[clean] = destinations
        loads[destinations.ravel()] += 1  # all destinations are distinct bins

    for row_index in np.flatnonzero(dirty):
        row = samples[row_index].tolist()
        row_destinations = strict_select(loads, row, k, tiebreaks[row_index])
        if out is not None:
            out[row_index] = row_destinations
        for bin_index in row_destinations:
            loads[bin_index] += 1


def run_kd_choice_vectorized(
    n_bins: int,
    k: int,
    d: int,
    n_balls: Optional[int] = None,
    policy: str = "strict",
    seed: "int | np.random.SeedSequence | None" = None,
    rng: Optional[np.random.Generator] = None,
    chunk_rounds: Optional[int] = None,
) -> AllocationResult:
    """Run (k, d)-choice with the batch-vectorized engine.

    Seed-for-seed, the returned load vector is identical to
    :func:`~repro.core.process.run_kd_choice` at the same ``chunk_rounds``;
    only the wall-clock time differs.  ``chunk_rounds`` (default 4096) is the
    streaming knob: samples are drawn and processed in blocks of that many
    rounds, bounding peak buffer memory at ``O(chunk_rounds * d)``.
    """
    _require_strict(policy)
    ProcessParams(n_bins=n_bins, n_balls=n_balls, k=k, d=d)
    if chunk_rounds is None:
        chunk_rounds = _CHUNK_ROUNDS
    if chunk_rounds <= 0:
        raise ValueError(f"chunk_rounds must be positive, got {chunk_rounds}")
    if n_balls is None:
        n_balls = n_bins
    generator = _make_rng(seed, rng)

    loads = np.zeros(n_bins, dtype=np.int64)
    full_rounds, tail_balls = divmod(n_balls, k)
    batch_rounds = min(chunk_rounds, independent_batch_rounds(n_bins, d))
    messages = 0
    rounds = 0

    remaining = full_rounds
    while remaining > 0:
        chunk = min(remaining, chunk_rounds)
        samples = generator.integers(0, n_bins, size=(chunk, d))
        if k == d:
            # Every sampled bin keeps its ball; loads never influence the
            # outcome, so the whole chunk is one histogram.  (The scalar
            # policy draws no tie-breaks in this case either.)
            loads += np.bincount(samples.ravel(), minlength=n_bins)
        else:
            tiebreaks = generator.random((chunk, d))
            for start in range(0, chunk, batch_rounds):
                stop = start + batch_rounds
                _select_batch(loads, samples[start:stop], tiebreaks[start:stop], k)
        messages += chunk * d
        rounds += chunk
        remaining -= chunk

    if tail_balls:
        samples = generator.integers(0, n_bins, size=d).tolist()
        for bin_index in strict_select(loads, samples, tail_balls, generator.random(d)):
            loads[bin_index] += 1
        messages += d
        rounds += 1

    params = ProcessParams(n_bins=n_bins, n_balls=n_balls, k=k, d=d)
    return AllocationResult(
        loads=loads,
        scheme=f"({k},{d})-choice",
        n_bins=n_bins,
        n_balls=n_balls,
        k=k,
        d=d,
        messages=messages,
        rounds=rounds,
        policy="strict",
        extra={"expected_messages": params.message_cost, "engine": "vectorized"},
    )


# ----------------------------------------------------------------------
# Weighted balls
# ----------------------------------------------------------------------
def _weighted_batch(
    loads: np.ndarray,
    counts: np.ndarray,
    samples: np.ndarray,
    tiebreaks: np.ndarray,
    batch_weights: np.ndarray,
    increments: np.ndarray,
    k: int,
    scratch: ConflictScratch,
    out: Optional[np.ndarray] = None,
) -> None:
    """Apply one batch of full weighted rounds to ``loads``/``counts``.

    Provisional selections are computed row-wise against the batch-start
    loads — one ``(height, tiebreak, bin)`` lexsort plus a stable by-load
    sort of the kept slots (the scalar round kernel's two list sorts) — and
    validated with the prefix-conflict kernel; suspect rounds replay through
    the scalar round kernel in order.  Rounds that sample a bin twice need
    the multiplicity-stacked heights and are forced straight to the replay.

    ``out`` (a ``(B, k)`` int64 array) optionally receives each round's
    destination bins in ball order (heaviest ball first — the order the
    scalar kernel places them), for the streaming allocator.
    """
    row_sorted = np.sort(samples, axis=1)
    internal_dup = (row_sorted[:, 1:] == row_sorted[:, :-1]).any(axis=1)

    # Provisional selection (exact for duplicate-free rounds: every virtual
    # ball has height loads[bin] + increment, a per-row constant shift that
    # the lexsort ignores-by-including).
    heights = loads[samples] + increments[:, None]
    order = np.lexsort((samples, tiebreaks, heights), axis=-1)
    kept = np.take_along_axis(samples, order[:, :k], axis=1)
    # Heaviest ball to the least-loaded kept slot: a stable by-load sort of
    # the slots, matched against the descending weights.
    slot_order = np.argsort(loads[kept], axis=1, kind="stable")
    slots = np.take_along_axis(kept, slot_order, axis=1)

    suspect = prefix_conflicts(
        samples, slots, scratch, expanded=samples, forced=internal_dup
    )
    if out is not None:
        out[:] = slots  # clean rows only; suspect rows overwritten below
    for seg_start, seg_stop, suspect_index in clean_segments(suspect):
        seg_slots = slots[seg_start:seg_stop].ravel()
        loads[seg_slots] += batch_weights[seg_start:seg_stop].ravel()
        counts[seg_slots] += 1
        if suspect_index >= 0:
            replayed = weighted_round_apply(
                loads,
                counts,
                samples[suspect_index].tolist(),
                tiebreaks[suspect_index],
                batch_weights[suspect_index],
                float(increments[suspect_index]),
            )
            if out is not None:
                out[suspect_index] = replayed


def run_weighted_kd_choice_vectorized(
    n_bins: int,
    k: int,
    d: int,
    weights: WeightSpec = "exponential",
    n_balls: Optional[int] = None,
    mean_weight: float = 1.0,
    seed: "int | np.random.SeedSequence | None" = None,
    rng: Optional[np.random.Generator] = None,
) -> AllocationResult:
    """Weighted (k, d)-choice on the batch engine.

    Seed-for-seed identical to :func:`~repro.core.weighted.run_weighted_kd_choice`:
    the weights are materialized by the same :func:`make_weights` call, and
    each round draws its ``d`` samples then its ``d`` tie-break doubles in
    the scalar order.
    """
    ProcessParams(n_bins=n_bins, n_balls=None, k=k, d=d)
    generator = _make_rng(seed, rng)
    if n_balls is None:
        n_balls = n_bins
    all_weights = make_weights(weights, n_balls, generator, mean_weight=mean_weight)

    loads = np.zeros(n_bins, dtype=float)
    counts = np.zeros(n_bins, dtype=np.int64)
    messages = 0
    rounds = 0
    full_rounds, tail_balls = divmod(n_balls, k)
    batch_rounds = speculative_batch_rows(n_bins, k * d)
    scratch = ConflictScratch(n_bins)

    # Per-round descending weights and their means, computed for all full
    # rounds up front (no RNG involved).  Row r of the 2D sort holds the same
    # values as the scalar round's `np.sort(weights[r*k:(r+1)*k])[::-1]`, and
    # the axis-1 mean reduces the same descending view in the same order, so
    # both match the scalar floats exactly.
    round_weights = np.sort(
        all_weights[: full_rounds * k].reshape(full_rounds, k), axis=1
    )[:, ::-1]
    round_increments = round_weights.mean(axis=1)

    done = 0
    remaining = full_rounds
    while remaining > 0:
        # Same RNG blocks as the scalar process: chunk of samples, then the
        # matching chunk of tie-break doubles.
        chunk = min(remaining, _CHUNK_ROUNDS)
        samples_block = generator.integers(0, n_bins, size=(chunk, d))
        ties_block = generator.random((chunk, d))
        for start in range(0, chunk, batch_rounds):
            stop = min(start + batch_rounds, chunk)
            _weighted_batch(
                loads,
                counts,
                samples_block[start:stop],
                ties_block[start:stop],
                round_weights[done + start : done + stop],
                round_increments[done + start : done + stop],
                k,
                scratch,
            )
        messages += chunk * d
        rounds += chunk
        done += chunk
        remaining -= chunk

    if tail_balls:
        sorted_weights = np.sort(all_weights[full_rounds * k :])[::-1]
        samples = generator.integers(0, n_bins, size=d)
        tiebreaks = generator.random(d)
        weighted_round_apply(
            loads,
            counts,
            samples.tolist(),
            tiebreaks,
            sorted_weights,
            float(sorted_weights.mean()),
        )
        messages += d
        rounds += 1

    spec_name = (
        weights if isinstance(weights, str)
        else getattr(weights, "__name__", "custom") if callable(weights)
        else "explicit"
    )
    total_weight = float(all_weights.sum())
    return AllocationResult(
        loads=counts,
        scheme=f"weighted-({k},{d})-choice[{spec_name}]",
        n_bins=n_bins,
        n_balls=n_balls,
        k=k,
        d=d,
        messages=messages,
        rounds=rounds,
        policy="weighted-strict",
        extra={
            "weighted_loads": loads,
            "total_weight": total_weight,
            "max_weighted_load": float(loads.max()) if loads.size else 0.0,
            "weighted_gap": float(loads.max() - total_weight / n_bins)
            if loads.size
            else 0.0,
            "engine": "vectorized",
        },
    )


# ----------------------------------------------------------------------
# Stale load information (parallel epochs)
# ----------------------------------------------------------------------
def run_stale_kd_choice_vectorized(
    n_bins: int,
    k: int,
    d: int,
    stale_rounds: int = 1,
    n_balls: Optional[int] = None,
    policy: str = "strict",
    seed: "int | np.random.SeedSequence | None" = None,
    rng: Optional[np.random.Generator] = None,
) -> AllocationResult:
    """Stale-information (k, d)-choice on the batch engine.

    The stale process is the engine's best case: every round of an epoch
    probes the same load snapshot by definition, so a whole epoch is one
    independent row-selection batch — no conflict detection, no snapshot
    copy (placements are simply deferred to the epoch end).
    """
    _require_strict(policy)
    ProcessParams(n_bins=n_bins, n_balls=None, k=k, d=d)
    if stale_rounds < 1:
        raise ValueError(f"stale_rounds must be at least 1, got {stale_rounds}")
    generator = _make_rng(seed, rng)
    if n_balls is None:
        n_balls = n_bins

    loads = np.zeros(n_bins, dtype=np.int64)
    messages = 0
    rounds = 0
    placed = 0

    while placed < n_balls:
        # Same RNG blocks as the scalar process: the epoch's samples, then
        # (for k < d) the epoch's tie-breaks.
        epoch_rounds = min(stale_rounds, -(-(n_balls - placed) // k))
        samples_block = generator.integers(0, n_bins, size=(epoch_rounds, d))
        ties_block = generator.random((epoch_rounds, d)) if k < d else None
        messages += epoch_rounds * d
        rounds += epoch_rounds
        epoch_balls = min(n_balls - placed, epoch_rounds * k)
        placed += epoch_balls
        tail_balls = epoch_balls - (epoch_rounds - 1) * k  # final round's batch

        extra_destinations: List[np.ndarray] = []
        full = epoch_rounds  # rounds carrying a full batch of k balls
        if tail_balls < k:  # partial tail round, selected by itself
            full -= 1
            tail_ties = (
                ties_block[full] if ties_block is not None else generator.random(d)
            )
            extra_destinations.append(
                np.asarray(
                    strict_select(
                        loads, samples_block[full].tolist(), tail_balls, tail_ties
                    ),
                    dtype=np.int64,
                )
            )
        if full:
            if k == d:
                # Degenerate rounds: every sampled bin keeps its ball and the
                # scalar policy draws no tie-breaks.
                extra_destinations.append(samples_block[:full].ravel())
            elif full == 1:
                # One-round epochs (stale_rounds=1, the fresh process) skip
                # the batch kernel's fixed costs.
                extra_destinations.append(
                    np.asarray(
                        strict_select(
                            loads, samples_block[0].tolist(), k, ties_block[0]
                        ),
                        dtype=np.int64,
                    )
                )
            else:
                extra_destinations.append(
                    strict_select_rows(
                        loads, samples_block[:full], ties_block[:full], k
                    ).ravel()
                )

        # Deferred epoch application; np.add.at handles repeated bins exactly
        # like the scalar one-ball-at-a-time adds.
        for destinations in extra_destinations:
            np.add.at(loads, destinations, 1)

    return AllocationResult(
        loads=loads,
        scheme=(
            f"stale-({k},{d})-choice"
            f"[epoch={stale_rounds} rounds]"
        ),
        n_bins=n_bins,
        n_balls=n_balls,
        k=k,
        d=d,
        messages=messages,
        rounds=rounds,
        policy="strict",
        extra={"stale_rounds": stale_rounds, "engine": "vectorized"},
    )


# ----------------------------------------------------------------------
# Dynamic insert/delete churn
# ----------------------------------------------------------------------
def run_churn_kd_choice_vectorized(
    n_bins: int,
    k: int,
    d: int,
    rounds: int,
    departures_per_round: Optional[int] = None,
    policy: str = "strict",
    seed: "int | np.random.SeedSequence | None" = None,
    rng: Optional[np.random.Generator] = None,
    warmup_balls: Optional[int] = None,
    snapshot_every: int = 16,
) -> ChurnResult:
    """Dynamic (k, d)-choice churn on the batch engine.

    Seed-for-seed identical to :func:`~repro.core.dynamic.run_churn_kd_choice`.
    The scalar process spends almost all its time scanning the load vector
    ball by ball to find each departing ball's bin; here that scan is one
    ``cumsum``/``searchsorted`` pair per departure.
    """
    _require_strict(policy)
    ProcessParams(n_bins=n_bins, n_balls=None, k=k, d=d)
    departures_per_round = k if departures_per_round is None else departures_per_round
    if departures_per_round < 0:
        raise ValueError(
            f"departures_per_round must be non-negative, got {departures_per_round}"
        )
    if rounds < 0:
        raise ValueError(f"rounds must be non-negative, got {rounds}")
    if snapshot_every < 1:
        raise ValueError(f"snapshot_every must be positive, got {snapshot_every}")
    generator = _make_rng(seed, rng)
    if warmup_balls is None:
        warmup_balls = n_bins

    loads = np.bincount(
        generator.integers(0, n_bins, size=warmup_balls), minlength=n_bins
    ).astype(np.int64)
    total = warmup_balls
    messages = 0
    snapshots: List[ChurnSnapshot] = []

    for round_index in range(1, rounds + 1):
        # Arrivals: one (k, d)-choice round.
        samples = generator.integers(0, n_bins, size=d).tolist()
        messages += d
        if k == d:
            destinations = samples
        else:
            destinations = strict_select(loads, samples, k, generator.random(d))
        for bin_index in destinations:
            loads[bin_index] += 1
        total += k

        # Departures: remove balls uniformly at random (by ball).  The
        # scalar scan "first bin with target < cumulative load" is exactly a
        # right-bisect into the cumulative sum.
        departures = min(departures_per_round, total)
        for _ in range(departures):
            target = int(generator.integers(0, total))
            cumulative = np.cumsum(loads)
            bin_index = int(np.searchsorted(cumulative, target, side="right"))
            loads[bin_index] -= 1
            total -= 1

        if round_index % snapshot_every == 0 or round_index == rounds:
            snapshots.append(
                ChurnSnapshot(
                    round_index=round_index,
                    total_balls=total,
                    max_load=int(loads.max()),
                    average_load=total / n_bins,
                )
            )

    return ChurnResult(
        n_bins=n_bins,
        k=k,
        d=d,
        rounds=rounds,
        departures_per_round=departures_per_round,
        messages=messages,
        final_loads=np.asarray(loads, dtype=np.int64),
        snapshots=snapshots,
    )


# ----------------------------------------------------------------------
# Greedy[d] / two-choice baselines (ride the kd kernel)
# ----------------------------------------------------------------------
def run_d_choice_vectorized(
    n_bins: int,
    d: int,
    n_balls: Optional[int] = None,
    seed: "int | np.random.SeedSequence | None" = None,
    rng: Optional[np.random.Generator] = None,
) -> AllocationResult:
    """Greedy[d] on the batch engine (the (1, d)-choice special case)."""
    if d < 1:
        raise ValueError(f"d must be at least 1, got {d}")
    result = run_kd_choice_vectorized(
        n_bins=n_bins, k=1, d=d, n_balls=n_balls, seed=seed, rng=rng
    )
    result.scheme = f"greedy[{d}]"
    return result


# ----------------------------------------------------------------------
# (1 + beta)-choice
# ----------------------------------------------------------------------
def run_one_plus_beta_vectorized(
    n_bins: int,
    beta: float,
    n_balls: Optional[int] = None,
    seed: "int | np.random.SeedSequence | None" = None,
    rng: Optional[np.random.Generator] = None,
) -> AllocationResult:
    """(1 + β)-choice on the speculate-verify batch engine."""
    if not 0.0 <= beta <= 1.0:
        raise ValueError(f"beta must lie in [0, 1], got {beta}")
    if n_bins <= 0:
        raise ValueError(f"n_bins must be positive, got {n_bins}")
    if n_balls is None:
        n_balls = n_bins
    generator = _make_rng(seed, rng)

    loads = np.zeros(n_bins, dtype=np.int64)
    messages = 0
    scratch = ConflictScratch(n_bins)
    sub_rows = speculative_batch_rows(n_bins, 2)
    remaining = n_balls
    while remaining > 0:
        batch = min(remaining, _BALL_CHUNK)
        coins = generator.random(batch) < beta
        first = generator.integers(0, n_bins, size=batch)
        second = generator.integers(0, n_bins, size=batch)
        for start in range(0, batch, sub_rows):
            stop = start + sub_rows
            a = first[start:stop]
            b = second[start:stop]
            two = coins[start:stop]
            destinations = np.where(
                two, np.where(loads[a] <= loads[b], a, b), a
            )
            # Single-choice balls read nothing, but self-reads are harmless
            # (a row is never "earlier than itself") and keep the read array
            # rectangular.
            reads = np.stack([a, np.where(two, b, a)], axis=1)
            suspect = prefix_conflicts(reads, destinations, scratch)
            for seg_start, seg_stop, suspect_index in clean_segments(suspect):
                loads[destinations[seg_start:seg_stop]] += 1
                if suspect_index >= 0:
                    if two[suspect_index]:
                        x, y = int(a[suspect_index]), int(b[suspect_index])
                        loads[x if loads[x] <= loads[y] else y] += 1
                    else:
                        loads[a[suspect_index]] += 1
            messages += len(two) + int(two.sum())
        remaining -= batch

    return AllocationResult(
        loads=loads,
        scheme=f"(1+{beta:g})-choice",
        n_bins=n_bins,
        n_balls=n_balls,
        k=1,
        d=2,
        messages=messages,
        rounds=n_balls,
        policy="mixed",
        extra={"beta": beta, "engine": "vectorized"},
    )


# ----------------------------------------------------------------------
# Always-Go-Left
# ----------------------------------------------------------------------
def run_always_go_left_vectorized(
    n_bins: int,
    d: int,
    n_balls: Optional[int] = None,
    seed: "int | np.random.SeedSequence | None" = None,
    rng: Optional[np.random.Generator] = None,
) -> AllocationResult:
    """Vöcking's Always-Go-Left scheme on the speculate-verify engine."""
    if d < 1:
        raise ValueError(f"d must be at least 1, got {d}")
    if n_bins < d:
        raise ValueError(f"need n_bins >= d groups, got n_bins={n_bins}, d={d}")
    if n_balls is None:
        n_balls = n_bins
    generator = _make_rng(seed, rng)

    boundaries = np.linspace(0, n_bins, d + 1).astype(np.int64)
    group_sizes = np.diff(boundaries)
    if np.any(group_sizes == 0):
        raise ValueError("every group must contain at least one bin")

    loads = np.zeros(n_bins, dtype=np.int64)
    messages = 0
    scratch = ConflictScratch(n_bins)
    sub_rows = speculative_batch_rows(n_bins, d, replays=6)
    remaining = n_balls
    while remaining > 0:
        batch = min(remaining, _BALL_CHUNK)
        uniform = generator.random(size=(batch, d))
        probes = (boundaries[:-1] + uniform * group_sizes).astype(np.int64)
        for start in range(0, batch, sub_rows):
            rows = probes[start : start + sub_rows]
            columns = np.argmin(loads[rows], axis=1)  # earliest min = leftmost
            destinations = rows[np.arange(len(rows)), columns]
            suspect = prefix_conflicts(rows, destinations, scratch)
            for seg_start, seg_stop, suspect_index in clean_segments(suspect):
                loads[destinations[seg_start:seg_stop]] += 1
                if suspect_index >= 0:
                    loads[least_loaded_probe(loads, rows[suspect_index].tolist())] += 1
        messages += batch * d
        remaining -= batch

    return AllocationResult(
        loads=loads,
        scheme=f"always-go-left[{d}]",
        n_bins=n_bins,
        n_balls=n_balls,
        k=1,
        d=d,
        messages=messages,
        rounds=n_balls,
        policy="asymmetric",
        extra={"engine": "vectorized"},
    )


# ----------------------------------------------------------------------
# Adaptive comparators
# ----------------------------------------------------------------------
def run_threshold_adaptive_vectorized(
    n_bins: int,
    n_balls: Optional[int] = None,
    threshold: "int | None" = None,
    max_probes: Optional[int] = None,
    seed: "int | np.random.SeedSequence | None" = None,
    rng: Optional[np.random.Generator] = None,
) -> AllocationResult:
    """Threshold probing on the speculate-verify engine.

    Callable thresholds are rejected (their evaluation order is inherently
    per-ball); the default average-based rule and fixed integer thresholds
    are supported, which is what every experiment in the repository uses.
    """
    if n_bins <= 0:
        raise ValueError(f"n_bins must be positive, got {n_bins}")
    if callable(threshold):
        raise ValueError(CALLABLE_THRESHOLD_REASON)
    if n_balls is None:
        n_balls = n_bins
    if max_probes is None:
        max_probes = max(2, int(np.ceil(np.log2(max(n_bins, 2)))))
    if max_probes < 1:
        raise ValueError(f"max_probes must be at least 1, got {max_probes}")
    fixed = None if threshold is None else int(threshold)
    generator = _make_rng(seed, rng)

    loads = np.zeros(n_bins, dtype=np.int64)
    messages = 0
    histogram = np.zeros(max_probes + 1, dtype=np.int64)
    scratch = ConflictScratch(n_bins)
    sub_rows = speculative_batch_rows(n_bins, max_probes)
    probe_columns = np.arange(max_probes)

    placed = 0
    while placed < n_balls:
        batch = min(n_balls - placed, _BALL_CHUNK)
        probes = generator.integers(0, n_bins, size=(batch, max_probes))
        for start in range(0, batch, sub_rows):
            rows = probes[start : start + sub_rows]
            size = len(rows)
            if fixed is None:
                ball_index = placed + start + np.arange(size)
                limits = np.ceil(ball_index / n_bins).astype(np.int64) + 1
            else:
                limits = np.full(size, fixed, dtype=np.int64)
            # Fast path: most balls commit on their first probe, so the deep
            # (full-width) computation runs only on the rows that miss.
            first_loads = loads[rows[:, 0]]
            destinations = rows[:, 0].copy()
            used = np.ones(size, dtype=np.int64)
            deep = np.flatnonzero(first_loads > limits)
            if deep.size:
                deep_rows = rows[deep]
                deep_loads = loads[deep_rows]
                meets = deep_loads <= limits[deep][:, None]
                any_hit = meets.any(axis=1)
                deep_used = np.where(any_hit, np.argmax(meets, axis=1) + 1, max_probes)
                # Destination: earliest minimum among the probes examined.
                masked = np.where(
                    probe_columns < deep_used[:, None],
                    deep_loads,
                    np.iinfo(np.int64).max,
                )
                columns = np.argmin(masked, axis=1)
                used[deep] = deep_used
                destinations[deep] = deep_rows[np.arange(deep.size), columns]
            # Reads: the examined prefix, padded with the row's destination.
            width = int(used.max())
            reads = np.where(
                probe_columns[:width] < used[:, None],
                rows[:, :width],
                destinations[:, None],
            )
            suspect = prefix_conflicts(reads, destinations, scratch, expanded=rows)
            for seg_start, seg_stop, suspect_index in clean_segments(suspect):
                loads[destinations[seg_start:seg_stop]] += 1
                if suspect_index >= 0:
                    best_bin, used_replay = threshold_place(
                        loads, rows[suspect_index].tolist(), int(limits[suspect_index])
                    )
                    loads[best_bin] += 1
                    used[suspect_index] = used_replay
            histogram += np.bincount(used, minlength=max_probes + 1)
            messages += int(used.sum())
        placed += batch

    probe_histogram = {
        int(count): int(balls) for count, balls in enumerate(histogram) if balls
    }
    return AllocationResult(
        loads=loads,
        scheme="adaptive-threshold",
        n_bins=n_bins,
        n_balls=n_balls,
        k=1,
        d=max_probes,
        messages=messages,
        rounds=n_balls,
        policy="adaptive",
        extra={
            "probe_histogram": probe_histogram,
            "average_probes": messages / max(n_balls, 1),
            "max_probes": max_probes,
            "engine": "vectorized",
        },
    )


def run_two_phase_adaptive_vectorized(
    n_bins: int,
    n_balls: Optional[int] = None,
    cap: Optional[int] = None,
    retry_probes: int = 4,
    seed: "int | np.random.SeedSequence | None" = None,
    rng: Optional[np.random.Generator] = None,
) -> AllocationResult:
    """Two-phase adaptive allocation on the speculate-verify engine."""
    if n_bins <= 0:
        raise ValueError(f"n_bins must be positive, got {n_bins}")
    if n_balls is None:
        n_balls = n_bins
    if retry_probes < 1:
        raise ValueError(f"retry_probes must be at least 1, got {retry_probes}")
    if cap is None:
        cap = int(np.ceil(n_balls / n_bins)) + 2
    generator = _make_rng(seed, rng)

    loads = np.zeros(n_bins, dtype=np.int64)
    messages = 0
    retries = 0
    scratch = ConflictScratch(n_bins)
    # Committed balls read only their primary probe, so the effective read
    # width is ~1 + retry_fraction * retry_probes, far below the full row.
    sub_rows = speculative_batch_rows(n_bins, 2)
    remaining = n_balls
    while remaining > 0:
        batch = min(remaining, _BALL_CHUNK)
        first = generator.integers(0, n_bins, size=batch)
        fallback = generator.integers(0, n_bins, size=(batch, retry_probes))
        for start in range(0, batch, sub_rows):
            stop = start + sub_rows
            primary = first[start:stop]
            rows = fallback[start:stop]
            size = len(primary)
            committed = loads[primary] < cap
            retried = ~committed
            destinations = primary.copy()
            misses = np.flatnonzero(retried)
            if misses.size:
                miss_rows = rows[misses]
                columns = np.argmin(loads[miss_rows], axis=1)
                destinations[misses] = miss_rows[np.arange(misses.size), columns]
            # Reads: the primary probe, plus the fallback row for the balls
            # that (provisionally) retried; committed balls pad with their
            # destination (= the primary itself, so one `where` builds it).
            expanded = np.concatenate([destinations[:, None], rows], axis=1)
            reads = np.where(retried[:, None], expanded, destinations[:, None])
            suspect = prefix_conflicts(reads, destinations, scratch, expanded=expanded)
            for seg_start, seg_stop, suspect_index in clean_segments(suspect):
                loads[destinations[seg_start:seg_stop]] += 1
                if suspect_index >= 0:
                    best_bin, did_retry = two_phase_place(
                        loads,
                        int(primary[suspect_index]),
                        rows[suspect_index].tolist(),
                        cap,
                    )
                    loads[best_bin] += 1
                    retried[suspect_index] = did_retry
            retried_count = int(retried.sum())
            retries += retried_count
            messages += size + retried_count * retry_probes
        remaining -= batch

    return AllocationResult(
        loads=loads,
        scheme="adaptive-two-phase",
        n_bins=n_bins,
        n_balls=n_balls,
        k=1,
        d=retry_probes,
        messages=messages,
        rounds=n_balls,
        policy="adaptive",
        extra={
            "cap": cap,
            "retries": retries,
            "retry_fraction": retries / max(n_balls, 1),
            "average_probes": messages / max(n_balls, 1),
            "engine": "vectorized",
        },
    )
