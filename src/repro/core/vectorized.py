"""Vectorized (k, d)-choice engine: batch selection over sample chunks.

The scalar :class:`~repro.core.process.KDChoiceProcess` executes one round at
a time in Python: compute the ``d`` virtual-ball heights, ``lexsort`` them,
keep the ``k`` smallest.  That loop dominates every large experiment in the
repository (Table 1 at paper scale places ~2.4·10^8 balls).

This module provides a drop-in fast path, :func:`run_kd_choice_vectorized`,
that is **bit-for-bit equivalent** to the scalar engine for a fixed seed:

* It consumes the random stream in exactly the scalar order — one
  ``integers`` block of ``chunk_rounds x d`` samples per chunk, followed by a
  ``random`` block of the matching tie-break variates (NumPy fills both
  buffers element-sequentially, so the chunked draws equal the scalar per
  round draws).
* Within a chunk, rounds are grouped into small batches.  A round is
  *independent* when none of its sampled bins appears anywhere else in the
  batch; independent rounds see exactly the loads at batch start, so their
  selections can be computed together: heights via one fancy-indexing gather,
  tie-breaks reduced to per-round ranks, and the ``k`` least-loaded choices
  per round extracted with a single ``np.argpartition`` over the combined
  integer key.  Conflicting rounds (a vanishing fraction when
  ``batch << n / d^2``) fall back to the shared scalar kernel
  :func:`~repro.core.policies.strict_select`, preserving exact semantics.
* The ``k == d`` degenerate case needs no selection at all and collapses to
  one ``bincount`` per chunk.

Select it through the unified front door::

    from repro.api import SchemeSpec, simulate
    simulate(SchemeSpec(scheme="kd_choice",
                        params={"n_bins": 100_000, "k": 4, "d": 8},
                        engine="vectorized", seed=0))

Only the paper's strict policy is supported; requesting any other policy
raises ``ValueError`` (the greedy relaxation stays on the scalar path).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .policies import strict_select
from .process import _DEFAULT_CHUNK_ROUNDS as _CHUNK_ROUNDS
from .types import AllocationResult, ProcessParams

__all__ = ["run_kd_choice_vectorized", "independent_batch_rounds"]


def independent_batch_rounds(n_bins: int, d: int) -> int:
    """Batch size that keeps the expected conflict fraction small.

    A round conflicts when one of its ``d`` samples collides with any of the
    other ``(B - 1) d`` samples of its batch (or repeats within the round),
    which happens with probability ~``B d^2 / n``.  The batch size balances
    that Python-fallback cost against the fixed per-batch NumPy overhead.
    """
    return max(8, min(_CHUNK_ROUNDS, int(n_bins // (12 * d * d)) or 8))


def _select_batch(
    loads: np.ndarray,
    samples: np.ndarray,
    tiebreaks: np.ndarray,
    k: int,
) -> None:
    """Apply one batch of rounds to ``loads`` in place.

    ``samples`` and ``tiebreaks`` are ``(B, d)`` blocks; rounds whose bins are
    untouched by every other round in the batch are resolved with one
    argpartition, the rest replay sequentially through the scalar kernel.
    """
    batch, d = samples.shape

    # A bin value is "shared" when it occurs more than once in the batch.
    flat = np.sort(samples, axis=None)
    shared = flat[1:][flat[1:] == flat[:-1]]
    if shared.size:
        dirty = np.isin(samples, shared).any(axis=1)
    else:
        dirty = np.zeros(batch, dtype=bool)
    clean = ~dirty

    clean_rows = samples[clean]
    if clean_rows.size:
        # No bin repeats anywhere in these rounds: every virtual ball has
        # height loads[bin] + 1, and placements cannot interact, so the
        # strict rule reduces to "keep the k smallest (height, tiebreak)
        # pairs per round".  Encode the pair as one int64 key: the tie-break
        # rank within the round replaces the float (rank < d, so the
        # lexicographic order is preserved exactly).
        heights = loads[clean_rows] + 1
        ranks = np.empty_like(clean_rows)
        # kind="stable" mirrors lexsort's stability so bit-equal tie-break
        # doubles (astronomically rare, but possible at paper scale) resolve
        # by sample index in both engines.
        order = np.argsort(tiebreaks[clean], axis=1, kind="stable")
        np.put_along_axis(
            ranks, order, np.broadcast_to(np.arange(d), clean_rows.shape), axis=1
        )
        keys = heights * np.int64(d) + ranks
        kept = np.argpartition(keys, k - 1, axis=1)[:, :k]
        destinations = np.take_along_axis(clean_rows, kept, axis=1).ravel()
        loads[destinations] += 1  # all destinations are distinct bins

    for row_index in np.flatnonzero(dirty):
        row = samples[row_index].tolist()
        for bin_index in strict_select(loads, row, k, tiebreaks[row_index]):
            loads[bin_index] += 1


def run_kd_choice_vectorized(
    n_bins: int,
    k: int,
    d: int,
    n_balls: Optional[int] = None,
    policy: str = "strict",
    seed: "int | np.random.SeedSequence | None" = None,
    rng: Optional[np.random.Generator] = None,
) -> AllocationResult:
    """Run (k, d)-choice with the batch-vectorized engine.

    Seed-for-seed, the returned load vector is identical to
    :func:`~repro.core.process.run_kd_choice`; only the wall-clock time
    differs.  See the module docstring for the argument.
    """
    policy_name = policy if isinstance(policy, str) else getattr(policy, "name", "?")
    if policy_name != "strict":
        raise ValueError(
            f"the vectorized engine implements only the strict policy, "
            f"got {policy_name!r}; use the scalar engine instead"
        )
    ProcessParams(n_bins=n_bins, n_balls=n_balls, k=k, d=d)
    if n_balls is None:
        n_balls = n_bins
    generator = rng if rng is not None else np.random.default_rng(seed)

    loads = np.zeros(n_bins, dtype=np.int64)
    full_rounds, tail_balls = divmod(n_balls, k)
    batch_rounds = independent_batch_rounds(n_bins, d)
    messages = 0
    rounds = 0

    remaining = full_rounds
    while remaining > 0:
        chunk = min(remaining, _CHUNK_ROUNDS)
        samples = generator.integers(0, n_bins, size=(chunk, d))
        if k == d:
            # Every sampled bin keeps its ball; loads never influence the
            # outcome, so the whole chunk is one histogram.  (The scalar
            # policy draws no tie-breaks in this case either.)
            loads += np.bincount(samples.ravel(), minlength=n_bins)
        else:
            tiebreaks = generator.random((chunk, d))
            for start in range(0, chunk, batch_rounds):
                stop = start + batch_rounds
                _select_batch(loads, samples[start:stop], tiebreaks[start:stop], k)
        messages += chunk * d
        rounds += chunk
        remaining -= chunk

    if tail_balls:
        samples = generator.integers(0, n_bins, size=d).tolist()
        for bin_index in strict_select(loads, samples, tail_balls, generator.random(d)):
            loads[bin_index] += 1
        messages += d
        rounds += 1

    params = ProcessParams(n_bins=n_bins, n_balls=n_balls, k=k, d=d)
    return AllocationResult(
        loads=loads,
        scheme=f"({k},{d})-choice",
        n_bins=n_bins,
        n_balls=n_balls,
        k=k,
        d=d,
        messages=messages,
        rounds=rounds,
        policy="strict",
        extra={"expected_messages": params.message_cost, "engine": "vectorized"},
    )
