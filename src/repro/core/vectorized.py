"""Vectorized engines — compatibility shim over :mod:`repro.core.kernels`.

Historically this module hand-implemented a batch engine per scheme.  Those
engines are now *derived* from each scheme's single kernel registration in
:mod:`repro.core.kernels.table` (a draw-block spec, a per-unit apply, an
optional batched apply); this module re-exports the derived runners under
their long-standing names so existing imports keep working.  It defines
nothing itself — the registry parity lint (``repro schemes --check``)
enforces that.

Every runner remains **bit-for-bit equivalent** to its scalar counterpart
for a fixed seed: the kernel steppers consume the random stream in exactly
the scalar block order, and ``tests/core/test_engine_equivalence.py`` locks
the property down.
"""

from .kernels.base import (
    CALLABLE_THRESHOLD_REASON,
    _require_strict,
    independent_batch_rounds,
    speculative_batch_rows,
)
from .kernels.kd import _select_batch
from .kernels.table import (
    run_always_go_left_vectorized,
    run_churn_kd_choice_vectorized,
    run_d_choice_vectorized,
    run_greedy_kd_choice_vectorized,
    run_kd_choice_vectorized,
    run_one_plus_beta_vectorized,
    run_serialized_kd_choice_vectorized,
    run_stale_kd_choice_vectorized,
    run_threshold_adaptive_vectorized,
    run_two_choice_vectorized,
    run_two_phase_adaptive_vectorized,
    run_weighted_kd_choice_vectorized,
)
from .kernels.weighted import _weighted_batch

__all__ = [
    "run_kd_choice_vectorized",
    "run_serialized_kd_choice_vectorized",
    "run_greedy_kd_choice_vectorized",
    "run_weighted_kd_choice_vectorized",
    "run_stale_kd_choice_vectorized",
    "run_churn_kd_choice_vectorized",
    "run_d_choice_vectorized",
    "run_two_choice_vectorized",
    "run_one_plus_beta_vectorized",
    "run_always_go_left_vectorized",
    "run_threshold_adaptive_vectorized",
    "run_two_phase_adaptive_vectorized",
    "independent_batch_rounds",
    "speculative_batch_rows",
]
