"""The (k, d)-choice allocation process.

This module implements the paper's primary contribution: in each of
``m / k`` rounds, ``d`` bins are chosen independently and uniformly at random
(with replacement) and ``k`` balls are placed into the ``k`` least loaded of
them, subject to the multiplicity cap "a bin sampled ``m`` times receives at
most ``m`` balls" (implemented by :class:`repro.core.policies.StrictPolicy`).

Two entry points are provided:

* :class:`KDChoiceProcess` — an object that owns the bin state and can be run
  round by round (useful for tests and for tracking intermediate ``ν_y``).
* :func:`run_kd_choice` — a one-call convenience wrapper returning an
  :class:`~repro.core.types.AllocationResult`.

The heavily loaded case (``m > n`` balls, Theorem 2) is supported by simply
asking for more balls than bins.

.. note::
   The canonical front door of the library is :func:`repro.api.simulate`
   with ``SchemeSpec(scheme="kd_choice", ...)``: it validates parameters
   against the scheme registry and can select the vectorized batch engine
   (:mod:`repro.core.vectorized`), which is seed-for-seed identical to this
   scalar reference.  :func:`run_kd_choice` is kept as a thin shim.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from .policies import AllocationPolicy, get_policy
from .state import BinState
from .types import AllocationResult, ProcessParams

__all__ = ["KDChoiceProcess", "run_kd_choice"]

# Number of rounds whose random samples are drawn from the generator in one
# NumPy call.  Chunking keeps memory bounded (a full Table-1 run with k = 1,
# d = 193 would otherwise materialize ~200k x 193 integers at once).
_DEFAULT_CHUNK_ROUNDS = 4096


class KDChoiceProcess:
    """Round-based (k, d)-choice allocation.

    Parameters
    ----------
    n_bins:
        Number of bins ``n``.
    k:
        Balls placed per round; ``1 <= k <= d``.
    d:
        Bins probed per round; ``d <= n_bins``.
    policy:
        "strict" (the paper's rule), "greedy" (Section 7 relaxation), or an
        :class:`~repro.core.policies.AllocationPolicy` instance.
    seed:
        Integer seed, :class:`numpy.random.SeedSequence`, or ``None`` for a
        nondeterministic run.
    rng:
        Alternatively, an existing :class:`numpy.random.Generator` (takes
        precedence over ``seed``).

    Examples
    --------
    >>> process = KDChoiceProcess(n_bins=1024, k=4, d=8, seed=7)
    >>> result = process.run()
    >>> result.max_load >= 1
    True
    """

    def __init__(
        self,
        n_bins: int,
        k: int,
        d: int,
        policy: "str | AllocationPolicy" = "strict",
        seed: "int | np.random.SeedSequence | None" = None,
        rng: Optional[np.random.Generator] = None,
        chunk_rounds: int = _DEFAULT_CHUNK_ROUNDS,
    ) -> None:
        # ProcessParams performs the parameter validation; the ball count is
        # only known at run() time (n_balls=None = "unknown yet").
        ProcessParams(n_bins=n_bins, n_balls=None, k=k, d=d)
        if chunk_rounds <= 0:
            raise ValueError(f"chunk_rounds must be positive, got {chunk_rounds}")

        self.n_bins = n_bins
        self.k = k
        self.d = d
        self.policy = get_policy(policy)
        self.chunk_rounds = chunk_rounds
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self.state = BinState(n_bins)
        self.rounds_executed = 0
        self.messages = 0

    # ------------------------------------------------------------------
    # Round execution
    # ------------------------------------------------------------------
    def run_round(self, samples: Optional[np.ndarray] = None) -> list[int]:
        """Execute one round and return the destination bins chosen.

        ``samples`` may be supplied explicitly (used by coupling experiments
        and tests); otherwise ``d`` bins are drawn uniformly at random with
        replacement.
        """
        if samples is None:
            samples = self.rng.integers(0, self.n_bins, size=self.d)
        sample_list = [int(s) for s in samples]
        if len(sample_list) != self.d:
            raise ValueError(
                f"expected {self.d} samples, got {len(sample_list)}"
            )
        destinations = self.policy.select(
            self.state._loads, sample_list, self.k, self.rng
        )
        for bin_index in destinations:
            self.state.place(bin_index)
        self.rounds_executed += 1
        self.messages += self.d
        return destinations

    def _sample_chunks(self, rounds: int) -> Iterator[np.ndarray]:
        """Yield chunks of pre-generated round samples."""
        remaining = rounds
        while remaining > 0:
            batch = min(remaining, self.chunk_rounds)
            yield self.rng.integers(0, self.n_bins, size=(batch, self.d))
            remaining -= batch

    def run(self, n_balls: Optional[int] = None) -> AllocationResult:
        """Run the process until ``n_balls`` balls have been placed.

        ``n_balls`` defaults to ``n_bins`` (the lightly loaded case analysed
        by Theorem 1).  If ``n_balls`` is not a multiple of ``k``, the final
        round places only the remaining ``n_balls mod k`` balls (still probing
        ``d`` bins), which matches the paper's convention of choosing ``k``
        dividing ``n``.
        """
        if n_balls is None:
            n_balls = self.n_bins
        params = ProcessParams(
            n_bins=self.n_bins,
            n_balls=n_balls,
            k=self.k,
            d=self.d,
            policy=self.policy.name,
        )

        full_rounds, tail_balls = divmod(n_balls, self.k)
        loads = self.state._loads  # local alias for speed
        select = self.policy.select
        k = self.k
        rng = self.rng

        for chunk in self._sample_chunks(full_rounds):
            for row in chunk.tolist():
                destinations = select(loads, row, k, rng)
                for bin_index in destinations:
                    loads[bin_index] += 1
                self.state._total += k
                self.rounds_executed += 1
                self.messages += self.d

        if tail_balls:
            samples = self.rng.integers(0, self.n_bins, size=self.d).tolist()
            destinations = select(loads, samples, tail_balls, rng)
            for bin_index in destinations:
                loads[bin_index] += 1
            self.state._total += tail_balls
            self.rounds_executed += 1
            self.messages += self.d

        return AllocationResult(
            loads=np.asarray(loads, dtype=np.int64),
            scheme=f"({self.k},{self.d})-choice",
            n_bins=self.n_bins,
            n_balls=self.state.total_balls,
            k=self.k,
            d=self.d,
            messages=self.messages,
            rounds=self.rounds_executed,
            policy=self.policy.name,
            extra={"expected_messages": params.message_cost},
        )


def run_kd_choice(
    n_bins: int,
    k: int,
    d: int,
    n_balls: Optional[int] = None,
    policy: "str | AllocationPolicy" = "strict",
    seed: "int | np.random.SeedSequence | None" = None,
    rng: Optional[np.random.Generator] = None,
    chunk_rounds: Optional[int] = None,
    capacities: Optional[np.ndarray] = None,
) -> AllocationResult:
    """Run a complete (k, d)-choice allocation and return its result.

    .. note::
       Deprecated front door — prefer the unified spec API::

           from repro.api import SchemeSpec, simulate
           simulate(SchemeSpec(scheme="kd_choice",
                               params={"n_bins": n, "k": k, "d": d}, seed=seed))

       This shim remains for backwards compatibility and is exactly the
       registry's scalar ``kd_choice`` runner.

    Parameters
    ----------
    n_bins:
        Number of bins ``n``.
    k, d:
        Round size and probe count, ``1 <= k <= d <= n_bins``.
    n_balls:
        Number of balls ``m`` (default ``n_bins``).
    policy:
        "strict" or "greedy" (or a policy object).
    seed, rng:
        Source of randomness.
    chunk_rounds:
        Rounds whose samples are drawn per RNG block (default 4096).  This
        bounds the sample-buffer memory at ``O(chunk_rounds * d)``; the
        random stream (and therefore the result) depends on it, so compare
        engines only at equal ``chunk_rounds``.
    capacities:
        Optional per-bin capacity vector (the ``hetero_bins`` workload):
        the strict rule then ranks candidates by fractional fill
        ``(load + 1) / capacity`` instead of raw load.  Strict policy only.

    Examples
    --------
    >>> result = run_kd_choice(n_bins=4096, k=8, d=16, seed=42)
    >>> result.total_balls_check()
    True
    """
    if capacities is not None:
        # The fill-aware process is defined by the streaming kernel
        # (KDChoiceStepper.step); the batch drive loop declines its batched
        # apply under capacities, so this runs the per-round reference path.
        from .kernels.table import run_kd_choice_vectorized

        result = run_kd_choice_vectorized(
            n_bins=n_bins, k=k, d=d, n_balls=n_balls, policy=policy,
            seed=seed, rng=rng, chunk_rounds=chunk_rounds,
            capacities=capacities,
        )
        result.extra.pop("engine", None)
        return result
    process = KDChoiceProcess(
        n_bins=n_bins, k=k, d=d, policy=policy, seed=seed, rng=rng,
        chunk_rounds=_DEFAULT_CHUNK_ROUNDS if chunk_rounds is None else chunk_rounds,
    )
    return process.run(n_balls=n_balls)
