"""Dynamic (k, d)-choice: balls arrive in rounds and depart over time.

Both applications in the paper's Section 1.3 are dynamic systems — tasks
finish and files get deleted — whereas the analysis covers the one-shot
insertion process.  This module implements the standard dynamic extension
studied in the balanced-allocations literature (the "supermarket"-style
insert/delete model): the system alternates between

* an *arrival* round, in which ``k`` balls are placed with the (k, d)-choice
  rule, and
* ``departures_per_round`` uniformly random ball removals (a random occupied
  bin loses one ball, i.e. each currently present ball is equally likely to
  leave when removal is by ball).

With arrivals and departures balanced the total load fluctuates around a
steady state; the quantity of interest is the *gap* between the maximum and
the average load over time, mirroring the heavily loaded analysis (Theorem 2)
which this process converges to when departures are disabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .policies import AllocationPolicy, get_policy
from .types import AllocationResult, ProcessParams

__all__ = [
    "ChurnSnapshot",
    "ChurnResult",
    "DynamicKDChoiceProcess",
    "run_churn_kd_choice",
    "allocation_from_churn",
]


@dataclass(frozen=True)
class ChurnSnapshot:
    """Periodic snapshot of the dynamic system."""

    round_index: int
    total_balls: int
    max_load: int
    average_load: float

    @property
    def gap(self) -> float:
        return self.max_load - self.average_load


@dataclass
class ChurnResult:
    """Outcome of a dynamic run."""

    n_bins: int
    k: int
    d: int
    rounds: int
    departures_per_round: int
    messages: int
    final_loads: np.ndarray
    snapshots: List[ChurnSnapshot]

    @property
    def final_max_load(self) -> int:
        return int(self.final_loads.max()) if self.final_loads.size else 0

    @property
    def final_gap(self) -> float:
        if self.final_loads.size == 0:
            return 0.0
        return float(self.final_loads.max() - self.final_loads.mean())

    def steady_state_gap(self, warmup_fraction: float = 0.5) -> float:
        """Mean gap over the snapshots taken after the warm-up period."""
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError(
                f"warmup_fraction must be in [0, 1), got {warmup_fraction}"
            )
        if not self.snapshots:
            return self.final_gap
        start = int(len(self.snapshots) * warmup_fraction)
        tail = self.snapshots[start:] or self.snapshots
        return float(np.mean([snapshot.gap for snapshot in tail]))

    def steady_state_max_load(self, warmup_fraction: float = 0.5) -> float:
        """Mean maximum load over the post-warm-up snapshots."""
        if not self.snapshots:
            return float(self.final_max_load)
        start = int(len(self.snapshots) * warmup_fraction)
        tail = self.snapshots[start:] or self.snapshots
        return float(np.mean([snapshot.max_load for snapshot in tail]))


class DynamicKDChoiceProcess:
    """Insert/delete (k, d)-choice process.

    Parameters
    ----------
    n_bins, k, d, policy, seed, rng:
        As for :class:`~repro.core.process.KDChoiceProcess`.
    departures_per_round:
        Number of uniformly random ball removals performed after each arrival
        round.  ``departures_per_round = k`` keeps the population stable once
        the target load is reached; smaller values let it grow.
    """

    def __init__(
        self,
        n_bins: int,
        k: int,
        d: int,
        departures_per_round: int = 0,
        policy: "str | AllocationPolicy" = "strict",
        seed: "int | np.random.SeedSequence | None" = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        ProcessParams(n_bins=n_bins, n_balls=None, k=k, d=d)
        if departures_per_round < 0:
            raise ValueError(
                f"departures_per_round must be non-negative, got {departures_per_round}"
            )
        self.n_bins = n_bins
        self.k = k
        self.d = d
        self.departures_per_round = departures_per_round
        self.policy = get_policy(policy)
        self.rng = rng if rng is not None else np.random.default_rng(seed)

    def run(
        self,
        rounds: int,
        warmup_balls: Optional[int] = None,
        snapshot_every: int = 16,
    ) -> ChurnResult:
        """Run ``rounds`` arrival rounds (each followed by departures).

        Parameters
        ----------
        warmup_balls:
            Balls pre-loaded uniformly at random before the dynamics start
            (default ``n_bins``, i.e. average load 1).
        snapshot_every:
            Record a :class:`ChurnSnapshot` every this many rounds.
        """
        if rounds < 0:
            raise ValueError(f"rounds must be non-negative, got {rounds}")
        if snapshot_every < 1:
            raise ValueError(f"snapshot_every must be positive, got {snapshot_every}")
        rng = self.rng
        if warmup_balls is None:
            warmup_balls = self.n_bins
        loads = np.bincount(
            rng.integers(0, self.n_bins, size=warmup_balls), minlength=self.n_bins
        ).tolist()
        total = warmup_balls
        messages = 0
        snapshots: List[ChurnSnapshot] = []
        select = self.policy.select

        for round_index in range(1, rounds + 1):
            # Arrivals: one (k, d)-choice round.
            samples = [int(s) for s in rng.integers(0, self.n_bins, size=self.d)]
            messages += self.d
            for bin_index in select(loads, samples, self.k, rng):
                loads[bin_index] += 1
            total += self.k

            # Departures: remove balls uniformly at random (by ball).
            departures = min(self.departures_per_round, total)
            for _ in range(departures):
                target = rng.integers(0, total)
                cumulative = 0
                for bin_index, load in enumerate(loads):
                    cumulative += load
                    if target < cumulative:
                        loads[bin_index] -= 1
                        total -= 1
                        break

            if round_index % snapshot_every == 0 or round_index == rounds:
                max_load = max(loads)
                snapshots.append(
                    ChurnSnapshot(
                        round_index=round_index,
                        total_balls=total,
                        max_load=max_load,
                        average_load=total / self.n_bins,
                    )
                )

        return ChurnResult(
            n_bins=self.n_bins,
            k=self.k,
            d=self.d,
            rounds=rounds,
            departures_per_round=self.departures_per_round,
            messages=messages,
            final_loads=np.asarray(loads, dtype=np.int64),
            snapshots=snapshots,
        )


def run_churn_kd_choice(
    n_bins: int,
    k: int,
    d: int,
    rounds: int,
    departures_per_round: Optional[int] = None,
    policy: "str | AllocationPolicy" = "strict",
    seed: "int | np.random.SeedSequence | None" = None,
    rng: Optional[np.random.Generator] = None,
) -> ChurnResult:
    """One-call wrapper: balanced churn by default (departures = k)."""
    process = DynamicKDChoiceProcess(
        n_bins=n_bins,
        k=k,
        d=d,
        departures_per_round=k if departures_per_round is None else departures_per_round,
        policy=policy,
        seed=seed,
        rng=rng,
    )
    return process.run(rounds=rounds)


def allocation_from_churn(
    churn: ChurnResult, n_bins: int, k: int, d: int, policy: "str | AllocationPolicy"
) -> AllocationResult:
    """Adapt a :class:`ChurnResult` to the common :class:`AllocationResult`.

    The steady-state loads become the allocation; the full churn record
    (snapshots, steady-state statistics) rides along in
    ``extra["churn_result"]``.  Shared by the scalar registry runner and the
    kernel-derived batch engine so the two report identical shapes.
    """
    return AllocationResult(
        loads=churn.final_loads,
        scheme=f"churn-({k},{d})-choice",
        n_bins=n_bins,
        n_balls=int(churn.final_loads.sum()),
        k=k,
        d=d,
        messages=churn.messages,
        rounds=churn.rounds,
        policy="strict" if policy == "strict" else str(policy),
        extra={
            "churn_result": churn,
            "steady_state_gap": churn.steady_state_gap(),
            "departures_per_round": churn.departures_per_round,
        },
    )
